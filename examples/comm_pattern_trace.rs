//! Trace and print the communication patterns of Figures 1 and 3 side by
//! side: the same physics, CGYRO wiring (nv communicator reused for the
//! coll transpose) vs XGYRO wiring (separated, ensemble-wide coll
//! communicator).
//!
//! ```sh
//! cargo run --release --example comm_pattern_trace
//! ```

use xgyro_repro::sim::CgyroInput;
use xgyro_repro::tensor::ProcGrid;
use xgyro_repro::xgyro::{gradient_sweep, run_single_cgyro, run_xgyro, summarize_trace};

fn main() {
    let input = CgyroInput::test_small();

    println!("=== Figure 1: CGYRO, one simulation on a 4x2 grid ===");
    let grid = ProcGrid::new(4, 2);
    let (_, traces) = run_single_cgyro(&input, grid, 1, 0);
    let s = summarize_trace(&traces[0]);
    print!("{}", s.to_table());
    let ar = s.str_allreduce().unwrap();
    let a2a = s.coll_alltoall().unwrap();
    println!(
        "-> str AllReduce and coll AllToAll share communicator '{}' ({} ranks)\n",
        ar.comm_label, ar.participants
    );
    assert_eq!(ar.comm_label, a2a.comm_label);

    println!("=== Figure 3: XGYRO, k=2 simulations on 4x2 grids ===");
    let cfg = gradient_sweep(&input, 2, grid);
    let outcome = run_xgyro(&cfg, 1);
    let s = summarize_trace(&outcome.traces[0]);
    print!("{}", s.to_table());
    let ar = s.str_allreduce().unwrap();
    let a2a = s.coll_alltoall().unwrap();
    println!(
        "-> str AllReduce stays on '{}' ({} ranks); coll AllToAll moved to '{}' ({} ranks = k x n1)",
        ar.comm_label, ar.participants, a2a.comm_label, a2a.participants
    );
    assert_ne!(ar.comm_label, a2a.comm_label);
    assert_eq!(a2a.participants, 2 * grid.n1);

    // Byte accounting: the transpose volume per rank is unchanged — the
    // ensemble moves the same data through a wider communicator while the
    // AllReduce participant count (the cost driver) fell.
    println!(
        "\nper-rank coll transpose bytes: CGYRO {} vs XGYRO {}",
        summarize_trace(&traces[0]).coll_alltoall().unwrap().bytes,
        a2a.bytes
    );
}
