//! Quickstart: run one CGYRO-class simulation serially, inspect its
//! collisional constant tensor, then run the same deck distributed over a
//! 2×2 process grid and confirm both agree.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use xgyro_repro::comm::World;
use xgyro_repro::linalg::norms::max_deviation;
use xgyro_repro::sim::{serial_simulation, CgyroInput, DistTopology, Simulation};
use xgyro_repro::tensor::{PhaseLayout, ProcGrid, Tensor3};

fn main() {
    // 1. Pick an input deck. Presets ship for testing and for the paper's
    //    nl03c-like benchmark; here we use the small functional deck.
    let input = CgyroInput::test_small();
    let dims = input.dims();
    println!("deck: nc={} nv={} nt={}  (cmat key {:#018x})", dims.nc, dims.nv, dims.nt, input.cmat_key());

    // 2. Serial reference run.
    let mut serial = serial_simulation(&input);
    let d0 = serial.diagnostics();
    println!("t={:6.3}  |phi|^2={:.3e}  |h|^2={:.3e}", d0.time, d0.field_energy, d0.h_norm2);
    for _ in 0..3 {
        let d = serial.run_report_step();
        println!("t={:6.3}  |phi|^2={:.3e}  |h|^2={:.3e}  Q={:+.3e}", d.time, d.field_energy, d.h_norm2, d.heat_flux);
    }
    let steps = serial.steps_taken() as usize;

    // 3. The same deck distributed over 4 ranks (CGYRO wiring: the nv
    //    communicator is reused for the coll transpose, paper Figure 1).
    let grid = ProcGrid::new(2, 2);
    let shards = World::new(grid.size()).run(|comm| {
        let rank = comm.rank();
        let topo = DistTopology::cgyro(&input, grid, comm);
        let mut sim = Simulation::new(input.clone(), topo);
        sim.run_steps(steps);
        (PhaseLayout::new(dims, grid, rank), sim.h().clone())
    });

    // 4. Reassemble and compare against the serial trajectory.
    let mut global = Tensor3::new(dims.nc, dims.nv, dims.nt);
    for (layout, h) in shards {
        for ic in 0..dims.nc {
            for (ivl, iv) in layout.nv_range().enumerate() {
                for (itl, it) in layout.nt_range().enumerate() {
                    global[(ic, iv, it)] = h[(ic, ivl, itl)];
                }
            }
        }
    }
    let dev = max_deviation(serial.h().as_slice(), global.as_slice());
    println!("max |serial - distributed| after {steps} steps: {dev:.2e}");
    assert!(dev < 1e-11);
    println!("distributed run reproduces the serial reference ✓");
}
