//! A complete small research campaign, end to end, the way XGYRO is used
//! in practice:
//!
//! 1. write CGYRO-style `input.cgyro` decks for a temperature-gradient
//!    scan into per-simulation directories;
//! 2. load them back as an XGYRO ensemble (admission-checked);
//! 3. run the ensemble, recording per-report diagnostics with
//!    checkpoint/restart in the middle;
//! 4. fit linear growth rates from the field-energy traces and print the
//!    scan result (γ vs a/L_T — the critical-gradient picture).
//!
//! ```sh
//! cargo run --release --example growth_rate_study
//! ```

use xgyro_repro::sim::{save_deck, serial_simulation, CgyroInput, History, RestartImage};
use xgyro_repro::tensor::ProcGrid;
use xgyro_repro::xgyro::{run_xgyro, EnsembleConfig};

fn main() {
    // 1. Write the scan decks to disk.
    let scan_rlt = [0.0, 3.0, 6.0, 9.0];
    let workdir = std::env::temp_dir().join("xgyro_growth_rate_study");
    let mut dirs = Vec::new();
    for (i, &rlt) in scan_rlt.iter().enumerate() {
        let mut deck = CgyroInput::test_small();
        deck.nonlinear_coupling = 0.0; // linear scan
        deck.nu_ee = 0.05;
        deck.steps_per_report = 25;
        for s in &mut deck.species {
            s.rln = 1.0;
            s.rlt = rlt;
        }
        let dir = workdir.join(format!("variant_{i}"));
        std::fs::create_dir_all(&dir).expect("create variant dir");
        save_deck(&deck, &dir.join("input.cgyro")).expect("write deck");
        dirs.push(dir);
    }
    println!("wrote {} decks under {}", dirs.len(), workdir.display());

    // 2. Load as an ensemble (this runs the cmat-key admission check:
    //    gradient scans always pass).
    let grid = ProcGrid::new(2, 1);
    let cfg = EnsembleConfig::from_deck_dirs(&dirs, grid).expect("scan shares cmat");
    println!(
        "ensemble admitted: k={}, {} ranks, shared cmat key {:#018x}",
        cfg.k(),
        cfg.total_ranks(),
        cfg.cmat_key()
    );

    // 3. Run: serial per-member reference with checkpoint/restart halfway
    //    (the ensemble path is validated against it at the end).
    let reports = 20usize;
    let mut histories: Vec<History> = Vec::new();
    for member in cfg.members() {
        let mut sim = serial_simulation(member);
        let mut hist = History::new();
        for r in 0..reports {
            hist.push(sim.run_report_step());
            if r == reports / 2 {
                // Checkpoint round-trip mid-run; resume must be bitwise.
                let image = RestartImage::capture(&sim);
                let bytes = image.to_bytes();
                let mut resumed = serial_simulation(member);
                RestartImage::from_bytes(&bytes)
                    .expect("restart image intact")
                    .restore(&mut resumed)
                    .expect("same deck");
                assert_eq!(resumed.h().as_slice(), sim.h().as_slice());
            }
        }
        histories.push(hist);
    }

    // Cross-check one member against the XGYRO ensemble run.
    let steps_total = reports * cfg.members()[0].steps_per_report;
    let xg = run_xgyro(&cfg, steps_total);
    let mut check = serial_simulation(&cfg.members()[1]);
    check.run_steps(steps_total);
    let dev = xgyro_repro::linalg::norms::max_deviation(
        check.h().as_slice(),
        xg.sims[1].h.as_slice(),
    );
    assert!(dev < 1e-10, "ensemble deviates from reference: {dev}");

    // 4. The scan result.
    println!("\n  a/L_T    growth rate gamma   final |phi|^2");
    for (hist, &rlt) in histories.iter().zip(&scan_rlt) {
        let gamma = hist.growth_rate(12).expect("positive energies");
        let last = hist.entries().last().unwrap();
        println!("  {:>5.1}    {:>+16.4}   {:>12.3e}", rlt, gamma, last.field_energy);
    }
    println!("\n(growth rate rises with the temperature gradient; the rlt=0 case decays —");
    println!(" the ITG-like critical-gradient behaviour the paper's ensembles scan for)");

    std::fs::remove_dir_all(&workdir).ok();
}
