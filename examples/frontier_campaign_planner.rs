//! Plan a paper-scale simulation campaign on the Frontier-like machine
//! model: how many nodes does an `nl03c` study need, and what does running
//! it as XGYRO ensembles buy?
//!
//! This is the decision a fusion group actually faces: N parameter-sweep
//! variants, a fixed node-hour budget, CGYRO-sequential vs XGYRO.
//!
//! ```sh
//! cargo run --release --example frontier_campaign_planner
//! ```

use xgyro_repro::cluster::{
    min_nodes, plan, simulate_cgyro_sequential, simulate_xgyro, SchedulePolicy,
};
use xgyro_repro::costmodel::MachineModel;
use xgyro_repro::sim::CgyroInput;

fn main() {
    let input = CgyroInput::nl03c_like();
    let machine = MachineModel::frontier_like();
    let policy = SchedulePolicy::production();
    let d = input.dims();
    println!(
        "campaign deck: nl03c-like (nc={} nv={} nt={}), cmat = {:.2} TB",
        d.nc,
        d.nv,
        d.nt,
        xgyro_repro::sim::cmat_total_bytes(&input) as f64 / 1e12
    );
    println!("machine: {} ({} ranks/node, {:.0} GB usable per rank)\n",
        machine.name, machine.ranks_per_node, machine.usable_mem_per_rank() as f64 / 1e9);

    // Minimum allocation for one simulation (the paper: 32 nodes).
    let single = min_nodes(&input, 1, &machine, 256).expect("nl03c fits on the machine");
    println!(
        "single CGYRO simulation: minimum {} nodes ({} ranks, grid {}x{}, {:.1} GB/rank)",
        single.nodes,
        single.ranks,
        single.grid.n1,
        single.grid.n2,
        single.per_rank_bytes as f64 / 1e9
    );

    // The campaign: 8 variants, 10 reporting steps each, on 32 nodes.
    let k = 8;
    let reports = 10;
    let nodes = single.nodes;
    let cg = simulate_cgyro_sequential(&input, single.grid, k, nodes, &machine, &policy);
    let xgp = plan(&input, k, nodes, &machine).expect("ensemble plan");
    assert!(xgp.feasible());
    let xg = simulate_xgyro(&input, xgp.grid, k, nodes, &machine, &policy);

    let cg_hours = cg.total() * reports as f64 / 3600.0 * nodes as f64;
    let xg_hours = xg.total() * reports as f64 / 3600.0 * nodes as f64;
    println!("\ncampaign: {k} variants x {reports} reporting steps on {nodes} nodes");
    println!("  CGYRO sequential: {:7.1} s/report-step -> {:6.1} node-hours", cg.total(), cg_hours);
    println!("  XGYRO ensemble:   {:7.1} s/report-step -> {:6.1} node-hours", xg.total(), xg_hours);
    println!("  saving: {:.0}% ({:.2}x more science per node-hour)",
        100.0 * (1.0 - xg_hours / cg_hours),
        cg_hours / xg_hours
    );

    // How the saving scales with ensemble size.
    println!("\nensemble-size sweep at {nodes} nodes:");
    println!("  k    feasible  s/report  speedup  str-comm s");
    for k in [1usize, 2, 4, 8, 16] {
        match plan(&input, k, nodes, &machine) {
            Some(p) if p.feasible() => {
                let x = simulate_xgyro(&input, p.grid, k, nodes, &machine, &policy);
                let c = simulate_cgyro_sequential(&input, single.grid, k, nodes, &machine, &policy);
                println!(
                    "  {:<4} {:<9} {:>8.1} {:>7.2}x {:>10.1}",
                    k,
                    "yes",
                    x.total(),
                    c.total() / x.total(),
                    x.str_comm()
                );
            }
            _ => println!("  {:<4} {:<9} (per-sim state no longer fits)", k, "no"),
        }
    }
}
