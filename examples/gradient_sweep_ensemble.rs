//! The paper's motivating workload: a gradient-drive parameter sweep run
//! as one XGYRO ensemble sharing a single collisional constant tensor.
//!
//! Four variants of one deck (different `a/L_n`, `a/L_T`) run as one job;
//! we verify the admission check, the k-fold per-rank cmat saving, and that
//! every member's trajectory is bitwise identical to an independent CGYRO
//! run — then show XGYRO *rejecting* an ensemble that may not share.
//!
//! ```sh
//! cargo run --release --example gradient_sweep_ensemble
//! ```

use xgyro_repro::sim::CgyroInput;
use xgyro_repro::tensor::ProcGrid;
use xgyro_repro::xgyro::{
    cmat_memory_law, run_cgyro_baseline, run_xgyro, EnsembleConfig, EnsembleError,
};

fn main() {
    let base = CgyroInput::test_small();
    let grid = ProcGrid::new(2, 2);

    // Four gradient variants — the cmat key is identical by construction.
    let members: Vec<CgyroInput> = [(0.5, 1.0), (1.0, 2.5), (1.5, 4.0), (2.0, 5.5)]
        .iter()
        .enumerate()
        .map(|(i, &(rln, rlt))| base.with_gradients(rln, rlt).with_seed(base.seed + i as u64))
        .collect();
    let cfg = EnsembleConfig::new(members, grid).expect("gradient sweep shares cmat");
    println!(
        "ensemble: k={} sims x {} ranks = {} ranks, shared cmat key {:#018x}",
        cfg.k(),
        cfg.ranks_per_sim(),
        cfg.total_ranks(),
        cfg.cmat_key()
    );

    let law = cmat_memory_law(&cfg);
    println!(
        "cmat per rank: CGYRO {} B -> XGYRO {} B ({}x saving)",
        law.cgyro_per_rank,
        law.xgyro_per_rank,
        law.cgyro_per_rank / law.xgyro_per_rank
    );

    // Run the ensemble and the sequential baseline; compare trajectories.
    let steps = 5;
    let xg = run_xgyro(&cfg, steps);
    let cg = run_cgyro_baseline(&cfg, steps);
    for (x, c) in xg.sims.iter().zip(&cg.sims) {
        let bitwise = x.h.as_slice() == c.h.as_slice();
        println!(
            "sim {}: rln={:.1} rlt={:.1}  |phi|^2={:.3e}  Q={:+.3e}  bitwise == CGYRO: {}",
            x.sim,
            cfg.members()[x.sim].species[0].rln,
            cfg.members()[x.sim].species[0].rlt,
            x.diagnostics.field_energy,
            x.diagnostics.heat_flux,
            bitwise
        );
        assert!(bitwise);
    }

    // An ensemble that changes the collision frequency is refused: its
    // constant tensor would genuinely differ.
    let mut rogue = base.clone();
    rogue.nu_ee *= 3.0;
    match EnsembleConfig::new(vec![base, rogue], grid) {
        Err(EnsembleError::CmatKeyMismatch { index, .. }) => {
            println!("mixed-nu_ee ensemble correctly rejected (member {index})");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
}
