//! Capture a real ensemble communication trace, serialize it, and replay
//! it against different machine models and imbalance levels — the offline
//! performance-debugging loop (`xgyro --trace` + `xgreplay`) as a library
//! workflow.
//!
//! ```sh
//! cargo run --release --example trace_and_replay
//! ```

use xgyro_repro::cluster::replay;
use xgyro_repro::comm::{traces_from_csv, traces_to_csv};
use xgyro_repro::costmodel::{MachineModel, Placement};
use xgyro_repro::sim::CgyroInput;
use xgyro_repro::tensor::ProcGrid;
use xgyro_repro::xgyro::{gradient_sweep, run_xgyro};

fn main() {
    // 1. Capture: run a small ensemble functionally and keep its traces.
    let mut base = CgyroInput::test_small();
    base.nonlinear_coupling = 0.1;
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(2, 2));
    let outcome = run_xgyro(&cfg, 3);
    println!(
        "captured {} per-rank traces, {} ops on rank 0",
        outcome.traces.len(),
        outcome.traces[0].len()
    );

    // 2. Serialize + reload (what `xgyro --trace` / `xgreplay` do on disk).
    let csv = traces_to_csv(&outcome.traces);
    let traces = traces_from_csv(&csv).expect("roundtrip");
    assert_eq!(traces, outcome.traces);
    println!("trace file round-trip: {} bytes of CSV", csv.len());

    // 3. Replay the same trace against different machines and jitter.
    println!("\nmachine            jitter     makespan     wait share");
    for machine in [
        MachineModel::frontier_like(),
        MachineModel::perlmutter_like(),
        MachineModel::slow_fabric_cluster(),
    ] {
        let placement = Placement { ranks_per_node: machine.ranks_per_node };
        for jitter_us in [0.0f64, 200.0] {
            let jitter = jitter_us * 1e-6;
            let out = replay(&traces, &machine, placement, |r, i| {
                let h = (r as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((i as u64).wrapping_mul(0xBF58476D1CE4E5B9));
                jitter * ((h >> 11) as f64 / (1u64 << 53) as f64)
            })
            .expect("trace replays");
            let makespan = out.makespan();
            let wait_share = out.total_wait() / (makespan * traces.len() as f64);
            println!(
                "{:<18} {:>5.0} us  {:>8.3} ms   {:>8.1}%",
                machine.name,
                jitter_us,
                makespan * 1e3,
                wait_share * 100.0
            );
        }
    }
    println!("\n(waiting inside blocking collectives grows with jitter — the effect");
    println!(" production communication timers absorb; see EXPERIMENTS.md F2)");
}
