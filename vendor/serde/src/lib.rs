//! Offline stand-in for `serde`: marker traits plus no-op derive macros.
//! The workspace serializes through hand-rolled text/binary formats, so the
//! traits carry no methods — they exist so `use serde::{Serialize,
//! Deserialize}` and `#[derive(Serialize, Deserialize)]` compile unchanged.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
