//! Offline stand-in for `proptest`: the API subset this workspace's
//! property tests use, backed by a deterministic SplitMix64 generator.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case reports its inputs via `Debug`-less
//!   message text (the deterministic seed makes every failure reproducible
//!   by rerunning the test binary).
//! * **Deterministic seeds** — cases are generated from a fixed per-test
//!   seed, so CI failures always reproduce locally.
//! * Supported strategy forms: numeric ranges (`lo..hi`, `lo..`), `Just`,
//!   tuples up to 10 elements, `prop_oneof!`, `prop::collection::vec`,
//!   `.prop_map`, `.prop_filter`, `.boxed()`.

use std::fmt;
use std::ops::{Range, RangeFrom};

/// Deterministic generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// New generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Assumption violated (`prop_assume!`): the case is skipped.
    Reject(String),
    /// Assertion failed (`prop_assert*!`): the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A skip.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// A failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
pub mod test_runner {
    /// Subset of proptest's `Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Maximum rejected (assumed-away) cases before giving up.
        pub max_global_rejects: u32,
        /// Accepted for API compatibility; this stand-in never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64, max_global_rejects: 4096, max_shrink_iters: 0 }
        }
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }
}

/// A source of values for one property argument.
///
/// Unlike real proptest there is no intermediate value tree: strategies
/// produce values directly (no shrinking).
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Retry until `f` accepts the value (up to an internal cap).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `.prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates in a row", self.whence);
    }
}

/// Equal-weight union of boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// New union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128 - self.start as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification: an exact size or a range of sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy, TestCaseError, TestCaseResult,
    };

    /// Module alias so `prop::collection::vec` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Hash a test name into a deterministic seed (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} == {} (left: {:?}, right: {:?}): {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} != {} (both: {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} != {} (both: {:?}): {}",
            stringify!($left), stringify!($right), l, format!($($fmt)+)
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Equal-weight choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::seed_from_u64($crate::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            )));
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            while case < cfg.cases {
                let result: $crate::TestCaseResult = (|| {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match result {
                    Ok(()) => case += 1,
                    Err($crate::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > cfg.max_global_rejects {
                            panic!(
                                "proptest {}: too many rejected cases ({rejects})",
                                stringify!($name)
                            );
                        }
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {case}: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3usize..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn mapped_strategy(e in evens()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn vec_and_oneof(
            v in prop::collection::vec(0u8..10, 2..6),
            c in prop_oneof![Just(1u8), 7u8..9],
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(c == 1 || (7..9).contains(&c));
            prop_assume!(!v.is_empty());
            prop_assert_ne!(v.len(), 0);
        }
    }
}
