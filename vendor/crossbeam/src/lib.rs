//! Offline stand-in for `crossbeam`. The workspace declares the dependency
//! but currently only needs scoped threads and mpsc-style channels, both of
//! which std provides; this crate re-exposes them under crossbeam's names.

/// Scoped threads (std's scope has the same shape as crossbeam's).
pub mod thread {
    /// Run `f` with a scope in which spawned threads are joined on exit.
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}

/// Channels (std mpsc under crossbeam's module name).
pub mod channel {
    pub use std::sync::mpsc::{channel as unbounded, Receiver, RecvError, SendError, Sender};
}
