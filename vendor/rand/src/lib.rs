//! Offline stand-in for `rand` 0.8: a deterministic SplitMix64 generator
//! behind the `Rng`/`SeedableRng` API subset the workspace uses. Not
//! cryptographic; intended for tests and benchmarks only.

/// Core generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample in `[low, high)` (supports the integer and float
    /// range forms used by the workspace).
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    /// Uniform `f64` in `[0, 1)` and friends.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Bernoulli with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable over a half-open range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[lo, hi)`.
    fn sample<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Types sampleable from the "standard" distribution.
pub trait Standard: Sized {
    /// Sample from the standard distribution ([0,1) for floats).
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f32::standard(rng) * (hi - lo)
    }
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 (stands in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed ^ 0x5851_F42D_4C95_7F2D }
        }
    }

    /// Alias used by small tests.
    pub type SmallRng = StdRng;
}

/// Prelude mirroring rand 0.8.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

/// A generator seeded from the system clock (determinism not required).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0xDEAD_BEEF);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            assert_eq!(x, b.gen_range(3usize..17));
        }
        let f: f64 = a.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
