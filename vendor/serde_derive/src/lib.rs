//! Offline stand-in for `serde_derive`. The workspace derives
//! `Serialize`/`Deserialize` on config structs but performs all actual
//! (de)serialization through hand-rolled text formats, so the derives can
//! expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
