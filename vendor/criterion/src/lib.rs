//! Offline stand-in for `criterion`: enough API for the workspace benches
//! to build and run. Each benchmark is timed with a simple warmup +
//! fixed-iteration loop and reported as ns/iter on stdout — no statistics,
//! no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration (binary units in real criterion).
    Bytes(u64),
    /// Bytes processed per iteration (decimal units in real criterion).
    BytesDecimal(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the measured closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to warm caches and JIT-like effects (paging).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(id: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let ns_per_iter = b.elapsed.as_nanos() as f64 / iters.max(1) as f64;
    println!("bench {id:<48} {ns_per_iter:>14.1} ns/iter ({iters} iters)");
}

/// Top-level benchmark harness.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { iters: 10 }
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.iters, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Accepted for API compatibility; sampling is fixed in this stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration throughput (ignored beyond accepting it).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.criterion.iters, &mut f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.criterion.iters, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
