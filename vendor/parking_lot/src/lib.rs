//! Offline stand-in for `parking_lot`, implementing the API subset this
//! workspace uses (`Mutex`, `Condvar`, `RwLock`) over `std::sync`.
//!
//! Semantics match parking_lot where it matters here: `lock()` returns the
//! guard directly (a poisoned std mutex is recovered transparently, which
//! mirrors parking_lot's lack of poisoning), and `Condvar::wait`/`wait_for`
//! take the guard by `&mut`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Block until notified; the guard is released while waiting and
    /// re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Block until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, timeout)
    }

    /// Wake one waiter. Returns whether a thread was (possibly) woken.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters. Returns the number woken (unknown under std; 0).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: g }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: g }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// One-time initialization flag (subset of parking_lot::Once).
pub struct Once {
    done: AtomicBool,
    lock: std::sync::Mutex<()>,
}

impl Default for Once {
    fn default() -> Self {
        Self::new()
    }
}

impl Once {
    /// New, not-yet-run Once.
    pub const fn new() -> Self {
        Self { done: AtomicBool::new(false), lock: std::sync::Mutex::new(()) }
    }

    /// Run `f` exactly once across all callers.
    pub fn call_once(&self, f: impl FnOnce()) {
        if self.done.load(Ordering::Acquire) {
            return;
        }
        let _g = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        if !self.done.load(Ordering::Relaxed) {
            f();
            self.done.store(true, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakeup() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
