//! # xgyro-repro
//!
//! Umbrella crate for the XGYRO reproduction workspace. Re-exports the
//! public APIs of every member crate so examples and integration tests can
//! use a single dependency. See `README.md` for the architecture overview
//! and `DESIGN.md` for the system inventory and experiment index.

pub use xg_bench as bench;
pub use xg_cluster as cluster;
pub use xg_comm as comm;
pub use xg_costmodel as costmodel;
pub use xg_linalg as linalg;
pub use xg_sim as sim;
pub use xg_tensor as tensor;
pub use xgyro_core as xgyro;
