//! Larger-scale functional runs, ignored by default (run with
//! `cargo test --release -- --ignored`). These exercise the substrate at
//! thread counts closer to real node widths.

use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;
use xgyro_repro::xgyro::{gradient_sweep, run_cgyro_baseline, run_xgyro};

#[test]
#[ignore = "64-thread functional run; use cargo test --release -- --ignored"]
fn ensemble_of_four_on_64_ranks_matches_baseline() {
    let base = CgyroInput::test_medium(); // nc=96, nv=72, nt=4
    let grid = ProcGrid::new(4, 4); // 16 ranks per sim
    let cfg = gradient_sweep(&base, 4, grid); // 64 ranks total
    let steps = 3;
    let xg = run_xgyro(&cfg, steps);
    let cg = run_cgyro_baseline(&cfg, steps);
    for (x, c) in xg.sims.iter().zip(&cg.sims) {
        assert_eq!(x.h.as_slice(), c.h.as_slice(), "sim {}", x.sim);
    }
    // Memory law at scale: 64-way shared cmat.
    let per_rank: Vec<u64> =
        xg.sims.iter().flat_map(|s| s.cmat_bytes_per_rank.clone()).collect();
    let total: u64 = per_rank.iter().sum();
    assert_eq!(total, xg_sim::cmat_total_bytes(&base));
}

#[test]
#[ignore = "long-horizon stability soak; use cargo test --release -- --ignored"]
fn thousand_step_nonlinear_soak_stays_bounded() {
    let mut input = CgyroInput::test_small();
    input.nonlinear_coupling = 0.3;
    input.nu_ee = 0.1;
    input.steps_per_report = 100;
    for s in &mut input.species {
        s.rlt = 9.0;
    }
    let mut sim = xg_sim::serial_simulation(&input);
    for r in 0..10 {
        let d = sim.run_report_step();
        assert!(
            d.h_norm2.is_finite() && d.h_norm2 < 1e9,
            "diverged at report {r}: {d:?}"
        );
    }
}
