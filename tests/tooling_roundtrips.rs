//! Cross-crate tooling round-trips: the file formats and offline tools
//! must compose — machine files drive the planner, serialized traces
//! replay identically to live ones, timing logs parse back, and diagnostic
//! CSVs survive an EM + shaped-geometry campaign.

use xgyro_repro::cluster;
use xgyro_repro::comm::{traces_from_csv, traces_to_csv};
use xgyro_repro::costmodel::{parse_machine, MachineModel, Placement};
use xgyro_repro::sim::{CgyroInput, History};
use xgyro_repro::tensor::ProcGrid;
use xgyro_repro::xgyro::{gradient_sweep, run_xgyro};

#[test]
fn machine_file_drives_the_planner_like_the_preset() {
    // A machine file that names the preset must produce the same plan.
    let input = CgyroInput::nl03c_like();
    let from_file = parse_machine("PRESET=frontier-like\n").unwrap();
    let preset = MachineModel::frontier_like();
    let a = cluster::min_nodes(&input, 1, &from_file, 128).unwrap();
    let b = cluster::min_nodes(&input, 1, &preset, 128).unwrap();
    assert_eq!(a.nodes, b.nodes);
    assert_eq!(a.per_rank_bytes, b.per_rank_bytes);

    // Halving the usable memory must push the minimum allocation up.
    let tight = parse_machine("PRESET=frontier-like\nUSABLE_MEM_FRACTION=0.33\n").unwrap();
    let c = cluster::min_nodes(&input, 1, &tight, 512).unwrap();
    assert!(c.nodes > a.nodes, "{} !> {}", c.nodes, a.nodes);
}

#[test]
fn serialized_traces_replay_identically_to_live_ones() {
    let mut base = CgyroInput::test_small();
    base.nonlinear_coupling = 0.1;
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(2, 1));
    let outcome = run_xgyro(&cfg, 2);

    let machine = MachineModel::frontier_like();
    let placement = Placement { ranks_per_node: machine.ranks_per_node };
    let live = cluster::replay(&outcome.traces, &machine, placement, |_, _| 1e-5).unwrap();

    let csv = traces_to_csv(&outcome.traces);
    let loaded = traces_from_csv(&csv).unwrap();
    let replayed = cluster::replay(&loaded, &machine, placement, |_, _| 1e-5).unwrap();

    assert_eq!(live.finish_times, replayed.finish_times);
    assert_eq!(live.wait_times, replayed.wait_times);
}

#[test]
fn timing_logs_parse_for_both_figure2_columns() {
    let input = CgyroInput::nl03c_like();
    let machine = MachineModel::frontier_like();
    let policy = cluster::SchedulePolicy::production();
    let cgp = cluster::plan(&input, 1, 32, &machine).unwrap();
    let xgp = cluster::plan(&input, 8, 32, &machine).unwrap();
    let cg = cluster::simulate_cgyro_sequential(&input, cgp.grid, 8, 32, &machine, &policy);
    let xg = cluster::simulate_xgyro(&input, xgp.grid, 8, 32, &machine, &policy);
    for scenario in [&cg, &xg] {
        let log = cluster::cgyro_timing_log(scenario, 3, 27.0);
        let totals = cluster::parse_timing_totals(&log);
        assert_eq!(totals.len(), 3);
        for t in &totals {
            assert!((t - scenario.total()).abs() < 0.05 * scenario.total());
        }
    }
    // The two logs must tell the paper's story: XGYRO total below the
    // sequential sum.
    assert!(xg.total() < cg.total());
}

#[test]
fn em_shaped_campaign_histories_roundtrip_csv() {
    // EM + shaped geometry + ensemble + CSV: every extension at once.
    let mut base = CgyroInput::test_small();
    base.beta_e = 0.01;
    base.kappa = 1.3;
    base.delta = 0.15;
    base.steps_per_report = 5;
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(2, 1));
    let (_, histories) = xgyro_repro::xgyro::run_xgyro_with_history(&cfg, 3);
    for hist in &histories {
        assert_eq!(hist.len(), 3);
        let csv = hist.to_csv();
        let back = History::from_csv(&csv).unwrap();
        assert_eq!(back.len(), hist.len());
        for (a, b) in hist.entries().iter().zip(back.entries()) {
            // The CSV keeps 9 significant digits.
            assert!(
                (a.field_energy - b.field_energy).abs()
                    <= 1e-8 * (1.0 + a.field_energy.abs())
            );
        }
    }
}

#[test]
fn campaign_optimizer_agrees_with_manual_forecast() {
    // The optimizer's node-hours for each k must equal batches × the
    // simulate_xgyro forecast — no hidden factors.
    let input = CgyroInput::nl03c_like();
    let machine = MachineModel::frontier_like();
    let policy = cluster::SchedulePolicy::production();
    let reports = 4;
    let plan = cluster::optimize_campaign(&input, 8, 32, reports, &machine, &policy).unwrap();
    for opt in &plan.options {
        let p = cluster::plan(&input, opt.k, 32, &machine).unwrap();
        let forecast = cluster::simulate_xgyro(&input, p.grid, opt.k, 32, &machine, &policy);
        let manual =
            opt.batches as f64 * forecast.total() * reports as f64 * 32.0 / 3600.0;
        assert!(
            (opt.node_hours - manual).abs() < 1e-9 * manual,
            "k={}: {} vs {}",
            opt.k,
            opt.node_hours,
            manual
        );
    }
}
