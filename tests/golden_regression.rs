//! Golden-trajectory regression: pinned diagnostic values for the preset
//! decks. These catch unintended numerical changes (a sign flip in a
//! stencil, a reordered reduction, a changed coefficient) that all other
//! tests — which compare implementations *against each other* — would
//! miss, because every implementation would drift together.
//!
//! If a deliberate physics/numerics change lands, regenerate with:
//! `cargo test -p xgyro-repro --test golden_regression -- --nocapture`
//! (the failing assertion prints the measured values).

use xg_sim::{serial_simulation, CgyroInput};

/// Relative tolerance: golden values are recorded to ~10 digits; platform
/// libm differences stay far below this.
const RTOL: f64 = 1e-8;

fn close(got: f64, want: f64, what: &str) {
    assert!(
        (got - want).abs() <= RTOL * (1.0 + want.abs()),
        "{what}: got {got:.12e}, golden {want:.12e}"
    );
}

#[test]
fn golden_small_deck_10_steps() {
    let input = CgyroInput::test_small();
    let mut sim = serial_simulation(&input);
    sim.run_steps(10);
    let d = sim.diagnostics();
    println!(
        "measured: field_energy={:.12e} heat_flux={:.12e} h_norm2={:.12e}",
        d.field_energy, d.heat_flux, d.h_norm2
    );
    close(d.field_energy, GOLDEN_SMALL.0, "field_energy");
    close(d.heat_flux, GOLDEN_SMALL.1, "heat_flux");
    close(d.h_norm2, GOLDEN_SMALL.2, "h_norm2");
}

#[test]
fn golden_medium_deck_5_steps() {
    let input = CgyroInput::test_medium();
    let mut sim = serial_simulation(&input);
    sim.run_steps(5);
    let d = sim.diagnostics();
    println!(
        "measured: field_energy={:.12e} heat_flux={:.12e} h_norm2={:.12e}",
        d.field_energy, d.heat_flux, d.h_norm2
    );
    close(d.field_energy, GOLDEN_MEDIUM.0, "field_energy");
    close(d.heat_flux, GOLDEN_MEDIUM.1, "heat_flux");
    close(d.h_norm2, GOLDEN_MEDIUM.2, "h_norm2");
}

#[test]
fn golden_em_shaped_deck_5_steps() {
    // Electromagnetic + shaped-geometry configuration: anchors the A∥ and
    // Miller-shaping code paths.
    let mut input = CgyroInput::test_small();
    input.beta_e = 0.01;
    input.kappa = 1.4;
    input.delta = 0.2;
    let mut sim = serial_simulation(&input);
    sim.run_steps(5);
    let d = sim.diagnostics();
    println!(
        "measured: field_energy={:.12e} heat_flux={:.12e} h_norm2={:.12e}",
        d.field_energy, d.heat_flux, d.h_norm2
    );
    close(d.field_energy, GOLDEN_EM_SHAPED.0, "field_energy");
    close(d.heat_flux, GOLDEN_EM_SHAPED.1, "heat_flux");
    close(d.h_norm2, GOLDEN_EM_SHAPED.2, "h_norm2");
}

// Golden values recorded from the reference implementation (see module
// docs for the regeneration procedure).
const GOLDEN_SMALL: (f64, f64, f64) =
    (3.465762975820e-5, 4.038833772074e-6, 8.477427960119e-4);
const GOLDEN_MEDIUM: (f64, f64, f64) =
    (8.280195299827e-5, 3.469928111349e-5, 1.777685022687e-2);
const GOLDEN_EM_SHAPED: (f64, f64, f64) =
    (3.243005566617e-5, -3.357274549809e-7, 9.145370594168e-4);
