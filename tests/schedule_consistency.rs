//! The symbolic performance schedule and the functional runner must agree
//! on the communication structure: operation counts and per-operation byte
//! volumes. This pins the performance model to the real code rather than
//! to assumptions.

use xg_comm::OpKind;
use xg_sim::CgyroInput;
use xg_tensor::{Decomp1D, ProcGrid};
use xgyro_repro::cluster::SchedulePolicy;
use xgyro_repro::xgyro::{gradient_sweep, run_xgyro};

#[test]
fn functional_trace_matches_mini_schedule_counts() {
    let mut base = CgyroInput::test_small();
    base.nonlinear_coupling = 0.1; // nl path active
    let grid = ProcGrid::new(2, 2);
    let k = 2;
    let steps = 3;
    let cfg = gradient_sweep(&base, k, grid);
    let outcome = run_xgyro(&cfg, steps);
    let policy = SchedulePolicy::mini();
    let dims = base.dims();

    let trace = &outcome.traces[0]; // rank 0: (sim 0, i1 0, i2 0)
    let nv_loc = Decomp1D::new(dims.nv, grid.n1).count(0);
    let nt_loc = Decomp1D::new(dims.nt, grid.n2).count(0);

    // str AllReduce: fused reductions × stages × steps, each carrying
    // `moments_per_reduction` packed nc·nt_loc moment buffers.
    let str_ar: Vec<_> = trace
        .iter()
        .filter(|r| r.op == OpKind::AllReduce && r.phase == "str")
        .collect();
    assert_eq!(
        str_ar.len(),
        policy.moment_reductions_per_stage * policy.rk_stages * steps,
        "str AllReduce count"
    );
    for r in &str_ar {
        assert_eq!(
            r.bytes,
            (dims.nc * nt_loc * policy.moments_per_reduction * 16) as u64,
            "fused moment buffer bytes"
        );
        assert_eq!(r.participants, grid.n1);
    }

    // nl AllToAll: 2 per round-trip × round-trips/step × steps, each the
    // full local state.
    let nl_a2a: Vec<_> = trace
        .iter()
        .filter(|r| r.op == OpKind::AllToAll && r.phase == "nl")
        .collect();
    assert_eq!(
        nl_a2a.len(),
        2 * policy.nl_roundtrips_per_step * steps,
        "nl AllToAll count"
    );
    let state_bytes = (dims.nc * nv_loc * nt_loc * 16) as u64;
    for r in &nl_a2a {
        assert_eq!(r.bytes, state_bytes, "nl transpose volume");
        assert_eq!(r.participants, grid.n2);
    }

    // coll AllToAll: 2 per round-trip × steps on the ensemble communicator.
    let coll_a2a: Vec<_> = trace
        .iter()
        .filter(|r| r.op == OpKind::AllToAll && r.phase == "coll")
        .collect();
    assert_eq!(coll_a2a.len(), 2 * policy.coll_roundtrips_per_step * steps);
    for r in &coll_a2a {
        assert_eq!(r.bytes, state_bytes, "coll transpose volume");
        assert_eq!(r.participants, k * grid.n1);
    }
}

#[test]
fn linear_run_produces_no_nl_traffic() {
    let mut base = CgyroInput::test_small();
    base.nonlinear_coupling = 0.0;
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(2, 2));
    let outcome = run_xgyro(&cfg, 2);
    for trace in &outcome.traces {
        assert!(
            !trace.iter().any(|r| r.phase == "nl" && r.op == OpKind::AllToAll),
            "linear runs must skip the nl transposes entirely"
        );
    }
}

#[test]
fn gradient_sweep_respects_base_cadence() {
    // gradient_sweep must not alter steps_per_report (the ensemble
    // admission requires uniform cadence).
    let base = CgyroInput::test_medium();
    let cfg = gradient_sweep(&base, 3, ProcGrid::new(1, 1));
    for m in cfg.members() {
        assert_eq!(m.steps_per_report, base.steps_per_report);
    }
}
