//! End-to-end pipeline across every crate: plan a campaign, execute it
//! functionally, account its traffic with the cost model, and check the
//! pieces agree with each other.

use xgyro_repro::cluster;
use xgyro_repro::costmodel::{trace_breakdown, MachineModel, Placement};
use xgyro_repro::sim::CgyroInput;
use xgyro_repro::tensor::ProcGrid;
use xgyro_repro::xgyro::{gradient_sweep, run_cgyro_baseline, run_xgyro};

#[test]
fn campaign_pipeline_hangs_together() {
    // 1. Plan: a small deck on the small-cluster model.
    let input = CgyroInput::test_medium();
    let machine = MachineModel::small_cluster();
    let plan = cluster::min_nodes(&input, 1, &machine, 16).expect("deck fits");
    assert!(plan.feasible());

    // 2. Execute functionally. The planner may legitimately pick n1 = 1
    //    (toroidal-only split) for tiny decks; force a grid that actually
    //    exercises the nv communicator so there is traffic to account.
    let grid = if plan.grid.n1 > 1 && plan.grid.size() <= 8 {
        plan.grid
    } else {
        ProcGrid::new(2, 2)
    };
    let cfg = gradient_sweep(&input, 2, grid);
    let xg = run_xgyro(&cfg, 2);
    let cg = run_cgyro_baseline(&cfg, 2);
    for (x, c) in xg.sims.iter().zip(&cg.sims) {
        assert_eq!(x.h.as_slice(), c.h.as_slice());
    }

    // 3. Account the functional traces with the cost model: XGYRO's
    //    str-phase AllReduce must be priced at most as high as CGYRO's
    //    (fewer participants, same bytes).
    let placement = Placement { ranks_per_node: machine.ranks_per_node };
    let xg_b = trace_breakdown(&machine, placement, &xg.traces[0]);
    let cg_b = trace_breakdown(&machine, placement, &cg.traces[0]);
    let xg_str = xg_b.get("str", "comm:AllReduce");
    let cg_str = cg_b.get("str", "comm:AllReduce");
    assert!(xg_str > 0.0 && cg_str > 0.0);
    assert!(
        xg_str <= cg_str + 1e-12,
        "ensemble AllReduce must not cost more: {xg_str} vs {cg_str}"
    );
}

#[test]
fn planner_grid_runs_functionally() {
    // Whatever grid the planner picks for a small deck must actually work
    // in the functional runner and match the serial reference.
    let input = CgyroInput::test_small();
    let machine = MachineModel::small_cluster();
    let plan = cluster::plan(&input, 1, 1, &machine).expect("valid plan on one node");
    let grid = plan.grid;
    assert!(grid.size() <= 8, "small-cluster node has 4 ranks");
    let cfg = xgyro_repro::xgyro::EnsembleConfig::new(vec![input.clone()], grid).unwrap();
    let xg = run_xgyro(&cfg, 3);
    let mut serial = xgyro_repro::sim::serial_simulation(&input);
    serial.run_steps(3);
    let dev = xgyro_repro::linalg::norms::max_deviation(
        serial.h().as_slice(),
        xg.sims[0].h.as_slice(),
    );
    assert!(dev < 1e-11, "deviation {dev}");
}

#[test]
fn memory_law_matches_functional_allocation() {
    // The analytic memory law and the bytes actually held by the
    // functional runners must agree exactly for cmat.
    let input = CgyroInput::test_small();
    let grid = ProcGrid::new(2, 1);
    let k = 4;
    let cfg = gradient_sweep(&input, k, grid);
    let xg = run_xgyro(&cfg, 1);
    let law = xgyro_repro::xgyro::cmat_memory_law(&cfg);
    for sim in &xg.sims {
        for &b in &sim.cmat_bytes_per_rank {
            assert_eq!(b, law.xgyro_per_rank, "functional allocation obeys the law");
        }
    }
    // And the planner's inventory uses the same constant-tensor size law.
    let inv = cluster::rank_inventory(&input, grid, k * grid.n1);
    let cmat = cluster::total_bytes(&inv, Some(cluster::BufferCategory::Constant));
    assert_eq!(cmat, law.xgyro_per_rank);
}

#[test]
fn figure2_pipeline_is_consistent_with_planner() {
    // The F2 scenario must use plans the planner itself considers valid
    // and feasible.
    let input = CgyroInput::nl03c_like();
    let machine = MachineModel::frontier_like();
    let cg = cluster::plan(&input, 1, 32, &machine).unwrap();
    let xg = cluster::plan(&input, 8, 32, &machine).unwrap();
    assert!(cg.feasible() && xg.feasible());
    assert_eq!(cg.grid.size() , 256);
    assert_eq!(xg.grid.size() * 8, 256);
    // Same toroidal split in both (the paper keeps nt fixed).
    assert_eq!(cg.grid.n2, xg.grid.n2);
    // AllReduce participants drop exactly k-fold.
    assert_eq!(cg.grid.n1, 8 * xg.grid.n1);
}
