//! Failure injection and negative paths: the system must fail loudly and
//! informatively, never hang or silently corrupt.

use xgyro_repro::comm::World;
use xgyro_repro::sim::CgyroInput;
use xgyro_repro::tensor::ProcGrid;
use xgyro_repro::xgyro::{EnsembleConfig, EnsembleError};

#[test]
#[should_panic(expected = "panicked")]
fn rank_panic_mid_collective_aborts_cleanly() {
    // One rank dies between collectives; the others are blocked inside an
    // AllReduce. Poisoning must wake them and surface the root cause
    // instead of deadlocking the test suite.
    World::new(4).run(|c| {
        if c.rank() == 3 {
            panic!("injected failure on rank 3");
        }
        let mut v = vec![0.0f64; 1024];
        c.all_reduce_sum_f64(&mut v);
        c.all_reduce_sum_f64(&mut v);
    });
}

#[test]
#[should_panic(expected = "length mismatch")]
fn mismatched_allreduce_lengths_detected() {
    World::new(2).run(|c| {
        let mut v = vec![0.0f64; if c.rank() == 0 { 8 } else { 9 }];
        c.all_reduce_sum_f64(&mut v);
    });
}

#[test]
fn ensemble_admission_rejects_every_cmat_dependency_change() {
    let base = CgyroInput::test_small();
    let grid = ProcGrid::new(1, 1);
    type Mutation = Box<dyn Fn(&mut CgyroInput)>;
    let mutations: Vec<(&str, Mutation)> = vec![
        ("nu_ee", Box::new(|i: &mut CgyroInput| i.nu_ee *= 2.0)),
        ("n_xi", Box::new(|i: &mut CgyroInput| i.n_xi += 2)),
        ("n_energy", Box::new(|i: &mut CgyroInput| i.n_energy += 1)),
        ("n_radial", Box::new(|i: &mut CgyroInput| i.n_radial *= 2)),
        ("n_toroidal", Box::new(|i: &mut CgyroInput| i.n_toroidal += 1)),
        ("delta_t", Box::new(|i: &mut CgyroInput| i.delta_t *= 0.5)),
        ("q", Box::new(|i: &mut CgyroInput| i.q += 0.5)),
        ("shear", Box::new(|i: &mut CgyroInput| i.shear += 0.3)),
        ("ky_min", Box::new(|i: &mut CgyroInput| i.ky_min *= 1.5)),
        ("species mass", Box::new(|i: &mut CgyroInput| i.species[0].mass *= 2.0)),
        ("species temp", Box::new(|i: &mut CgyroInput| i.species[1].temp = 1.7)),
        ("species dens", Box::new(|i: &mut CgyroInput| i.species[0].dens = 0.9)),
    ];
    for (name, mutate) in mutations {
        let mut other = base.clone();
        mutate(&mut other);
        let err = EnsembleConfig::new(vec![base.clone(), other], grid)
            .expect_err(&format!("{name} change must be rejected"));
        assert!(
            matches!(err, EnsembleError::CmatKeyMismatch { index: 1, .. }),
            "{name}: wrong error {err:?}"
        );
    }
}

#[test]
fn ensemble_admission_accepts_every_sweep_parameter_change() {
    let base = CgyroInput::test_small();
    let grid = ProcGrid::new(1, 1);
    type Mutation = Box<dyn Fn(&mut CgyroInput)>;
    let mutations: Vec<(&str, Mutation)> = vec![
        ("rln", Box::new(|i: &mut CgyroInput| i.species[0].rln = 9.0)),
        ("rlt", Box::new(|i: &mut CgyroInput| i.species[1].rlt = 0.0)),
        ("seed", Box::new(|i: &mut CgyroInput| i.seed = 777)),
        ("nonlinear_coupling", Box::new(|i: &mut CgyroInput| i.nonlinear_coupling = 0.4)),
        ("upwind_diss", Box::new(|i: &mut CgyroInput| i.upwind_diss = 0.02)),
    ];
    for (name, mutate) in mutations {
        let mut other = base.clone();
        mutate(&mut other);
        EnsembleConfig::new(vec![base.clone(), other], grid)
            .unwrap_or_else(|e| panic!("{name} sweep must be accepted: {e}"));
    }
}

#[test]
fn mixed_reporting_cadence_rejected_despite_matching_cmat() {
    // steps_per_report is not a cmat input (sharing would be fine) but the
    // shared coll exchange steps the whole ensemble in lockstep, so mixed
    // cadences are refused at admission with a dedicated error.
    let base = CgyroInput::test_small();
    let mut other = base.clone();
    other.steps_per_report = 99;
    assert_eq!(base.cmat_key(), other.cmat_key(), "cadence is not a cmat input");
    let err = EnsembleConfig::new(vec![base, other], ProcGrid::new(1, 1)).unwrap_err();
    assert!(
        matches!(err, EnsembleError::CadenceMismatch { index: 1, expected: 10, found: 99 }),
        "wrong error: {err:?}"
    );
    assert!(err.to_string().contains("lockstep"));
}

#[test]
fn invalid_decks_rejected_before_any_allocation() {
    let mut bad = CgyroInput::test_small();
    bad.n_theta = 3; // below stencil width
    assert!(bad.validate().is_err());
    let err = EnsembleConfig::new(vec![bad], ProcGrid::new(1, 1)).unwrap_err();
    assert!(matches!(err, EnsembleError::InvalidMember { .. }));
}

#[test]
fn planner_returns_none_not_nonsense_for_impossible_jobs() {
    use xgyro_repro::costmodel::MachineModel;
    let input = CgyroInput::nl03c_like();
    let machine = MachineModel::frontier_like();
    // 3 sims cannot split 8-rank nodes evenly at small node counts where
    // ranks % k != 0.
    assert!(xgyro_repro::cluster::plan(&input, 3, 1, &machine).is_none());
    // A deck too big for the search bound reports None rather than a bogus
    // plan.
    let mut huge = input.clone();
    huge.n_radial *= 64;
    assert!(xgyro_repro::cluster::min_nodes(&huge, 1, &machine, 8).is_none());
}
