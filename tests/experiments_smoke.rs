//! Every paper experiment must run and report its confirmation line.
//! (The experiment functions contain their own hard assertions; this test
//! additionally pins the key substrings of each report.)

#[test]
fn f1_confirms_communicator_reuse() {
    let r = xgyro_repro::bench::figure1();
    assert!(r.contains("CONFIRMED"), "{r}");
    assert!(r.contains("'nv'"));
}

#[test]
fn f3_confirms_communicator_separation() {
    let r = xgyro_repro::bench::figure3();
    assert!(r.contains("CONFIRMED"), "{r}");
    assert!(r.contains("coll-ens"));
}

#[test]
fn f2_reports_speedup_in_paper_band() {
    let r = xgyro_repro::bench::figure2();
    assert!(r.contains("speedup"), "{r}");
    // Extract the speedup line and check the value band.
    let line = r.lines().find(|l| l.contains("speedup (total)")).unwrap();
    let v: f64 = line
        .split(':')
        .nth(1)
        .unwrap()
        .trim()
        .trim_end_matches('x')
        .parse()
        .unwrap();
    assert!((1.2..2.0).contains(&v), "speedup {v} out of paper band (1.5x)");
}

#[test]
fn memory_claims_report_10x_band() {
    let r = xgyro_repro::bench::memory_claims();
    // Every strong-scaling row must report a ratio near 10x.
    let ratios: Vec<f64> = r
        .lines()
        .filter(|l| l.trim_end().ends_with('x') && l.contains('.'))
        .filter_map(|l| l.split_whitespace().last()?.trim_end_matches('x').parse().ok())
        .collect();
    assert!(!ratios.is_empty());
    for v in ratios {
        assert!((8.0..14.0).contains(&v), "ratio {v} not ≈10x");
    }
}

#[test]
fn node_claims_report_32_node_minimum() {
    let r = xgyro_repro::bench::node_claims();
    let single = r.lines().find(|l| l.trim().starts_with("1 ")).unwrap();
    assert!(single.contains("32"), "single-sim minimum must be 32 nodes: {single}");
    let eight = r.lines().find(|l| l.trim().starts_with("8 ")).unwrap();
    assert!(eight.contains("32"), "k=8 must fit on 32 nodes: {eight}");
}

#[test]
fn correctness_claims_hold() {
    let r = xgyro_repro::bench::correctness_claims();
    assert!(r.contains("mismatched trajectories: 0"), "{r}");
    assert!(r.contains("exactly 1/k"));
}

#[test]
fn sweep_shows_monotone_speedup() {
    let r = xgyro_repro::bench::ensemble_sweep_claims();
    let speedups: Vec<f64> = r
        .lines()
        .filter(|l| l.contains("yes"))
        .filter_map(|l| {
            l.split_whitespace()
                .find(|t| t.ends_with('x'))?
                .trim_end_matches('x')
                .parse()
                .ok()
        })
        .collect();
    assert!(speedups.len() >= 4, "{r}");
    for w in speedups.windows(2) {
        assert!(w[1] >= w[0] - 1e-9, "speedup must grow with k: {speedups:?}");
    }
    assert!(r.contains("NO"), "k=16 must be reported infeasible");
}

#[test]
fn ablations_run() {
    let r = xgyro_repro::bench::ablations();
    assert!(r.contains("feasible: false"), "replicated cmat must not fit: {r}");
    assert!(r.contains("bitwise identical: true"));
}

#[test]
fn scaling_shows_efficiency_decay() {
    let r = xgyro_repro::bench::scaling_claims();
    assert!(r.contains("efficiency"), "{r}");
    // The 32-node row is the baseline with efficiency 1.00.
    assert!(r.contains("1.00"));
}

#[test]
fn machine_transfer_reports_all_presets() {
    let r = xgyro_repro::bench::machine_transfer_claims();
    for name in ["frontier-like", "perlmutter-like", "slow-fabric"] {
        assert!(r.contains(name), "missing {name}: {r}");
    }
    // Every evaluated machine shows a >1x speedup.
    let speedups: Vec<f64> = r
        .lines()
        .filter_map(|l| {
            let t = l.split_whitespace().rev().nth(1)?;
            t.strip_suffix('x')?.parse().ok()
        })
        .collect();
    assert!(speedups.len() >= 3, "{r}");
    assert!(speedups.iter().all(|&s| s > 1.0), "{speedups:?}");
}
