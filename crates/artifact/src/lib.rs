//! xg-artifact: the content-addressed result store under the serving path.
//!
//! The paper's premise is that ensemble members sharing the collisional
//! constant tensor should never pay for the same work twice. `xg-serve`
//! shares cmat *within* a batch; this crate extends the same idea *across*
//! campaigns and daemon lifetimes: every completed job is published as a
//! durable, reproducible artifact keyed by a canonical [`DeckHash`], and a
//! re-submitted byte-identical deck is served from the store without
//! executing a single simulation step.
//!
//! Three layers:
//!
//! * [`deck_hash`] — the canonical semantic identity of a submission:
//!   FNV-1a over the *parsed* deck (so formatting, key order and comments
//!   cannot split the cache) plus the requested step count, deliberately
//!   excluding execution knobs that cannot change the result bits
//!   (`REDUCE_ALGO`, species display names) — the same exclusion discipline
//!   as [`xg_sim::CgyroInput::cmat_key`], extended to *every* field the
//!   result depends on (gradients, seed, cadence, dissipation, …).
//! * [`Manifest`] — one completed run's reproducibility record: deck hash,
//!   topology, kernel/algorithm choices, per-phase timings, output digests
//!   and content-addressed object pointers, rendered as hand-rolled JSON
//!   (the workspace deliberately has no JSON dependency).
//! * [`ArtifactStore`] — the on-disk layout
//!   (`objects/<prefix>/<hash>` blobs + `manifests/<deck-hash>.json`),
//!   with atomic tmp-write + rename commits, access-time tracking, pinning
//!   for golden manifests, and a size-budgeted LRU garbage collector.

mod deck_hash;
mod json;
mod manifest;
mod store;

pub use deck_hash::{deck_hash, DeckHash};
pub use json::JsonValue;
pub use manifest::{Manifest, MANIFEST_SCHEMA};
pub use store::{ArtifactStore, GcReport, ObjectId, StoreError, StoreStats};

/// 64-bit FNV-1a over a byte slice — the workspace's standard content hash
/// (same constants as `xg_serve::journal::fnv1a` and `CgyroInput::cmat_key`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}
