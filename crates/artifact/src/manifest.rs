//! The reproducibility manifest: one completed run's durable record.
//!
//! A manifest is the bridge between a [`DeckHash`] and everything needed to
//! (a) serve the result again without executing a step, and (b) audit or
//! replay how it was produced: topology, kernel/algorithm choices, per-phase
//! timings, output digests, and content-addressed object pointers.
//!
//! Rendered as hand-rolled JSON with a fixed key order (the repo-wide
//! convention — see `xg_serve::metrics`). All 64-bit digests are hex
//! *strings*, never numbers: JSON numbers are f64 and would corrupt them.

use crate::deck_hash::DeckHash;
use crate::json::{escape, JsonValue};
use crate::store::ObjectId;

/// Schema identifier written into (and required from) every manifest.
pub const MANIFEST_SCHEMA: &str = "xg-artifact-manifest-v1";

/// One completed run's reproducibility record.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Canonical semantic identity of the submission this answers.
    pub deck_hash: DeckHash,
    /// Wall-clock publication time, unix microseconds.
    pub created_unix_us: u64,
    /// Free-form submission tag (empty if none).
    pub tag: String,
    /// Collision-tensor sharing key of the deck (`CgyroInput::cmat_key`).
    pub cmat_key: u64,
    /// Requested total step count.
    pub steps: u64,
    /// Grid shape: `[n_radial, n_theta, n_xi, n_energy, n_toroidal]`.
    pub grid: [u64; 5],
    /// Number of kinetic species.
    pub n_species: u64,
    /// Ensemble width of the batch this member executed in. Provenance
    /// only — deliberately *not* part of the deck hash (bitwise-neutral).
    pub batch_k: u64,
    /// Collision-dimension cut layout label (e.g. `"even"`, `"ragged"`).
    pub coll_cuts: String,
    /// Collision kernel variant the run selected (empty if unrecorded).
    pub kernel: String,
    /// Reduce algorithm label. Provenance only — excluded from the hash.
    pub reduce_algo: String,
    /// Machine model the server was configured with.
    pub machine: String,
    /// Per-phase elapsed time, microseconds, in execution order.
    pub phase_us: Vec<(String, u64)>,
    /// Steps actually executed (== `steps` for a completed run).
    pub steps_done: u64,
    /// FNV-1a digest of the final distribution tensor's LE bytes.
    pub h_hash: u64,
    /// Bit patterns of the final `[time, field_energy, heat_flux, h_norm2]`.
    pub diag_bits: [u64; 4],
    /// Canonical deck text object.
    pub deck_object: ObjectId,
    /// Encoded final-state object (tensor + diagnostics + steps).
    pub outcome_object: ObjectId,
    /// Communication trace CSV object, when the run captured one.
    pub trace_object: Option<ObjectId>,
    /// Size of the outcome object in bytes (what a cache hit saves).
    pub outcome_bytes: u64,
}

fn hex(v: u64) -> String {
    format!("{v:016x}")
}

fn parse_hex(v: Option<&JsonValue>, what: &str) -> Result<u64, String> {
    v.and_then(JsonValue::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| format!("manifest: bad or missing hex field '{what}'"))
}

fn parse_u64(v: Option<&JsonValue>, what: &str) -> Result<u64, String> {
    v.and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("manifest: bad or missing integer field '{what}'"))
}

fn parse_str_field(v: Option<&JsonValue>, what: &str) -> Result<String, String> {
    v.and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("manifest: bad or missing string field '{what}'"))
}

impl Manifest {
    /// Render as the fixed-key-order JSON document the store persists.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{MANIFEST_SCHEMA}\",\n"));
        s.push_str(&format!("  \"deck_hash\": \"{}\",\n", self.deck_hash));
        s.push_str(&format!("  \"created_unix_us\": {},\n", self.created_unix_us));
        s.push_str(&format!("  \"tag\": \"{}\",\n", escape(&self.tag)));
        s.push_str(&format!("  \"cmat_key\": \"{}\",\n", hex(self.cmat_key)));
        s.push_str(&format!("  \"steps\": {},\n", self.steps));
        s.push_str(&format!(
            "  \"grid\": {{\"n_radial\": {}, \"n_theta\": {}, \"n_xi\": {}, \"n_energy\": {}, \"n_toroidal\": {}, \"n_species\": {}}},\n",
            self.grid[0], self.grid[1], self.grid[2], self.grid[3], self.grid[4], self.n_species
        ));
        s.push_str(&format!(
            "  \"topology\": {{\"batch_k\": {}, \"coll_cuts\": \"{}\", \"machine\": \"{}\"}},\n",
            self.batch_k,
            escape(&self.coll_cuts),
            escape(&self.machine)
        ));
        s.push_str(&format!(
            "  \"algo\": {{\"kernel\": \"{}\", \"reduce_algo\": \"{}\"}},\n",
            escape(&self.kernel),
            escape(&self.reduce_algo)
        ));
        s.push_str("  \"phase_us\": {");
        for (i, (name, us)) in self.phase_us.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {us}", escape(name)));
        }
        s.push_str("},\n");
        s.push_str(&format!(
            "  \"summary\": {{\"steps_done\": {}, \"h_hash\": \"{}\", \"diag_bits\": [\"{}\", \"{}\", \"{}\", \"{}\"]}},\n",
            self.steps_done,
            hex(self.h_hash),
            hex(self.diag_bits[0]),
            hex(self.diag_bits[1]),
            hex(self.diag_bits[2]),
            hex(self.diag_bits[3])
        ));
        let trace = match self.trace_object {
            Some(id) => format!("\"{id}\""),
            None => "null".into(),
        };
        s.push_str(&format!(
            "  \"objects\": {{\"deck\": \"{}\", \"outcome\": \"{}\", \"trace\": {trace}}},\n",
            self.deck_object, self.outcome_object
        ));
        s.push_str(&format!("  \"outcome_bytes\": {}\n", self.outcome_bytes));
        s.push_str("}\n");
        s
    }

    /// Parse a manifest document, rejecting unknown schemas outright.
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let v = JsonValue::parse(text)?;
        let schema = parse_str_field(v.get("schema"), "schema")?;
        if schema != MANIFEST_SCHEMA {
            return Err(format!(
                "manifest: schema '{schema}' is not '{MANIFEST_SCHEMA}'"
            ));
        }
        let deck_hash: DeckHash = parse_str_field(v.get("deck_hash"), "deck_hash")?
            .parse()
            .map_err(|e| format!("manifest: {e}"))?;
        let grid_obj = v.get("grid").ok_or("manifest: missing 'grid'")?;
        let grid = [
            parse_u64(grid_obj.get("n_radial"), "grid.n_radial")?,
            parse_u64(grid_obj.get("n_theta"), "grid.n_theta")?,
            parse_u64(grid_obj.get("n_xi"), "grid.n_xi")?,
            parse_u64(grid_obj.get("n_energy"), "grid.n_energy")?,
            parse_u64(grid_obj.get("n_toroidal"), "grid.n_toroidal")?,
        ];
        let n_species = parse_u64(grid_obj.get("n_species"), "grid.n_species")?;
        let topo = v.get("topology").ok_or("manifest: missing 'topology'")?;
        let algo = v.get("algo").ok_or("manifest: missing 'algo'")?;
        let phase_us = match v.get("phase_us") {
            Some(JsonValue::Obj(fields)) => fields
                .iter()
                .map(|(k, pv)| {
                    pv.as_u64()
                        .map(|us| (k.clone(), us))
                        .ok_or_else(|| format!("manifest: bad phase_us entry '{k}'"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("manifest: missing 'phase_us'".into()),
        };
        let summary = v.get("summary").ok_or("manifest: missing 'summary'")?;
        let diag_arr = summary
            .get("diag_bits")
            .and_then(JsonValue::as_arr)
            .filter(|a| a.len() == 4)
            .ok_or("manifest: bad 'summary.diag_bits'")?;
        let mut diag_bits = [0u64; 4];
        for (i, d) in diag_arr.iter().enumerate() {
            diag_bits[i] = parse_hex(Some(d), "summary.diag_bits[..]")?;
        }
        let objects = v.get("objects").ok_or("manifest: missing 'objects'")?;
        let trace_object = match objects.get("trace") {
            Some(JsonValue::Null) | None => None,
            other => Some(ObjectId(parse_hex(other, "objects.trace")?)),
        };
        Ok(Manifest {
            deck_hash,
            created_unix_us: parse_u64(v.get("created_unix_us"), "created_unix_us")?,
            tag: parse_str_field(v.get("tag"), "tag")?,
            cmat_key: parse_hex(v.get("cmat_key"), "cmat_key")?,
            steps: parse_u64(v.get("steps"), "steps")?,
            grid,
            n_species,
            batch_k: parse_u64(topo.get("batch_k"), "topology.batch_k")?,
            coll_cuts: parse_str_field(topo.get("coll_cuts"), "topology.coll_cuts")?,
            kernel: parse_str_field(algo.get("kernel"), "algo.kernel")?,
            reduce_algo: parse_str_field(algo.get("reduce_algo"), "algo.reduce_algo")?,
            machine: parse_str_field(topo.get("machine"), "topology.machine")?,
            phase_us,
            steps_done: parse_u64(summary.get("steps_done"), "summary.steps_done")?,
            h_hash: parse_hex(summary.get("h_hash"), "summary.h_hash")?,
            diag_bits,
            deck_object: ObjectId(parse_hex(objects.get("deck"), "objects.deck")?),
            outcome_object: ObjectId(parse_hex(objects.get("outcome"), "objects.outcome")?),
            trace_object,
            outcome_bytes: parse_u64(v.get("outcome_bytes"), "outcome_bytes")?,
        })
    }

    /// The bitwise result fingerprint in `xg-serve`'s summary form:
    /// `(steps_done, h_hash, diag_bits)` — comparable against a live run's
    /// `RESULT` line.
    pub fn summary(&self) -> (u64, u64, [u64; 4]) {
        (self.steps_done, self.h_hash, self.diag_bits)
    }

    /// Human-oriented field-by-field comparison for `xgq diff`: the names
    /// of every manifest field that differs (ignoring publication time).
    pub fn diff(&self, other: &Manifest) -> Vec<&'static str> {
        let mut out = Vec::new();
        let mut chk = |name, ne: bool| {
            if ne {
                out.push(name);
            }
        };
        chk("deck_hash", self.deck_hash != other.deck_hash);
        chk("tag", self.tag != other.tag);
        chk("cmat_key", self.cmat_key != other.cmat_key);
        chk("steps", self.steps != other.steps);
        chk("grid", self.grid != other.grid || self.n_species != other.n_species);
        chk("batch_k", self.batch_k != other.batch_k);
        chk("coll_cuts", self.coll_cuts != other.coll_cuts);
        chk("kernel", self.kernel != other.kernel);
        chk("reduce_algo", self.reduce_algo != other.reduce_algo);
        chk("machine", self.machine != other.machine);
        chk("steps_done", self.steps_done != other.steps_done);
        chk("h_hash", self.h_hash != other.h_hash);
        chk("diag_bits", self.diag_bits != other.diag_bits);
        chk("deck_object", self.deck_object != other.deck_object);
        chk("outcome_object", self.outcome_object != other.outcome_object);
        chk("trace_object", self.trace_object != other.trace_object);
        chk("outcome_bytes", self.outcome_bytes != other.outcome_bytes);
        out
    }
}

#[cfg(test)]
pub(crate) fn test_manifest() -> Manifest {
    Manifest {
        deck_hash: DeckHash(0x0123_4567_89ab_cdef),
        created_unix_us: 1_700_000_000_000_000,
        tag: "golden \"run\"".into(),
        cmat_key: 0xfeed_face_cafe_beef,
        steps: 40,
        grid: [8, 4, 8, 4, 2],
        n_species: 2,
        batch_k: 3,
        coll_cuts: "even".into(),
        kernel: "simd-tiled".into(),
        reduce_algo: "fused".into(),
        machine: "small_cluster".into(),
        phase_us: vec![("collide".into(), 1200), ("reduce".into(), 340)],
        steps_done: 40,
        h_hash: 0xaaaa_bbbb_cccc_dddd,
        diag_bits: [1, 2, 3, u64::MAX],
        deck_object: ObjectId(0x1111_2222_3333_4444),
        outcome_object: ObjectId(0x5555_6666_7777_8888),
        trace_object: Some(ObjectId(0x9999_aaaa_bbbb_cccc)),
        outcome_bytes: 65536,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_exactly() {
        let m = test_manifest();
        let text = m.to_json();
        assert_eq!(Manifest::from_json(&text).unwrap(), m);
        // Without a trace object the pointer is null, and still roundtrips.
        let mut no_trace = m.clone();
        no_trace.trace_object = None;
        assert_eq!(Manifest::from_json(&no_trace.to_json()).unwrap(), no_trace);
    }

    #[test]
    fn digests_are_hex_strings_not_numbers() {
        // u64::MAX survives — it would not survive an f64 round-trip.
        let m = test_manifest();
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.diag_bits[3], u64::MAX);
        let text = m.to_json();
        assert!(text.contains("\"cmat_key\": \"feedfacecafebeef\""), "{text}");
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let text = test_manifest().to_json().replace("manifest-v1", "manifest-v999");
        let err = Manifest::from_json(&text).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn diff_names_changed_fields_only() {
        let a = test_manifest();
        let mut b = a.clone();
        b.created_unix_us += 1; // publication time is not a difference
        assert!(a.diff(&b).is_empty());
        b.kernel = "scalar".into();
        b.h_hash ^= 1;
        assert_eq!(a.diff(&b), vec!["kernel", "h_hash"]);
    }
}
