//! The on-disk content-addressed store.
//!
//! Layout under the store root:
//!
//! ```text
//! objects/<2-hex-prefix>/<16-hex>   content-addressed blobs (FNV-1a of bytes)
//! manifests/<16-hex>.json           one manifest per deck hash
//! manifests/<16-hex>.atime          LRU sidecar: last-access unix-us, decimal
//! pins/<16-hex>                     marker: manifest exempt from GC
//! tmp/                              staging for atomic tmp-write + rename
//! ```
//!
//! Every commit is tmp-write + `rename` onto the final path, so readers
//! (and a daemon killed mid-publish) only ever observe absent-or-complete
//! files, never torn ones. Access times live in sidecar files rather than
//! filesystem metadata because `std` cannot portably set mtimes and many
//! deployments mount `noatime`.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::deck_hash::DeckHash;
use crate::fnv1a;
use crate::manifest::Manifest;

/// Content address of one blob: FNV-1a of its bytes, rendered as 16 hex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::str::FromStr for ObjectId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 16 {
            return Err(format!("'{s}': object ids are 16 hex digits"));
        }
        u64::from_str_radix(s, 16)
            .map(ObjectId)
            .map_err(|_| format!("'{s}': bad hex digits"))
    }
}

/// Store operation failures.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A stored file exists but does not decode (or its content hash lies).
    Corrupt(String),
    /// The requested object or manifest is not in the store.
    NotFound(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "artifact store io: {e}"),
            StoreError::Corrupt(m) => write!(f, "artifact store corrupt: {m}"),
            StoreError::NotFound(m) => write!(f, "artifact store: {m} not found"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Occupancy snapshot for metrics and `xgq gc` reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of published manifests.
    pub manifests: u64,
    /// Number of stored blobs.
    pub objects: u64,
    /// Total bytes across manifests and blobs (sidecars excluded).
    pub bytes: u64,
    /// Number of pinned manifests.
    pub pinned: u64,
}

/// What one [`ArtifactStore::gc`] pass removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Manifests evicted (oldest access first, pins skipped).
    pub evicted_manifests: u64,
    /// Blobs deleted because no surviving manifest references them.
    pub evicted_objects: u64,
    /// Bytes reclaimed.
    pub bytes_freed: u64,
    /// Store size after the pass (manifests + blobs).
    pub bytes_after: u64,
}

/// Handle to a store root. All methods take `&self` and commit atomically,
/// so a single instance can be shared across server threads.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    tmp_seq: AtomicU64,
}

fn now_unix_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

impl ArtifactStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<ArtifactStore, StoreError> {
        let root = root.into();
        for sub in ["objects", "manifests", "pins", "tmp"] {
            fs::create_dir_all(root.join(sub))?;
        }
        Ok(ArtifactStore { root, tmp_seq: AtomicU64::new(0) })
    }

    /// The store root this handle operates on.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn object_path(&self, id: ObjectId) -> PathBuf {
        let hex = format!("{id}");
        self.root.join("objects").join(&hex[..2]).join(&hex)
    }

    fn manifest_path(&self, hash: DeckHash) -> PathBuf {
        self.root.join("manifests").join(format!("{:016x}.json", hash.0))
    }

    fn atime_path(&self, hash: DeckHash) -> PathBuf {
        self.root.join("manifests").join(format!("{:016x}.atime", hash.0))
    }

    fn pin_path(&self, hash: DeckHash) -> PathBuf {
        self.root.join("pins").join(format!("{:016x}", hash.0))
    }

    /// Write `bytes` to a fresh tmp file, fsync, then rename onto `dest`.
    fn commit(&self, dest: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = self.root.join("tmp").join(format!(
            "{}.{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        if let Err(e) = fs::rename(&tmp, dest) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Store a blob, returning its content address. Idempotent: an object
    /// that already exists is not rewritten.
    pub fn put_object(&self, bytes: &[u8]) -> Result<ObjectId, StoreError> {
        let id = ObjectId(fnv1a(bytes));
        let dest = self.object_path(id);
        if dest.exists() {
            return Ok(id);
        }
        fs::create_dir_all(dest.parent().expect("object path has prefix dir"))?;
        self.commit(&dest, bytes)?;
        Ok(id)
    }

    /// Fetch a blob, verifying its content hash on the way out.
    pub fn get_object(&self, id: ObjectId) -> Result<Vec<u8>, StoreError> {
        let path = self.object_path(id);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotFound(format!("object {id}")));
            }
            Err(e) => return Err(e.into()),
        };
        if fnv1a(&bytes) != id.0 {
            return Err(StoreError::Corrupt(format!(
                "object {id} content does not match its address"
            )));
        }
        Ok(bytes)
    }

    /// Whether a blob with this address exists.
    pub fn has_object(&self, id: ObjectId) -> bool {
        self.object_path(id).exists()
    }

    /// Publish a manifest atomically, stamping its access time.
    pub fn publish(&self, manifest: &Manifest) -> Result<(), StoreError> {
        let hash = manifest.deck_hash;
        self.commit(&self.manifest_path(hash), manifest.to_json().as_bytes())?;
        // Best-effort sidecar: a missing atime just means "oldest" to GC.
        let _ = fs::write(self.atime_path(hash), now_unix_us().to_string());
        Ok(())
    }

    /// Look up a manifest by deck hash, refreshing its LRU access time on a
    /// hit. `Ok(None)` means a clean miss; decode failures are errors.
    pub fn lookup(&self, hash: DeckHash) -> Result<Option<Manifest>, StoreError> {
        let path = self.manifest_path(hash);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let m = Manifest::from_json(&text)
            .map_err(|e| StoreError::Corrupt(format!("manifest {hash}: {e}")))?;
        if m.deck_hash != hash {
            return Err(StoreError::Corrupt(format!(
                "manifest {hash} declares deck hash {}",
                m.deck_hash
            )));
        }
        let _ = fs::write(self.atime_path(hash), now_unix_us().to_string());
        Ok(Some(m))
    }

    /// Whether a manifest for this deck hash is published.
    pub fn contains(&self, hash: DeckHash) -> bool {
        self.manifest_path(hash).exists()
    }

    /// Pin a manifest so GC never evicts it (golden runs).
    pub fn pin(&self, hash: DeckHash) -> Result<(), StoreError> {
        if !self.contains(hash) {
            return Err(StoreError::NotFound(format!("manifest {hash}")));
        }
        fs::write(self.pin_path(hash), b"")?;
        Ok(())
    }

    /// Remove a pin (no-op if not pinned).
    pub fn unpin(&self, hash: DeckHash) -> Result<(), StoreError> {
        match fs::remove_file(self.pin_path(hash)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Whether a manifest is pinned.
    pub fn pinned(&self, hash: DeckHash) -> bool {
        self.pin_path(hash).exists()
    }

    /// All published deck hashes (unsorted).
    pub fn manifests(&self) -> Result<Vec<DeckHash>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join("manifests"))? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(hex) = name.strip_suffix(".json") {
                if let Ok(v) = u64::from_str_radix(hex, 16) {
                    out.push(DeckHash(v));
                }
            }
        }
        Ok(out)
    }

    fn file_size(path: &Path) -> u64 {
        fs::metadata(path).map(|m| m.len()).unwrap_or(0)
    }

    fn atime_of(&self, hash: DeckHash) -> u64 {
        fs::read_to_string(self.atime_path(hash))
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0)
    }

    /// Occupancy snapshot: counts and total bytes (sidecars excluded).
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let mut s = StoreStats::default();
        for hash in self.manifests()? {
            s.manifests += 1;
            s.bytes += Self::file_size(&self.manifest_path(hash));
            if self.pinned(hash) {
                s.pinned += 1;
            }
        }
        for prefix in fs::read_dir(self.root.join("objects"))? {
            let prefix = prefix?;
            if !prefix.file_type()?.is_dir() {
                continue;
            }
            for obj in fs::read_dir(prefix.path())? {
                let obj = obj?;
                s.objects += 1;
                s.bytes += obj.metadata()?.len();
            }
        }
        Ok(s)
    }

    /// Evict down to `budget_bytes`: least-recently-used unpinned manifests
    /// go first, then any blob no surviving manifest references. Pinned
    /// manifests (and their objects) are never touched, so the store can
    /// legitimately stay over budget when pins alone exceed it.
    pub fn gc(&self, budget_bytes: u64) -> Result<GcReport, StoreError> {
        let mut report = GcReport::default();
        let before = self.stats()?.bytes;
        let mut survivors: Vec<Manifest> = Vec::new();
        // Oldest access first; hash tie-break keeps eviction deterministic.
        let mut candidates: Vec<(u64, DeckHash)> = Vec::new();
        for hash in self.manifests()? {
            match self.lookup_no_touch(hash)? {
                Some(m) if !self.pinned(hash) => {
                    candidates.push((self.atime_of(hash), hash));
                    survivors.push(m);
                }
                Some(m) => survivors.push(m),
                // A manifest listed but unreadable mid-pass: skip it.
                None => {}
            }
        }
        candidates.sort_unstable_by_key(|&(at, h)| (at, h.0));
        let mut size = before;
        for (_, hash) in candidates {
            if size <= budget_bytes {
                break;
            }
            let freed = Self::file_size(&self.manifest_path(hash));
            fs::remove_file(self.manifest_path(hash))?;
            let _ = fs::remove_file(self.atime_path(hash));
            survivors.retain(|m| m.deck_hash != hash);
            report.evicted_manifests += 1;
            size = size.saturating_sub(freed);
        }
        // Second pass: drop blobs nothing references any more.
        let referenced: std::collections::HashSet<ObjectId> = survivors
            .iter()
            .flat_map(|m| {
                [Some(m.deck_object), Some(m.outcome_object), m.trace_object]
            })
            .flatten()
            .collect();
        for prefix in fs::read_dir(self.root.join("objects"))? {
            let prefix = prefix?;
            if !prefix.file_type()?.is_dir() {
                continue;
            }
            for obj in fs::read_dir(prefix.path())? {
                let obj = obj?;
                let id: ObjectId = match obj.file_name().to_string_lossy().parse() {
                    Ok(id) => id,
                    Err(_) => continue,
                };
                if !referenced.contains(&id) {
                    let freed = obj.metadata()?.len();
                    fs::remove_file(obj.path())?;
                    report.evicted_objects += 1;
                    size = size.saturating_sub(freed);
                }
            }
        }
        report.bytes_after = self.stats()?.bytes;
        report.bytes_freed = before.saturating_sub(report.bytes_after);
        Ok(report)
    }

    /// `lookup` without the LRU touch — GC must not refresh what it reads.
    fn lookup_no_touch(&self, hash: DeckHash) -> Result<Option<Manifest>, StoreError> {
        let text = match fs::read_to_string(self.manifest_path(hash)) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Manifest::from_json(&text)
            .map(Some)
            .map_err(|e| StoreError::Corrupt(format!("manifest {hash}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::test_manifest;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xg-artifact-test-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A manifest whose object pointers actually exist in `store`.
    fn publish_real(store: &ArtifactStore, seed: u8, hash: u64) -> Manifest {
        let deck = vec![seed; 64];
        let outcome = vec![seed ^ 0xff; 256];
        let mut m = test_manifest();
        m.deck_hash = DeckHash(hash);
        m.deck_object = store.put_object(&deck).unwrap();
        m.outcome_object = store.put_object(&outcome).unwrap();
        m.trace_object = None;
        m.outcome_bytes = outcome.len() as u64;
        store.publish(&m).unwrap();
        m
    }

    #[test]
    fn objects_roundtrip_and_dedupe() {
        let dir = scratch("objects");
        let store = ArtifactStore::open(&dir).unwrap();
        let id = store.put_object(b"hello artifacts").unwrap();
        assert_eq!(store.put_object(b"hello artifacts").unwrap(), id);
        assert!(store.has_object(id));
        assert_eq!(store.get_object(id).unwrap(), b"hello artifacts");
        assert_eq!(id.to_string().parse::<ObjectId>().unwrap(), id);
        assert!(matches!(
            store.get_object(ObjectId(1)),
            Err(StoreError::NotFound(_))
        ));
        // A blob whose bytes were tampered with is refused, not returned.
        fs::write(store.object_path(id), b"tampered!").unwrap();
        assert!(matches!(store.get_object(id), Err(StoreError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn publish_lookup_roundtrip_and_clean_miss() {
        let dir = scratch("publish");
        let store = ArtifactStore::open(&dir).unwrap();
        let m = publish_real(&store, 1, 0xa1);
        assert!(store.contains(m.deck_hash));
        assert_eq!(store.lookup(m.deck_hash).unwrap().unwrap(), m);
        assert!(store.lookup(DeckHash(0xdead)).unwrap().is_none());
        // tmp/ is empty after commits: nothing is left half-written.
        assert_eq!(fs::read_dir(dir.join("tmp")).unwrap().count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_evicts_lru_first_and_respects_pins() {
        let dir = scratch("gc");
        let store = ArtifactStore::open(&dir).unwrap();
        let old = publish_real(&store, 1, 0x01);
        let pinned = publish_real(&store, 2, 0x02);
        let fresh = publish_real(&store, 3, 0x03);
        store.pin(pinned.deck_hash).unwrap();
        // Make access order unambiguous: old ← pinned ← fresh.
        fs::write(store.atime_path(old.deck_hash), "100").unwrap();
        fs::write(store.atime_path(pinned.deck_hash), "200").unwrap();
        fs::write(store.atime_path(fresh.deck_hash), "300").unwrap();
        let report = store.gc(0).unwrap();
        // Budget 0 evicts every unpinned manifest; the pinned one survives
        // with its objects, so the store stays legitimately non-empty.
        assert_eq!(report.evicted_manifests, 2);
        assert!(report.evicted_objects >= 2);
        assert!(report.bytes_freed > 0);
        assert!(!store.contains(old.deck_hash));
        assert!(!store.contains(fresh.deck_hash));
        assert_eq!(store.lookup(pinned.deck_hash).unwrap().unwrap(), pinned);
        assert_eq!(
            store.get_object(pinned.outcome_object).unwrap().len(),
            pinned.outcome_bytes as usize
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_under_budget_is_a_noop() {
        let dir = scratch("noop");
        let store = ArtifactStore::open(&dir).unwrap();
        let m = publish_real(&store, 4, 0x04);
        let stats = store.stats().unwrap();
        assert_eq!(stats.manifests, 1);
        assert_eq!(stats.objects, 2);
        let report = store.gc(stats.bytes).unwrap();
        assert_eq!(report.evicted_manifests, 0);
        assert_eq!(report.evicted_objects, 0);
        assert_eq!(report.bytes_after, stats.bytes);
        assert!(store.contains(m.deck_hash));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_objects_survive_partial_eviction() {
        let dir = scratch("shared");
        let store = ArtifactStore::open(&dir).unwrap();
        // Two manifests pointing at the same deck blob.
        let deck = store.put_object(b"shared deck").unwrap();
        let mut a = test_manifest();
        a.deck_hash = DeckHash(0x0a);
        a.deck_object = deck;
        a.outcome_object = store.put_object(b"outcome a").unwrap();
        a.trace_object = None;
        store.publish(&a).unwrap();
        let mut b = a.clone();
        b.deck_hash = DeckHash(0x0b);
        b.outcome_object = store.put_object(b"outcome b").unwrap();
        store.publish(&b).unwrap();
        store.pin(b.deck_hash).unwrap();
        store.gc(0).unwrap();
        // a is gone, but the deck blob b still references must remain.
        assert!(!store.contains(a.deck_hash));
        assert_eq!(store.get_object(deck).unwrap(), b"shared deck");
        assert!(!store.has_object(a.outcome_object));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pin_requires_existing_manifest_and_unpin_is_idempotent() {
        let dir = scratch("pins");
        let store = ArtifactStore::open(&dir).unwrap();
        assert!(matches!(
            store.pin(DeckHash(0x77)),
            Err(StoreError::NotFound(_))
        ));
        let m = publish_real(&store, 5, 0x77);
        store.pin(m.deck_hash).unwrap();
        assert!(store.pinned(m.deck_hash));
        store.unpin(m.deck_hash).unwrap();
        store.unpin(m.deck_hash).unwrap();
        assert!(!store.pinned(m.deck_hash));
        fs::remove_dir_all(&dir).unwrap();
    }
}
