//! The canonical deck hash: one submission's semantic identity.
//!
//! Two submissions get the same [`DeckHash`] **iff** the simulation they
//! request is bit-for-bit the same computation. The hash is taken over the
//! *parsed* [`CgyroInput`] — not the deck text — so canonicalization is
//! inherited from `xg_sim::parse_deck`: key order, whitespace, case and
//! comments cannot split the cache. The requested total step count is part
//! of the identity (running the same deck longer is different work).
//!
//! Exclusions mirror (and extend) the `cmat_key` discipline: a knob that
//! provably cannot change the result bits must not fragment the cache.
//!
//! * `REDUCE_ALGO` — a communication-schedule choice, bitwise-neutral by
//!   construction (the str-reduce equivalence tests pin this).
//! * Species display names — labels for reports, never used in physics.
//! * Decomposition / coll cuts — *runtime placement*, not submission
//!   identity: the decomp-matrix CI proves ragged coll splits are
//!   bitwise-neutral, and the batch size a job lands in is unknowable at
//!   admission time. The layout a run actually used is recorded in its
//!   [`crate::Manifest`] as provenance instead.
//!
//! Everything else is included — in particular the fields `cmat_key`
//! deliberately leaves out (gradient drives, `nonlinear_coupling`,
//! `beta_e`, `upwind_diss`, `seed`, `steps_per_report`): they don't change
//! the collision tensor, but they absolutely change the answer.

use crate::fnv1a;
use xg_sim::CgyroInput;

/// Version tag baked into every hash (and its rendering): bump it if the
/// field list or encoding ever changes, so a new binary can never serve a
/// stale store's entries under a silently different identity.
const VERSION_TAG: &str = "xgd1";

/// The canonical semantic identity of one submission. Renders as
/// `xgd1-<16 hex digits>` and round-trips through [`std::str::FromStr`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeckHash(pub u64);

impl std::fmt::Display for DeckHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{VERSION_TAG}-{:016x}", self.0)
    }
}

impl std::str::FromStr for DeckHash {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let hex = s
            .strip_prefix(VERSION_TAG)
            .and_then(|r| r.strip_prefix('-'))
            .ok_or_else(|| format!("'{s}' is not a deck hash (expected {VERSION_TAG}-<16 hex>)"))?;
        if hex.len() != 16 {
            return Err(format!("'{s}': expected 16 hex digits, got {}", hex.len()));
        }
        u64::from_str_radix(hex, 16)
            .map(DeckHash)
            .map_err(|_| format!("'{s}': bad hex digits"))
    }
}

/// Incremental field-tagged FNV-1a: each field contributes its name (so a
/// future field reordering cannot alias two different inputs) followed by
/// its value bits.
struct Tagged {
    h: u64,
}

impl Tagged {
    fn new() -> Self {
        Self { h: fnv1a(VERSION_TAG.as_bytes()) }
    }

    fn mix(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, tag: &str, v: u64) {
        self.mix(tag.as_bytes());
        self.mix(&v.to_le_bytes());
    }

    fn f64(&mut self, tag: &str, v: f64) {
        self.u64(tag, v.to_bits());
    }
}

/// The canonical deck hash of `(input, steps)`. See the module docs for
/// the inclusion/exclusion rules; the golden-hash snapshot test pins the
/// exact encoding.
pub fn deck_hash(input: &CgyroInput, steps: usize) -> DeckHash {
    let mut t = Tagged::new();
    // Grid shapes.
    t.u64("n_radial", input.n_radial as u64);
    t.u64("n_theta", input.n_theta as u64);
    t.u64("n_xi", input.n_xi as u64);
    t.u64("n_energy", input.n_energy as u64);
    t.u64("n_toroidal", input.n_toroidal as u64);
    // Species: physics fields only — display names excluded.
    t.u64("n_species", input.species.len() as u64);
    for s in &input.species {
        t.f64("mass", s.mass);
        t.f64("z", s.z);
        t.f64("temp", s.temp);
        t.f64("dens", s.dens);
        t.f64("rln", s.rln);
        t.f64("rlt", s.rlt);
    }
    // Collision/geometry inputs (the cmat_key list).
    t.f64("nu_ee", input.nu_ee);
    t.f64("q", input.q);
    t.f64("shear", input.shear);
    t.f64("kappa", input.kappa);
    t.f64("delta", input.delta);
    t.f64("ky_min", input.ky_min);
    t.f64("kx_min", input.kx_min);
    t.f64("delta_t", input.delta_t);
    // Result-bearing fields cmat_key deliberately excludes.
    t.f64("nonlinear_coupling", input.nonlinear_coupling);
    t.f64("beta_e", input.beta_e);
    t.f64("upwind_diss", input.upwind_diss);
    t.u64("seed", input.seed);
    t.u64("steps_per_report", input.steps_per_report as u64);
    // The request itself. REDUCE_ALGO is deliberately absent.
    t.u64("steps", steps as u64);
    DeckHash(t.h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips() {
        let h = DeckHash(0xdead_beef_0123_4567);
        assert_eq!(h.to_string(), "xgd1-deadbeef01234567");
        assert_eq!(h.to_string().parse::<DeckHash>().unwrap(), h);
        assert!("xgd2-deadbeef01234567".parse::<DeckHash>().is_err());
        assert!("xgd1-beef".parse::<DeckHash>().is_err());
        assert!("xgd1-zzzzzzzzzzzzzzzz".parse::<DeckHash>().is_err());
    }

    #[test]
    fn reduce_algo_and_species_names_are_excluded() {
        let base = CgyroInput::test_small();
        let mut alt = base.clone();
        alt.reduce_algo = "reduce-scatter".parse().unwrap();
        assert_eq!(deck_hash(&base, 10), deck_hash(&alt, 10));
        let mut renamed = base.clone();
        renamed.species[0].name = "tritium".into();
        assert_eq!(deck_hash(&base, 10), deck_hash(&renamed, 10));
    }

    #[test]
    fn result_bearing_fields_are_included() {
        let base = CgyroInput::test_small();
        let h = deck_hash(&base, 10);
        assert_ne!(h, deck_hash(&base, 20), "step count is identity");
        assert_ne!(h, deck_hash(&base.with_seed(base.seed + 1), 10));
        assert_ne!(h, deck_hash(&base.with_gradients(9.0, 9.0), 10));
        let mut cadence = base.clone();
        cadence.steps_per_report = base.steps_per_report * 2;
        assert_ne!(h, deck_hash(&cadence, 10));
    }
}
