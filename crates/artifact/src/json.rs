//! A minimal hand-written JSON reader (and string escaper) for manifests.
//!
//! The workspace deliberately carries no JSON dependency (the vendored
//! `serde` is a derive-marker stub), so everything that *writes* JSON in
//! this repo hand-rolls it with a fixed key order — and this module is the
//! matching reader: just enough of RFC 8259 to load back what
//! [`crate::Manifest::to_json`] produces, while rejecting malformed input
//! with a positioned error instead of garbage.
//!
//! Numbers are parsed as `f64` — which is exactly why 64-bit digests are
//! rendered as hex *strings* in manifests (an `f64` only holds 53 mantissa
//! bits; round-tripping a content hash through one would corrupt it).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see module docs for the 53-bit caveat).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order (manifests use a fixed key order).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let b = text.as_bytes();
        let mut at = 0usize;
        let v = parse_value(b, &mut at)?;
        skip_ws(b, &mut at);
        if at != b.len() {
            return Err(format!("trailing garbage at byte {at}"));
        }
        Ok(v)
    }

    /// Object field lookup (None on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number that
    /// fits `f64` exactly (manifests keep integral fields under 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9.0e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escape a string for embedding in hand-rolled JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(b: &[u8], at: &mut usize) {
    while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(b: &[u8], at: &mut usize, c: u8) -> Result<(), String> {
    if *at < b.len() && b[*at] == c {
        *at += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {at}", c as char))
    }
}

fn parse_value(b: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, at);
    match b.get(*at) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, at),
        Some(b'[') => parse_arr(b, at),
        Some(b'"') => Ok(JsonValue::Str(parse_str(b, at)?)),
        Some(b't') => parse_lit(b, at, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, at, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, at, "null", JsonValue::Null),
        Some(_) => parse_num(b, at),
    }
}

fn parse_lit(b: &[u8], at: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*at..].starts_with(lit.as_bytes()) {
        *at += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {at}"))
    }
}

fn parse_num(b: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    let start = *at;
    while *at < b.len()
        && matches!(b[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *at += 1;
    }
    std::str::from_utf8(&b[start..*at])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(b: &[u8], at: &mut usize) -> Result<String, String> {
    expect(b, at, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*at) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                match b.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*at + 1..*at + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *at += 4;
                    }
                    _ => return Err(format!("bad escape at byte {at}")),
                }
                *at += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar (b is valid UTF-8: from &str).
                let s = std::str::from_utf8(&b[*at..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *at += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    expect(b, at, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, at);
    if b.get(*at) == Some(&b']') {
        *at += 1;
        return Ok(JsonValue::Arr(out));
    }
    loop {
        out.push(parse_value(b, at)?);
        skip_ws(b, at);
        match b.get(*at) {
            Some(b',') => *at += 1,
            Some(b']') => {
                *at += 1;
                return Ok(JsonValue::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {at}")),
        }
    }
}

fn parse_obj(b: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    expect(b, at, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, at);
    if b.get(*at) == Some(&b'}') {
        *at += 1;
        return Ok(JsonValue::Obj(out));
    }
    loop {
        skip_ws(b, at);
        let key = parse_str(b, at)?;
        skip_ws(b, at);
        expect(b, at, b':')?;
        let val = parse_value(b, at)?;
        out.push((key, val));
        skip_ws(b, at);
        match b.get(*at) {
            Some(b',') => *at += 1,
            Some(b'}') => {
                *at += 1;
                return Ok(JsonValue::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {at}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = JsonValue::parse(
            r#"{"a": 1, "b": [true, null, "x\n\"y\""], "c": {"d": 2.5}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        let arr = v.get("b").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0], JsonValue::Bool(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2].as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("c").and_then(|c| c.get("d")), Some(&JsonValue::Num(2.5)));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\" 1}", "{} x", "\"abc", "{\"a\": 01x}"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let s = "tab\t quote\" back\\ newline\n ctrl\u{1} done";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_str), Some(s));
    }
}
