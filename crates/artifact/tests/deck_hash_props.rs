//! Property tests pinning the deck-hash contract.
//!
//! Three claims the cache depends on, checked across the input space:
//!
//! 1. **Formatting invariance** — hashing goes through `parse_deck`, so key
//!    order, case, whitespace and comments can never split the cache.
//! 2. **Semantic sensitivity** — every field the result depends on moves
//!    the hash: the full `cmat_divergence` field list *plus* the
//!    result-bearing fields `cmat_key` excludes (gradients, seed, cadence,
//!    dissipation, coupling, beta_e) *plus* the step count.
//! 3. **Snapshot stability** — golden hashes for the stock test decks, so
//!    the encoding cannot drift without a deliberate `xgd` version bump
//!    (a silent drift would orphan every existing store).

use proptest::prelude::*;
use xg_artifact::deck_hash;
use xg_sim::{parse_deck, write_deck, CgyroInput, Species};

/// A modest but multi-dimensional slice of valid inputs.
fn inputs() -> impl Strategy<Value = CgyroInput> {
    (
        1usize..6,   // n_radial
        4usize..10,  // n_theta (stencil needs >= 4)
        2usize..6,   // n_xi
        2usize..5,   // n_energy
        1usize..4,   // n_toroidal
        1usize..4,   // n_species
        0u64..1_000, // seed
        1usize..40,  // steps_per_report
        0u64..1_000, // nu_ee scale (milli)
    )
        .prop_map(|(nr, nt, nxi, ne, ntor, nsp, seed, spr, nu)| {
            let mut input = CgyroInput::test_small();
            input.n_radial = nr;
            input.n_theta = nt;
            input.n_xi = nxi;
            input.n_energy = ne;
            input.n_toroidal = ntor;
            input.species.truncate(1);
            for i in 1..nsp {
                let mut s = Species::electron();
                s.name = format!("s{i}");
                s.dens = 0.5 + 0.25 * i as f64;
                input.species.push(s);
            }
            input.seed = seed;
            input.steps_per_report = spr;
            input.nu_ee = nu as f64 / 1000.0;
            input.validate().expect("strategy generates valid inputs");
            input
        })
}

/// Reformat a deck without changing its meaning: rotate line order,
/// lowercase keys, pad around `=`, and sprinkle comments and blank lines.
fn mangle(text: &str, rot: usize, pad: bool, comments: bool) -> String {
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let (k, v) = l.split_once('=').expect("deck lines are KEY=VALUE");
            let key = k.to_ascii_lowercase();
            let mut out = if pad {
                format!("  {key}   =  {v} ")
            } else {
                format!("{key}={v}")
            };
            if comments {
                out.push_str("  # same physics");
            }
            out
        })
        .collect();
    let n = lines.len().max(1);
    lines.rotate_left(rot % n);
    let mut out = String::from("# mangled restatement of the same deck\n");
    for (i, l) in lines.iter().enumerate() {
        if comments && i % 3 == 0 {
            out.push('\n');
        }
        out.push_str(l);
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn hash_is_invariant_under_formatting(
        input in inputs(),
        steps in 1usize..200,
        rot in 0usize..64,
        style in 0u64..4,
    ) {
        let (pad, comments) = (style & 1 != 0, style & 2 != 0);
        let text = write_deck(&input);
        let canonical = deck_hash(&parse_deck(&text).unwrap(), steps);
        let mangled = mangle(&text, rot, pad, comments);
        let reparsed = parse_deck(&mangled).unwrap();
        prop_assert_eq!(deck_hash(&reparsed, steps), canonical,
            "reformatting split the cache:\n{}", mangled);
    }

    #[test]
    fn hash_agrees_with_cmat_divergence(
        a in inputs(),
        b in inputs(),
        steps in 1usize..200,
    ) {
        // Equal hashes for decks cmat_divergence can tell apart would mean
        // the deck hash is *coarser* than the cmat key — never allowed.
        if !a.cmat_divergence(&b).is_empty() {
            prop_assert_ne!(deck_hash(&a, steps), deck_hash(&b, steps));
        }
    }
}

/// Every semantic field moves the hash. The closure list reuses the
/// `cmat_divergence` vocabulary for the cmat-relevant fields and extends it
/// with the result-bearing fields `cmat_key` deliberately excludes.
#[test]
fn every_semantic_field_moves_the_hash() {
    type Mutation = (&'static str, bool, fn(&mut CgyroInput));
    // (name, is_cmat_field, mutation)
    let mutations: [Mutation; 24] = [
        ("n_radial", true, |i| i.n_radial += 1),
        ("n_theta", true, |i| i.n_theta += 1),
        ("n_xi", true, |i| i.n_xi += 1),
        ("n_energy", true, |i| i.n_energy += 1),
        ("n_toroidal", true, |i| i.n_toroidal += 1),
        ("n_species", true, |i| i.species.push(Species::carbon())),
        ("species[0].mass", true, |i| i.species[0].mass *= 2.0),
        ("species[0].z", true, |i| i.species[0].z += 1.0),
        ("species[0].temp", true, |i| i.species[0].temp *= 1.5),
        ("species[0].dens", true, |i| i.species[0].dens *= 0.5),
        ("nu_ee", true, |i| i.nu_ee *= 2.0),
        ("q", true, |i| i.q += 0.1),
        ("shear", true, |i| i.shear += 0.1),
        ("kappa", true, |i| i.kappa += 0.1),
        ("delta", true, |i| i.delta += 0.1),
        ("ky_min", true, |i| i.ky_min *= 2.0),
        ("kx_min", true, |i| i.kx_min *= 2.0),
        ("delta_t", true, |i| i.delta_t *= 0.5),
        // Result-bearing fields outside the cmat key.
        ("species[0].rln", false, |i| i.species[0].rln += 1.0),
        ("species[0].rlt", false, |i| i.species[0].rlt += 1.0),
        ("nonlinear_coupling", false, |i| i.nonlinear_coupling += 0.01),
        ("beta_e", false, |i| i.beta_e += 0.01),
        ("upwind_diss", false, |i| i.upwind_diss += 0.05),
        ("seed", false, |i| i.seed += 1),
    ];
    let base = CgyroInput::test_small();
    let h = deck_hash(&base, 20);
    for (name, is_cmat, mutate) in mutations {
        let mut alt = base.clone();
        mutate(&mut alt);
        alt.validate().unwrap_or_else(|e| panic!("mutation {name} invalid: {e}"));
        assert_ne!(deck_hash(&alt, 20), h, "hash is blind to {name}");
        // Tie the cmat half of the list to cmat_divergence itself, so a
        // future cmat field can't be forgotten here silently.
        assert_eq!(
            !base.cmat_divergence(&alt).is_empty(),
            is_cmat,
            "cmat_divergence disagrees about {name}"
        );
        // Hashing must round-trip through deck text identically.
        assert_eq!(
            deck_hash(&parse_deck(&write_deck(&alt)).unwrap(), 20),
            deck_hash(&alt, 20)
        );
    }
    let mut cadence = base.clone();
    cadence.steps_per_report += 1;
    assert_ne!(deck_hash(&cadence, 20), h, "hash is blind to steps_per_report");
    assert_ne!(deck_hash(&base, 21), h, "hash is blind to steps");
}

/// Golden snapshots: these exact values are what existing stores are keyed
/// by. If this test fails, the encoding changed — bump the `xgd` version
/// tag (orphaning old stores *loudly*) rather than updating the constants.
#[test]
fn golden_hashes_are_stable() {
    let small = deck_hash(&CgyroInput::test_small(), 40);
    let medium = deck_hash(&CgyroInput::test_medium(), 40);
    assert_eq!(small.to_string(), "xgd1-ba615d0591055165");
    assert_eq!(medium.to_string(), "xgd1-86b9adbdddbf6467");
    // And they parse back to themselves.
    assert_eq!(small.to_string().parse::<xg_artifact::DeckHash>().unwrap(), small);
}
