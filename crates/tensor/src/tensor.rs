//! Dense row-major 2/3/4-dimensional tensors.
//!
//! CGYRO-class state lives in 3D complex tensors over (configuration,
//! velocity, toroidal); the collisional constant tensor is 4D. These types
//! are deliberately simple: contiguous row-major storage, checked
//! constructors, debug-checked hot-path indexing.

use std::ops::{Index, IndexMut};

/// Dense row-major 2-D tensor.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor2<T> {
    d0: usize,
    d1: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor2<T> {
    /// Allocate filled with `T::default()`.
    pub fn new(d0: usize, d1: usize) -> Self {
        Self { d0, d1, data: vec![T::default(); d0 * d1] }
    }
}

impl<T: Copy> Tensor2<T> {
    /// Build from a closure over `(i0, i1)`.
    pub fn from_fn(d0: usize, d1: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(d0 * d1);
        for i0 in 0..d0 {
            for i1 in 0..d1 {
                data.push(f(i0, i1));
            }
        }
        Self { d0, d1, data }
    }

    /// Shape as `(d0, d1)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.d0, self.d1)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Contiguous backing slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Row `i0` as a contiguous slice.
    #[inline(always)]
    pub fn row(&self, i0: usize) -> &[T] {
        debug_assert!(i0 < self.d0);
        &self.data[i0 * self.d1..(i0 + 1) * self.d1]
    }

    /// Mutable row `i0`.
    #[inline(always)]
    pub fn row_mut(&mut self, i0: usize) -> &mut [T] {
        debug_assert!(i0 < self.d0);
        &mut self.data[i0 * self.d1..(i0 + 1) * self.d1]
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: T) {
        self.data.iter_mut().for_each(|x| *x = v);
    }
}

impl<T: Copy> Index<(usize, usize)> for Tensor2<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i0, i1): (usize, usize)) -> &T {
        debug_assert!(i0 < self.d0 && i1 < self.d1);
        &self.data[i0 * self.d1 + i1]
    }
}

impl<T: Copy> IndexMut<(usize, usize)> for Tensor2<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i0, i1): (usize, usize)) -> &mut T {
        debug_assert!(i0 < self.d0 && i1 < self.d1);
        &mut self.data[i0 * self.d1 + i1]
    }
}

/// Dense row-major 3-D tensor, index order `[i0][i1][i2]` with `i2` fastest.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor3<T> {
    d0: usize,
    d1: usize,
    d2: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor3<T> {
    /// Allocate filled with `T::default()`.
    pub fn new(d0: usize, d1: usize, d2: usize) -> Self {
        Self { d0, d1, d2, data: vec![T::default(); d0 * d1 * d2] }
    }
}

impl<T: Copy> Tensor3<T> {
    /// Build from a closure over `(i0, i1, i2)`.
    pub fn from_fn(
        d0: usize,
        d1: usize,
        d2: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let mut data = Vec::with_capacity(d0 * d1 * d2);
        for i0 in 0..d0 {
            for i1 in 0..d1 {
                for i2 in 0..d2 {
                    data.push(f(i0, i1, i2));
                }
            }
        }
        Self { d0, d1, d2, data }
    }

    /// Shape as `(d0, d1, d2)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.d0, self.d1, self.d2)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat offset of `(i0, i1, i2)`.
    #[inline(always)]
    pub fn offset(&self, i0: usize, i1: usize, i2: usize) -> usize {
        debug_assert!(i0 < self.d0 && i1 < self.d1 && i2 < self.d2);
        (i0 * self.d1 + i1) * self.d2 + i2
    }

    /// Contiguous backing slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// The contiguous innermost line at `(i0, i1, ..)`.
    #[inline(always)]
    pub fn line(&self, i0: usize, i1: usize) -> &[T] {
        let o = self.offset(i0, i1, 0);
        &self.data[o..o + self.d2]
    }

    /// Mutable innermost line.
    #[inline(always)]
    pub fn line_mut(&mut self, i0: usize, i1: usize) -> &mut [T] {
        let o = self.offset(i0, i1, 0);
        &mut self.data[o..o + self.d2]
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: T) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Gather the `d1`-profile at fixed `(i0, i2)` into `out` —
    /// e.g. the velocity profile of `h_coll` at one `(ic, itor)` pair.
    pub fn gather_mid(&self, i0_is_fixed: bool, fixed0: usize, fixed2: usize, out: &mut [T]) {
        // Gathers along dim 1 when i0_is_fixed is true; along dim 0 otherwise.
        if i0_is_fixed {
            debug_assert_eq!(out.len(), self.d1);
            for (i1, o) in out.iter_mut().enumerate() {
                *o = self[(fixed0, i1, fixed2)];
            }
        } else {
            debug_assert_eq!(out.len(), self.d0);
            for (i0, o) in out.iter_mut().enumerate() {
                *o = self[(i0, fixed0, fixed2)];
            }
        }
    }
}

impl<T: Copy> Index<(usize, usize, usize)> for Tensor3<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i0, i1, i2): (usize, usize, usize)) -> &T {
        let o = self.offset(i0, i1, i2);
        &self.data[o]
    }
}

impl<T: Copy> IndexMut<(usize, usize, usize)> for Tensor3<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i0, i1, i2): (usize, usize, usize)) -> &mut T {
        let o = self.offset(i0, i1, i2);
        &mut self.data[o]
    }
}

/// Dense row-major 4-D tensor, index order `[i0][i1][i2][i3]`, `i3` fastest.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor4<T> {
    d0: usize,
    d1: usize,
    d2: usize,
    d3: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor4<T> {
    /// Allocate filled with `T::default()`.
    pub fn new(d0: usize, d1: usize, d2: usize, d3: usize) -> Self {
        Self { d0, d1, d2, d3, data: vec![T::default(); d0 * d1 * d2 * d3] }
    }
}

impl<T: Copy> Tensor4<T> {
    /// Shape as `(d0, d1, d2, d3)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.d0, self.d1, self.d2, self.d3)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat offset of `(i0, i1, i2, i3)`.
    #[inline(always)]
    pub fn offset(&self, i0: usize, i1: usize, i2: usize, i3: usize) -> usize {
        debug_assert!(i0 < self.d0 && i1 < self.d1 && i2 < self.d2 && i3 < self.d3);
        ((i0 * self.d1 + i1) * self.d2 + i2) * self.d3 + i3
    }

    /// Contiguous backing slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Contiguous `(d2 × d3)` panel at `(i0, i1)` — e.g. one `nv×nv`
    /// collision matrix inside a `(nc_loc, nt_loc, nv, nv)` constant tensor.
    #[inline(always)]
    pub fn panel(&self, i0: usize, i1: usize) -> &[T] {
        let o = self.offset(i0, i1, 0, 0);
        &self.data[o..o + self.d2 * self.d3]
    }

    /// Mutable panel.
    #[inline(always)]
    pub fn panel_mut(&mut self, i0: usize, i1: usize) -> &mut [T] {
        let o = self.offset(i0, i1, 0, 0);
        &mut self.data[o..o + self.d2 * self.d3]
    }
}

impl<T: Copy> Index<(usize, usize, usize, usize)> for Tensor4<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i0, i1, i2, i3): (usize, usize, usize, usize)) -> &T {
        let o = self.offset(i0, i1, i2, i3);
        &self.data[o]
    }
}

impl<T: Copy> IndexMut<(usize, usize, usize, usize)> for Tensor4<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i0, i1, i2, i3): (usize, usize, usize, usize)) -> &mut T {
        let o = self.offset(i0, i1, i2, i3);
        &mut self.data[o]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor2_layout() {
        let t = Tensor2::from_fn(2, 3, |i, j| i * 10 + j);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(t.row(1), &[10, 11, 12]);
        assert_eq!(t[(1, 2)], 12);
    }

    #[test]
    fn tensor2_fill_and_mut() {
        let mut t: Tensor2<f64> = Tensor2::new(2, 2);
        t.fill(3.0);
        t[(0, 1)] = 5.0;
        assert_eq!(t.as_slice(), &[3.0, 5.0, 3.0, 3.0]);
        t.row_mut(1)[0] = 7.0;
        assert_eq!(t[(1, 0)], 7.0);
    }

    #[test]
    fn tensor3_layout_innermost_fastest() {
        let t = Tensor3::from_fn(2, 2, 3, |a, b, c| a * 100 + b * 10 + c);
        assert_eq!(
            t.as_slice(),
            &[0, 1, 2, 10, 11, 12, 100, 101, 102, 110, 111, 112]
        );
        assert_eq!(t.line(1, 0), &[100, 101, 102]);
        assert_eq!(t[(1, 1, 2)], 112);
        assert_eq!(t.offset(1, 1, 2), 11);
    }

    #[test]
    fn tensor3_gather_mid() {
        let t = Tensor3::from_fn(3, 4, 2, |a, b, c| (a * 100 + b * 10 + c) as f64);
        let mut out = vec![0.0; 4];
        t.gather_mid(true, 2, 1, &mut out);
        assert_eq!(out, vec![201.0, 211.0, 221.0, 231.0]);
        let mut out0 = vec![0.0; 3];
        t.gather_mid(false, 3, 1, &mut out0);
        assert_eq!(out0, vec![31.0, 131.0, 231.0]);
    }

    #[test]
    fn tensor4_panels_are_contiguous() {
        let mut t: Tensor4<u32> = Tensor4::new(2, 2, 2, 2);
        t[(1, 0, 1, 1)] = 9;
        let p = t.panel(1, 0);
        assert_eq!(p, &[0, 0, 0, 9]);
        t.panel_mut(0, 1).copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(t[(0, 1, 1, 0)], 3);
    }

    #[test]
    fn tensor4_offset_math() {
        let t: Tensor4<u8> = Tensor4::new(3, 4, 5, 6);
        assert_eq!(t.offset(0, 0, 0, 0), 0);
        assert_eq!(t.offset(2, 3, 4, 5), 3 * 4 * 5 * 6 - 1);
        assert_eq!(t.len(), 360);
    }

    #[test]
    fn empty_tensors() {
        let t: Tensor3<f64> = Tensor3::new(0, 5, 5);
        assert!(t.is_empty());
        let t2: Tensor2<f64> = Tensor2::new(1, 1);
        assert!(!t2.is_empty());
    }
}
