//! Phase layouts and process grids.
//!
//! CGYRO runs on a 2-D process grid `N = n1 × n2`. The `n2` communicator
//! splits the toroidal dimension `nt` in every phase; the `n1` communicator
//! splits `nv` in the *str* phase and `nc` in the *coll* phase (paper §2,
//! Figure 1). Each phase keeps exactly one dimension complete:
//!
//! * **str**  — full `nc`, local shape `(nc, nv/n1, nt/n2)`
//! * **coll** — full `nv`, local shape `(nv, nc/n1, nt/n2)` (CGYRO) or
//!   `(nv, nc/(k·n1), nt/n2)` (XGYRO ensemble of `k` simulations)
//! * **nl**   — full `nt`, local shape `(nc/n2', nv/n1, nt)`
//!
//! This module owns the index bookkeeping: rank ↔ grid coordinates and the
//! per-rank local shapes/ranges for each phase.

use crate::decomp::Decomp1D;
use std::ops::Range;

/// Global per-simulation tensor dimensions (configuration, velocity,
/// toroidal).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimDims {
    /// Configuration points (`n_radial × n_theta` flattened).
    pub nc: usize,
    /// Velocity points (`n_species × n_xi × n_energy` flattened).
    pub nv: usize,
    /// Toroidal modes.
    pub nt: usize,
}

impl SimDims {
    /// Construct; all dimensions must be nonzero.
    pub fn new(nc: usize, nv: usize, nt: usize) -> Self {
        assert!(nc > 0 && nv > 0 && nt > 0, "dimensions must be nonzero");
        Self { nc, nv, nt }
    }

    /// Total state size `nc·nv·nt` (complex elements).
    pub fn state_len(&self) -> usize {
        self.nc * self.nv * self.nt
    }
}

/// A 2-D process grid for one simulation: `n1` splits `nv`(str)/`nc`(coll),
/// `n2` splits `nt`. Rank layout is `rank = i1·n2 + i2` (**i2 fastest**):
/// with block placement onto nodes, the toroidal communicator is
/// node-local while the `nv` communicator — whose AllReduce cost is the
/// paper's target — spans nodes, which is what makes its cost grow with
/// participant count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcGrid {
    /// Ranks splitting `nv`/`nc`.
    pub n1: usize,
    /// Ranks splitting `nt`.
    pub n2: usize,
}

impl ProcGrid {
    /// Construct; both extents must be nonzero.
    pub fn new(n1: usize, n2: usize) -> Self {
        assert!(n1 > 0 && n2 > 0, "process grid extents must be nonzero");
        Self { n1, n2 }
    }

    /// Total ranks `n1·n2`.
    pub fn size(&self) -> usize {
        self.n1 * self.n2
    }

    /// Grid coordinates `(i1, i2)` of `rank`.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.size(), "rank {rank} outside grid of {}", self.size());
        (rank / self.n2, rank % self.n2)
    }

    /// Rank at grid coordinates `(i1, i2)`.
    pub fn rank(&self, i1: usize, i2: usize) -> usize {
        assert!(i1 < self.n1 && i2 < self.n2, "grid coords out of range");
        i1 * self.n2 + i2
    }

    /// Ranks sharing toroidal slice `i2` — the membership of the `n1`
    /// communicator (AllReduce + transpose in CGYRO; Figure 1). With
    /// i2-fastest ordering these stride by `n2`.
    pub fn row_members(&self, i2: usize) -> Vec<usize> {
        (0..self.n1).map(|i1| self.rank(i1, i2)).collect()
    }

    /// Ranks sharing `i1` — the membership of the `n2` (toroidal)
    /// communicator used by the nl phase (contiguous ranks).
    pub fn col_members(&self, i1: usize) -> Vec<usize> {
        (0..self.n2).map(|i2| self.rank(i1, i2)).collect()
    }
}

/// Per-rank view of one simulation's decompositions in every phase.
#[derive(Clone, Copy, Debug)]
pub struct PhaseLayout {
    dims: SimDims,
    grid: ProcGrid,
    i1: usize,
    i2: usize,
}

impl PhaseLayout {
    /// Layout for `rank` of a simulation with `dims` on `grid`.
    pub fn new(dims: SimDims, grid: ProcGrid, rank: usize) -> Self {
        let (i1, i2) = grid.coords(rank);
        Self { dims, grid, i1, i2 }
    }

    /// Global dims.
    pub fn dims(&self) -> SimDims {
        self.dims
    }

    /// Process grid.
    pub fn grid(&self) -> ProcGrid {
        self.grid
    }

    /// This rank's `(i1, i2)` coordinates.
    pub fn coords(&self) -> (usize, usize) {
        (self.i1, self.i2)
    }

    /// Decomposition of `nv` over the `n1` ranks (str phase).
    pub fn nv_decomp(&self) -> Decomp1D {
        Decomp1D::new(self.dims.nv, self.grid.n1)
    }

    /// Decomposition of `nc` over the `n1` ranks (coll phase, CGYRO mode).
    pub fn nc_decomp(&self) -> Decomp1D {
        Decomp1D::new(self.dims.nc, self.grid.n1)
    }

    /// Decomposition of `nt` over the `n2` ranks (all phases).
    pub fn nt_decomp(&self) -> Decomp1D {
        Decomp1D::new(self.dims.nt, self.grid.n2)
    }

    /// This rank's `nv` range in the str phase.
    pub fn nv_range(&self) -> Range<usize> {
        self.nv_decomp().range(self.i1)
    }

    /// This rank's `nc` range in the coll phase (CGYRO mode).
    pub fn nc_range(&self) -> Range<usize> {
        self.nc_decomp().range(self.i1)
    }

    /// This rank's `nt` range.
    pub fn nt_range(&self) -> Range<usize> {
        self.nt_decomp().range(self.i2)
    }

    /// Local str-phase shape `(nc, nv_loc, nt_loc)`.
    pub fn str_shape(&self) -> (usize, usize, usize) {
        (self.dims.nc, self.nv_range().len(), self.nt_range().len())
    }

    /// Local coll-phase shape `(nv, nc_loc, nt_loc)` (CGYRO mode).
    pub fn coll_shape(&self) -> (usize, usize, usize) {
        (self.dims.nv, self.nc_range().len(), self.nt_range().len())
    }

    /// Local nl-phase shape `(nc_loc2, nv_loc, nt)`: the nl transpose
    /// redistributes `nc` over the `n2` communicator to complete `nt`.
    pub fn nl_shape(&self) -> (usize, usize, usize) {
        let nc2 = Decomp1D::new(self.dims.nc, self.grid.n2);
        (nc2.count(self.i2), self.nv_range().len(), self.dims.nt)
    }

    /// Complex elements held in the str phase.
    pub fn str_len(&self) -> usize {
        let (a, b, c) = self.str_shape();
        a * b * c
    }

    /// Complex elements held in the coll phase (CGYRO mode).
    pub fn coll_len(&self) -> usize {
        let (a, b, c) = self.coll_shape();
        a * b * c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_rank_coord_roundtrip() {
        let g = ProcGrid::new(4, 3);
        assert_eq!(g.size(), 12);
        for r in 0..12 {
            let (i1, i2) = g.coords(r);
            assert_eq!(g.rank(i1, i2), r);
        }
        assert_eq!(g.coords(5), (1, 2)); // i2-fastest: 5 = 1*3 + 2
    }

    #[test]
    fn row_and_col_members() {
        let g = ProcGrid::new(3, 2);
        // n1=3, n2=2, rank = i1*2 + i2: nv rows stride n2.
        assert_eq!(g.row_members(0), vec![0, 2, 4]);
        assert_eq!(g.row_members(1), vec![1, 3, 5]);
        assert_eq!(g.col_members(1), vec![2, 3]);
    }

    #[test]
    fn str_and_coll_shapes_preserve_volume() {
        let dims = SimDims::new(24, 16, 8);
        let g = ProcGrid::new(4, 2);
        let mut str_total = 0;
        let mut coll_total = 0;
        for r in 0..g.size() {
            let l = PhaseLayout::new(dims, g, r);
            let (a, b, c) = l.str_shape();
            assert_eq!(a, 24); // full nc in str
            str_total += a * b * c;
            let (d, e, f) = l.coll_shape();
            assert_eq!(d, 16); // full nv in coll
            coll_total += d * e * f;
        }
        assert_eq!(str_total, dims.state_len());
        assert_eq!(coll_total, dims.state_len());
    }

    #[test]
    fn nl_shape_completes_nt() {
        let dims = SimDims::new(24, 16, 8);
        let g = ProcGrid::new(4, 2);
        let l = PhaseLayout::new(dims, g, 5);
        let (nc2, nvl, nt) = l.nl_shape();
        assert_eq!(nt, 8);
        assert_eq!(nvl, 4);
        assert_eq!(nc2, 12);
    }

    #[test]
    fn uneven_dims_still_cover() {
        let dims = SimDims::new(10, 7, 5);
        let g = ProcGrid::new(3, 2);
        let mut total = 0;
        for r in 0..g.size() {
            let l = PhaseLayout::new(dims, g, r);
            total += l.str_len();
        }
        assert_eq!(total, dims.state_len());
    }

    #[test]
    fn ranges_consistent_with_shapes() {
        let dims = SimDims::new(12, 8, 6);
        let g = ProcGrid::new(2, 3);
        let l = PhaseLayout::new(dims, g, 4);
        assert_eq!(l.coords(), (1, 1)); // i2-fastest: 4 = 1*3 + 1
        assert_eq!(l.nv_range().len(), l.str_shape().1);
        assert_eq!(l.nc_range().len(), l.coll_shape().1);
        assert_eq!(l.nt_range().len(), l.str_shape().2);
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn bad_rank_panics() {
        ProcGrid::new(2, 2).coords(4);
    }
}
