//! Pack/unpack kernels for the str ↔ coll transposes.
//!
//! The transpose between the str layout `(nc, nv_loc, nt_loc)` and the coll
//! layout `(nv, nc_loc, nt_loc)` is performed with an AllToAll over the
//! communicator that splits `nv`/`nc` (the `n1` ranks in CGYRO mode, the
//! `k·n1` ensemble row in XGYRO mode). These kernels produce the contiguous
//! per-peer send blocks and scatter received blocks into place; they are the
//! only place where the wire format of the transpose is defined:
//!
//! * **str → coll**, block for peer `j`: `[ic ∈ nc_range(j)][iv_loc][it_loc]`
//! * **coll → str**, block for peer `j`: `[iv ∈ nv_range(j)][ic_loc][it_loc]`
//!
//! Both directions are exact inverses, which the property tests assert for
//! arbitrary (including uneven) decompositions.

use crate::tensor::Tensor3;
use std::ops::Range;

/// Pack the str-layout block destined for the peer owning `nc_range`.
///
/// `h_str` has shape `(nc, nv_loc, nt_loc)`. The output block is ordered
/// `[ic][iv_loc][it_loc]` and appended to `buf`.
pub fn pack_str_block<T: Copy>(h_str: &Tensor3<T>, nc_range: Range<usize>, buf: &mut Vec<T>) {
    let (nc, nv_loc, nt_loc) = h_str.shape();
    assert!(nc_range.end <= nc, "nc_range {nc_range:?} outside nc={nc}");
    // Rows of the str tensor are contiguous (nv_loc × nt_loc panels).
    let row_len = nv_loc * nt_loc;
    for ic in nc_range {
        let row_start = ic * row_len;
        buf.extend_from_slice(&h_str.as_slice()[row_start..row_start + row_len]);
    }
}

/// Unpack a block received from the str-side peer owning `nv_range` into the
/// coll-layout tensor `h_coll` of shape `(nv, nc_loc, nt_loc)`.
///
/// The block is ordered `[ic_loc][iv ∈ nv_range][it_loc]` (the sender's str
/// row order restricted to this rank's `nc` slice).
pub fn unpack_into_coll<T: Copy>(block: &[T], nv_range: Range<usize>, h_coll: &mut Tensor3<T>) {
    let (nv, nc_loc, nt_loc) = h_coll.shape();
    assert!(nv_range.end <= nv, "nv_range {nv_range:?} outside nv={nv}");
    let nv_blk = nv_range.len();
    assert_eq!(
        block.len(),
        nv_blk * nc_loc * nt_loc,
        "block size mismatch: got {}, expected {}",
        block.len(),
        nv_blk * nc_loc * nt_loc
    );
    let mut src = 0;
    for ic_loc in 0..nc_loc {
        for iv in nv_range.clone() {
            let dst = (iv * nc_loc + ic_loc) * nt_loc;
            h_coll.as_mut_slice()[dst..dst + nt_loc].copy_from_slice(&block[src..src + nt_loc]);
            src += nt_loc;
        }
    }
}

/// Pack the coll-layout block destined for the peer owning `nv_range`.
///
/// `h_coll` has shape `(nv, nc_loc, nt_loc)`; the block is the contiguous
/// rows `nv_range`, ordered `[iv][ic_loc][it_loc]`.
pub fn pack_coll_block<T: Copy>(h_coll: &Tensor3<T>, nv_range: Range<usize>, buf: &mut Vec<T>) {
    let (nv, nc_loc, nt_loc) = h_coll.shape();
    assert!(nv_range.end <= nv, "nv_range {nv_range:?} outside nv={nv}");
    let start = nv_range.start * nc_loc * nt_loc;
    let len = nv_range.len() * nc_loc * nt_loc;
    buf.extend_from_slice(&h_coll.as_slice()[start..start + len]);
}

/// Unpack a block received from the coll-side peer owning `nc_range` into
/// the str-layout tensor `h_str` of shape `(nc, nv_loc, nt_loc)`.
///
/// The block is ordered `[iv_loc][ic ∈ nc_range][it_loc]` (the sender's coll
/// row order restricted to this rank's `nv` slice).
pub fn unpack_into_str<T: Copy>(block: &[T], nc_range: Range<usize>, h_str: &mut Tensor3<T>) {
    let (nc, nv_loc, nt_loc) = h_str.shape();
    assert!(nc_range.end <= nc, "nc_range {nc_range:?} outside nc={nc}");
    let nc_blk = nc_range.len();
    assert_eq!(
        block.len(),
        nv_loc * nc_blk * nt_loc,
        "block size mismatch: got {}, expected {}",
        block.len(),
        nv_loc * nc_blk * nt_loc
    );
    let mut src = 0;
    for iv_loc in 0..nv_loc {
        for ic in nc_range.clone() {
            let dst = (ic * nv_loc + iv_loc) * nt_loc;
            h_str.as_mut_slice()[dst..dst + nt_loc].copy_from_slice(&block[src..src + nt_loc]);
            src += nt_loc;
        }
    }
}

/// Unpack a block received from the str-side peer owning `nt_range` into
/// the nl-layout tensor `h_nl` of shape `(nc_blk, nv_loc, nt)`.
///
/// The block is ordered `[ic_loc][iv_loc][it ∈ nt_range]` (the sender's str
/// rows restricted to this rank's `nc` slice, carrying the sender's local
/// toroidal slice).
pub fn unpack_into_nl<T: Copy>(block: &[T], nt_range: Range<usize>, h_nl: &mut Tensor3<T>) {
    let (nc_blk, nv_loc, nt) = h_nl.shape();
    assert!(nt_range.end <= nt, "nt_range {nt_range:?} outside nt={nt}");
    let ntl = nt_range.len();
    assert_eq!(
        block.len(),
        nc_blk * nv_loc * ntl,
        "block size mismatch: got {}, expected {}",
        block.len(),
        nc_blk * nv_loc * ntl
    );
    let mut src = 0;
    for ic in 0..nc_blk {
        for ivl in 0..nv_loc {
            let dst = (ic * nv_loc + ivl) * nt + nt_range.start;
            h_nl.as_mut_slice()[dst..dst + ntl].copy_from_slice(&block[src..src + ntl]);
            src += ntl;
        }
    }
}

/// Inverse of [`pack_str_block`]: write a block ordered
/// `[ic ∈ nc_range][iv_loc][it_loc]` back into the str-layout tensor's rows.
pub fn unpack_into_str_from_nl<T: Copy>(
    block: &[T],
    nc_range: Range<usize>,
    h_str: &mut Tensor3<T>,
) {
    let (nc, nv_loc, nt_loc) = h_str.shape();
    assert!(nc_range.end <= nc, "nc_range {nc_range:?} outside nc={nc}");
    let row_len = nv_loc * nt_loc;
    assert_eq!(
        block.len(),
        nc_range.len() * row_len,
        "block size mismatch: got {}, expected {}",
        block.len(),
        nc_range.len() * row_len
    );
    let mut src = 0;
    for ic in nc_range {
        let dst = ic * row_len;
        h_str.as_mut_slice()[dst..dst + row_len].copy_from_slice(&block[src..src + row_len]);
        src += row_len;
    }
}

/// Pack the nl-layout block destined for the str-side peer owning
/// `nt_range`: shape `(nc_blk, nv_loc, nt)` restricted to those toroidal
/// modes, ordered `[ic_loc][iv_loc][it ∈ nt_range]`.
pub fn pack_nl_block<T: Copy>(h_nl: &Tensor3<T>, nt_range: Range<usize>, buf: &mut Vec<T>) {
    let (nc_blk, nv_loc, nt) = h_nl.shape();
    assert!(nt_range.end <= nt, "nt_range {nt_range:?} outside nt={nt}");
    for ic in 0..nc_blk {
        for ivl in 0..nv_loc {
            let start = (ic * nv_loc + ivl) * nt + nt_range.start;
            buf.extend_from_slice(&h_nl.as_slice()[start..start + nt_range.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomp1D;

    /// Reference serial transpose: str (nc, nv, nt) -> coll (nv, nc, nt).
    fn serial_transpose(h: &Tensor3<u64>) -> Tensor3<u64> {
        let (nc, nv, nt) = h.shape();
        Tensor3::from_fn(nv, nc, nt, |iv, ic, it| h[(ic, iv, it)])
    }

    /// Run the full distributed transpose for every (n1_str_parts,
    /// nc_parts) pair and check it matches the serial transpose.
    fn roundtrip(nc: usize, nv: usize, nt: usize, nv_parts: usize, nc_parts: usize) {
        let nv_d = Decomp1D::new(nv, nv_parts);
        let nc_d = Decomp1D::new(nc, nc_parts);
        // Global str state distributed over nv_parts "ranks".
        let global = Tensor3::from_fn(nc, nv, nt, |a, b, c| (a * 10_000 + b * 100 + c) as u64);
        let str_bufs: Vec<Tensor3<u64>> = (0..nv_parts)
            .map(|p| {
                let r = nv_d.range(p);
                Tensor3::from_fn(nc, r.len(), nt, |ic, ivl, it| global[(ic, r.start + ivl, it)])
            })
            .collect();

        // "AllToAll": every str rank packs a block per coll rank.
        let mut coll_bufs: Vec<Tensor3<u64>> = (0..nc_parts)
            .map(|q| Tensor3::new(nv, nc_d.count(q), nt))
            .collect();
        for (p, hstr) in str_bufs.iter().enumerate() {
            for (q, hcoll) in coll_bufs.iter_mut().enumerate() {
                let mut block = Vec::new();
                pack_str_block(hstr, nc_d.range(q), &mut block);
                unpack_into_coll(&block, nv_d.range(p), hcoll);
            }
        }

        // Check against the serial transpose.
        let want = serial_transpose(&global);
        for (q, hcoll) in coll_bufs.iter().enumerate() {
            let r = nc_d.range(q);
            for iv in 0..nv {
                for (icl, ic) in r.clone().enumerate() {
                    for it in 0..nt {
                        assert_eq!(hcoll[(iv, icl, it)], want[(iv, ic, it)]);
                    }
                }
            }
        }

        // Reverse transpose: coll -> str, must reproduce the originals.
        let mut str_back: Vec<Tensor3<u64>> = (0..nv_parts)
            .map(|p| Tensor3::new(nc, nv_d.count(p), nt))
            .collect();
        for (q, hcoll) in coll_bufs.iter().enumerate() {
            for (p, hstr) in str_back.iter_mut().enumerate() {
                let mut block = Vec::new();
                pack_coll_block(hcoll, nv_d.range(p), &mut block);
                unpack_into_str(&block, nc_d.range(q), hstr);
            }
        }
        for (orig, back) in str_bufs.iter().zip(&str_back) {
            assert_eq!(orig, back);
        }
    }

    #[test]
    fn transpose_even_square_parts() {
        roundtrip(8, 8, 4, 4, 4);
    }

    #[test]
    fn transpose_uneven_dims() {
        roundtrip(10, 7, 3, 3, 3);
    }

    #[test]
    fn transpose_mismatched_part_counts() {
        // XGYRO case: nc split finer (ensemble-wide) than nv (per-sim).
        roundtrip(12, 6, 2, 2, 6);
        roundtrip(12, 6, 2, 3, 12);
    }

    #[test]
    fn transpose_single_part() {
        roundtrip(5, 4, 3, 1, 1);
    }

    #[test]
    #[should_panic(expected = "block size mismatch")]
    fn unpack_wrong_size_panics() {
        let mut h: Tensor3<u64> = Tensor3::new(4, 2, 2);
        unpack_into_coll(&[0, 1, 2], 0..2, &mut h);
    }

    #[test]
    #[should_panic(expected = "outside nc")]
    fn pack_out_of_range_panics() {
        let h: Tensor3<u64> = Tensor3::new(4, 2, 2);
        let mut buf = Vec::new();
        pack_str_block(&h, 2..5, &mut buf);
    }

    #[test]
    fn nl_transpose_roundtrip() {
        // str (nc, nvl, ntl) shards over the nt communicator -> nl layout
        // (nc2_loc, nvl, nt) and back.
        let (nc, nvl, nt, n2) = (6usize, 3usize, 5usize, 2usize);
        let nt_d = Decomp1D::new(nt, n2);
        let nc2_d = Decomp1D::new(nc, n2);
        let global = Tensor3::from_fn(nc, nvl, nt, |a, b, c| (a * 100 + b * 10 + c) as u64);
        // Build the per-rank str shards (full nc, local nt).
        let str_shards: Vec<Tensor3<u64>> = (0..n2)
            .map(|p| {
                let r = nt_d.range(p);
                Tensor3::from_fn(nc, nvl, r.len(), |ic, ivl, itl| {
                    global[(ic, ivl, r.start + itl)]
                })
            })
            .collect();
        // Forward: every rank packs nc2 blocks, receivers complete nt.
        let mut nl_shards: Vec<Tensor3<u64>> = (0..n2)
            .map(|q| Tensor3::new(nc2_d.count(q), nvl, nt))
            .collect();
        for (p, s) in str_shards.iter().enumerate() {
            for (q, d) in nl_shards.iter_mut().enumerate() {
                let mut blk = Vec::new();
                pack_str_block(s, nc2_d.range(q), &mut blk);
                unpack_into_nl(&blk, nt_d.range(p), d);
            }
        }
        for (q, d) in nl_shards.iter().enumerate() {
            let r = nc2_d.range(q);
            for (icl, ic) in r.clone().enumerate() {
                for ivl in 0..nvl {
                    for it in 0..nt {
                        assert_eq!(d[(icl, ivl, it)], global[(ic, ivl, it)]);
                    }
                }
            }
        }
        // Reverse: back to str shards.
        let mut back: Vec<Tensor3<u64>> = (0..n2)
            .map(|p| Tensor3::new(nc, nvl, nt_d.count(p)))
            .collect();
        for (q, d) in nl_shards.iter().enumerate() {
            for (p, s) in back.iter_mut().enumerate() {
                let mut blk = Vec::new();
                pack_nl_block(d, nt_d.range(p), &mut blk);
                unpack_into_str_from_nl(&blk, nc2_d.range(q), s);
            }
        }
        for (orig, b) in str_shards.iter().zip(&back) {
            assert_eq!(orig, b);
        }
    }
}
