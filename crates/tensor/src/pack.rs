//! Pack/unpack kernels for the str ↔ coll transposes.
//!
//! The transpose between the str layout `(nc, nv_loc, nt_loc)` and the coll
//! layout `(nv, nc_loc, nt_loc)` is performed with an AllToAll over the
//! communicator that splits `nv`/`nc` (the `n1` ranks in CGYRO mode, the
//! `k·n1` ensemble row in XGYRO mode). These kernels produce the contiguous
//! per-peer send blocks and scatter received blocks into place; they are the
//! only place where the wire format of the transpose is defined:
//!
//! * **str → coll**, block for peer `j`: `[ic ∈ nc_range(j)][iv_loc][it_loc]`
//! * **coll → str**, block for peer `j`: `[iv ∈ nv_range(j)][ic_loc][it_loc]`
//!
//! Both directions are exact inverses, which the property tests assert for
//! arbitrary (including uneven) decompositions.

use crate::tensor::Tensor3;
use std::ops::Range;

/// Pack the str-layout block destined for the peer owning `nc_range`.
///
/// `h_str` has shape `(nc, nv_loc, nt_loc)`. The output block is ordered
/// `[ic][iv_loc][it_loc]` and appended to `buf`.
pub fn pack_str_block<T: Copy>(h_str: &Tensor3<T>, nc_range: Range<usize>, buf: &mut Vec<T>) {
    let (nc, nv_loc, nt_loc) = h_str.shape();
    assert!(nc_range.end <= nc, "nc_range {nc_range:?} outside nc={nc}");
    // Rows of the str tensor are contiguous (nv_loc × nt_loc panels).
    let row_len = nv_loc * nt_loc;
    for ic in nc_range {
        let row_start = ic * row_len;
        buf.extend_from_slice(&h_str.as_slice()[row_start..row_start + row_len]);
    }
}

/// Unpack a block received from the str-side peer owning `nv_range` into the
/// coll-layout tensor `h_coll` of shape `(nv, nc_loc, nt_loc)`.
///
/// The block is ordered `[ic_loc][iv ∈ nv_range][it_loc]` (the sender's str
/// row order restricted to this rank's `nc` slice).
pub fn unpack_into_coll<T: Copy>(block: &[T], nv_range: Range<usize>, h_coll: &mut Tensor3<T>) {
    let (nv, nc_loc, nt_loc) = h_coll.shape();
    assert!(nv_range.end <= nv, "nv_range {nv_range:?} outside nv={nv}");
    let nv_blk = nv_range.len();
    assert_eq!(
        block.len(),
        nv_blk * nc_loc * nt_loc,
        "block size mismatch: got {}, expected {}",
        block.len(),
        nv_blk * nc_loc * nt_loc
    );
    let mut src = 0;
    for ic_loc in 0..nc_loc {
        for iv in nv_range.clone() {
            let dst = (iv * nc_loc + ic_loc) * nt_loc;
            h_coll.as_mut_slice()[dst..dst + nt_loc].copy_from_slice(&block[src..src + nt_loc]);
            src += nt_loc;
        }
    }
}

/// Pack the coll-layout block destined for the peer owning `nv_range`.
///
/// `h_coll` has shape `(nv, nc_loc, nt_loc)`; the block is the contiguous
/// rows `nv_range`, ordered `[iv][ic_loc][it_loc]`.
pub fn pack_coll_block<T: Copy>(h_coll: &Tensor3<T>, nv_range: Range<usize>, buf: &mut Vec<T>) {
    let (nv, nc_loc, nt_loc) = h_coll.shape();
    assert!(nv_range.end <= nv, "nv_range {nv_range:?} outside nv={nv}");
    let start = nv_range.start * nc_loc * nt_loc;
    let len = nv_range.len() * nc_loc * nt_loc;
    buf.extend_from_slice(&h_coll.as_slice()[start..start + len]);
}

/// Unpack a block received from the coll-side peer owning `nc_range` into
/// the str-layout tensor `h_str` of shape `(nc, nv_loc, nt_loc)`.
///
/// The block is ordered `[iv_loc][ic ∈ nc_range][it_loc]` (the sender's coll
/// row order restricted to this rank's `nv` slice).
pub fn unpack_into_str<T: Copy>(block: &[T], nc_range: Range<usize>, h_str: &mut Tensor3<T>) {
    let (nc, nv_loc, nt_loc) = h_str.shape();
    assert!(nc_range.end <= nc, "nc_range {nc_range:?} outside nc={nc}");
    let nc_blk = nc_range.len();
    assert_eq!(
        block.len(),
        nv_loc * nc_blk * nt_loc,
        "block size mismatch: got {}, expected {}",
        block.len(),
        nv_loc * nc_blk * nt_loc
    );
    let mut src = 0;
    for iv_loc in 0..nv_loc {
        for ic in nc_range.clone() {
            let dst = (ic * nv_loc + iv_loc) * nt_loc;
            h_str.as_mut_slice()[dst..dst + nt_loc].copy_from_slice(&block[src..src + nt_loc]);
            src += nt_loc;
        }
    }
}

/// Unpack a block received from the str-side peer owning `nt_range` into
/// the nl-layout tensor `h_nl` of shape `(nc_blk, nv_loc, nt)`.
///
/// The block is ordered `[ic_loc][iv_loc][it ∈ nt_range]` (the sender's str
/// rows restricted to this rank's `nc` slice, carrying the sender's local
/// toroidal slice).
pub fn unpack_into_nl<T: Copy>(block: &[T], nt_range: Range<usize>, h_nl: &mut Tensor3<T>) {
    let (nc_blk, nv_loc, nt) = h_nl.shape();
    assert!(nt_range.end <= nt, "nt_range {nt_range:?} outside nt={nt}");
    let ntl = nt_range.len();
    assert_eq!(
        block.len(),
        nc_blk * nv_loc * ntl,
        "block size mismatch: got {}, expected {}",
        block.len(),
        nc_blk * nv_loc * ntl
    );
    let mut src = 0;
    for ic in 0..nc_blk {
        for ivl in 0..nv_loc {
            let dst = (ic * nv_loc + ivl) * nt + nt_range.start;
            h_nl.as_mut_slice()[dst..dst + ntl].copy_from_slice(&block[src..src + ntl]);
            src += ntl;
        }
    }
}

/// Inverse of [`pack_str_block`]: write a block ordered
/// `[ic ∈ nc_range][iv_loc][it_loc]` back into the str-layout tensor's rows.
pub fn unpack_into_str_from_nl<T: Copy>(
    block: &[T],
    nc_range: Range<usize>,
    h_str: &mut Tensor3<T>,
) {
    let (nc, nv_loc, nt_loc) = h_str.shape();
    assert!(nc_range.end <= nc, "nc_range {nc_range:?} outside nc={nc}");
    let row_len = nv_loc * nt_loc;
    assert_eq!(
        block.len(),
        nc_range.len() * row_len,
        "block size mismatch: got {}, expected {}",
        block.len(),
        nc_range.len() * row_len
    );
    let mut src = 0;
    for ic in nc_range {
        let dst = ic * row_len;
        h_str.as_mut_slice()[dst..dst + row_len].copy_from_slice(&block[src..src + row_len]);
        src += row_len;
    }
}

/// Unpack a block received from the str-side peer owning `nv_range` into a
/// *profile-contiguous* coll tensor `h_cp` of shape
/// `(nc_loc, nt_loc, lanes)`, writing velocity index `iv` into lane
/// `lane + iv`.
///
/// Same wire format as [`unpack_into_coll`] (`[ic_loc][iv ∈ nv_range]
/// [it_loc]`), but the destination layout keeps the whole velocity profile
/// at one `(ic, it)` contiguous: `h_cp.line(ic, it)[lane + iv]`. With
/// `lanes = k·nv` the k ensemble members' profiles stack into one
/// multi-RHS block per `(ic, it)`; `lane = s·nv` selects member `s`.
/// Lane-for-lane this is the exact permutation of the legacy coll layout:
/// `h_coll[(iv, ic, it)] == h_cp[(ic, it, lane + iv)]`.
pub fn unpack_into_coll_profiles<T: Copy>(
    block: &[T],
    nv_range: Range<usize>,
    lane: usize,
    h_cp: &mut Tensor3<T>,
) {
    let (nc_loc, nt_loc, lanes) = h_cp.shape();
    assert!(
        lane + nv_range.end <= lanes,
        "lane {lane} + nv_range {nv_range:?} outside lanes={lanes}"
    );
    let nv_blk = nv_range.len();
    assert_eq!(
        block.len(),
        nv_blk * nc_loc * nt_loc,
        "block size mismatch: got {}, expected {}",
        block.len(),
        nv_blk * nc_loc * nt_loc
    );
    let dst = h_cp.as_mut_slice();
    let mut src = 0;
    for ic in 0..nc_loc {
        for iv in nv_range.clone() {
            let base = ic * nt_loc * lanes + lane + iv;
            for it in 0..nt_loc {
                dst[base + it * lanes] = block[src];
                src += 1;
            }
        }
    }
}

/// Pack the coll-side block destined for the str peer owning `nv_range`
/// from a profile-contiguous tensor `h_cp` of shape `(nc_loc, nt_loc,
/// lanes)`, reading velocity index `iv` from lane `lane + iv`.
///
/// Produces the same wire format as [`pack_coll_block`]
/// (`[iv ∈ nv_range][ic_loc][it_loc]`), so receivers keep using
/// [`unpack_into_str`] unchanged.
pub fn pack_coll_profiles_block<T: Copy>(
    h_cp: &Tensor3<T>,
    nv_range: Range<usize>,
    lane: usize,
    buf: &mut Vec<T>,
) {
    let (nc_loc, nt_loc, lanes) = h_cp.shape();
    assert!(
        lane + nv_range.end <= lanes,
        "lane {lane} + nv_range {nv_range:?} outside lanes={lanes}"
    );
    let src = h_cp.as_slice();
    buf.reserve(nv_range.len() * nc_loc * nt_loc);
    for iv in nv_range {
        for ic in 0..nc_loc {
            let base = ic * nt_loc * lanes + lane + iv;
            for it in 0..nt_loc {
                buf.push(src[base + it * lanes]);
            }
        }
    }
}

/// Pack several equally-sized moment buffers into one contiguous staging
/// buffer for a fused reduction: `buf = sections[0] ++ sections[1] ++ …`.
///
/// This defines the packed-moment wire layout of the fused str-phase
/// AllReduce: moment `m` occupies `buf[m·n .. (m+1)·n]` where `n` is the
/// common section length. Because an elementwise rank-order sum over the
/// concatenation is exactly the per-section sums side by side, the fused
/// reduce is bitwise identical to reducing each section separately.
pub fn pack_moments<T: Copy>(sections: &[&[T]], buf: &mut Vec<T>) {
    let n = sections.first().map_or(0, |s| s.len());
    for s in sections {
        assert_eq!(s.len(), n, "all fused moment sections must have equal length");
    }
    buf.clear();
    buf.reserve(n * sections.len());
    for s in sections {
        buf.extend_from_slice(s);
    }
}

/// Inverse of [`pack_moments`]: scatter the fused buffer back into the
/// individual moment buffers in place.
pub fn unpack_moments<T: Copy>(buf: &[T], sections: &mut [&mut [T]]) {
    let n = sections.first().map_or(0, |s| s.len());
    for s in sections.iter() {
        assert_eq!(s.len(), n, "all fused moment sections must have equal length");
    }
    assert_eq!(
        buf.len(),
        n * sections.len(),
        "fused buffer length {} does not tile {} sections of {}",
        buf.len(),
        sections.len(),
        n
    );
    for (m, s) in sections.iter_mut().enumerate() {
        s.copy_from_slice(&buf[m * n..(m + 1) * n]);
    }
}

/// Single-toroidal-slice restriction of [`pack_str_block`]: pack only the
/// `itl` plane, ordered `[ic ∈ nc_range][iv_loc]`.
///
/// The per-slice wire format is the `it_loc = itl` restriction of the full
/// block format, which lets the collision exchange pipeline one toroidal
/// slice at a time (overlapping the transpose of slice `i+1` with the panel
/// application of slice `i`) while staying bitwise identical to the
/// all-at-once exchange.
pub fn pack_str_slice<T: Copy>(
    h_str: &Tensor3<T>,
    nc_range: Range<usize>,
    itl: usize,
    buf: &mut Vec<T>,
) {
    let (nc, nv_loc, nt_loc) = h_str.shape();
    assert!(nc_range.end <= nc, "nc_range {nc_range:?} outside nc={nc}");
    assert!(itl < nt_loc, "slice {itl} outside nt_loc={nt_loc}");
    let src = h_str.as_slice();
    buf.reserve(nc_range.len() * nv_loc);
    for ic in nc_range {
        let base = ic * nv_loc * nt_loc + itl;
        for ivl in 0..nv_loc {
            buf.push(src[base + ivl * nt_loc]);
        }
    }
}

/// Single-slice restriction of [`unpack_into_coll_profiles`]: scatter a
/// block ordered `[ic_loc][iv ∈ nv_range]` into the `it` plane of the
/// profile-contiguous tensor `h_cp` of shape `(nc_loc, nt_loc, lanes)`.
pub fn unpack_into_coll_profiles_slice<T: Copy>(
    block: &[T],
    nv_range: Range<usize>,
    lane: usize,
    it: usize,
    h_cp: &mut Tensor3<T>,
) {
    let (nc_loc, nt_loc, lanes) = h_cp.shape();
    assert!(
        lane + nv_range.end <= lanes,
        "lane {lane} + nv_range {nv_range:?} outside lanes={lanes}"
    );
    assert!(it < nt_loc, "slice {it} outside nt_loc={nt_loc}");
    assert_eq!(
        block.len(),
        nv_range.len() * nc_loc,
        "block size mismatch: got {}, expected {}",
        block.len(),
        nv_range.len() * nc_loc
    );
    let dst = h_cp.as_mut_slice();
    let mut src = 0;
    for ic in 0..nc_loc {
        let base = (ic * nt_loc + it) * lanes + lane;
        for iv in nv_range.clone() {
            dst[base + iv] = block[src];
            src += 1;
        }
    }
}

/// Single-slice restriction of [`pack_coll_profiles_block`]: pack the `it`
/// plane for the str peer owning `nv_range`, ordered `[iv ∈ nv_range]
/// [ic_loc]`, so receivers use [`unpack_into_str_slice`].
pub fn pack_coll_profiles_slice<T: Copy>(
    h_cp: &Tensor3<T>,
    nv_range: Range<usize>,
    lane: usize,
    it: usize,
    buf: &mut Vec<T>,
) {
    let (nc_loc, nt_loc, lanes) = h_cp.shape();
    assert!(
        lane + nv_range.end <= lanes,
        "lane {lane} + nv_range {nv_range:?} outside lanes={lanes}"
    );
    assert!(it < nt_loc, "slice {it} outside nt_loc={nt_loc}");
    let src = h_cp.as_slice();
    buf.reserve(nv_range.len() * nc_loc);
    for iv in nv_range {
        for ic in 0..nc_loc {
            buf.push(src[(ic * nt_loc + it) * lanes + lane + iv]);
        }
    }
}

/// Single-slice restriction of [`unpack_into_str`]: scatter a block ordered
/// `[iv_loc][ic ∈ nc_range]` into the `itl` plane of the str-layout tensor.
pub fn unpack_into_str_slice<T: Copy>(
    block: &[T],
    nc_range: Range<usize>,
    itl: usize,
    h_str: &mut Tensor3<T>,
) {
    let (nc, nv_loc, nt_loc) = h_str.shape();
    assert!(nc_range.end <= nc, "nc_range {nc_range:?} outside nc={nc}");
    assert!(itl < nt_loc, "slice {itl} outside nt_loc={nt_loc}");
    assert_eq!(
        block.len(),
        nv_loc * nc_range.len(),
        "block size mismatch: got {}, expected {}",
        block.len(),
        nv_loc * nc_range.len()
    );
    let dst = h_str.as_mut_slice();
    let mut src = 0;
    for ivl in 0..nv_loc {
        for ic in nc_range.clone() {
            dst[(ic * nv_loc + ivl) * nt_loc + itl] = block[src];
            src += 1;
        }
    }
}

/// Pack the nl-layout block destined for the str-side peer owning
/// `nt_range`: shape `(nc_blk, nv_loc, nt)` restricted to those toroidal
/// modes, ordered `[ic_loc][iv_loc][it ∈ nt_range]`.
pub fn pack_nl_block<T: Copy>(h_nl: &Tensor3<T>, nt_range: Range<usize>, buf: &mut Vec<T>) {
    let (nc_blk, nv_loc, nt) = h_nl.shape();
    assert!(nt_range.end <= nt, "nt_range {nt_range:?} outside nt={nt}");
    for ic in 0..nc_blk {
        for ivl in 0..nv_loc {
            let start = (ic * nv_loc + ivl) * nt + nt_range.start;
            buf.extend_from_slice(&h_nl.as_slice()[start..start + nt_range.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomp1D;

    /// Reference serial transpose: str (nc, nv, nt) -> coll (nv, nc, nt).
    fn serial_transpose(h: &Tensor3<u64>) -> Tensor3<u64> {
        let (nc, nv, nt) = h.shape();
        Tensor3::from_fn(nv, nc, nt, |iv, ic, it| h[(ic, iv, it)])
    }

    /// Run the full distributed transpose for every (n1_str_parts,
    /// nc_parts) pair and check it matches the serial transpose.
    fn roundtrip(nc: usize, nv: usize, nt: usize, nv_parts: usize, nc_parts: usize) {
        let nv_d = Decomp1D::new(nv, nv_parts);
        let nc_d = Decomp1D::new(nc, nc_parts);
        // Global str state distributed over nv_parts "ranks".
        let global = Tensor3::from_fn(nc, nv, nt, |a, b, c| (a * 10_000 + b * 100 + c) as u64);
        let str_bufs: Vec<Tensor3<u64>> = (0..nv_parts)
            .map(|p| {
                let r = nv_d.range(p);
                Tensor3::from_fn(nc, r.len(), nt, |ic, ivl, it| global[(ic, r.start + ivl, it)])
            })
            .collect();

        // "AllToAll": every str rank packs a block per coll rank.
        let mut coll_bufs: Vec<Tensor3<u64>> = (0..nc_parts)
            .map(|q| Tensor3::new(nv, nc_d.count(q), nt))
            .collect();
        for (p, hstr) in str_bufs.iter().enumerate() {
            for (q, hcoll) in coll_bufs.iter_mut().enumerate() {
                let mut block = Vec::new();
                pack_str_block(hstr, nc_d.range(q), &mut block);
                unpack_into_coll(&block, nv_d.range(p), hcoll);
            }
        }

        // Check against the serial transpose.
        let want = serial_transpose(&global);
        for (q, hcoll) in coll_bufs.iter().enumerate() {
            let r = nc_d.range(q);
            for iv in 0..nv {
                for (icl, ic) in r.clone().enumerate() {
                    for it in 0..nt {
                        assert_eq!(hcoll[(iv, icl, it)], want[(iv, ic, it)]);
                    }
                }
            }
        }

        // Reverse transpose: coll -> str, must reproduce the originals.
        let mut str_back: Vec<Tensor3<u64>> = (0..nv_parts)
            .map(|p| Tensor3::new(nc, nv_d.count(p), nt))
            .collect();
        for (q, hcoll) in coll_bufs.iter().enumerate() {
            for (p, hstr) in str_back.iter_mut().enumerate() {
                let mut block = Vec::new();
                pack_coll_block(hcoll, nv_d.range(p), &mut block);
                unpack_into_str(&block, nc_d.range(q), hstr);
            }
        }
        for (orig, back) in str_bufs.iter().zip(&str_back) {
            assert_eq!(orig, back);
        }
    }

    #[test]
    fn transpose_even_square_parts() {
        roundtrip(8, 8, 4, 4, 4);
    }

    #[test]
    fn transpose_uneven_dims() {
        roundtrip(10, 7, 3, 3, 3);
    }

    #[test]
    fn transpose_mismatched_part_counts() {
        // XGYRO case: nc split finer (ensemble-wide) than nv (per-sim).
        roundtrip(12, 6, 2, 2, 6);
        roundtrip(12, 6, 2, 3, 12);
    }

    #[test]
    fn transpose_single_part() {
        roundtrip(5, 4, 3, 1, 1);
    }

    #[test]
    #[should_panic(expected = "block size mismatch")]
    fn unpack_wrong_size_panics() {
        let mut h: Tensor3<u64> = Tensor3::new(4, 2, 2);
        unpack_into_coll(&[0, 1, 2], 0..2, &mut h);
    }

    #[test]
    #[should_panic(expected = "outside nc")]
    fn pack_out_of_range_panics() {
        let h: Tensor3<u64> = Tensor3::new(4, 2, 2);
        let mut buf = Vec::new();
        pack_str_block(&h, 2..5, &mut buf);
    }

    #[test]
    fn profile_layout_is_exact_permutation_of_coll_layout() {
        // Unpacking the same wire block into the legacy (nv, nc, nt) layout
        // and the profile-contiguous (nc, nt, nv) layout must agree
        // element-for-element under the documented permutation.
        let (nc, nv, nt) = (5usize, 7usize, 3usize);
        let hstr = Tensor3::from_fn(nc, nv, nt, |a, b, c| (a * 1000 + b * 10 + c) as u64);
        let mut block = Vec::new();
        pack_str_block(&hstr, 0..nc, &mut block);
        let mut h_coll: Tensor3<u64> = Tensor3::new(nv, nc, nt);
        let mut h_cp: Tensor3<u64> = Tensor3::new(nc, nt, nv);
        unpack_into_coll(&block, 0..nv, &mut h_coll);
        unpack_into_coll_profiles(&block, 0..nv, 0, &mut h_cp);
        for iv in 0..nv {
            for ic in 0..nc {
                for it in 0..nt {
                    assert_eq!(h_coll[(iv, ic, it)], h_cp[(ic, it, iv)]);
                }
            }
        }
        // And the profile line is the contiguous velocity profile.
        assert_eq!(h_cp.line(2, 1), (0..nv).map(|iv| 2001 + 10 * iv as u64).collect::<Vec<_>>());
    }

    #[test]
    fn profile_pack_matches_coll_pack_wire_format() {
        let (nc, nv, nt) = (4usize, 6usize, 2usize);
        let h_coll = Tensor3::from_fn(nv, nc, nt, |a, b, c| (a * 100 + b * 10 + c) as u64);
        let h_cp = Tensor3::from_fn(nc, nt, nv, |ic, it, iv| h_coll[(iv, ic, it)]);
        for range in [0..nv, 1..4, 2..2, 5..6] {
            let mut b1 = Vec::new();
            let mut b2 = Vec::new();
            pack_coll_block(&h_coll, range.clone(), &mut b1);
            pack_coll_profiles_block(&h_cp, range, 0, &mut b2);
            assert_eq!(b1, b2);
        }
    }

    #[test]
    fn profile_lanes_stack_members() {
        // Two members' profiles interleave into one (nc, nt, 2*nv) tensor;
        // lane = s*nv selects member s, and round-trips per member.
        let (nc, nv, nt, k) = (3usize, 4usize, 2usize, 2usize);
        let members: Vec<Tensor3<u64>> = (0..k)
            .map(|s| {
                Tensor3::from_fn(nc, nv, nt, |a, b, c| {
                    (s * 100_000 + a * 1000 + b * 10 + c) as u64
                })
            })
            .collect();
        let mut h_cp: Tensor3<u64> = Tensor3::new(nc, nt, k * nv);
        for (s, m) in members.iter().enumerate() {
            let mut block = Vec::new();
            pack_str_block(m, 0..nc, &mut block);
            unpack_into_coll_profiles(&block, 0..nv, s * nv, &mut h_cp);
        }
        for (s, m) in members.iter().enumerate() {
            // Reverse: pack member s back out and scatter into a str tensor.
            let mut block = Vec::new();
            pack_coll_profiles_block(&h_cp, 0..nv, s * nv, &mut block);
            let mut back: Tensor3<u64> = Tensor3::new(nc, nv, nt);
            unpack_into_str(&block, 0..nc, &mut back);
            assert_eq!(&back, m);
        }
    }

    #[test]
    #[should_panic(expected = "outside lanes")]
    fn profile_unpack_lane_overflow_panics() {
        let mut h: Tensor3<u64> = Tensor3::new(2, 2, 4);
        unpack_into_coll_profiles(&[0u64; 8], 0..2, 3, &mut h);
    }

    #[test]
    fn pack_moments_concatenates_and_roundtrips() {
        let a: Vec<u64> = (0..6).collect();
        let b: Vec<u64> = (100..106).collect();
        let c: Vec<u64> = (200..206).collect();
        let mut fused = vec![99u64; 3]; // pack must clear stale contents
        pack_moments(&[&a, &b, &c], &mut fused);
        assert_eq!(fused.len(), 18);
        assert_eq!(&fused[..6], a.as_slice());
        assert_eq!(&fused[6..12], b.as_slice());
        assert_eq!(&fused[12..], c.as_slice());
        let (mut a2, mut b2, mut c2) = (vec![0u64; 6], vec![0u64; 6], vec![0u64; 6]);
        unpack_moments(&fused, &mut [&mut a2, &mut b2, &mut c2]);
        assert_eq!((a2, b2, c2), (a, b, c));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn pack_moments_rejects_ragged_sections() {
        let mut buf = Vec::new();
        pack_moments(&[&[1u64, 2][..], &[3u64][..]], &mut buf);
    }

    #[test]
    #[should_panic(expected = "does not tile")]
    fn unpack_moments_rejects_wrong_length() {
        let (mut a, mut b) = (vec![0u64; 3], vec![0u64; 3]);
        unpack_moments(&[1u64; 5], &mut [&mut a, &mut b]);
    }

    #[test]
    fn slice_kernels_match_full_kernels_slice_by_slice() {
        // Running the per-slice fwd kernels for every itl must reproduce the
        // all-at-once pack/unpack bit-for-bit — the pipelined collision
        // exchange's correctness invariant.
        let (nc, nv, nt, lanes_extra) = (5usize, 4usize, 3usize, 2usize);
        let lanes = nv + lanes_extra;
        let hstr = Tensor3::from_fn(nc, nv, nt, |a, b, c| (a * 1000 + b * 10 + c) as u64);
        let nc_range = 1..4;
        let nv_range = 0..nv;
        let lane = 1;

        // Forward: full-block path.
        let mut full_block = Vec::new();
        pack_str_block(&hstr, nc_range.clone(), &mut full_block);
        let mut cp_full: Tensor3<u64> = Tensor3::new(nc_range.len(), nt, lanes);
        unpack_into_coll_profiles(&full_block, nv_range.clone(), lane, &mut cp_full);

        // Forward: per-slice path.
        let mut cp_sliced: Tensor3<u64> = Tensor3::new(nc_range.len(), nt, lanes);
        for itl in 0..nt {
            let mut blk = Vec::new();
            pack_str_slice(&hstr, nc_range.clone(), itl, &mut blk);
            assert_eq!(blk.len(), nc_range.len() * nv);
            unpack_into_coll_profiles_slice(&blk, nv_range.clone(), lane, itl, &mut cp_sliced);
        }
        assert_eq!(cp_full, cp_sliced);

        // Reverse: full-block path.
        let mut rev_full = Vec::new();
        pack_coll_profiles_block(&cp_full, nv_range.clone(), lane, &mut rev_full);
        let mut back_full: Tensor3<u64> = Tensor3::new(nc, nv, nt);
        unpack_into_str(&rev_full, nc_range.clone(), &mut back_full);

        // Reverse: per-slice path.
        let mut back_sliced: Tensor3<u64> = Tensor3::new(nc, nv, nt);
        for it in 0..nt {
            let mut blk = Vec::new();
            pack_coll_profiles_slice(&cp_full, nv_range.clone(), lane, it, &mut blk);
            unpack_into_str_slice(&blk, nc_range.clone(), it, &mut back_sliced);
        }
        assert_eq!(back_full, back_sliced);
        // And both reproduce the original rows in nc_range.
        for ic in nc_range {
            for ivl in 0..nv {
                for it in 0..nt {
                    assert_eq!(back_sliced[(ic, ivl, it)], hstr[(ic, ivl, it)]);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside nt_loc")]
    fn slice_out_of_range_panics() {
        let h: Tensor3<u64> = Tensor3::new(3, 2, 2);
        let mut buf = Vec::new();
        pack_str_slice(&h, 0..3, 2, &mut buf);
    }

    #[test]
    fn nl_transpose_roundtrip() {
        // str (nc, nvl, ntl) shards over the nt communicator -> nl layout
        // (nc2_loc, nvl, nt) and back.
        let (nc, nvl, nt, n2) = (6usize, 3usize, 5usize, 2usize);
        let nt_d = Decomp1D::new(nt, n2);
        let nc2_d = Decomp1D::new(nc, n2);
        let global = Tensor3::from_fn(nc, nvl, nt, |a, b, c| (a * 100 + b * 10 + c) as u64);
        // Build the per-rank str shards (full nc, local nt).
        let str_shards: Vec<Tensor3<u64>> = (0..n2)
            .map(|p| {
                let r = nt_d.range(p);
                Tensor3::from_fn(nc, nvl, r.len(), |ic, ivl, itl| {
                    global[(ic, ivl, r.start + itl)]
                })
            })
            .collect();
        // Forward: every rank packs nc2 blocks, receivers complete nt.
        let mut nl_shards: Vec<Tensor3<u64>> = (0..n2)
            .map(|q| Tensor3::new(nc2_d.count(q), nvl, nt))
            .collect();
        for (p, s) in str_shards.iter().enumerate() {
            for (q, d) in nl_shards.iter_mut().enumerate() {
                let mut blk = Vec::new();
                pack_str_block(s, nc2_d.range(q), &mut blk);
                unpack_into_nl(&blk, nt_d.range(p), d);
            }
        }
        for (q, d) in nl_shards.iter().enumerate() {
            let r = nc2_d.range(q);
            for (icl, ic) in r.clone().enumerate() {
                for ivl in 0..nvl {
                    for it in 0..nt {
                        assert_eq!(d[(icl, ivl, it)], global[(ic, ivl, it)]);
                    }
                }
            }
        }
        // Reverse: back to str shards.
        let mut back: Vec<Tensor3<u64>> = (0..n2)
            .map(|p| Tensor3::new(nc, nvl, nt_d.count(p)))
            .collect();
        for (q, d) in nl_shards.iter().enumerate() {
            for (p, s) in back.iter_mut().enumerate() {
                let mut blk = Vec::new();
                pack_nl_block(d, nt_d.range(p), &mut blk);
                unpack_into_str_from_nl(&blk, nc2_d.range(q), s);
            }
        }
        for (orig, b) in str_shards.iter().zip(&back) {
            assert_eq!(orig, b);
        }
    }
}
