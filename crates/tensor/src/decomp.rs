//! Balanced 1-D block decomposition.
//!
//! Data partitioning in CGYRO "happens by splitting and distributing the
//! tensors in all but one dimension" (paper §2). Every split in this
//! reproduction — `nv` over the str communicator, `nc` over the coll
//! communicator (per-simulation in CGYRO mode, ensemble-wide in XGYRO
//! mode), `nt` over the toroidal communicator — is an instance of this
//! balanced block decomposition.

use std::ops::Range;

/// A balanced block decomposition of `total` indices over `parts` owners.
///
/// The first `total % parts` owners receive one extra index, so block sizes
/// differ by at most one and the map is a bijection onto `0..total`.
///
/// ```
/// use xg_tensor::Decomp1D;
///
/// let d = Decomp1D::new(10, 3); // blocks of 4, 3, 3
/// assert_eq!(d.range(0), 0..4);
/// assert_eq!(d.range(2), 7..10);
/// assert_eq!(d.owner(5), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decomp1D {
    total: usize,
    parts: usize,
}

impl Decomp1D {
    /// Create a decomposition of `total` indices over `parts` owners.
    /// `parts` must be nonzero.
    pub fn new(total: usize, parts: usize) -> Self {
        assert!(parts > 0, "decomposition needs at least one part");
        Self { total, parts }
    }

    /// Global index count.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of owners.
    #[inline]
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// True when every part has the same size.
    #[inline]
    pub fn is_even(&self) -> bool {
        self.total.is_multiple_of(self.parts)
    }

    /// Number of indices owned by `part`.
    #[inline]
    pub fn count(&self, part: usize) -> usize {
        debug_assert!(part < self.parts);
        let base = self.total / self.parts;
        let extra = self.total % self.parts;
        base + usize::from(part < extra)
    }

    /// First global index owned by `part`.
    #[inline]
    pub fn start(&self, part: usize) -> usize {
        debug_assert!(part <= self.parts);
        let base = self.total / self.parts;
        let extra = self.total % self.parts;
        part * base + part.min(extra)
    }

    /// Global index range owned by `part`.
    #[inline]
    pub fn range(&self, part: usize) -> Range<usize> {
        self.start(part)..self.start(part) + self.count(part)
    }

    /// The owner of global index `idx`.
    pub fn owner(&self, idx: usize) -> usize {
        assert!(idx < self.total, "index {idx} out of range {}", self.total);
        let base = self.total / self.parts;
        let extra = self.total % self.parts;
        let fat = (base + 1) * extra; // indices covered by the fat parts
        if base == 0 {
            // More parts than indices: index i is owned by part i.
            return idx;
        }
        if idx < fat {
            idx / (base + 1)
        } else {
            extra + (idx - fat) / base
        }
    }

    /// Local offset of global index `idx` within its owner's block.
    pub fn local_index(&self, idx: usize) -> usize {
        idx - self.start(self.owner(idx))
    }

    /// Largest block size over all parts.
    pub fn max_count(&self) -> usize {
        if self.parts == 0 {
            0
        } else {
            self.count(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let d = Decomp1D::new(12, 4);
        assert!(d.is_even());
        for p in 0..4 {
            assert_eq!(d.count(p), 3);
            assert_eq!(d.range(p), p * 3..p * 3 + 3);
        }
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(11), 3);
        assert_eq!(d.local_index(7), 1);
    }

    #[test]
    fn uneven_split_front_loaded() {
        let d = Decomp1D::new(10, 4); // 3,3,2,2
        assert!(!d.is_even());
        assert_eq!(d.count(0), 3);
        assert_eq!(d.count(1), 3);
        assert_eq!(d.count(2), 2);
        assert_eq!(d.count(3), 2);
        assert_eq!(d.range(2), 6..8);
        assert_eq!(d.max_count(), 3);
    }

    #[test]
    fn owner_matches_ranges_exhaustively() {
        for total in [1usize, 2, 7, 16, 31] {
            for parts in 1..=8usize {
                let d = Decomp1D::new(total, parts);
                let mut seen = vec![false; total];
                for p in 0..parts {
                    for g in d.range(p) {
                        assert_eq!(d.owner(g), p, "total={total} parts={parts} g={g}");
                        assert!(!seen[g], "index {g} covered twice");
                        seen[g] = true;
                        assert_eq!(d.start(p) + d.local_index(g), g);
                    }
                }
                assert!(seen.iter().all(|&s| s), "total={total} parts={parts}: gap");
            }
        }
    }

    #[test]
    fn more_parts_than_indices() {
        let d = Decomp1D::new(3, 5); // 1,1,1,0,0
        assert_eq!(d.count(0), 1);
        assert_eq!(d.count(3), 0);
        assert_eq!(d.range(4), 3..3);
        assert_eq!(d.owner(2), 2);
    }

    #[test]
    fn single_part_owns_all() {
        let d = Decomp1D::new(9, 1);
        assert_eq!(d.range(0), 0..9);
        assert_eq!(d.owner(8), 0);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_panics() {
        let _ = Decomp1D::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_out_of_range_panics() {
        let d = Decomp1D::new(4, 2);
        let _ = d.owner(4);
    }
}
