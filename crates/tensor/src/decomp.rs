//! Balanced 1-D block decomposition.
//!
//! Data partitioning in CGYRO "happens by splitting and distributing the
//! tensors in all but one dimension" (paper §2). Every split in this
//! reproduction — `nv` over the str communicator, `nc` over the coll
//! communicator (per-simulation in CGYRO mode, ensemble-wide in XGYRO
//! mode), `nt` over the toroidal communicator — is an instance of this
//! balanced block decomposition.

use std::ops::Range;

/// A balanced block decomposition of `total` indices over `parts` owners.
///
/// The first `total % parts` owners receive one extra index, so block sizes
/// differ by at most one and the map is a bijection onto `0..total`.
///
/// ```
/// use xg_tensor::Decomp1D;
///
/// let d = Decomp1D::new(10, 3); // blocks of 4, 3, 3
/// assert_eq!(d.range(0), 0..4);
/// assert_eq!(d.range(2), 7..10);
/// assert_eq!(d.owner(5), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decomp1D {
    total: usize,
    parts: usize,
}

impl Decomp1D {
    /// Create a decomposition of `total` indices over `parts` owners.
    /// `parts` must be nonzero.
    pub fn new(total: usize, parts: usize) -> Self {
        assert!(parts > 0, "decomposition needs at least one part");
        Self { total, parts }
    }

    /// Global index count.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of owners.
    #[inline]
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// True when every part has the same size.
    #[inline]
    pub fn is_even(&self) -> bool {
        self.total.is_multiple_of(self.parts)
    }

    /// Number of indices owned by `part`.
    #[inline]
    pub fn count(&self, part: usize) -> usize {
        debug_assert!(part < self.parts);
        let base = self.total / self.parts;
        let extra = self.total % self.parts;
        base + usize::from(part < extra)
    }

    /// First global index owned by `part`.
    #[inline]
    pub fn start(&self, part: usize) -> usize {
        debug_assert!(part <= self.parts);
        let base = self.total / self.parts;
        let extra = self.total % self.parts;
        part * base + part.min(extra)
    }

    /// Global index range owned by `part`.
    #[inline]
    pub fn range(&self, part: usize) -> Range<usize> {
        self.start(part)..self.start(part) + self.count(part)
    }

    /// The owner of global index `idx`.
    pub fn owner(&self, idx: usize) -> usize {
        assert!(idx < self.total, "index {idx} out of range {}", self.total);
        let base = self.total / self.parts;
        let extra = self.total % self.parts;
        let fat = (base + 1) * extra; // indices covered by the fat parts
        if base == 0 {
            // More parts than indices: index i is owned by part i.
            return idx;
        }
        if idx < fat {
            idx / (base + 1)
        } else {
            extra + (idx - fat) / base
        }
    }

    /// Local offset of global index `idx` within its owner's block.
    pub fn local_index(&self, idx: usize) -> usize {
        idx - self.start(self.owner(idx))
    }

    /// Largest block size over all parts.
    pub fn max_count(&self) -> usize {
        if self.parts == 0 {
            0
        } else {
            self.count(0)
        }
    }
}

/// A possibly-ragged 1-D block decomposition: explicit per-part counts.
///
/// `Decomp1D` fixes block sizes to `total/parts` (±1, front-loaded);
/// `RaggedDecomp` lets a planner assign *arbitrary* contiguous block sizes
/// — the shape the unbalanced-decomposition literature (arxiv 1205.2509)
/// calls for when per-part costs differ (heterogeneous ranks, asymmetric
/// phase costs). Parts are still contiguous, ordered and gap-free, so the
/// wire format of every transpose is unchanged; only the cut points move.
///
/// ```
/// use xg_tensor::RaggedDecomp;
///
/// let d = RaggedDecomp::from_counts(&[5, 3, 2]);
/// assert_eq!(d.range(0), 0..5);
/// assert_eq!(d.range(2), 8..10);
/// assert_eq!(d.owner(6), 1);
/// assert_eq!(RaggedDecomp::balanced(10, 3).counts(), vec![4, 3, 3]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaggedDecomp {
    /// `parts + 1` cumulative offsets; `offsets[p]..offsets[p+1]` is part p.
    offsets: Vec<usize>,
}

impl RaggedDecomp {
    /// Build from explicit per-part counts (zeros allowed).
    pub fn from_counts(counts: &[usize]) -> Self {
        assert!(!counts.is_empty(), "decomposition needs at least one part");
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &c in counts {
            acc += c;
            offsets.push(acc);
        }
        Self { offsets }
    }

    /// The balanced decomposition — bitwise the same cut points as
    /// `Decomp1D::new(total, parts)` (first `total % parts` parts get one
    /// extra index).
    pub fn balanced(total: usize, parts: usize) -> Self {
        let d = Decomp1D::new(total, parts);
        let counts: Vec<usize> = (0..parts).map(|p| d.count(p)).collect();
        Self::from_counts(&counts)
    }

    /// Apportion `total` indices over parts proportionally to `weights`
    /// (largest-remainder method, deterministic: ties broken by lower part
    /// index). Weights must be positive and finite. With equal weights this
    /// reproduces `balanced`.
    pub fn weighted(total: usize, weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "decomposition needs at least one part");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive and finite"
        );
        let sum: f64 = weights.iter().sum();
        // Floor of the ideal share, then hand the remainder to the largest
        // fractional parts (stable: equal remainders go to lower indices).
        let ideal: Vec<f64> = weights.iter().map(|w| total as f64 * w / sum).collect();
        let mut counts: Vec<usize> = ideal.iter().map(|x| x.floor() as usize).collect();
        let assigned: usize = counts.iter().sum();
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = ideal[a] - ideal[a].floor();
            let rb = ideal[b] - ideal[b].floor();
            rb.partial_cmp(&ra).unwrap().then(a.cmp(&b))
        });
        for &p in order.iter().take(total.saturating_sub(assigned)) {
            counts[p] += 1;
        }
        Self::from_counts(&counts)
    }

    /// Global index count.
    #[inline]
    pub fn total(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Number of owners.
    #[inline]
    pub fn parts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of indices owned by `part`.
    #[inline]
    pub fn count(&self, part: usize) -> usize {
        self.offsets[part + 1] - self.offsets[part]
    }

    /// First global index owned by `part`.
    #[inline]
    pub fn start(&self, part: usize) -> usize {
        self.offsets[part]
    }

    /// Global index range owned by `part`.
    #[inline]
    pub fn range(&self, part: usize) -> Range<usize> {
        self.offsets[part]..self.offsets[part + 1]
    }

    /// The owner of global index `idx` (first part whose range contains it;
    /// zero-sized parts never own anything).
    pub fn owner(&self, idx: usize) -> usize {
        assert!(idx < self.total(), "index {idx} out of range {}", self.total());
        // partition_point returns the first offset > idx; its predecessor
        // is the owning part.
        self.offsets.partition_point(|&o| o <= idx) - 1
    }

    /// Largest block size over all parts.
    pub fn max_count(&self) -> usize {
        (0..self.parts()).map(|p| self.count(p)).max().unwrap_or(0)
    }

    /// Per-part counts.
    pub fn counts(&self) -> Vec<usize> {
        (0..self.parts()).map(|p| self.count(p)).collect()
    }

    /// True when this equals the balanced decomposition of the same shape.
    pub fn is_balanced(&self) -> bool {
        *self == Self::balanced(self.total(), self.parts())
    }
}

/// A planned ensemble decomposition: the 2-D process grid, ensemble size
/// and (optionally) unbalanced coll-phase `nc` cuts.
///
/// This is the first-class object the xg-cluster planner searches for and
/// the sim/core layers consume. The coll cuts partition the `nc` rows of
/// the shared collisional constant tensor over the `k·n1` coll-communicator
/// positions; `None` means the canonical balanced split. Only coll-phase
/// `nc` cuts are planned because they are **bitwise-neutral**: each
/// `(ic, it)` collision matvec is independent, so moving cut points moves
/// work without reassociating any floating-point sum. (Ragged `nv` cuts
/// would reorder the rank-order partial sums of the str-phase moment
/// reductions and break bitwise reproducibility.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decomposition {
    /// Per-simulation process grid.
    pub grid: crate::layout::ProcGrid,
    /// Ensemble size (number of member simulations).
    pub k: usize,
    /// Per-coll-position `nc` row counts (length `k·n1`, summing to `nc`),
    /// or `None` for the balanced split.
    pub coll_cuts: Option<Vec<usize>>,
}

impl Decomposition {
    /// The balanced decomposition for a grid/ensemble shape.
    pub fn balanced(grid: crate::layout::ProcGrid, k: usize) -> Self {
        Self { grid, k, coll_cuts: None }
    }

    /// Validate against a deck's `nc`: cut list (when present) must have
    /// one entry per coll position and sum to `nc`.
    pub fn validate(&self, nc: usize) -> Result<(), String> {
        if self.k == 0 {
            return Err("decomposition needs k >= 1".into());
        }
        if let Some(cuts) = &self.coll_cuts {
            let want = self.k * self.grid.n1;
            if cuts.len() != want {
                return Err(format!(
                    "coll cuts have {} entries, need k*n1 = {want}",
                    cuts.len()
                ));
            }
            let sum: usize = cuts.iter().sum();
            if sum != nc {
                return Err(format!("coll cuts sum to {sum}, need nc = {nc}"));
            }
        }
        Ok(())
    }

    /// True when this is the canonical balanced layout for deck size `nc`.
    pub fn is_balanced(&self, nc: usize) -> bool {
        match &self.coll_cuts {
            None => true,
            Some(cuts) => {
                RaggedDecomp::from_counts(cuts)
                    == RaggedDecomp::balanced(nc, self.k * self.grid.n1)
            }
        }
    }

    /// Short human label: `balanced` or `coll:5,5,3,3`.
    pub fn label(&self, nc: usize) -> String {
        if self.is_balanced(nc) {
            "balanced".to_string()
        } else {
            let cuts = self.coll_cuts.as_ref().unwrap();
            format!(
                "coll:{}",
                cuts.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
            )
        }
    }

    /// Serialize to the `KEY=VALUE` file format consumed by
    /// `xgyro --decomp` and emitted by `xgplan --decomp`.
    pub fn to_file_string(&self) -> String {
        let mut s = String::new();
        s.push_str("# XGYRO decomposition (xgplan --decomp)\n");
        s.push_str(&format!("K={}\n", self.k));
        s.push_str(&format!("N1={}\n", self.grid.n1));
        s.push_str(&format!("N2={}\n", self.grid.n2));
        if let Some(cuts) = &self.coll_cuts {
            s.push_str(&format!(
                "COLL_CUTS={}\n",
                cuts.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
            ));
        }
        s
    }

    /// Parse the `KEY=VALUE` format written by [`to_file_string`].
    ///
    /// [`to_file_string`]: Decomposition::to_file_string
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut k = None;
        let mut n1 = None;
        let mut n2 = None;
        let mut coll_cuts = None;
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, val)) = line.split_once('=') else {
                return Err(format!("decomp line {}: expected KEY=VALUE", ln + 1));
            };
            let (key, val) = (key.trim(), val.trim());
            let parse_usize = |v: &str, key: &str| -> Result<usize, String> {
                v.parse::<usize>().map_err(|_| format!("decomp {key}: bad value '{v}'"))
            };
            match key {
                "K" => k = Some(parse_usize(val, key)?),
                "N1" => n1 = Some(parse_usize(val, key)?),
                "N2" => n2 = Some(parse_usize(val, key)?),
                "COLL_CUTS" => {
                    let cuts = val
                        .split(',')
                        .map(|c| parse_usize(c.trim(), key))
                        .collect::<Result<Vec<_>, _>>()?;
                    coll_cuts = Some(cuts);
                }
                other => return Err(format!("decomp: unknown key '{other}'")),
            }
        }
        let k = k.ok_or("decomp: missing K=")?;
        let n1 = n1.ok_or("decomp: missing N1=")?;
        let n2 = n2.ok_or("decomp: missing N2=")?;
        if n1 == 0 || n2 == 0 || k == 0 {
            return Err("decomp: K, N1, N2 must be >= 1".into());
        }
        Ok(Self { grid: crate::layout::ProcGrid::new(n1, n2), k, coll_cuts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let d = Decomp1D::new(12, 4);
        assert!(d.is_even());
        for p in 0..4 {
            assert_eq!(d.count(p), 3);
            assert_eq!(d.range(p), p * 3..p * 3 + 3);
        }
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(11), 3);
        assert_eq!(d.local_index(7), 1);
    }

    #[test]
    fn uneven_split_front_loaded() {
        let d = Decomp1D::new(10, 4); // 3,3,2,2
        assert!(!d.is_even());
        assert_eq!(d.count(0), 3);
        assert_eq!(d.count(1), 3);
        assert_eq!(d.count(2), 2);
        assert_eq!(d.count(3), 2);
        assert_eq!(d.range(2), 6..8);
        assert_eq!(d.max_count(), 3);
    }

    #[test]
    fn owner_matches_ranges_exhaustively() {
        for total in [1usize, 2, 7, 16, 31] {
            for parts in 1..=8usize {
                let d = Decomp1D::new(total, parts);
                let mut seen = vec![false; total];
                for p in 0..parts {
                    for g in d.range(p) {
                        assert_eq!(d.owner(g), p, "total={total} parts={parts} g={g}");
                        assert!(!seen[g], "index {g} covered twice");
                        seen[g] = true;
                        assert_eq!(d.start(p) + d.local_index(g), g);
                    }
                }
                assert!(seen.iter().all(|&s| s), "total={total} parts={parts}: gap");
            }
        }
    }

    #[test]
    fn more_parts_than_indices() {
        let d = Decomp1D::new(3, 5); // 1,1,1,0,0
        assert_eq!(d.count(0), 1);
        assert_eq!(d.count(3), 0);
        assert_eq!(d.range(4), 3..3);
        assert_eq!(d.owner(2), 2);
    }

    #[test]
    fn single_part_owns_all() {
        let d = Decomp1D::new(9, 1);
        assert_eq!(d.range(0), 0..9);
        assert_eq!(d.owner(8), 0);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_panics() {
        let _ = Decomp1D::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_out_of_range_panics() {
        let d = Decomp1D::new(4, 2);
        let _ = d.owner(4);
    }

    #[test]
    fn ragged_balanced_matches_decomp1d_exactly() {
        for total in [0usize, 1, 3, 10, 16, 31, 97] {
            for parts in 1..=9usize {
                let r = RaggedDecomp::balanced(total, parts);
                let d = Decomp1D::new(total, parts);
                for p in 0..parts {
                    assert_eq!(r.range(p), d.range(p), "total={total} parts={parts} p={p}");
                }
                assert_eq!(r.max_count(), d.max_count());
                assert!(r.is_balanced());
            }
        }
    }

    #[test]
    fn ragged_from_counts_covers_gap_free() {
        let d = RaggedDecomp::from_counts(&[5, 0, 3, 2]);
        assert_eq!(d.total(), 10);
        assert_eq!(d.parts(), 4);
        assert_eq!(d.range(0), 0..5);
        assert_eq!(d.range(1), 5..5);
        assert_eq!(d.range(2), 5..8);
        assert_eq!(d.range(3), 8..10);
        assert_eq!(d.max_count(), 5);
        assert!(!d.is_balanced());
        let mut seen = [false; 10];
        for p in 0..4 {
            for g in d.range(p) {
                assert_eq!(d.owner(g), p);
                assert!(!seen[g]);
                seen[g] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ragged_owner_skips_empty_parts() {
        let d = RaggedDecomp::from_counts(&[0, 4, 0, 2]);
        assert_eq!(d.owner(0), 1);
        assert_eq!(d.owner(3), 1);
        assert_eq!(d.owner(4), 3);
        assert_eq!(d.owner(5), 3);
    }

    #[test]
    fn weighted_equal_weights_reproduce_balanced() {
        for total in [1usize, 7, 10, 64, 99] {
            for parts in 1..=6usize {
                let w = vec![1.0; parts];
                assert_eq!(
                    RaggedDecomp::weighted(total, &w),
                    RaggedDecomp::balanced(total, parts),
                    "total={total} parts={parts}"
                );
            }
        }
    }

    #[test]
    fn weighted_apportionment_tracks_speeds() {
        // One part at half speed gets roughly half the rows.
        let d = RaggedDecomp::weighted(32, &[1.0, 1.0, 1.0, 0.5]);
        assert_eq!(d.total(), 32);
        assert_eq!(d.counts(), vec![9, 9, 9, 5]);
        // Heavier weight never receives fewer rows.
        let d = RaggedDecomp::weighted(100, &[3.0, 2.0, 1.0]);
        let c = d.counts();
        assert!(c[0] >= c[1] && c[1] >= c[2]);
        assert_eq!(c.iter().sum::<usize>(), 100);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn weighted_rejects_nonpositive() {
        let _ = RaggedDecomp::weighted(8, &[1.0, 0.0]);
    }

    #[test]
    fn decomposition_roundtrip_and_validate() {
        use crate::layout::ProcGrid;
        let d = Decomposition {
            grid: ProcGrid::new(2, 3),
            k: 2,
            coll_cuts: Some(vec![5, 5, 3, 3]),
        };
        assert!(d.validate(16).is_ok());
        assert!(d.validate(15).is_err()); // bad sum
        let parsed = Decomposition::parse(&d.to_file_string()).unwrap();
        assert_eq!(parsed, d);
        assert_eq!(d.label(16), "coll:5,5,3,3");
        assert!(!d.is_balanced(16));

        let b = Decomposition::balanced(ProcGrid::new(2, 3), 2);
        assert!(b.validate(16).is_ok());
        assert_eq!(b.label(16), "balanced");
        let parsed = Decomposition::parse(&b.to_file_string()).unwrap();
        assert_eq!(parsed, b);

        // Cuts spelling out the balanced split are recognised as balanced.
        let explicit = Decomposition {
            grid: ProcGrid::new(2, 3),
            k: 2,
            coll_cuts: Some(vec![4, 4, 4, 4]),
        };
        assert!(explicit.is_balanced(16));
        assert_eq!(explicit.label(16), "balanced");
    }

    #[test]
    fn decomposition_parse_rejects_garbage() {
        assert!(Decomposition::parse("K=2\nN1=2\n").is_err()); // missing N2
        assert!(Decomposition::parse("K=2\nN1=2\nN2=0\n").is_err());
        assert!(Decomposition::parse("K=2\nN1=2\nN2=2\nBOGUS=1\n").is_err());
        assert!(Decomposition::parse("K=2\nN1=2\nN2=2\nCOLL_CUTS=1,x\n").is_err());
        assert!(Decomposition::parse("no equals sign").is_err());
    }
}
