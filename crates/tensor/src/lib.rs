//! # xg-tensor
//!
//! Tensor buffers and distribution logic for the XGYRO reproduction:
//! dense row-major 2/3/4-D tensors, the balanced 1-D block decomposition
//! used for every dimension split, CGYRO's per-phase layouts (str/nl/coll)
//! on a 2-D process grid, and the pack/unpack kernels that define the wire
//! format of the str ↔ coll AllToAll transposes.

#![warn(missing_docs)]

pub mod decomp;
pub mod layout;
pub mod pack;
pub mod tensor;

pub use decomp::{Decomp1D, Decomposition, RaggedDecomp};
pub use layout::{PhaseLayout, ProcGrid, SimDims};
pub use pack::{
    pack_coll_block, pack_coll_profiles_block, pack_coll_profiles_slice, pack_moments,
    pack_nl_block, pack_str_block, pack_str_slice, unpack_into_coll, unpack_into_coll_profiles,
    unpack_into_coll_profiles_slice, unpack_into_nl, unpack_into_str, unpack_into_str_from_nl,
    unpack_into_str_slice, unpack_moments,
};
pub use tensor::{Tensor2, Tensor3, Tensor4};
