//! Property-based tests: the decomposition is a partition, the transpose
//! pack/unpack pair is a bijection for arbitrary shapes and part counts.

use proptest::prelude::*;
use xg_tensor::{
    pack_coll_block, pack_str_block, unpack_into_coll, unpack_into_str, Decomp1D, Tensor3,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decomp_is_partition(total in 0usize..200, parts in 1usize..17) {
        let d = Decomp1D::new(total, parts);
        let mut covered = 0usize;
        let mut next = 0usize;
        for p in 0..parts {
            let r = d.range(p);
            prop_assert_eq!(r.start, next, "blocks must be contiguous");
            next = r.end;
            covered += r.len();
            prop_assert_eq!(r.len(), d.count(p));
            // Block sizes differ by at most one and are non-increasing.
            if p > 0 {
                prop_assert!(d.count(p) <= d.count(p - 1));
                prop_assert!(d.count(p - 1) - d.count(p) <= 1);
            }
        }
        prop_assert_eq!(covered, total);
        prop_assert_eq!(next, total);
        for g in 0..total {
            let o = d.owner(g);
            prop_assert!(d.range(o).contains(&g));
        }
    }

    #[test]
    fn transpose_roundtrip_bijection(
        nc in 1usize..12,
        nv in 1usize..12,
        nt in 1usize..5,
        nv_parts in 1usize..5,
        nc_parts in 1usize..9,
    ) {
        let nv_d = Decomp1D::new(nv, nv_parts);
        let nc_d = Decomp1D::new(nc, nc_parts);

        // Distribute a tagged global tensor into str-layout shards.
        let str_shards: Vec<Tensor3<u32>> = (0..nv_parts)
            .map(|p| {
                let r = nv_d.range(p);
                Tensor3::from_fn(nc, r.len(), nt, |ic, ivl, it| {
                    (ic * 10_000 + (r.start + ivl) * 100 + it) as u32
                })
            })
            .collect();

        // Forward transpose into coll-layout shards.
        let mut coll_shards: Vec<Tensor3<u32>> = (0..nc_parts)
            .map(|q| Tensor3::new(nv, nc_d.count(q), nt))
            .collect();
        for (p, s) in str_shards.iter().enumerate() {
            for (q, c) in coll_shards.iter_mut().enumerate() {
                let mut blk = Vec::new();
                pack_str_block(s, nc_d.range(q), &mut blk);
                unpack_into_coll(&blk, nv_d.range(p), c);
            }
        }

        // Every coll entry carries the tag of its global index.
        for (q, c) in coll_shards.iter().enumerate() {
            let r = nc_d.range(q);
            for iv in 0..nv {
                for (icl, ic) in r.clone().enumerate() {
                    for it in 0..nt {
                        prop_assert_eq!(c[(iv, icl, it)], (ic * 10_000 + iv * 100 + it) as u32);
                    }
                }
            }
        }

        // Reverse transpose restores the str shards exactly.
        let mut back: Vec<Tensor3<u32>> = (0..nv_parts)
            .map(|p| Tensor3::new(nc, nv_d.count(p), nt))
            .collect();
        for (q, c) in coll_shards.iter().enumerate() {
            for (p, s) in back.iter_mut().enumerate() {
                let mut blk = Vec::new();
                pack_coll_block(c, nv_d.range(p), &mut blk);
                unpack_into_str(&blk, nc_d.range(q), s);
            }
        }
        for (orig, b) in str_shards.iter().zip(&back) {
            prop_assert_eq!(orig, b);
        }
    }

    #[test]
    fn nl_transpose_roundtrip_bijection(
        nc in 1usize..10,
        nvl in 1usize..5,
        nt in 1usize..8,
        n2 in 1usize..5,
    ) {
        use xg_tensor::{pack_nl_block, unpack_into_nl, unpack_into_str_from_nl};
        let nt_d = Decomp1D::new(nt, n2);
        let nc2_d = Decomp1D::new(nc, n2);
        // Tagged str shards (full nc, local nt).
        let shards: Vec<Tensor3<u32>> = (0..n2)
            .map(|p| {
                let r = nt_d.range(p);
                Tensor3::from_fn(nc, nvl, r.len(), |ic, ivl, itl| {
                    (ic * 10_000 + ivl * 100 + (r.start + itl)) as u32
                })
            })
            .collect();
        // Forward to nl layout.
        let mut nl: Vec<Tensor3<u32>> =
            (0..n2).map(|q| Tensor3::new(nc2_d.count(q), nvl, nt)).collect();
        for (p, s) in shards.iter().enumerate() {
            for (q, d) in nl.iter_mut().enumerate() {
                let mut blk = Vec::new();
                pack_str_block(s, nc2_d.range(q), &mut blk);
                unpack_into_nl(&blk, nt_d.range(p), d);
            }
        }
        for (q, d) in nl.iter().enumerate() {
            let r = nc2_d.range(q);
            for (icl, ic) in r.clone().enumerate() {
                for ivl in 0..nvl {
                    for it in 0..nt {
                        prop_assert_eq!(
                            d[(icl, ivl, it)],
                            (ic * 10_000 + ivl * 100 + it) as u32
                        );
                    }
                }
            }
        }
        // And back.
        let mut back: Vec<Tensor3<u32>> =
            (0..n2).map(|p| Tensor3::new(nc, nvl, nt_d.count(p))).collect();
        for (q, d) in nl.iter().enumerate() {
            for (p, s) in back.iter_mut().enumerate() {
                let mut blk = Vec::new();
                pack_nl_block(d, nt_d.range(p), &mut blk);
                unpack_into_str_from_nl(&blk, nc2_d.range(q), s);
            }
        }
        for (orig, b) in shards.iter().zip(&back) {
            prop_assert_eq!(orig, b);
        }
    }

    #[test]
    fn profile_layout_matches_legacy_coll_permutation(
        nc in 1usize..12,
        nv in 1usize..12,
        nt in 1usize..5,
        nv_parts in 1usize..5,
        nc_parts in 1usize..9,
        k in 1usize..4,
    ) {
        use xg_tensor::{pack_coll_profiles_block, unpack_into_coll_profiles};
        let nv_d = Decomp1D::new(nv, nv_parts);
        let nc_d = Decomp1D::new(nc, nc_parts);

        // k members' str shards, tagged by (member, global indices).
        let tag = |s: usize, ic: usize, iv: usize, it: usize| {
            (s * 1_000_000 + ic * 10_000 + iv * 100 + it) as u32
        };
        let str_shards: Vec<Vec<Tensor3<u32>>> = (0..k)
            .map(|s| {
                (0..nv_parts)
                    .map(|p| {
                        let r = nv_d.range(p);
                        Tensor3::from_fn(nc, r.len(), nt, |ic, ivl, it| {
                            tag(s, ic, r.start + ivl, it)
                        })
                    })
                    .collect()
            })
            .collect();

        // Forward transpose: legacy per-member coll shards vs one stacked
        // profile-contiguous tensor per coll rank with lane = s*nv.
        let mut coll_legacy: Vec<Vec<Tensor3<u32>>> = (0..k)
            .map(|_| (0..nc_parts).map(|q| Tensor3::new(nv, nc_d.count(q), nt)).collect())
            .collect();
        let mut coll_prof: Vec<Tensor3<u32>> =
            (0..nc_parts).map(|q| Tensor3::new(nc_d.count(q), nt, k * nv)).collect();
        for s in 0..k {
            for (p, shard) in str_shards[s].iter().enumerate() {
                for q in 0..nc_parts {
                    let mut blk = Vec::new();
                    pack_str_block(shard, nc_d.range(q), &mut blk);
                    unpack_into_coll(&blk, nv_d.range(p), &mut coll_legacy[s][q]);
                    unpack_into_coll_profiles(
                        &blk, nv_d.range(p), s * nv, &mut coll_prof[q],
                    );
                }
            }
        }
        for q in 0..nc_parts {
            for s in 0..k {
                for iv in 0..nv {
                    for icl in 0..nc_d.count(q) {
                        for it in 0..nt {
                            prop_assert_eq!(
                                coll_legacy[s][q][(iv, icl, it)],
                                coll_prof[q][(icl, it, s * nv + iv)]
                            );
                        }
                    }
                }
            }
        }

        // Reverse: packing from the profile layout produces the same wire
        // blocks as the legacy pack, and round-trips the str shards.
        for q in 0..nc_parts {
            for (s, legacy_member) in coll_legacy.iter().enumerate() {
                for p in 0..nv_parts {
                    let mut legacy = Vec::new();
                    let mut prof = Vec::new();
                    pack_coll_block(&legacy_member[q], nv_d.range(p), &mut legacy);
                    pack_coll_profiles_block(&coll_prof[q], nv_d.range(p), s * nv, &mut prof);
                    prop_assert_eq!(&legacy, &prof);
                }
            }
        }
        let mut back: Vec<Vec<Tensor3<u32>>> = (0..k)
            .map(|_| (0..nv_parts).map(|p| Tensor3::new(nc, nv_d.count(p), nt)).collect())
            .collect();
        for (q, prof_shard) in coll_prof.iter().enumerate() {
            for (s, member_back) in back.iter_mut().enumerate() {
                for (p, shard_back) in member_back.iter_mut().enumerate() {
                    let mut blk = Vec::new();
                    pack_coll_profiles_block(prof_shard, nv_d.range(p), s * nv, &mut blk);
                    unpack_into_str(&blk, nc_d.range(q), shard_back);
                }
            }
        }
        for s in 0..k {
            for (orig, b) in str_shards[s].iter().zip(&back[s]) {
                prop_assert_eq!(orig, b);
            }
        }
    }

    #[test]
    fn pack_volume_matches_block_size(
        nc in 1usize..10,
        nv_loc in 1usize..6,
        nt_loc in 1usize..4,
        split in 1usize..5,
    ) {
        let h: Tensor3<u8> = Tensor3::new(nc, nv_loc, nt_loc);
        let d = Decomp1D::new(nc, split);
        let mut total = 0;
        for q in 0..split {
            let mut buf = Vec::new();
            pack_str_block(&h, d.range(q), &mut buf);
            prop_assert_eq!(buf.len(), d.count(q) * nv_loc * nt_loc);
            total += buf.len();
        }
        prop_assert_eq!(total, h.len());
    }
}
