//! `promlint` — validate Prometheus text exposition format.
//!
//! Reads the file named by the first argument (or stdin when absent),
//! parses every sample, and runs the structural checks in
//! [`xg_obs::expo::lint_prometheus`]: histogram buckets cumulative and
//! increasing in `le`, `+Inf` terminal bucket equal to `_count`, `_sum`
//! present. Exits 0 with a sample count on success, 1 with a line-numbered
//! diagnostic on failure. Used by the `obs-smoke` CI job on live
//! `METRICS_PROM` scrapes.

use std::io::Read;

fn main() {
    let mut args = std::env::args().skip(1);
    let text = match args.next() {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("promlint: cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("promlint: cannot read stdin: {e}");
                std::process::exit(1);
            }
            buf
        }
    };
    match xg_obs::expo::lint_prometheus(&text) {
        Ok(n) => println!("promlint: OK ({n} samples)"),
        Err(e) => {
            eprintln!("promlint: FAIL: {e}");
            std::process::exit(1);
        }
    }
}
