//! # xg-obs — per-phase wall-time observability
//!
//! The paper's headline evidence is a per-phase wall-clock breakdown
//! (str / coll / nl / diag, before and after splitting the str and coll
//! communicators), and its companion benchmark study is likewise built on
//! per-phase timers. This crate is the workspace's timing layer:
//!
//! * **[`Phase`]** — the fixed set of logical phases every layer agrees on
//!   (the same labels `TrafficLog` tags operations with);
//! * **[`span`]** — a monotonic scoped timer recording into the
//!   process-wide [`Registry`] on drop, plus [`record_comm_wait`] for the
//!   per-collective wait times `xg-comm` feeds in;
//! * **[`Histogram`]** — fixed-bucket log2 microsecond histograms
//!   (count / sum / min / max, p50 / p99 estimated from the buckets), all
//!   relaxed atomics — recording never takes a lock;
//! * **exposition** ([`expo`]) — the workspace's hand-rolled JSON style and
//!   Prometheus text format (`# HELP` / `# TYPE`, cumulative `le` buckets),
//!   since the vendored serde is a marker-only stub.
//!
//! ## Cost model
//!
//! Timing is **off-switchable and zero-cost when off**: every probe first
//! branches on one relaxed atomic ([`enabled`]); when `XGYRO_OBS=0` (or
//! after [`set_enabled`]`(false)`) no clock is read and nothing is stored.
//! Timers observe, never steer — enabling or disabling observability can
//! never perturb simulation results (asserted bitwise by
//! `xgyro-core/tests/obs_timing.rs`).
//!
//! ## Aggregation semantics
//!
//! The registry is process-wide: the k·n1·n2 rank threads of an ensemble
//! all record into it, so histogram sums are **rank-seconds** (the same
//! convention MPI profilers use when summing per-rank timers). Busy time
//! includes the communication waits issued inside the phase; compute time
//! is `busy − comm_wait`.

#![warn(missing_docs)]

pub mod expo;
pub mod hist;

pub use expo::{parse_prometheus, PromSample};
pub use hist::Histogram;

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment switch: `XGYRO_OBS=0` disables every probe (and makes them
/// cost one relaxed atomic load); any other value — or the variable being
/// absent — leaves observability on.
pub const OBS_ENV: &str = "XGYRO_OBS";

/// The logical phases of a CGYRO/XGYRO step, as tagged on the traffic log.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Streaming / field-solve phase (the fused str-phase reductions).
    Str,
    /// Collision phase (transpose → apply cmat → transpose back).
    Coll,
    /// Nonlinear phase (its own transposes).
    Nl,
    /// Reporting-cadence diagnostics (heat moment, scalar reductions).
    Diag,
    /// Per-stage field solve outside the str bracket (mode energies,
    /// diagnostics-time field refresh).
    Field,
    /// Topology construction, cmat factorization, initial condition.
    Setup,
    /// Checkpoint rollback + degraded-mode restart accounting.
    Recover,
    /// Anything else (unlabelled traffic, test phases).
    Other,
}

/// Every phase, in exposition order.
pub const PHASES: [Phase; 8] = [
    Phase::Str,
    Phase::Coll,
    Phase::Nl,
    Phase::Diag,
    Phase::Field,
    Phase::Setup,
    Phase::Recover,
    Phase::Other,
];

impl Phase {
    /// Stable label (matches the traffic-log phase tags).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Str => "str",
            Phase::Coll => "coll",
            Phase::Nl => "nl",
            Phase::Diag => "diag",
            Phase::Field => "field",
            Phase::Setup => "setup",
            Phase::Recover => "recover",
            Phase::Other => "other",
        }
    }

    /// Map a traffic-log phase tag back to a [`Phase`] (unknown tags fold
    /// into [`Phase::Other`]).
    pub fn from_label(s: &str) -> Phase {
        match s {
            "str" => Phase::Str,
            "coll" => Phase::Coll,
            "nl" => Phase::Nl,
            "diag" => Phase::Diag,
            "field" => Phase::Field,
            "setup" => Phase::Setup,
            "recover" => Phase::Recover,
            _ => Phase::Other,
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Str => 0,
            Phase::Coll => 1,
            Phase::Nl => 2,
            Phase::Diag => 3,
            Phase::Field => 4,
            Phase::Setup => 5,
            Phase::Recover => 6,
            Phase::Other => 7,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

// Enabled flag: 0 = uninitialized (read OBS_ENV on first probe),
// 1 = disabled, 2 = enabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

#[cold]
fn init_enabled() -> bool {
    let on = !matches!(
        std::env::var(OBS_ENV).as_deref(),
        Ok("0") | Ok("false") | Ok("off")
    );
    // Racing initializers agree (the env cannot change between them), so a
    // relaxed compare-exchange-free store is fine.
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// The hot-path probe: one relaxed atomic load (plus a cold first-call env
/// read). All recording helpers bail out immediately when this is false.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_enabled(),
    }
}

/// Programmatic override of the `XGYRO_OBS` switch (tests, benches, and
/// the on/off bitwise-identity assertion).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// One phase's pair of histograms.
#[derive(Debug, Default)]
pub struct PhaseMetrics {
    /// Wall time spent inside the phase bracket (includes comm waits).
    pub busy: Histogram,
    /// Wall time spent waiting in communication calls issued during the
    /// phase (recorded by `xg-comm` per collective).
    pub comm_wait: Histogram,
}

/// The process-wide metric registry.
#[derive(Debug, Default)]
pub struct Registry {
    phases: [PhaseMetrics; PHASES.len()],
    /// Microseconds of abandoned-segment work re-executed after faults
    /// (the resilient runner's `wasted_us`, unified here).
    recovery_wasted_us: AtomicU64,
    /// Number of fault-recovery events observed.
    recoveries: AtomicU64,
    /// Capacity-aware post-eviction rebalances performed.
    rebalances: AtomicU64,
    /// Coll-phase `nc` rows the rebalancer moved away from the positions a
    /// uniform shrink would have given them (the measurable payoff of
    /// rebalancing onto the survivors' actual capacities).
    rebalance_moved_rows: AtomicU64,
    /// Journal appends committed by the serving layer's write-ahead log.
    journal_appends: AtomicU64,
    /// fsync(2) calls the journal issued.
    journal_fsyncs: AtomicU64,
    /// Microseconds spent inside journal fsyncs (the durability tax).
    journal_fsync_us: AtomicU64,
    /// Journal replays performed (daemon restarts that found a log).
    replays: AtomicU64,
    /// Microseconds spent replaying journals at startup.
    replay_us: AtomicU64,
    /// Submissions served from the artifact store instead of executed.
    cache_hits: AtomicU64,
    /// Artifact-store consults that found no published manifest.
    cache_misses: AtomicU64,
    /// Outcome-blob bytes served from the artifact store instead of
    /// recomputed (the cache's analogue of cmat bytes saved).
    cache_bytes_saved: AtomicU64,
    /// Autotuned collision-kernel label (e.g. `avx512/t128`), set once at
    /// topology build. Config metadata rather than a timing probe, so it is
    /// recorded regardless of the [`enabled`] switch; exposed as an
    /// info-style metric next to the coll-phase histograms.
    collision_kernel: Mutex<Option<String>>,
}

static GLOBAL: Registry = Registry {
    phases: [
        PhaseMetrics::new(),
        PhaseMetrics::new(),
        PhaseMetrics::new(),
        PhaseMetrics::new(),
        PhaseMetrics::new(),
        PhaseMetrics::new(),
        PhaseMetrics::new(),
        PhaseMetrics::new(),
    ],
    recovery_wasted_us: AtomicU64::new(0),
    recoveries: AtomicU64::new(0),
    rebalances: AtomicU64::new(0),
    rebalance_moved_rows: AtomicU64::new(0),
    journal_appends: AtomicU64::new(0),
    journal_fsyncs: AtomicU64::new(0),
    journal_fsync_us: AtomicU64::new(0),
    replays: AtomicU64::new(0),
    replay_us: AtomicU64::new(0),
    cache_hits: AtomicU64::new(0),
    cache_misses: AtomicU64::new(0),
    cache_bytes_saved: AtomicU64::new(0),
    collision_kernel: Mutex::new(None),
};

impl PhaseMetrics {
    const fn new() -> Self {
        Self { busy: Histogram::new(), comm_wait: Histogram::new() }
    }
}

impl Registry {
    /// The process-wide registry every probe records into.
    pub fn global() -> &'static Registry {
        &GLOBAL
    }

    /// Metrics of one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseMetrics {
        &self.phases[phase.index()]
    }

    /// Record `us` of busy time against `phase`.
    pub fn record_busy_us(&self, phase: Phase, us: u64) {
        self.phases[phase.index()].busy.record(us);
    }

    /// Record `us` of communication wait against `phase`.
    pub fn record_comm_wait_us(&self, phase: Phase, us: u64) {
        self.phases[phase.index()].comm_wait.record(us);
    }

    /// Account one recovery event that wasted `us` of re-executed work.
    pub fn record_recovery_waste_us(&self, us: u64) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        self.recovery_wasted_us.fetch_add(us, Ordering::Relaxed);
    }

    /// `(events, wasted_us)` of recovery accounting so far.
    pub fn recovery_stats(&self) -> (u64, u64) {
        (
            self.recoveries.load(Ordering::Relaxed),
            self.recovery_wasted_us.load(Ordering::Relaxed),
        )
    }

    /// Account one capacity-aware rebalance that moved `rows` coll-phase
    /// `nc` rows relative to the uniform shrink.
    pub fn record_rebalance_moved_rows(&self, rows: u64) {
        self.rebalances.fetch_add(1, Ordering::Relaxed);
        self.rebalance_moved_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// `(events, moved_rows)` of rebalance accounting so far.
    pub fn rebalance_stats(&self) -> (u64, u64) {
        (
            self.rebalances.load(Ordering::Relaxed),
            self.rebalance_moved_rows.load(Ordering::Relaxed),
        )
    }

    /// Account one committed journal append.
    pub fn record_journal_append_us(&self) {
        self.journal_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one journal fsync that took `us`.
    pub fn record_journal_fsync_us(&self, us: u64) {
        self.journal_fsyncs.fetch_add(1, Ordering::Relaxed);
        self.journal_fsync_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Account one startup journal replay that took `us`.
    pub fn record_journal_replay_us(&self, us: u64) {
        self.replays.fetch_add(1, Ordering::Relaxed);
        self.replay_us.fetch_add(us, Ordering::Relaxed);
    }

    /// `(appends, fsyncs, fsync_us)` of journal accounting so far.
    pub fn journal_stats(&self) -> (u64, u64, u64) {
        (
            self.journal_appends.load(Ordering::Relaxed),
            self.journal_fsyncs.load(Ordering::Relaxed),
            self.journal_fsync_us.load(Ordering::Relaxed),
        )
    }

    /// `(replays, replay_us)` of startup-replay accounting so far.
    pub fn replay_stats(&self) -> (u64, u64) {
        (
            self.replays.load(Ordering::Relaxed),
            self.replay_us.load(Ordering::Relaxed),
        )
    }

    /// Account one artifact-cache hit that saved `bytes` of outcome data.
    pub fn record_cache_hit_bytes(&self, bytes: u64) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.cache_bytes_saved.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Account one artifact-store consult that found nothing.
    pub fn record_cache_miss_count(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// `(hits, misses, bytes_saved)` of artifact-cache accounting so far.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
            self.cache_bytes_saved.load(Ordering::Relaxed),
        )
    }

    /// Record the autotuned collision-kernel label (idempotent; last write
    /// wins when topologies with different shapes coexist in-process).
    pub fn set_collision_kernel(&self, label: &str) {
        *self.collision_kernel.lock().unwrap() = Some(label.to_string());
    }

    /// The collision-kernel label, if a topology has been built.
    pub fn collision_kernel(&self) -> Option<String> {
        self.collision_kernel.lock().unwrap().clone()
    }

    /// Zero every histogram and counter (tests and fresh-run brackets).
    pub fn reset(&self) {
        for p in &self.phases {
            p.busy.reset();
            p.comm_wait.reset();
        }
        self.recoveries.store(0, Ordering::Relaxed);
        self.recovery_wasted_us.store(0, Ordering::Relaxed);
        self.rebalances.store(0, Ordering::Relaxed);
        self.rebalance_moved_rows.store(0, Ordering::Relaxed);
        self.journal_appends.store(0, Ordering::Relaxed);
        self.journal_fsyncs.store(0, Ordering::Relaxed);
        self.journal_fsync_us.store(0, Ordering::Relaxed);
        self.replays.store(0, Ordering::Relaxed);
        self.replay_us.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_bytes_saved.store(0, Ordering::Relaxed);
        *self.collision_kernel.lock().unwrap() = None;
    }
}

/// A scoped phase timer: created by [`span`], records the elapsed wall
/// time into the global registry's `busy` histogram on drop. When
/// observability is disabled no clock is read.
#[must_use = "a span times the scope it is bound to; binding it to _ drops it immediately"]
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
}

impl Span {
    /// Complete the span early (identical to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            Registry::global().record_busy_us(self.phase, start.elapsed().as_micros() as u64);
        }
    }
}

/// Open a scoped timer for `phase`. The probe cost when disabled is the
/// [`enabled`] branch alone.
#[inline]
pub fn span(phase: Phase) -> Span {
    Span { phase, start: enabled().then(Instant::now) }
}

/// Record `us` of communication wait against the phase labelled `label`
/// (the form `xg-comm` calls with the traffic log's current phase tag).
#[inline]
pub fn record_comm_wait(label: &str, us: u64) {
    if enabled() {
        Registry::global().record_comm_wait_us(Phase::from_label(label), us);
    }
}

/// Record `us` of busy time against `phase` directly (for callers that
/// already hold an elapsed measurement, e.g. replayed traces).
#[inline]
pub fn record_busy(phase: Phase, us: u64) {
    if enabled() {
        Registry::global().record_busy_us(phase, us);
    }
}

/// Account one recovery event (see [`Registry::record_recovery_waste_us`]).
#[inline]
pub fn record_recovery_waste(us: u64) {
    if enabled() {
        Registry::global().record_recovery_waste_us(us);
    }
}

/// Account one capacity-aware rebalance (see
/// [`Registry::record_rebalance_moved_rows`]).
#[inline]
pub fn record_rebalance(moved_rows: u64) {
    if enabled() {
        Registry::global().record_rebalance_moved_rows(moved_rows);
    }
}

/// Account one committed journal append (the serving layer's WAL).
#[inline]
pub fn record_journal_append() {
    if enabled() {
        Registry::global().record_journal_append_us();
    }
}

/// Account one journal fsync that took `us`.
#[inline]
pub fn record_journal_fsync(us: u64) {
    if enabled() {
        Registry::global().record_journal_fsync_us(us);
    }
}

/// Account one startup journal replay that took `us`.
#[inline]
pub fn record_journal_replay(us: u64) {
    if enabled() {
        Registry::global().record_journal_replay_us(us);
    }
}

/// Account one artifact-cache hit that served `bytes` from the store.
#[inline]
pub fn record_cache_hit(bytes: u64) {
    if enabled() {
        Registry::global().record_cache_hit_bytes(bytes);
    }
}

/// Account one artifact-store consult that found nothing.
#[inline]
pub fn record_cache_miss() {
    if enabled() {
        Registry::global().record_cache_miss_count();
    }
}

/// Record the autotuned collision-kernel label into the global registry.
/// Unlike the timers this is configuration metadata (set once at topology
/// build), so it bypasses the [`enabled`] gate — disabling observability
/// must not erase which kernel the run used.
pub fn set_collision_kernel(label: &str) {
    Registry::global().set_collision_kernel(label);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_roundtrip() {
        for p in PHASES {
            assert_eq!(Phase::from_label(p.label()), p);
        }
        assert_eq!(Phase::from_label("no-such-phase"), Phase::Other);
        assert_eq!(Phase::Str.to_string(), "str");
    }

    #[test]
    fn span_records_into_global_registry() {
        set_enabled(true);
        let before = Registry::global().phase(Phase::Setup).busy.snapshot().count;
        {
            let _s = span(Phase::Setup);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let after = Registry::global().phase(Phase::Setup).busy.snapshot().count;
        assert!(after > before, "span did not record");
    }

    #[test]
    fn disabled_probe_records_nothing() {
        set_enabled(false);
        let before = Registry::global().phase(Phase::Recover).busy.snapshot().count;
        {
            let _s = span(Phase::Recover);
        }
        record_comm_wait("recover", 123);
        let m = Registry::global().phase(Phase::Recover);
        assert_eq!(m.busy.snapshot().count, before);
        set_enabled(true);
    }

    #[test]
    fn collision_kernel_label_survives_disable_and_clears_on_reset() {
        let reg = Registry::default();
        assert_eq!(reg.collision_kernel(), None);
        reg.set_collision_kernel("avx2/t64");
        assert_eq!(reg.collision_kernel().as_deref(), Some("avx2/t64"));
        reg.set_collision_kernel("avx512/t128");
        assert_eq!(reg.collision_kernel().as_deref(), Some("avx512/t128"));
        reg.reset();
        assert_eq!(reg.collision_kernel(), None);
        // The free function bypasses the enabled() gate: the label is
        // config metadata, not a timing probe.
        let was = enabled();
        set_enabled(false);
        set_collision_kernel("scalar/t8");
        set_enabled(was);
        assert_eq!(
            Registry::global().collision_kernel().as_deref(),
            Some("scalar/t8")
        );
    }

    #[test]
    fn recovery_counter_accumulates() {
        set_enabled(true);
        let (ev0, us0) = Registry::global().recovery_stats();
        record_recovery_waste(500);
        record_recovery_waste(250);
        let (ev, us) = Registry::global().recovery_stats();
        assert_eq!(ev - ev0, 2);
        assert_eq!(us - us0, 750);
    }

    #[test]
    fn rebalance_counter_accumulates() {
        set_enabled(true);
        let (ev0, rows0) = Registry::global().rebalance_stats();
        record_rebalance(6);
        record_rebalance(0);
        let (ev, rows) = Registry::global().rebalance_stats();
        assert_eq!(ev - ev0, 2);
        assert_eq!(rows - rows0, 6);
    }
}
