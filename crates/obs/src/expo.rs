//! Exposition: JSON, Prometheus text format, and a human phase table.
//!
//! All JSON is hand-rolled in the workspace style (the vendored serde is a
//! marker-only stub); keys come out in a fixed order so snapshots diff
//! cleanly. The Prometheus renderer follows the text exposition format:
//! `# HELP` / `# TYPE` per family, histograms as cumulative `_bucket`
//! series with `le` labels ending in `+Inf`, plus `_sum` and `_count`.
//! [`parse_prometheus`] reads that format back (enough of it for `xgplan
//! --profile` and the CI linter — full-line comments, labels, numeric
//! values).

use crate::hist::{bucket_bound, Snapshot};
use crate::{Phase, Registry, PHASES};

/// Render a registry snapshot as JSON.
///
/// Shape: `{"schema": "xg-obs-v1", "phases": {"str": {"busy_us": {...},
/// "comm_wait_us": {...}}, ...}, "recovery": {"events": N, "wasted_us": N}}`
/// where each histogram object carries `count/sum/min/max/p50/p99` with
/// `null` for aggregates that are undefined on an empty histogram. Phases
/// with no observations at all are omitted.
pub fn to_json(reg: &Registry) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\n  \"schema\": \"xg-obs-v1\",\n  \"phases\": {");
    let mut first = true;
    for phase in PHASES {
        let m = reg.phase(phase);
        let busy = m.busy.snapshot();
        let wait = m.comm_wait.snapshot();
        if busy.is_empty() && wait.is_empty() {
            continue;
        }
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!("\n    \"{phase}\": {{\"busy_us\": "));
        push_hist_json(&mut s, &busy);
        s.push_str(", \"comm_wait_us\": ");
        push_hist_json(&mut s, &wait);
        s.push('}');
    }
    if !first {
        s.push_str("\n  ");
    }
    let (events, wasted) = reg.recovery_stats();
    s.push_str("},\n");
    s.push_str(&format!(
        "  \"recovery\": {{\"events\": {events}, \"wasted_us\": {wasted}}},\n"
    ));
    let (rb_events, rb_rows) = reg.rebalance_stats();
    s.push_str(&format!(
        "  \"rebalance\": {{\"events\": {rb_events}, \"moved_rows\": {rb_rows}}},\n"
    ));
    let (appends, fsyncs, fsync_us) = reg.journal_stats();
    s.push_str(&format!(
        "  \"journal\": {{\"appends\": {appends}, \"fsyncs\": {fsyncs}, \"fsync_us\": {fsync_us}}},\n"
    ));
    let (replays, replay_us) = reg.replay_stats();
    s.push_str(&format!(
        "  \"replay\": {{\"count\": {replays}, \"wall_us\": {replay_us}}},\n"
    ));
    let (hits, misses, saved) = reg.cache_stats();
    s.push_str(&format!(
        "  \"cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"bytes_saved\": {saved}}},\n"
    ));
    match reg.collision_kernel() {
        Some(k) => s.push_str(&format!("  \"collision_kernel\": \"{k}\"\n")),
        None => s.push_str("  \"collision_kernel\": null\n"),
    }
    s.push_str("}\n");
    s
}

fn push_hist_json(s: &mut String, h: &Snapshot) {
    s.push_str(&format!("{{\"count\": {}, \"sum\": {}", h.count, h.sum));
    push_opt(s, "min", h.min_us());
    push_opt(s, "max", h.max_us());
    push_opt(s, "p50", h.p50_us());
    push_opt(s, "p99", h.p99_us());
    s.push('}');
}

fn push_opt(s: &mut String, key: &str, v: Option<u64>) {
    match v {
        Some(v) => s.push_str(&format!(", \"{key}\": {v}")),
        None => s.push_str(&format!(", \"{key}\": null")),
    }
}

/// Render a registry snapshot in the Prometheus text exposition format.
///
/// Families (all in seconds, per Prometheus convention):
/// * `xgyro_phase_busy_seconds` — histogram, label `phase`;
/// * `xgyro_phase_comm_wait_seconds` — histogram, label `phase`;
/// * `xgyro_recovery_events_total`, `xgyro_recovery_wasted_seconds_total`,
///   `xgyro_rebalance_events_total`, `xgyro_rebalance_moved_rows_total`
///   — counters.
///
/// Every phase family is emitted even when empty (Prometheus prefers
/// stable series over appearing/disappearing ones).
pub fn to_prometheus(reg: &Registry) -> String {
    let mut s = String::with_capacity(4096);
    push_prom_hist_family(
        &mut s,
        "xgyro_phase_busy_seconds",
        "Wall time inside each simulation phase (includes comm waits).",
        |p| reg.phase(p).busy.snapshot(),
    );
    push_prom_hist_family(
        &mut s,
        "xgyro_phase_comm_wait_seconds",
        "Wall time blocked in collectives, attributed to the issuing phase.",
        |p| reg.phase(p).comm_wait.snapshot(),
    );
    let (events, wasted) = reg.recovery_stats();
    s.push_str("# HELP xgyro_recovery_events_total Fault-recovery events observed.\n");
    s.push_str("# TYPE xgyro_recovery_events_total counter\n");
    s.push_str(&format!("xgyro_recovery_events_total {events}\n"));
    s.push_str(
        "# HELP xgyro_recovery_wasted_seconds_total Re-executed work discarded by rollbacks.\n",
    );
    s.push_str("# TYPE xgyro_recovery_wasted_seconds_total counter\n");
    s.push_str(&format!(
        "xgyro_recovery_wasted_seconds_total {}\n",
        fmt_seconds(wasted)
    ));
    let (rb_events, rb_rows) = reg.rebalance_stats();
    s.push_str(
        "# HELP xgyro_rebalance_events_total Capacity-aware post-eviction rebalances.\n",
    );
    s.push_str("# TYPE xgyro_rebalance_events_total counter\n");
    s.push_str(&format!("xgyro_rebalance_events_total {rb_events}\n"));
    s.push_str(
        "# HELP xgyro_rebalance_moved_rows_total Coll nc rows moved vs a uniform shrink.\n",
    );
    s.push_str("# TYPE xgyro_rebalance_moved_rows_total counter\n");
    s.push_str(&format!("xgyro_rebalance_moved_rows_total {rb_rows}\n"));
    let (appends, fsyncs, fsync_us) = reg.journal_stats();
    s.push_str("# HELP xgyro_journal_appends_total Committed write-ahead journal appends.\n");
    s.push_str("# TYPE xgyro_journal_appends_total counter\n");
    s.push_str(&format!("xgyro_journal_appends_total {appends}\n"));
    s.push_str("# HELP xgyro_journal_fsyncs_total fsync calls issued by the journal.\n");
    s.push_str("# TYPE xgyro_journal_fsyncs_total counter\n");
    s.push_str(&format!("xgyro_journal_fsyncs_total {fsyncs}\n"));
    s.push_str(
        "# HELP xgyro_journal_fsync_seconds_total Wall time spent inside journal fsyncs.\n",
    );
    s.push_str("# TYPE xgyro_journal_fsync_seconds_total counter\n");
    s.push_str(&format!(
        "xgyro_journal_fsync_seconds_total {}\n",
        fmt_seconds(fsync_us)
    ));
    let (replays, replay_us) = reg.replay_stats();
    s.push_str("# HELP xgyro_journal_replays_total Startup journal replays performed.\n");
    s.push_str("# TYPE xgyro_journal_replays_total counter\n");
    s.push_str(&format!("xgyro_journal_replays_total {replays}\n"));
    s.push_str(
        "# HELP xgyro_journal_replay_seconds_total Wall time spent replaying journals at startup.\n",
    );
    s.push_str("# TYPE xgyro_journal_replay_seconds_total counter\n");
    s.push_str(&format!(
        "xgyro_journal_replay_seconds_total {}\n",
        fmt_seconds(replay_us)
    ));
    let (hits, misses, saved) = reg.cache_stats();
    s.push_str("# HELP xgyro_cache_hits_total Submissions served from the artifact store.\n");
    s.push_str("# TYPE xgyro_cache_hits_total counter\n");
    s.push_str(&format!("xgyro_cache_hits_total {hits}\n"));
    s.push_str(
        "# HELP xgyro_cache_misses_total Artifact-store consults that found no manifest.\n",
    );
    s.push_str("# TYPE xgyro_cache_misses_total counter\n");
    s.push_str(&format!("xgyro_cache_misses_total {misses}\n"));
    s.push_str(
        "# HELP xgyro_cache_bytes_saved_total Outcome bytes served from the artifact store instead of recomputed.\n",
    );
    s.push_str("# TYPE xgyro_cache_bytes_saved_total counter\n");
    s.push_str(&format!("xgyro_cache_bytes_saved_total {saved}\n"));
    // Info-style metric: constant 1 with the autotuned collision kernel as
    // a label. Its own family (not a label on the phase histograms) so
    // every sample of one name keeps the same label keys — the linter's
    // consistency rule. Omitted until a topology has been built.
    if let Some(kernel) = reg.collision_kernel() {
        s.push_str(
            "# HELP xgyro_collision_kernel_info Autotuned collision kernel (SIMD level / row-tile height).\n",
        );
        s.push_str("# TYPE xgyro_collision_kernel_info gauge\n");
        s.push_str(&format!(
            "xgyro_collision_kernel_info{{kernel=\"{kernel}\"}} 1\n"
        ));
    }
    s
}

fn push_prom_hist_family(
    s: &mut String,
    name: &str,
    help: &str,
    snap: impl Fn(Phase) -> Snapshot,
) {
    s.push_str(&format!("# HELP {name} {help}\n"));
    s.push_str(&format!("# TYPE {name} histogram\n"));
    for phase in PHASES {
        let h = snap(phase);
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            cum += c;
            let le = match bucket_bound(i) {
                Some(b) => fmt_seconds(b),
                None => "+Inf".to_string(),
            };
            s.push_str(&format!(
                "{name}_bucket{{phase=\"{phase}\",le=\"{le}\"}} {cum}\n"
            ));
        }
        s.push_str(&format!(
            "{name}_sum{{phase=\"{phase}\"}} {}\n",
            fmt_seconds(h.sum)
        ));
        s.push_str(&format!("{name}_count{{phase=\"{phase}\"}} {}\n", h.count));
    }
}

/// Microseconds → seconds, trailing zeros trimmed (`1500 → "0.0015"`,
/// `2_000_000 → "2"`). Prometheus values are floats; exact short decimals
/// keep the text diffable.
fn fmt_seconds(us: u64) -> String {
    let mut s = format!("{}.{:06}", us / 1_000_000, us % 1_000_000);
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

/// Render a human-readable per-phase wall-time table: count, total busy,
/// mean, p99, comm-wait total, and comm-wait share of busy. Empty phases
/// are skipped; returns `None` when nothing has been recorded (callers
/// then skip printing the table entirely).
pub fn render_table(reg: &Registry) -> Option<String> {
    let mut out = String::from(
        "phase     spans     busy(ms)     mean(us)      p99(us) comm-wait(ms)  wait%\n",
    );
    let mut any = false;
    for phase in PHASES {
        let m = reg.phase(phase);
        let busy = m.busy.snapshot();
        let wait = m.comm_wait.snapshot();
        if busy.is_empty() && wait.is_empty() {
            continue;
        }
        any = true;
        let wait_pct = if busy.sum > 0 {
            100.0 * wait.sum as f64 / busy.sum as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<9} {:>5} {:>12.3} {:>12.1} {:>12} {:>13.3} {:>5.1}%\n",
            phase.label(),
            busy.count,
            busy.sum as f64 / 1000.0,
            busy.mean_us().unwrap_or(0.0),
            busy.p99_us().unwrap_or(0),
            wait.sum as f64 / 1000.0,
            wait_pct,
        ));
    }
    any.then_some(out)
}

/// One sample parsed from Prometheus text: metric name, sorted labels, and
/// value.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Metric name (e.g. `xgyro_phase_busy_seconds_sum`).
    pub name: String,
    /// Label pairs as written, in order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf`-safe: parsed as f64).
    pub value: f64,
}

impl PromSample {
    /// Look up a label value.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse Prometheus text exposition into samples. Comment and blank lines
/// are skipped; a malformed sample line yields `Err` with a line-numbered
/// message (this is what the `promlint` CI tool builds on).
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}: {raw}", ln + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    // <name>[{k="v",...}] <value>
    let (head, value) = line
        .rsplit_once(|c: char| c.is_whitespace())
        .ok_or("missing value")?;
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse::<f64>().map_err(|_| "unparseable value")?,
    };
    let head = head.trim();
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').ok_or("unterminated label set")?;
            let mut labels = Vec::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').ok_or("label without '='")?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or("unquoted label value")?;
                labels.push((k.trim().to_string(), v.to_string()));
            }
            (name.to_string(), labels)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err("invalid metric name".into());
    }
    Ok(PromSample { name, labels, value })
}

/// Structural checks over parsed samples: histogram buckets must be
/// cumulative and end with `+Inf` matching `_count`; every sample of one
/// name must carry the same label keys. Returns the number of samples on
/// success. This is the body of the `promlint` CI tool, kept in the
/// library so tests can call it.
pub fn lint_prometheus(text: &str) -> Result<usize, String> {
    let samples = parse_prometheus(text)?;
    // Group bucket series by (family, non-le labels).
    type BucketGroup = (String, Vec<(String, String)>, Vec<(f64, f64)>);
    let mut groups: Vec<BucketGroup> = Vec::new();
    for s in &samples {
        if let Some(family) = s.name.strip_suffix("_bucket") {
            let le = s
                .label("le")
                .ok_or_else(|| format!("{}: bucket without le label", s.name))?;
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("{}: bad le value {le}", s.name))?
            };
            let key_labels: Vec<_> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            match groups
                .iter_mut()
                .find(|(f, k, _)| f == family && *k == key_labels)
            {
                Some((_, _, buckets)) => buckets.push((le, s.value)),
                None => groups.push((family.to_string(), key_labels, vec![(le, s.value)])),
            }
        }
    }
    for (family, labels, buckets) in &groups {
        let ctx = format!("{family}{labels:?}");
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = 0.0;
        for &(le, cum) in buckets {
            if le <= prev_le {
                return Err(format!("{ctx}: le values not increasing"));
            }
            if cum < prev_cum {
                return Err(format!("{ctx}: bucket counts not cumulative"));
            }
            prev_le = le;
            prev_cum = cum;
        }
        let last = buckets.last().ok_or_else(|| format!("{ctx}: no buckets"))?;
        if last.0 != f64::INFINITY {
            return Err(format!("{ctx}: missing +Inf bucket"));
        }
        let count = samples
            .iter()
            .find(|s| {
                s.name == format!("{family}_count")
                    && labels.iter().all(|(k, v)| s.label(k) == Some(v))
            })
            .ok_or_else(|| format!("{ctx}: histogram without _count"))?;
        if count.value != last.1 {
            return Err(format!(
                "{ctx}: +Inf bucket {} != _count {}",
                last.1, count.value
            ));
        }
        samples
            .iter()
            .find(|s| {
                s.name == format!("{family}_sum")
                    && labels.iter().all(|(k, v)| s.label(k) == Some(v))
            })
            .ok_or_else(|| format!("{ctx}: histogram without _sum"))?;
    }
    Ok(samples.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    fn test_registry() -> Registry {
        let reg = Registry::default();
        reg.record_busy_us(Phase::Str, 100);
        reg.record_busy_us(Phase::Str, 200);
        reg.record_comm_wait_us(Phase::Str, 40);
        reg.record_busy_us(Phase::Coll, 1000);
        reg.record_recovery_waste_us(1500);
        reg.record_rebalance_moved_rows(6);
        reg.record_journal_append_us();
        reg.record_journal_append_us();
        reg.record_journal_fsync_us(2500);
        reg.record_journal_replay_us(12_000);
        reg.record_cache_hit_bytes(4096);
        reg.record_cache_miss_count();
        reg.set_collision_kernel("avx2/t64");
        reg
    }

    #[test]
    fn json_emits_active_phases_and_null_for_empty_aggregates() {
        let reg = test_registry();
        let json = to_json(&reg);
        assert!(json.contains("\"schema\": \"xg-obs-v1\""));
        assert!(json.contains("\"str\""));
        assert!(json.contains("\"coll\""));
        assert!(!json.contains("\"diag\""), "empty phase leaked: {json}");
        // coll has busy but no comm-wait: its wait aggregates are null.
        assert!(json.contains("\"comm_wait_us\": {\"count\": 0, \"sum\": 0, \"min\": null"));
        assert!(json.contains("\"recovery\": {\"events\": 1, \"wasted_us\": 1500}"));
        assert!(json.contains("\"rebalance\": {\"events\": 1, \"moved_rows\": 6}"));
        assert!(json.contains("\"journal\": {\"appends\": 2, \"fsyncs\": 1, \"fsync_us\": 2500}"));
        assert!(json.contains("\"replay\": {\"count\": 1, \"wall_us\": 12000}"));
        assert!(json.contains("\"cache\": {\"hits\": 1, \"misses\": 1, \"bytes_saved\": 4096}"));
        assert!(json.contains("\"collision_kernel\": \"avx2/t64\""));
    }

    #[test]
    fn empty_registry_json_is_well_formed() {
        let json = to_json(&Registry::default());
        assert!(json.contains("\"phases\": {}"));
        assert!(json.contains("\"recovery\": {\"events\": 0, \"wasted_us\": 0}"));
        assert!(json.contains("\"rebalance\": {\"events\": 0, \"moved_rows\": 0}"));
        assert!(json.contains("\"journal\": {\"appends\": 0, \"fsyncs\": 0, \"fsync_us\": 0}"));
        assert!(json.contains("\"replay\": {\"count\": 0, \"wall_us\": 0}"));
        assert!(json.contains("\"cache\": {\"hits\": 0, \"misses\": 0, \"bytes_saved\": 0}"));
        assert!(json.contains("\"collision_kernel\": null"));
    }

    #[test]
    fn prometheus_text_passes_the_linter() {
        let reg = test_registry();
        let text = to_prometheus(&reg);
        assert!(text.contains("# TYPE xgyro_phase_busy_seconds histogram"));
        assert!(text.contains("xgyro_phase_busy_seconds_count{phase=\"str\"} 2"));
        assert!(text.contains("xgyro_phase_busy_seconds_sum{phase=\"str\"} 0.0003"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("xgyro_recovery_wasted_seconds_total 0.0015"));
        assert!(text.contains("xgyro_rebalance_events_total 1"));
        assert!(text.contains("xgyro_rebalance_moved_rows_total 6"));
        assert!(text.contains("xgyro_journal_appends_total 2"));
        assert!(text.contains("xgyro_journal_fsyncs_total 1"));
        assert!(text.contains("xgyro_journal_fsync_seconds_total 0.0025"));
        assert!(text.contains("xgyro_journal_replays_total 1"));
        assert!(text.contains("xgyro_journal_replay_seconds_total 0.012"));
        assert!(text.contains("xgyro_cache_hits_total 1"));
        assert!(text.contains("xgyro_cache_misses_total 1"));
        assert!(text.contains("xgyro_cache_bytes_saved_total 4096"));
        assert!(text.contains("xgyro_collision_kernel_info{kernel=\"avx2/t64\"} 1"));
        assert!(
            !to_prometheus(&Registry::default()).contains("xgyro_collision_kernel_info"),
            "info metric must be omitted until a kernel is recorded"
        );
        let n = lint_prometheus(&text).expect("own exposition must lint clean");
        assert!(n > 100, "expected full bucket series, got {n} samples");
    }

    #[test]
    fn parser_roundtrips_labels_and_inf() {
        let text = "m_bucket{phase=\"str\",le=\"+Inf\"} 7\nplain 1.5\n# comment\n";
        let samples = parse_prometheus(text).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].label("phase"), Some("str"));
        assert_eq!(samples[0].label("le"), Some("+Inf"));
        assert_eq!(samples[0].value, 7.0);
        assert_eq!(samples[1].name, "plain");
        assert_eq!(samples[1].value, 1.5);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("noval\n").is_err());
        assert!(parse_prometheus("m{unclosed=\"x\" 1\n").is_err());
        assert!(parse_prometheus("m{k=unquoted} 1\n").is_err());
        assert!(parse_prometheus("bad name 1 2\n").is_err());
    }

    #[test]
    fn linter_catches_structural_breakage() {
        // Non-cumulative buckets.
        let bad = "\
m_bucket{le=\"1\"} 5\nm_bucket{le=\"+Inf\"} 3\nm_sum 1\nm_count 3\n";
        assert!(lint_prometheus(bad).unwrap_err().contains("cumulative"));
        // Missing +Inf.
        let bad = "m_bucket{le=\"1\"} 5\nm_sum 1\nm_count 5\n";
        assert!(lint_prometheus(bad).unwrap_err().contains("+Inf"));
        // +Inf disagrees with _count.
        let bad = "m_bucket{le=\"+Inf\"} 5\nm_sum 1\nm_count 6\n";
        assert!(lint_prometheus(bad).unwrap_err().contains("_count"));
        // Histogram without _sum.
        let bad = "m_bucket{le=\"+Inf\"} 5\nm_count 5\n";
        assert!(lint_prometheus(bad).unwrap_err().contains("_sum"));
    }

    #[test]
    fn seconds_formatting_is_exact_and_short() {
        assert_eq!(fmt_seconds(0), "0");
        assert_eq!(fmt_seconds(1), "0.000001");
        assert_eq!(fmt_seconds(1500), "0.0015");
        assert_eq!(fmt_seconds(2_000_000), "2");
        assert_eq!(fmt_seconds(2_500_000), "2.5");
    }

    #[test]
    fn table_renders_active_phases_only() {
        let reg = test_registry();
        let table = render_table(&reg).unwrap();
        assert!(table.contains("str"));
        assert!(table.contains("coll"));
        assert!(!table.contains("diag"));
        assert!(render_table(&Registry::default()).is_none());
    }

    #[test]
    fn histogram_type_reexports() {
        // Guard: Histogram stays reachable at crate root (bench + comm use it).
        let h = Histogram::new();
        h.record(1);
        assert_eq!(h.snapshot().count, 1);
    }
}
