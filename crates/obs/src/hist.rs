//! Fixed-bucket log2 histograms on relaxed atomics.
//!
//! A [`Histogram`] holds 32 power-of-two microsecond buckets (`< 1 µs`,
//! `< 2 µs`, … `< 2^30 µs` ≈ 18 min, plus overflow) next to count / sum /
//! min / max registers. Every field is a relaxed `AtomicU64`, so recording
//! is wait-free and safe from any number of rank threads; reads produce a
//! [`Snapshot`] that is internally *approximately* consistent (fields are
//! loaded one by one while writers may race), which is the usual contract
//! for scrape-style metrics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets (the last one is the overflow bucket).
pub const BUCKETS: usize = 32;

const R: Ordering = Ordering::Relaxed;

/// A wait-free log2(µs) histogram.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket a `us` value falls into: bucket `i` counts values
/// with `value < 2^i`, i.e. `i = bit_length(us)` clamped to the overflow
/// bucket.
pub fn bucket_index(us: u64) -> usize {
    ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Upper bound (exclusive, in µs) of bucket `i`; `None` for the overflow
/// bucket (Prometheus `+Inf`).
pub fn bucket_bound(i: usize) -> Option<u64> {
    if i + 1 < BUCKETS {
        Some(1u64 << i)
    } else {
        None
    }
}

impl Histogram {
    /// An empty histogram (const, so it can live in statics).
    pub const fn new() -> Self {
        // `[const { ... }; N]` array-of-atomics initializer needs a const
        // block; spell it via a const item to stay on older idiom.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [ZERO; BUCKETS],
        }
    }

    /// Record one observation of `us` microseconds. Wait-free.
    pub fn record(&self, us: u64) {
        self.count.fetch_add(1, R);
        self.sum.fetch_add(us, R);
        self.buckets[bucket_index(us)].fetch_add(1, R);
        self.min.fetch_min(us, R);
        self.max.fetch_max(us, R);
    }

    /// Zero every register.
    pub fn reset(&self) {
        self.count.store(0, R);
        self.sum.store(0, R);
        self.min.store(u64::MAX, R);
        self.max.store(0, R);
        for b in &self.buckets {
            b.store(0, R);
        }
    }

    /// Load a point-in-time copy of every register.
    pub fn snapshot(&self) -> Snapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(R);
        }
        Snapshot {
            count: self.count.load(R),
            sum: self.sum.load(R),
            min: self.min.load(R),
            max: self.max.load(R),
            buckets,
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed microseconds.
    pub sum: u64,
    /// Smallest observation (µs); `u64::MAX` when empty.
    pub min: u64,
    /// Largest observation (µs).
    pub max: u64,
    /// Per-bucket counts (bucket `i` holds values `< 2^i µs`).
    pub buckets: [u64; BUCKETS],
}

impl Snapshot {
    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean in microseconds, `None` when empty.
    pub fn mean_us(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Smallest observation, `None` when empty (hides the `u64::MAX`
    /// sentinel).
    pub fn min_us(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    pub fn max_us(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Bucket-resolution quantile estimate: the upper bound of the first
    /// bucket whose cumulative count reaches `q·count` (so accurate to a
    /// factor of 2, which is what log2 buckets buy). `None` when empty.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // Report the bucket's inclusive upper edge, clamped by the
                // true max so p99 of a single observation equals that
                // observation's bucket, never past the real maximum.
                return Some(match bucket_bound(i) {
                    Some(b) => (b - 1).min(self.max),
                    None => self.max,
                });
            }
        }
        Some(self.max)
    }

    /// p50 estimate (see [`Snapshot::quantile_us`]).
    pub fn p50_us(&self) -> Option<u64> {
        self.quantile_us(0.50)
    }

    /// p99 estimate (see [`Snapshot::quantile_us`]).
    pub fn p99_us(&self) -> Option<u64> {
        self.quantile_us(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every non-overflow bucket bound is consistent with the index map.
        for i in 0..BUCKETS - 1 {
            let bound = bucket_bound(i).unwrap();
            assert!(bucket_index(bound - 1) <= i);
            assert!(bucket_index(bound) > i);
        }
        assert_eq!(bucket_bound(BUCKETS - 1), None);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        assert!(h.snapshot().is_empty());
        assert_eq!(h.snapshot().mean_us(), None);
        assert_eq!(h.snapshot().min_us(), None);

        for v in [10, 20, 30, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1060);
        assert_eq!(s.min_us(), Some(10));
        assert_eq!(s.max_us(), Some(1000));
        assert_eq!(s.mean_us(), Some(265.0));
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);

        h.reset();
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let h = Histogram::new();
        // 99 fast observations and one slow outlier.
        for _ in 0..99 {
            h.record(5);
        }
        h.record(100_000);
        let s = h.snapshot();
        // p50 lands in the bucket containing 5 (bucket 3, bound 8).
        assert_eq!(s.p50_us(), Some(7));
        // p99 still lands among the fast observations (rank 99 of 100).
        assert_eq!(s.p99_us(), Some(7));
        // The true tail is visible through max.
        assert_eq!(s.max_us(), Some(100_000));
        // A higher quantile reaches the outlier bucket.
        assert_eq!(s.quantile_us(1.0), Some(100_000));
    }

    #[test]
    fn single_observation_quantile_never_exceeds_max() {
        let h = Histogram::new();
        h.record(33);
        let s = h.snapshot();
        assert_eq!(s.p50_us(), Some(33));
        assert_eq!(s.p99_us(), Some(33));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(s.min_us(), Some(0));
        assert_eq!(s.max_us(), Some(3999));
    }
}
