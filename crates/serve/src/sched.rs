//! Deficit-round-robin (DRR) fair-share dispatch across tenants, with
//! priority lanes.
//!
//! The server's ready queue used to be a plain FIFO: one aggressive
//! tenant could occupy every worker indefinitely. [`DispatchQueue`]
//! replaces it with the classic DRR scheduler over per-tenant FIFO
//! queues:
//!
//! * Each queued batch carries a **cost** in abstract work units (the
//!   server uses `k × steps` — member-steps of simulation).
//! * Tenants take turns in round-robin order; each visit credits the
//!   tenant's *deficit counter* with `quantum × weight`, and the tenant's
//!   head batch dispatches once the deficit covers its cost. Over time
//!   every backlogged tenant therefore receives machine time proportional
//!   to its configured weight, regardless of arrival pattern — and no
//!   tenant starves, because deficits grow monotonically while a tenant
//!   waits (the starvation proptest below pins the bound).
//! * **Priority lanes** sit above fairness: a higher lane always
//!   dispatches first, and the server preempts lower-lane batches at
//!   checkpoint boundaries when a higher lane is waiting (see
//!   `docs/serving.md`). DRR applies *within* each lane.
//!
//! The queue is generic over the queued item so the scheduling policy is
//! testable without constructing server state; the server instantiates it
//! with its `ReadyBatch`.

use std::collections::{BTreeMap, VecDeque};

/// Default DRR quantum in work units credited per round-robin visit per
/// unit of weight. The absolute value only sets how interleaved service
/// is relative to batch costs; fairness ratios come from the weights.
pub const DEFAULT_QUANTUM: u64 = 64;

#[derive(Debug)]
struct Entry<T> {
    cost: u64,
    item: T,
}

#[derive(Debug)]
struct TenantQueue<T> {
    weight: u32,
    deficit: u64,
    /// Whether this tenant's current round-robin visit has already been
    /// credited. DRR serves a tenant in a burst until its deficit is
    /// spent; the flag lets consecutive `pop` calls continue one visit
    /// without crediting it twice.
    charged: bool,
    items: VecDeque<Entry<T>>,
}

#[derive(Debug)]
struct Lane<T> {
    queues: BTreeMap<String, TenantQueue<T>>,
    /// Round-robin order over tenants with backlog in this lane.
    rr: VecDeque<String>,
}

impl<T> Lane<T> {
    fn new() -> Self {
        Self { queues: BTreeMap::new(), rr: VecDeque::new() }
    }

    fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    fn len(&self) -> usize {
        self.queues.values().map(|q| q.items.len()).sum()
    }

    fn push(&mut self, tenant: &str, weight: u32, cost: u64, item: T) {
        let q = self.queues.entry(tenant.to_string()).or_insert_with(|| {
            self.rr.push_back(tenant.to_string());
            TenantQueue { weight, deficit: 0, charged: false, items: VecDeque::new() }
        });
        // Latest configured weight wins (a roster reload mid-flight).
        q.weight = weight.max(1);
        q.items.push_back(Entry { cost, item });
    }

    fn pop<F: Fn(&T) -> bool>(&mut self, quantum: u64, fits: &F) -> Option<T> {
        // Termination guard: unless some tenant's head batch passes
        // `fits`, rotating can never serve anyone — return without
        // touching any deficit.
        if !self
            .queues
            .values()
            .any(|q| q.items.front().is_some_and(|e| fits(&e.item)))
        {
            return None;
        }
        loop {
            let name = self.rr.front().expect("fitting head implies backlog").clone();
            let q = self.queues.get_mut(&name).expect("rr tracks queues");
            let credit = quantum.saturating_mul(u64::from(q.weight));
            if !q.charged {
                // First touch of this visit: credit the deficit counter.
                // The tenant then serves in a burst — later `pop` calls
                // find `charged` still set and spend the same credit —
                // until the deficit no longer covers its head.
                q.deficit = q.deficit.saturating_add(credit);
                q.charged = true;
            }
            let head = q.items.front().expect("empty queues leave rr");
            let head_cost = head.cost;
            if q.deficit >= head_cost && fits(&head.item) {
                let e = q.items.pop_front().expect("head exists");
                q.deficit -= e.cost;
                if q.items.is_empty() {
                    // An emptied tenant leaves the round and forfeits its
                    // residual deficit — credit never outlives backlog.
                    self.queues.remove(&name);
                    self.rr.retain(|n| n != &name);
                }
                return Some(e.item);
            }
            // Visit over (still saving up, or its head does not fit the
            // free capacity). Cap the banked credit so a capacity-blocked
            // tenant cannot hoard an unbounded burst, while keeping the
            // cap ≥ head cost so it always eventually affords its head.
            // Then move on.
            let cap = head_cost.max(credit).saturating_mul(2);
            q.deficit = q.deficit.min(cap);
            q.charged = false;
            self.rr.rotate_left(1);
        }
    }

    fn retain<F: FnMut(&mut T) -> bool>(&mut self, f: &mut F) {
        for q in self.queues.values_mut() {
            q.items.retain_mut(|e| f(&mut e.item));
        }
        self.queues.retain(|_, q| !q.items.is_empty());
        self.rr.retain(|n| self.queues.contains_key(n));
    }
}

/// Priority-laned DRR dispatch queue. See the module docs.
#[derive(Debug)]
pub struct DispatchQueue<T> {
    quantum: u64,
    lanes: BTreeMap<u8, Lane<T>>,
}

impl<T> Default for DispatchQueue<T> {
    fn default() -> Self {
        Self::new(DEFAULT_QUANTUM)
    }
}

impl<T> DispatchQueue<T> {
    /// A queue crediting `quantum` work units per visit per unit weight.
    pub fn new(quantum: u64) -> Self {
        Self { quantum: quantum.max(1), lanes: BTreeMap::new() }
    }

    /// Enqueue `item` for `tenant` at `priority`, costing `cost` work
    /// units of the tenant's fair share when dispatched.
    pub fn push(&mut self, tenant: &str, weight: u32, priority: u8, cost: u64, item: T) {
        self.lanes
            .entry(priority)
            .or_insert_with(Lane::new)
            .push(tenant, weight, cost, item);
    }

    /// Dispatch the next item: highest priority lane first, DRR
    /// fair-share within the lane. `fits` filters on external capacity
    /// (the server passes "does this batch's node ask fit the free
    /// budget"); an item whose tenant has banked enough deficit but whose
    /// head does not fit blocks only its own tenant's queue, not the
    /// round. Returns `None` when nothing queued passes `fits`.
    pub fn pop<F: Fn(&T) -> bool>(&mut self, fits: F) -> Option<T> {
        let prios: Vec<u8> = self.lanes.keys().rev().copied().collect();
        for p in prios {
            let lane = self.lanes.get_mut(&p).expect("key just listed");
            if let Some(item) = lane.pop(self.quantum, &fits) {
                if lane.is_empty() {
                    self.lanes.remove(&p);
                }
                return Some(item);
            }
        }
        None
    }

    /// Queued item count across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.values().map(Lane::len).sum()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// The highest priority among queued items, if any — what a running
    /// batch compares its own lane against at checkpoint boundaries to
    /// decide whether to yield.
    pub fn highest_waiting_priority(&self) -> Option<u8> {
        self.lanes.keys().next_back().copied()
    }

    /// Minimum of `f` over the head items of every tenant queue in lanes
    /// strictly above `priority` — `None` when no higher lane has backlog.
    /// The server's preemption check uses this as "the smallest node ask
    /// that could dispatch from a higher lane": a running batch yields its
    /// nodes only when that ask is blocked now and provably fits once the
    /// batch's own allocation is released, so a yield always unblocks the
    /// higher lane instead of spinning.
    pub fn min_over_higher_lanes<F: Fn(&T) -> u64>(&self, priority: u8, f: F) -> Option<u64> {
        self.lanes
            .range((std::ops::Bound::Excluded(priority), std::ops::Bound::Unbounded))
            .flat_map(|(_, lane)| {
                lane.queues
                    .values()
                    .filter_map(|q| q.items.front().map(|e| f(&e.item)))
            })
            .min()
    }

    /// Filter (and possibly mutate) every queued item; items for which
    /// `f` returns false are dropped. The server's cancel path uses this
    /// to evict a member from a flushed-but-undispatched batch.
    pub fn retain<F: FnMut(&mut T) -> bool>(&mut self, mut f: F) {
        for lane in self.lanes.values_mut() {
            lane.retain(&mut f);
        }
        self.lanes.retain(|_, l| !l.is_empty());
    }

    /// Drain everything in dispatch order (priority, then fair-share).
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(item) = self.pop(|_| true) {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_within_a_tenant() {
        let mut q = DispatchQueue::new(8);
        for i in 0..5u32 {
            q.push("a", 1, 0, 10, i);
        }
        let got: Vec<u32> = q.drain_all();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn equal_weights_interleave_equal_cost_items() {
        let mut q = DispatchQueue::new(8);
        for i in 0..4u32 {
            q.push("a", 1, 0, 8, i);
        }
        for i in 10..14u32 {
            q.push("b", 1, 0, 8, i);
        }
        let got: Vec<u32> = q.drain_all();
        // Perfect alternation: every item costs exactly one visit's credit.
        assert_eq!(got, vec![0, 10, 1, 11, 2, 12, 3, 13]);
    }

    #[test]
    fn weights_skew_service_proportionally() {
        let mut q = DispatchQueue::new(8);
        for i in 0..30u32 {
            q.push("heavy", 3, 0, 8, i);
            q.push("light", 1, 0, 8, 100 + i);
        }
        // After the first 16 dispatches, heavy should hold ~3/4 of them.
        let mut heavy = 0;
        for _ in 0..16 {
            if q.pop(|_| true).unwrap() < 100 {
                heavy += 1;
            }
        }
        assert!((11..=13).contains(&heavy), "heavy got {heavy}/16, want ~12");
    }

    #[test]
    fn higher_priority_lanes_dispatch_first() {
        let mut q = DispatchQueue::new(8);
        q.push("batch", 1, 0, 8, 0u32);
        q.push("interactive", 1, 2, 8, 1);
        q.push("batch", 1, 0, 8, 2);
        assert_eq!(q.highest_waiting_priority(), Some(2));
        assert_eq!(q.pop(|_| true), Some(1));
        assert_eq!(q.highest_waiting_priority(), Some(0));
        assert_eq!(q.drain_all(), vec![0, 2]);
    }

    #[test]
    fn min_over_higher_lanes_sees_only_strictly_higher_heads() {
        let mut q = DispatchQueue::new(8);
        q.push("batch", 1, 0, 8, 40u32);
        q.push("interactive", 1, 2, 8, 12);
        q.push("urgent", 1, 3, 8, 7);
        // Non-head items never participate: only each tenant's head counts.
        q.push("urgent", 1, 3, 8, 1);
        assert_eq!(q.min_over_higher_lanes(0, |x| u64::from(*x)), Some(7));
        assert_eq!(q.min_over_higher_lanes(2, |x| u64::from(*x)), Some(7));
        assert_eq!(q.min_over_higher_lanes(3, |x| u64::from(*x)), None);
    }

    #[test]
    fn fits_filter_blocks_only_the_blocked_tenant() {
        let mut q = DispatchQueue::new(8);
        q.push("big", 1, 0, 8, 100u32); // pretend it needs too many nodes
        q.push("small", 1, 0, 8, 1);
        assert_eq!(q.pop(|x| *x < 100), Some(1));
        assert_eq!(q.pop(|x| *x < 100), None, "only the unfitting item left");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(|_| true), Some(100), "capacity freed, now dispatchable");
    }

    #[test]
    fn retain_evicts_and_drops_empty_tenants() {
        let mut q = DispatchQueue::new(8);
        q.push("a", 1, 0, 8, 1u32);
        q.push("a", 1, 0, 8, 2);
        q.push("b", 1, 1, 8, 3);
        q.retain(|x| *x != 3 && *x != 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.highest_waiting_priority(), Some(0), "emptied lane dropped");
        assert_eq!(q.drain_all(), vec![2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Starvation-freedom + proportional share for ANY tenant arrival
        /// pattern (the ISSUE satellite): drain the whole queue and check
        /// (a) conservation — every pushed item pops exactly once,
        /// (b) per-tenant FIFO, and (c) the DRR latency bound — while a
        /// tenant is continuously backlogged, the work dispatched for it
        /// lags its weighted fair share of total dispatched work by at
        /// most a constant (quanta + one max-cost item per tenant),
        /// independent of how adversarial the arrival order is.
        #[test]
        fn drr_is_starvation_free_for_any_arrival_pattern(
            arrivals in prop::collection::vec((0usize..4, 1u64..50), 1..120),
            weights in (1u32..5, 1u32..5, 1u32..5, 1u32..5),
            quantum in 1u64..64,
        ) {
            let weights = [weights.0, weights.1, weights.2, weights.3];
            let tenants = ["a", "b", "c", "d"];
            let mut q = DispatchQueue::new(quantum);
            let mut pushed: Vec<Vec<(usize, u64)>> = vec![Vec::new(); 4];
            for (seq, &(t, cost)) in arrivals.iter().enumerate() {
                q.push(tenants[t], weights[t], 0, cost, (t, seq, cost));
                pushed[t].push((seq, cost));
            }
            let max_cost = arrivals.iter().map(|&(_, c)| c).max().unwrap_or(1);
            let max_w = *weights.iter().max().unwrap() as u64;
            // One visit's credit + one head item of slack per tenant, for
            // each of the 4 tenants in the round.
            let slack = 4 * (quantum * max_w + max_cost);

            let mut served: Vec<Vec<(usize, u64)>> = vec![Vec::new(); 4];
            let mut served_work = [0u64; 4];
            let mut total_work = 0u64;
            let total_items = arrivals.len();
            for _ in 0..total_items {
                let (t, seq, cost) = q.pop(|_| true).expect("conservation: queue drained early");
                served[t].push((seq, cost));
                served_work[t] += cost;
                total_work += cost;
                // (c) The latency bound, checked at every prefix: any
                // tenant still backlogged must have received at least its
                // weighted share of the dispatched work so far, minus the
                // constant slack. A starved tenant violates this as the
                // prefix grows.
                let sum_w: u64 = (0..4)
                    .filter(|&i| served[i].len() < pushed[i].len() || served_work[i] > 0)
                    .map(|i| u64::from(weights[i]))
                    .sum();
                for i in 0..4 {
                    if served[i].len() < pushed[i].len() {
                        let fair = total_work * u64::from(weights[i]) / sum_w.max(1);
                        prop_assert!(
                            served_work[i] + 2 * slack >= fair,
                            "tenant {i} starved: served {} of fair {} (slack {slack})",
                            served_work[i], fair
                        );
                    }
                }
            }
            prop_assert!(q.is_empty(), "conservation: items left behind");
            // (a) + (b): exactly the pushed items, in per-tenant FIFO order.
            for t in 0..4 {
                prop_assert_eq!(&served[t], &pushed[t], "tenant {} order broken", t);
            }
        }
    }
}
