//! `xgq` — the campaign client.
//!
//! ```text
//! xgq [--addr HOST:PORT] <command>
//!   submit --deck FILE [--steps N] [--tag T] [--grad RLN,RLT] [--seed S]
//!          [--dry-run]
//!   status JOB            one-shot state snapshot
//!   watch JOB             stream lifecycle events until terminal
//!   cancel JOB            cancel (preempts at the next checkpoint if running)
//!   list                  every job the server knows about
//!   metrics [--out FILE] [--prom]  metrics snapshot (JSON, or Prometheus
//!                         text with --prom) to stdout or FILE
//!   top [--watch MS]      live per-phase wall-time table from the daemon
//!                         (one shot, or redrawn every MS milliseconds)
//!   drain [--ms MS]       flush pending batches, wait until quiet
//!   shutdown              stop the server
//!   ping                  liveness check
//! ```
//!
//! `--grad`/`--seed` rewrite the deck client-side before submission — the
//! sweep idiom: one base deck, many gradient variants, all landing in one
//! shared-cmat batch. `--dry-run` asks the server (via the same grouping
//! code path used for real submissions) for the deck's cmat key and the
//! batch the job would join, without admitting anything.

use std::process::exit;
use xg_serve::wire::Client;
use xg_sim::{load_deck, write_deck};

fn usage() -> ! {
    eprintln!(
        "usage: xgq [--addr HOST:PORT] <command>\n\
         \u{20} submit --deck FILE [--steps N] [--tag T] [--grad RLN,RLT] [--seed S] [--dry-run]\n\
         \u{20} status JOB | watch JOB | cancel JOB | list\n\
         \u{20} metrics [--out FILE] [--prom] | top [--watch MS]\n\
         \u{20} drain [--ms MS] | shutdown | ping"
    );
    exit(2)
}

fn fail(msg: &str) -> ! {
    eprintln!("xgq: {msg}");
    exit(1)
}

/// `OK …` → print and succeed; `ERR …` → print and fail.
fn finish(resp: &str) -> ! {
    if resp.starts_with("OK") {
        println!("{resp}");
        exit(0)
    }
    fail(resp)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr =
        std::env::var("XGQ_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let mut rest = &args[..];
    if rest.first().map(String::as_str) == Some("--addr") {
        addr = rest.get(1).cloned().unwrap_or_else(|| usage());
        rest = &rest[2..];
    }
    let Some(cmd) = rest.first() else { usage() };
    let rest = &rest[1..];
    let mut client = Client::connect(&addr)
        .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
    match cmd.as_str() {
        "ping" => finish(&client.roundtrip("PING").unwrap_or_else(|e| fail(&e.to_string()))),
        "submit" => submit(&mut client, rest),
        "status" | "cancel" => {
            let job = rest.first().unwrap_or_else(|| usage());
            let verb = if cmd == "status" { "STATUS" } else { "CANCEL" };
            finish(
                &client
                    .roundtrip(&format!("{verb} {job}"))
                    .unwrap_or_else(|e| fail(&e.to_string())),
            )
        }
        "watch" => {
            let job = rest.first().unwrap_or_else(|| usage());
            match client.subscribe(job, |ev| println!("{ev}")) {
                Ok(_) => exit(0),
                Err(e) => fail(&e.to_string()),
            }
        }
        "list" => {
            let lines = client.list().unwrap_or_else(|e| fail(&e.to_string()));
            for l in lines {
                println!("{l}");
            }
            exit(0)
        }
        "metrics" => {
            let payload = if rest.iter().any(|a| a == "--prom") {
                client.metrics_prom().unwrap_or_else(|e| fail(&e.to_string()))
            } else {
                client.metrics().unwrap_or_else(|e| fail(&e.to_string()))
            };
            match kv_flag(rest, "--out") {
                Some(path) => std::fs::write(&path, &payload)
                    .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}"))),
                None => print!("{payload}"),
            }
            exit(0)
        }
        "top" => {
            let watch_ms = kv_flag(rest, "--watch").map(|v| {
                v.parse::<u64>().unwrap_or_else(|_| usage())
            });
            loop {
                let table = client.top().unwrap_or_else(|e| fail(&e.to_string()));
                match watch_ms {
                    None => {
                        print!("{table}");
                        exit(0)
                    }
                    Some(ms) => {
                        // Clear + home, like watch(1), so the table redraws
                        // in place.
                        print!("\x1b[2J\x1b[H{table}");
                        use std::io::Write as _;
                        let _ = std::io::stdout().flush();
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                }
            }
        }
        "drain" => {
            let ms = kv_flag(rest, "--ms").unwrap_or_else(|| "60000".into());
            finish(
                &client
                    .roundtrip(&format!("DRAIN ms={ms}"))
                    .unwrap_or_else(|e| fail(&e.to_string())),
            )
        }
        "shutdown" => {
            finish(&client.roundtrip("SHUTDOWN").unwrap_or_else(|e| fail(&e.to_string())))
        }
        _ => usage(),
    }
}

fn submit(client: &mut Client, rest: &[String]) -> ! {
    let mut deck_path = None;
    let mut steps = None;
    let mut tag = String::new();
    let mut grad: Option<(f64, f64)> = None;
    let mut seed: Option<u64> = None;
    let mut dry_run = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deck" => deck_path = it.next().cloned(),
            "--steps" => steps = it.next().and_then(|v| v.parse::<usize>().ok()),
            "--tag" => tag = it.next().cloned().unwrap_or_default(),
            "--grad" => {
                let v = it.next().unwrap_or_else(|| usage());
                grad = v
                    .split_once(',')
                    .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)));
                if grad.is_none() {
                    usage()
                }
            }
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()),
            "--dry-run" => dry_run = true,
            _ => usage(),
        }
    }
    let deck_path = deck_path.unwrap_or_else(|| usage());
    let mut input = load_deck(std::path::Path::new(&deck_path))
        .unwrap_or_else(|e| fail(&format!("cannot load {deck_path}: {e}")));
    if let Some((rln, rlt)) = grad {
        input = input.with_gradients(rln, rlt);
    }
    if let Some(s) = seed {
        input = input.with_seed(s);
    }
    let steps = steps.unwrap_or(input.steps_per_report);
    let resp = client
        .submit_deck(&write_deck(&input), steps, &tag, dry_run)
        .unwrap_or_else(|e| fail(&e.to_string()));
    finish(&resp)
}

fn kv_flag(rest: &[String], key: &str) -> Option<String> {
    rest.iter().position(|a| a == key).and_then(|i| rest.get(i + 1).cloned())
}
