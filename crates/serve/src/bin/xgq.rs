//! `xgq` — the campaign client.
//!
//! ```text
//! xgq [--addr HOST:PORT] [--retries N] [--timeout-ms MS] <command>
//!   submit --deck FILE [--steps N] [--tag T] [--grad RLN,RLT] [--seed S]
//!          [--token T] [--no-token] [--tenant T] [--auth S] [--dry-run]
//!   status JOB            one-shot state snapshot
//!   result JOB            result fingerprint (steps, h hash, diag bits)
//!   watch JOB             stream lifecycle events until terminal
//!   cancel JOB            cancel (preempts at the next checkpoint if running)
//!   list                  every job the server knows about
//!   metrics [--out FILE] [--prom]  metrics snapshot (JSON, or Prometheus
//!                         text with --prom) to stdout or FILE
//!   top [--watch MS]      live per-phase wall-time table from the daemon
//!                         (one shot, or redrawn every MS milliseconds)
//!   recovery              what the daemon's journal replay reconstructed
//!   fetch HASH            artifact manifest (JSON) for a deck hash
//!   diff HASH HASH        compare two manifests field by field
//!   gc --budget BYTES     evict LRU artifacts down to a byte budget
//!   pin HASH | unpin HASH protect / release a golden manifest from GC
//!   drain [--ms MS]       flush pending batches, wait until quiet
//!   shutdown              stop the server
//!   ping                  liveness check
//! ```
//!
//! `--tenant` names the tenant the submission is accounted to (default
//! `default`; also read from `XGQ_TENANT`); `--auth` supplies the shared
//! secret when the daemon's `--tenants` roster requires one (also read
//! from `XGQ_AUTH`, which keeps secrets out of `ps` output).
//!
//! `--grad`/`--seed` rewrite the deck client-side before submission — the
//! sweep idiom: one base deck, many gradient variants, all landing in one
//! shared-cmat batch. `--dry-run` asks the server (via the same grouping
//! code path used for real submissions) for the deck's cmat key and the
//! batch the job would join, without admitting anything; when the daemon
//! runs with `--artifacts` the reply also carries the canonical
//! `deck_hash=xgd1-…` and whether the submission would be a `cache=hit`.
//!
//! The artifact verbs (`fetch`, `diff`, `gc`, `pin`, `unpin`) talk to that
//! store: `fetch` prints the manifest JSON for a deck hash, `diff` reports
//! which fields differ between two manifests, `gc` evicts least-recently
//! used entries down to a byte budget, and `pin`/`unpin` mark golden
//! manifests that GC must never evict.
//!
//! Idempotent requests (everything except `watch`, `drain`, `shutdown`)
//! ride through daemon restarts: up to `--retries` attempts with jittered
//! exponential backoff, reconnecting between attempts. Every `submit`
//! carries an idempotency token (auto-generated from time + pid unless
//! `--token` supplies one, suppressed by `--no-token`), so a retried submit
//! whose first response was lost is answered with the original job id and
//! `dup=1` instead of double-enqueueing. `watch` and `top --watch` are
//! streams, not requests — on a lost connection they reconnect with the
//! same backoff and print a `(reconnected)` marker; `watch` resumes from
//! the server's state snapshot so no terminal transition is missed.

use std::process::exit;
use std::time::Duration;
use xg_serve::wire::{Client, RetryPolicy, RetryingClient};
use xg_sim::{load_deck, write_deck};

fn usage() -> ! {
    eprintln!(
        "usage: xgq [--addr HOST:PORT] [--retries N] [--timeout-ms MS] <command>\n\
         \u{20} submit --deck FILE [--steps N] [--tag T] [--grad RLN,RLT] [--seed S]\n\
         \u{20}        [--token T] [--no-token] [--tenant T] [--auth S] [--dry-run]\n\
         \u{20} status JOB | result JOB | watch JOB | cancel JOB | list\n\
         \u{20} metrics [--out FILE] [--prom] | top [--watch MS] | recovery\n\
         \u{20} fetch HASH | diff HASH HASH | gc --budget BYTES\n\
         \u{20} pin HASH | unpin HASH\n\
         \u{20} drain [--ms MS] | shutdown | ping"
    );
    exit(2)
}

fn fail(msg: &str) -> ! {
    eprintln!("xgq: {msg}");
    exit(1)
}

/// `OK …` → print and succeed; `ERR …` → print and fail.
fn finish(resp: &str) -> ! {
    if resp.starts_with("OK") {
        println!("{resp}");
        exit(0)
    }
    fail(resp)
}

/// A process-unique idempotency token: wall-clock µs + pid. Unique enough
/// that two *different* intended submissions never collide, while one
/// retried submission (same process, same token string) is recognized.
fn auto_token() -> String {
    let us = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros())
        .unwrap_or(0);
    format!("xgq-{us:x}-{}", std::process::id())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr =
        std::env::var("XGQ_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let mut retries: u32 = 5;
    let mut timeout = Duration::from_millis(5000);
    let mut rest = &args[..];
    loop {
        match rest.first().map(String::as_str) {
            Some("--addr") => {
                addr = rest.get(1).cloned().unwrap_or_else(|| usage());
                rest = &rest[2..];
            }
            Some("--retries") => {
                retries = rest.get(1).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                rest = &rest[2..];
            }
            Some("--timeout-ms") => {
                let ms: u64 =
                    rest.get(1).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                timeout = Duration::from_millis(ms);
                rest = &rest[2..];
            }
            _ => break,
        }
    }
    let Some(cmd) = rest.first() else { usage() };
    let rest = &rest[1..];
    let policy = RetryPolicy {
        attempts: retries.max(1),
        seed: std::process::id() as u64,
        ..RetryPolicy::client_default(0)
    };
    let mut retry = RetryingClient::new(&addr, timeout, policy.clone());
    match cmd.as_str() {
        "ping" => finish(&retry.roundtrip("PING").unwrap_or_else(|e| fail(&e.to_string()))),
        "submit" => submit(&mut retry, rest),
        "status" | "cancel" | "result" => {
            let job = rest.first().unwrap_or_else(|| usage());
            let verb = match cmd.as_str() {
                "status" => "STATUS",
                "result" => "RESULT",
                _ => "CANCEL",
            };
            finish(
                &retry
                    .roundtrip(&format!("{verb} {job}"))
                    .unwrap_or_else(|e| fail(&e.to_string())),
            )
        }
        "recovery" => {
            finish(&retry.roundtrip("RECOVERY").unwrap_or_else(|e| fail(&e.to_string())))
        }
        "fetch" => {
            let hash = rest.first().unwrap_or_else(|| usage()).clone();
            let json = retry
                .with_retries(|c| c.fetch(&hash))
                .unwrap_or_else(|e| fail(&e.to_string()));
            print!("{json}");
            exit(0)
        }
        "diff" => {
            let a = rest.first().unwrap_or_else(|| usage()).clone();
            let b = rest.get(1).unwrap_or_else(|| usage()).clone();
            finish(&retry.with_retries(|c| c.diff(&a, &b)).unwrap_or_else(|e| fail(&e.to_string())))
        }
        "gc" => {
            let budget: u64 = kv_flag(rest, "--budget")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage());
            finish(&retry.with_retries(|c| c.gc(budget)).unwrap_or_else(|e| fail(&e.to_string())))
        }
        "pin" | "unpin" => {
            let hash = rest.first().unwrap_or_else(|| usage());
            let verb = if cmd == "pin" { "PIN" } else { "UNPIN" };
            finish(
                &retry
                    .roundtrip(&format!("{verb} {hash}"))
                    .unwrap_or_else(|e| fail(&e.to_string())),
            )
        }
        "watch" => watch(&addr, &policy, rest),
        "list" => {
            let lines =
                retry.with_retries(|c| c.list()).unwrap_or_else(|e| fail(&e.to_string()));
            for l in lines {
                println!("{l}");
            }
            exit(0)
        }
        "metrics" => {
            let payload = if rest.iter().any(|a| a == "--prom") {
                retry.with_retries(|c| c.metrics_prom())
            } else {
                retry.with_retries(|c| c.metrics())
            }
            .unwrap_or_else(|e| fail(&e.to_string()));
            match kv_flag(rest, "--out") {
                Some(path) => std::fs::write(&path, &payload)
                    .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}"))),
                None => print!("{payload}"),
            }
            exit(0)
        }
        "top" => top(&mut retry, rest),
        "drain" => {
            // Draining blocks up to its own deadline — no request timeout,
            // no retry (a retried drain against a restarted daemon would
            // silently wait on an empty queue and mask the restart).
            let ms = kv_flag(rest, "--ms").unwrap_or_else(|| "60000".into());
            let mut client = Client::connect(&addr)
                .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
            finish(
                &client
                    .roundtrip(&format!("DRAIN ms={ms}"))
                    .unwrap_or_else(|e| fail(&e.to_string())),
            )
        }
        "shutdown" => {
            let mut client = Client::connect(&addr)
                .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
            finish(&client.roundtrip("SHUTDOWN").unwrap_or_else(|e| fail(&e.to_string())))
        }
        _ => usage(),
    }
}

fn submit(retry: &mut RetryingClient, rest: &[String]) -> ! {
    let mut deck_path = None;
    let mut steps = None;
    let mut tag = String::new();
    let mut grad: Option<(f64, f64)> = None;
    let mut seed: Option<u64> = None;
    let mut dry_run = false;
    let mut token: Option<String> = None;
    let mut no_token = false;
    let mut tenant = std::env::var("XGQ_TENANT").unwrap_or_default();
    let mut auth = std::env::var("XGQ_AUTH").unwrap_or_default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deck" => deck_path = it.next().cloned(),
            "--steps" => steps = it.next().and_then(|v| v.parse::<usize>().ok()),
            "--tag" => tag = it.next().cloned().unwrap_or_default(),
            "--tenant" => tenant = it.next().cloned().unwrap_or_else(|| usage()),
            "--auth" => auth = it.next().cloned().unwrap_or_else(|| usage()),
            "--grad" => {
                let v = it.next().unwrap_or_else(|| usage());
                grad = v
                    .split_once(',')
                    .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)));
                if grad.is_none() {
                    usage()
                }
            }
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()),
            "--token" => token = it.next().cloned(),
            "--no-token" => no_token = true,
            "--dry-run" => dry_run = true,
            _ => usage(),
        }
    }
    let deck_path = deck_path.unwrap_or_else(|| usage());
    let mut input = load_deck(std::path::Path::new(&deck_path))
        .unwrap_or_else(|e| fail(&format!("cannot load {deck_path}: {e}")));
    if let Some((rln, rlt)) = grad {
        input = input.with_gradients(rln, rlt);
    }
    if let Some(s) = seed {
        input = input.with_seed(s);
    }
    let steps = steps.unwrap_or(input.steps_per_report);
    // The token is what makes a *retried* submit safe: without one, a retry
    // whose first response was lost would double-enqueue.
    let token = if dry_run || no_token {
        String::new()
    } else {
        token.unwrap_or_else(auto_token)
    };
    let deck = write_deck(&input);
    let resp = retry
        .with_retries(|c| c.submit_deck_as(&deck, steps, &tag, &token, &tenant, &auth, dry_run))
        .unwrap_or_else(|e| fail(&e.to_string()));
    finish(&resp)
}

/// `watch JOB`: stream lifecycle events, reconnecting (with the same
/// jittered backoff and a visible `(reconnected)` marker) when the daemon
/// restarts mid-stream. Subscribing re-delivers the current state first, so
/// a reconnect can duplicate a line but never skip the terminal one.
fn watch(addr: &str, policy: &RetryPolicy, rest: &[String]) -> ! {
    let job = rest.first().unwrap_or_else(|| usage());
    let mut jitter = policy.seed;
    let mut failures = 0u32;
    let mut connected_before = false;
    loop {
        let attempt = Client::connect(addr).and_then(|mut c| {
            if connected_before {
                println!("(reconnected)");
            }
            connected_before = true;
            failures = 0;
            c.subscribe(job, |ev| println!("{ev}"))
        });
        match attempt {
            Ok(_) => exit(0),
            Err(e) => {
                // "no such job" is a real answer, not a lost connection.
                if e.to_string().contains("not-found") {
                    fail(&e.to_string())
                }
                failures += 1;
                if failures >= policy.attempts.max(1) {
                    fail(&format!("watch {job}: {e} (gave up after {failures} attempts)"))
                }
                std::thread::sleep(policy.delay(failures - 1, &mut jitter));
            }
        }
    }
}

/// `top [--watch MS]`: one shot via the retrying client, or a redraw loop
/// that survives daemon restarts with a `(reconnected)` marker.
fn top(retry: &mut RetryingClient, rest: &[String]) -> ! {
    let watch_ms = kv_flag(rest, "--watch").map(|v| v.parse::<u64>().unwrap_or_else(|_| usage()));
    let Some(ms) = watch_ms else {
        let table = retry.with_retries(|c| c.top()).unwrap_or_else(|e| fail(&e.to_string()));
        print!("{table}");
        exit(0)
    };
    let mut was_down = false;
    loop {
        match retry.with_retries(|c| c.top()) {
            Ok(table) => {
                // Clear + home, like watch(1), so the table redraws in place.
                let marker = if was_down { "(reconnected)\n" } else { "" };
                was_down = false;
                print!("\x1b[2J\x1b[H{marker}{table}");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            }
            Err(_) => was_down = true, // keep polling; the daemon may return
        }
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

fn kv_flag(rest: &[String], key: &str) -> Option<String> {
    rest.iter().position(|a| a == key).and_then(|i| rest.get(i + 1).cloned())
}
