//! `xgqueued` — the campaign service daemon.
//!
//! ```text
//! xgqueued [--addr HOST:PORT] [--k-max K] [--linger-ms MS]
//!          [--queue-capacity N] [--workers W] [--ckpt-every STEPS]
//!          [--deadline-ms MS] [--nodes N] [--machine PRESET]
//!          [--grid N1xN2] [--fault RANK:AT_OP]
//!          [--journal DIR] [--journal-sync N] [--journal-seg-bytes N]
//!          [--journal-fault KIND:AT[:KEEP]]
//!          [--artifacts DIR] [--artifact-budget-bytes N]
//!          [--tenants ROSTER] [--quantum N]
//!          [--retain-jobs N] [--retain-age-ms MS]
//! ```
//!
//! Binds the wire protocol (see `xg_serve::wire`) and serves until a client
//! sends `SHUTDOWN`. `--fault` injects one crash into the first dispatched
//! batch — the chaos hook the CI fault-injection checks use.
//!
//! `--journal DIR` makes the daemon crash-safe: every job lifecycle
//! transition is persisted to a write-ahead log in DIR and replayed on the
//! next start, so a `kill -9` loses no acknowledged job. `--journal-sync N`
//! fsyncs every N appends (1 = every append, the durable default; see
//! `xgplan --journal-fsync-ms` for the MTBF-aware choice).
//! `--journal-fault` injects a seeded journal fault (`write-error:AT`,
//! `torn:AT:KEEP`, `crash:AT` — AT counts appends) for recovery drills.
//!
//! `--artifacts DIR` turns on the content-addressed result cache: every
//! completed batch member is published into DIR (deck + outcome blobs plus
//! a manifest keyed by canonical deck hash), and a re-submitted
//! byte-identical deck is served straight to `Done` without executing a
//! step. `--artifact-budget-bytes N` adds automatic LRU retention GC after
//! each publish (pinned manifests are never evicted).
//!
//! `--tenants ROSTER` switches the daemon from open multi-tenancy (any
//! well-formed `tenant=` claim accepted, no quotas) to a configured
//! roster: `name[:weight=W][:jobs=N][:bytes=N][:secret=S][:prio=P]`
//! entries separated by commas. Unknown tenants are rejected at SUBMIT,
//! `secret=` entries require a matching `auth=`, and `jobs=`/`bytes=`
//! bound each tenant's *live* (unfinished) footprint. `--quantum N` sets
//! the deficit-round-robin quantum (work units credited per scheduling
//! visit per unit weight). `--retain-jobs N` / `--retain-age-ms MS` bound
//! the terminal-job retention window: finished jobs older than the age
//! cap, or beyond the count cap, are evicted from the in-memory status
//! table (journal and artifact history are unaffected).

use std::net::TcpListener;
use std::process::exit;
use std::time::Duration;
use xg_comm::FaultPlan;
use xg_costmodel::{preset, PRESET_NAMES};
use xg_serve::artifacts::ArtifactConfig;
use xg_serve::journal::{JournalConfig, ServeFaultPlan};
use xg_serve::server::{CampaignServer, ServerConfig};
use xg_tensor::ProcGrid;

fn usage() -> ! {
    eprintln!(
        "usage: xgqueued [--addr HOST:PORT] [--k-max K] [--linger-ms MS]\n\
         \u{20}                [--queue-capacity N] [--workers W] [--ckpt-every STEPS]\n\
         \u{20}                [--deadline-ms MS] [--nodes N] [--machine PRESET]\n\
         \u{20}                [--grid N1xN2] [--fault RANK:AT_OP]\n\
         \u{20}                [--journal DIR] [--journal-sync N] [--journal-seg-bytes N]\n\
         \u{20}                [--journal-fault write-error:AT|torn:AT:KEEP|crash:AT]\n\
         \u{20}                [--artifacts DIR] [--artifact-budget-bytes N]\n\
         \u{20}                [--tenants ROSTER] [--quantum N]\n\
         \u{20}                [--retain-jobs N] [--retain-age-ms MS]\n\
         presets: {}",
        PRESET_NAMES.join(", ")
    );
    exit(2)
}

/// Parse a `--journal-fault` spec: `write-error:AT`, `torn:AT:KEEP`, or
/// `crash:AT`, where AT is the 0-based append counter that trips it.
fn parse_journal_fault(v: &str) -> Option<ServeFaultPlan> {
    let mut parts = v.split(':');
    let kind = parts.next()?;
    let at: u64 = parts.next()?.parse().ok()?;
    let plan = match kind {
        "write-error" => ServeFaultPlan::write_error(at),
        "torn" => ServeFaultPlan::torn_write(at, parts.next()?.parse().ok()?),
        "crash" => ServeFaultPlan::crash(at),
        _ => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some(plan)
}

fn parse_or_usage<T: std::str::FromStr>(v: Option<String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cfg = ServerConfig::local_test();
    let mut journal_dir: Option<String> = None;
    let mut journal_sync: Option<u32> = None;
    let mut journal_seg_bytes: Option<u64> = None;
    let mut journal_fault: Option<ServeFaultPlan> = None;
    let mut artifacts_dir: Option<String> = None;
    let mut artifact_budget: Option<u64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--journal" => journal_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--artifacts" => artifacts_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--artifact-budget-bytes" => artifact_budget = Some(parse_or_usage(it.next())),
            "--journal-sync" => journal_sync = Some(parse_or_usage(it.next())),
            "--journal-seg-bytes" => journal_seg_bytes = Some(parse_or_usage(it.next())),
            "--journal-fault" => {
                let v = it.next().unwrap_or_else(|| usage());
                journal_fault = Some(parse_journal_fault(&v).unwrap_or_else(|| usage()));
            }
            "--addr" => addr = it.next().unwrap_or_else(|| usage()),
            "--k-max" => cfg.k_max = parse_or_usage(it.next()),
            "--linger-ms" => cfg.linger = Duration::from_millis(parse_or_usage(it.next())),
            "--queue-capacity" => cfg.queue_capacity = parse_or_usage(it.next()),
            "--workers" => cfg.workers = parse_or_usage(it.next()),
            "--ckpt-every" => cfg.ckpt_every = parse_or_usage(it.next()),
            "--deadline-ms" => {
                cfg.deadline = Duration::from_millis(parse_or_usage(it.next()))
            }
            "--nodes" => cfg.nodes = parse_or_usage(it.next()),
            "--tenants" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.tenants = xg_serve::TenantDirectory::parse(&v).unwrap_or_else(|e| {
                    eprintln!("xgqueued: bad --tenants roster: {e}");
                    usage()
                });
            }
            "--quantum" => cfg.quantum = parse_or_usage(it.next()),
            "--retain-jobs" => cfg.retain_jobs = parse_or_usage(it.next()),
            "--retain-age-ms" => {
                cfg.retain_age = Duration::from_millis(parse_or_usage(it.next()))
            }
            "--machine" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.machine = preset(&v).unwrap_or_else(|| {
                    eprintln!("xgqueued: unknown machine preset '{v}'");
                    usage()
                });
            }
            "--grid" => {
                let v = it.next().unwrap_or_else(|| usage());
                let (n1, n2) = v
                    .split_once('x')
                    .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
                    .unwrap_or_else(|| usage());
                cfg.grid = ProcGrid::new(n1, n2);
            }
            "--fault" => {
                let v = it.next().unwrap_or_else(|| usage());
                let (rank, at_op) = v
                    .split_once(':')
                    .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
                    .unwrap_or_else(|| usage());
                cfg.fault_plan = Some(FaultPlan::crash(rank, at_op));
            }
            _ => usage(),
        }
    }
    if cfg.k_max == 0 || cfg.workers == 0 || cfg.ckpt_every == 0 {
        eprintln!("xgqueued: k-max, workers and ckpt-every must be positive");
        exit(1);
    }
    match journal_dir {
        Some(dir) => {
            let mut jcfg = JournalConfig::durable(dir);
            if let Some(n) = journal_sync {
                jcfg.fsync_every = n;
            }
            if let Some(n) = journal_seg_bytes {
                jcfg.segment_max_bytes = n;
            }
            jcfg.fault_plan = journal_fault;
            cfg.journal = Some(jcfg);
        }
        None if journal_sync.is_some() || journal_seg_bytes.is_some() || journal_fault.is_some() => {
            eprintln!("xgqueued: --journal-sync/--journal-seg-bytes/--journal-fault need --journal DIR");
            exit(1);
        }
        None => {}
    }
    match artifacts_dir {
        Some(dir) => {
            let mut acfg = ArtifactConfig::at(dir);
            acfg.budget_bytes = artifact_budget;
            cfg.artifacts = Some(acfg);
        }
        None if artifact_budget.is_some() => {
            eprintln!("xgqueued: --artifact-budget-bytes needs --artifacts DIR");
            exit(1);
        }
        None => {}
    }
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("xgqueued: cannot bind {addr}: {e}");
        exit(1);
    });
    let addr = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    println!(
        "xgqueued listening on {addr} (k_max={}, linger={}ms, workers={}, nodes={} x {}, \
         tenants {}, journal {}, artifacts {}, phase timers {})",
        cfg.k_max,
        cfg.linger.as_millis(),
        cfg.workers,
        cfg.nodes,
        cfg.machine.name,
        if cfg.tenants.is_configured() {
            format!("{} configured (quantum {})", cfg.tenants.roster().count(), cfg.quantum)
        } else {
            "open".into()
        },
        cfg.journal
            .as_ref()
            .map(|j| format!("{} (fsync every {})", j.dir.display(), j.fsync_every))
            .unwrap_or_else(|| "off".into()),
        cfg.artifacts
            .as_ref()
            .map(|a| {
                let budget = a
                    .budget_bytes
                    .map(|b| format!("budget {b} B"))
                    .unwrap_or_else(|| "no budget".into());
                format!("{} ({budget})", a.dir.display())
            })
            .unwrap_or_else(|| "off".into()),
        if xg_obs::enabled() { "on" } else { "off (XGYRO_OBS=1 to enable)" }
    );
    let server = CampaignServer::start(cfg);
    let recovery = server.recovery_report();
    if recovery.replayed_records > 0 || !recovery.warnings.is_empty() {
        println!(
            "xgqueued: journal replay: {} records in {} us -> {} jobs restored, \
             {} batches resumed, {} jobs re-admitted ({} torn bytes dropped)",
            recovery.replayed_records,
            recovery.replay_us,
            recovery.restored_jobs,
            recovery.resumed_batches,
            recovery.readmitted_jobs,
            recovery.torn_bytes
        );
        for w in &recovery.warnings {
            eprintln!("xgqueued: journal warning: {w}");
        }
    }
    if let Err(e) = xg_serve::wire::serve(listener, server) {
        eprintln!("xgqueued: {e}");
        exit(1);
    }
}
