//! `xgqueued` — the campaign service daemon.
//!
//! ```text
//! xgqueued [--addr HOST:PORT] [--k-max K] [--linger-ms MS]
//!          [--queue-capacity N] [--workers W] [--ckpt-every STEPS]
//!          [--deadline-ms MS] [--nodes N] [--machine PRESET]
//!          [--grid N1xN2] [--fault RANK:AT_OP]
//! ```
//!
//! Binds the wire protocol (see `xg_serve::wire`) and serves until a client
//! sends `SHUTDOWN`. `--fault` injects one crash into the first dispatched
//! batch — the chaos hook the CI fault-injection checks use.

use std::net::TcpListener;
use std::process::exit;
use std::time::Duration;
use xg_comm::FaultPlan;
use xg_costmodel::{preset, PRESET_NAMES};
use xg_serve::server::{CampaignServer, ServerConfig};
use xg_tensor::ProcGrid;

fn usage() -> ! {
    eprintln!(
        "usage: xgqueued [--addr HOST:PORT] [--k-max K] [--linger-ms MS]\n\
         \u{20}                [--queue-capacity N] [--workers W] [--ckpt-every STEPS]\n\
         \u{20}                [--deadline-ms MS] [--nodes N] [--machine PRESET]\n\
         \u{20}                [--grid N1xN2] [--fault RANK:AT_OP]\n\
         presets: {}",
        PRESET_NAMES.join(", ")
    );
    exit(2)
}

fn parse_or_usage<T: std::str::FromStr>(v: Option<String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cfg = ServerConfig::local_test();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().unwrap_or_else(|| usage()),
            "--k-max" => cfg.k_max = parse_or_usage(it.next()),
            "--linger-ms" => cfg.linger = Duration::from_millis(parse_or_usage(it.next())),
            "--queue-capacity" => cfg.queue_capacity = parse_or_usage(it.next()),
            "--workers" => cfg.workers = parse_or_usage(it.next()),
            "--ckpt-every" => cfg.ckpt_every = parse_or_usage(it.next()),
            "--deadline-ms" => {
                cfg.deadline = Duration::from_millis(parse_or_usage(it.next()))
            }
            "--nodes" => cfg.nodes = parse_or_usage(it.next()),
            "--machine" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.machine = preset(&v).unwrap_or_else(|| {
                    eprintln!("xgqueued: unknown machine preset '{v}'");
                    usage()
                });
            }
            "--grid" => {
                let v = it.next().unwrap_or_else(|| usage());
                let (n1, n2) = v
                    .split_once('x')
                    .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
                    .unwrap_or_else(|| usage());
                cfg.grid = ProcGrid::new(n1, n2);
            }
            "--fault" => {
                let v = it.next().unwrap_or_else(|| usage());
                let (rank, at_op) = v
                    .split_once(':')
                    .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
                    .unwrap_or_else(|| usage());
                cfg.fault_plan = Some(FaultPlan::crash(rank, at_op));
            }
            _ => usage(),
        }
    }
    if cfg.k_max == 0 || cfg.workers == 0 || cfg.ckpt_every == 0 {
        eprintln!("xgqueued: k-max, workers and ckpt-every must be positive");
        exit(1);
    }
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("xgqueued: cannot bind {addr}: {e}");
        exit(1);
    });
    let addr = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    println!(
        "xgqueued listening on {addr} (k_max={}, linger={}ms, workers={}, nodes={} x {}, \
         phase timers {})",
        cfg.k_max,
        cfg.linger.as_millis(),
        cfg.workers,
        cfg.nodes,
        cfg.machine.name,
        if xg_obs::enabled() { "on" } else { "off (XGYRO_OBS=1 to enable)" }
    );
    let server = CampaignServer::start(cfg);
    if let Err(e) = xg_serve::wire::serve(listener, server) {
        eprintln!("xgqueued: {e}");
        exit(1);
    }
}
