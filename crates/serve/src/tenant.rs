//! Multi-tenant identity, quotas, and fair-share configuration.
//!
//! A **tenant** is the unit of isolation the service schedules between:
//! every submission carries a tenant name on the wire (`SUBMIT … tenant=`),
//! every journal record and metric family is attributed to one, and the
//! dispatch queue divides machine time between them by deficit round-robin
//! over the configured weights (see [`crate::sched`]).
//!
//! The directory has two modes:
//!
//! * **Open** (no `--tenants` flag): any well-formed tenant name is
//!   accepted as-is with the default weight and no quotas; a submission
//!   without a tenant runs as [`DEFAULT_TENANT`]. This keeps a
//!   single-operator daemon exactly as permissive as before the
//!   multi-tenant work.
//! * **Configured** (`--tenants alice:weight=3:jobs=16,bob:secret=s3`):
//!   only the listed tenants are admitted. Each entry may pin a DRR
//!   weight, a priority lane, live-job and live-byte quotas, and a shared
//!   secret that the submission must echo (`auth=`) — the same
//!   pre-shared-string trust model as the idempotency `--token` flow, now
//!   used for identity instead of dedup.

use std::collections::BTreeMap;

/// The tenant a submission without a `tenant=` field runs as — also what
/// journal records from before the multi-tenant era replay as.
pub const DEFAULT_TENANT: &str = "default";

/// Default DRR weight for tenants that do not pin one.
pub const DEFAULT_WEIGHT: u32 = 1;

/// FNV-1a over a tenant name — the fixed-width tenant component of
/// [`crate::BatchKey`]. (Batch membership additionally compares the exact
/// name, so even a colliding pair of names could never co-batch.)
pub fn tenant_key(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Whether `name` is a well-formed tenant name: 1–64 chars from
/// `[A-Za-z0-9._-]`. Names travel on the wire protocol's space-separated
/// argument lists and inside Prometheus label values, so no whitespace,
/// quotes, or control characters.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// One tenant's configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSpec {
    /// The tenant name (wire `tenant=` value, metrics label).
    pub name: String,
    /// Deficit-round-robin weight: a tenant with weight 3 is entitled to
    /// 3× the dispatched work of a weight-1 tenant under contention.
    pub weight: u32,
    /// Priority lane. Higher lanes dispatch first and may preempt
    /// lower-lane batches at checkpoint boundaries.
    pub priority: u8,
    /// Quota: maximum live (non-terminal) jobs, enforced at admission.
    pub max_live_jobs: Option<usize>,
    /// Quota: maximum summed deck bytes across live jobs, enforced at
    /// admission (a submission that would exceed it is rejected).
    pub max_live_bytes: Option<u64>,
    /// Pre-shared secret the submission must echo as `auth=`; `None`
    /// means the tenant name alone suffices.
    pub secret: Option<String>,
}

impl TenantSpec {
    /// An unconstrained tenant: default weight, lane 0, no quotas, no
    /// secret — what open mode hands out for any well-formed name.
    pub fn open(name: &str) -> Self {
        Self {
            name: name.to_string(),
            weight: DEFAULT_WEIGHT,
            priority: 0,
            max_live_jobs: None,
            max_live_bytes: None,
            secret: None,
        }
    }
}

/// Live per-tenant resource usage, tracked by the server under its state
/// lock and checked against [`TenantSpec`] quotas at admission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Non-terminal jobs currently held.
    pub live_jobs: usize,
    /// Summed deck bytes of those jobs.
    pub live_bytes: u64,
}

/// Why a tenant claim was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TenantError {
    /// The name is not well-formed (see [`valid_tenant_name`]).
    BadName(String),
    /// The directory is configured and does not list this tenant.
    Unknown(String),
    /// The tenant requires a secret and the submission's `auth=` did not
    /// match (or was absent).
    BadAuth(String),
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::BadName(n) => write!(
                f,
                "malformed tenant name '{n}' (1-64 chars of [A-Za-z0-9._-])"
            ),
            TenantError::Unknown(n) => write!(f, "unknown tenant '{n}'"),
            TenantError::BadAuth(n) => write!(f, "auth failed for tenant '{n}'"),
        }
    }
}

/// The set of tenants a daemon serves. Empty = open mode.
#[derive(Clone, Debug, Default)]
pub struct TenantDirectory {
    tenants: BTreeMap<String, TenantSpec>,
}

impl TenantDirectory {
    /// Open mode: every well-formed tenant name is accepted, unquota'd.
    pub fn open() -> Self {
        Self::default()
    }

    /// Whether a `--tenants` roster was configured (strict mode).
    pub fn is_configured(&self) -> bool {
        !self.tenants.is_empty()
    }

    /// The configured roster, in name order (empty in open mode).
    pub fn roster(&self) -> impl Iterator<Item = &TenantSpec> {
        self.tenants.values()
    }

    /// Look up a configured tenant by name.
    pub fn get(&self, name: &str) -> Option<&TenantSpec> {
        self.tenants.get(name)
    }

    /// Parse a `--tenants` roster. Grammar: comma-separated entries, each
    /// `name[:key=value]*` with keys `weight` (u32 ≥ 1), `prio` (u8),
    /// `jobs` (live-job quota), `bytes` (live deck-byte quota), `secret`.
    ///
    /// ```text
    /// alice:weight=3:jobs=16,bob:bytes=1048576:secret=hunter2,ops:prio=1
    /// ```
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut tenants = BTreeMap::new();
        for entry in spec.split(',').filter(|e| !e.is_empty()) {
            let mut fields = entry.split(':');
            let name = fields.next().unwrap_or_default().to_string();
            if !valid_tenant_name(&name) {
                return Err(format!(
                    "tenant '{name}': names are 1-64 chars of [A-Za-z0-9._-]"
                ));
            }
            let mut t = TenantSpec::open(&name);
            for field in fields {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| format!("tenant '{name}': field '{field}' is not key=value"))?;
                let bad = |what: &str| format!("tenant '{name}': bad {what} '{value}'");
                match key {
                    "weight" => {
                        t.weight = value.parse().map_err(|_| bad("weight"))?;
                        if t.weight == 0 {
                            return Err(format!("tenant '{name}': weight must be >= 1"));
                        }
                    }
                    "prio" => t.priority = value.parse().map_err(|_| bad("prio"))?,
                    "jobs" => t.max_live_jobs = Some(value.parse().map_err(|_| bad("jobs quota"))?),
                    "bytes" => {
                        t.max_live_bytes = Some(value.parse().map_err(|_| bad("bytes quota"))?)
                    }
                    "secret" => t.secret = Some(value.to_string()),
                    other => return Err(format!("tenant '{name}': unknown field '{other}'")),
                }
            }
            if tenants.insert(name.clone(), t).is_some() {
                return Err(format!("tenant '{name}' listed twice"));
            }
        }
        if tenants.is_empty() {
            return Err("--tenants roster is empty".into());
        }
        Ok(Self { tenants })
    }

    /// Resolve a submission's tenant claim (the wire `tenant=` value, ""
    /// meaning unspecified) and `auth=` secret into an effective
    /// [`TenantSpec`].
    pub fn resolve(&self, claim: &str, auth: &str) -> Result<TenantSpec, TenantError> {
        let name = if claim.is_empty() { DEFAULT_TENANT } else { claim };
        if !valid_tenant_name(name) {
            return Err(TenantError::BadName(name.to_string()));
        }
        if !self.is_configured() {
            return Ok(TenantSpec::open(name));
        }
        let Some(t) = self.tenants.get(name) else {
            return Err(TenantError::Unknown(name.to_string()));
        };
        match &t.secret {
            Some(s) if s != auth => Err(TenantError::BadAuth(name.to_string())),
            _ => Ok(t.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_mode_accepts_any_well_formed_name_without_quotas() {
        let d = TenantDirectory::open();
        assert!(!d.is_configured());
        let t = d.resolve("alice", "").unwrap();
        assert_eq!(t, TenantSpec::open("alice"));
        assert_eq!(d.resolve("", "").unwrap().name, DEFAULT_TENANT);
        assert!(matches!(d.resolve("no spaces", ""), Err(TenantError::BadName(_))));
    }

    #[test]
    fn roster_parses_weights_quotas_and_secrets() {
        let d = TenantDirectory::parse(
            "alice:weight=3:jobs=16,bob:bytes=1048576:secret=hunter2,ops:prio=1",
        )
        .unwrap();
        assert!(d.is_configured());
        let alice = d.get("alice").unwrap();
        assert_eq!((alice.weight, alice.max_live_jobs), (3, Some(16)));
        let bob = d.get("bob").unwrap();
        assert_eq!(bob.max_live_bytes, Some(1_048_576));
        assert_eq!(bob.secret.as_deref(), Some("hunter2"));
        assert_eq!(d.get("ops").unwrap().priority, 1);
        assert_eq!(d.roster().count(), 3);
    }

    #[test]
    fn roster_rejects_malformed_entries() {
        for bad in [
            "",
            "alice:weight=0",
            "alice:weight=x",
            "alice:frobnicate=1",
            "alice,alice",
            "bad name:weight=1",
            "alice:weight",
        ] {
            assert!(TenantDirectory::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn configured_mode_enforces_membership_and_secrets() {
        let d = TenantDirectory::parse("alice:weight=2,bob:secret=s3").unwrap();
        assert_eq!(d.resolve("alice", "").unwrap().weight, 2);
        // Unknown tenants are refused, including the implicit default.
        assert!(matches!(d.resolve("mallory", ""), Err(TenantError::Unknown(_))));
        assert!(matches!(d.resolve("", ""), Err(TenantError::Unknown(_))));
        // Secret-bearing tenants must authenticate.
        assert!(matches!(d.resolve("bob", ""), Err(TenantError::BadAuth(_))));
        assert!(matches!(d.resolve("bob", "wrong"), Err(TenantError::BadAuth(_))));
        assert_eq!(d.resolve("bob", "s3").unwrap().name, "bob");
    }

    #[test]
    fn tenant_keys_are_stable_and_distinct_for_the_roster() {
        assert_eq!(tenant_key("default"), tenant_key("default"));
        let names = ["default", "alice", "bob", "ops", "a", "b"];
        let keys: std::collections::BTreeSet<u64> =
            names.iter().map(|n| tenant_key(n)).collect();
        assert_eq!(keys.len(), names.len());
    }
}
