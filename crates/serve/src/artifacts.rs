//! Server-side artifact pipeline: outcome (de)serialization and batch
//! publication into an [`xg_artifact::ArtifactStore`].
//!
//! The store itself is deliberately ignorant of simulation types — it moves
//! bytes. This module is the adapter: a stable binary codec for
//! [`JobOutcome`] (the blob a cache hit is served from), and the publish
//! path that turns one completed batch member into a deck object, an
//! outcome object, an optional communication-trace object, and a manifest.

use crate::job::{JobOutcome, JobSpec};
use std::path::PathBuf;
use xg_artifact::{deck_hash, ArtifactStore, Manifest, ObjectId, StoreError};
use xg_linalg::Complex64;
use xg_tensor::Tensor3;

/// Artifact-store configuration for [`crate::server::ServerConfig`].
#[derive(Clone, Debug)]
pub struct ArtifactConfig {
    /// Store root directory (created if missing).
    pub dir: PathBuf,
    /// GC size budget in bytes. `None` disables automatic retention —
    /// `xgq gc budget=N` still collects on demand.
    pub budget_bytes: Option<u64>,
}

impl ArtifactConfig {
    /// Store under `dir` with no automatic size budget.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), budget_bytes: None }
    }
}

/// Version magic of the outcome blob codec. Bump on any layout change —
/// stored blobs carry it, so a new binary refuses old layouts loudly.
const OUTCOME_MAGIC: &[u8; 4] = b"xgo1";

/// Serialize a [`JobOutcome`] to the stable little-endian blob layout:
/// magic, tensor shape, steps, diagnostics bit patterns, then the complex
/// distribution data. Bitwise-faithful: `decode_outcome` returns a value
/// whose `outcome_summary` is identical to the original's.
pub fn encode_outcome(o: &JobOutcome) -> Vec<u8> {
    let (d0, d1, d2) = o.h.shape();
    let mut out = Vec::with_capacity(68 + o.h.len() * 16);
    out.extend_from_slice(OUTCOME_MAGIC);
    for v in [d0 as u64, d1 as u64, d2 as u64, o.steps as u64] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let d = &o.diagnostics;
    for v in [d.time, d.field_energy, d.heat_flux, d.h_norm2] {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for z in o.h.as_slice() {
        out.extend_from_slice(&z.re.to_le_bytes());
        out.extend_from_slice(&z.im.to_le_bytes());
    }
    out
}

/// Decode an outcome blob. Rejects wrong magic and any size mismatch.
pub fn decode_outcome(bytes: &[u8]) -> Result<JobOutcome, String> {
    if bytes.len() < 68 || &bytes[..4] != OUTCOME_MAGIC {
        return Err("not an xgo1 outcome blob".into());
    }
    let u64_at = |i: usize| {
        u64::from_le_bytes(bytes[i..i + 8].try_into().expect("bounds checked"))
    };
    let (d0, d1, d2) = (u64_at(4) as usize, u64_at(12) as usize, u64_at(20) as usize);
    let steps = u64_at(28) as usize;
    let n = d0
        .checked_mul(d1)
        .and_then(|v| v.checked_mul(d2))
        .ok_or("implausible tensor shape")?;
    if bytes.len() != 68 + n * 16 {
        return Err(format!(
            "outcome blob size mismatch: {} bytes for shape {d0}x{d1}x{d2}",
            bytes.len()
        ));
    }
    let diagnostics = xg_sim::Diagnostics {
        time: f64::from_bits(u64_at(36)),
        field_energy: f64::from_bits(u64_at(44)),
        heat_flux: f64::from_bits(u64_at(52)),
        h_norm2: f64::from_bits(u64_at(60)),
    };
    let mut flat = Vec::with_capacity(n);
    for i in 0..n {
        let off = 68 + i * 16;
        flat.push(Complex64::new(
            f64::from_bits(u64_at(off)),
            f64::from_bits(u64_at(off + 8)),
        ));
    }
    let mut idx = 0;
    let h = Tensor3::from_fn(d0, d1, d2, |_, _, _| {
        let z = flat[idx];
        idx += 1;
        z
    });
    Ok(JobOutcome { h, diagnostics, steps })
}

/// Batch-level provenance shared by every member published from one batch.
#[derive(Clone, Debug)]
pub struct PublishContext {
    /// Ensemble width the batch dispatched with.
    pub batch_k: u64,
    /// Collision-dimension cut layout label.
    pub coll_cuts: String,
    /// Collision kernel variant (from the obs registry; "" if unrecorded).
    pub kernel: String,
    /// Machine model name the server is configured with.
    pub machine: String,
    /// Per-phase elapsed time for this batch, microseconds.
    pub phase_us: Vec<(String, u64)>,
    /// The batch's communication trace, already stored (None when tracing
    /// produced nothing).
    pub trace_object: Option<ObjectId>,
    /// Publication wall-clock, µs since the Unix epoch.
    pub created_unix_us: u64,
}

/// Publish one completed member: deck + outcome blobs, then the manifest
/// (atomically, last — a half-published artifact is never visible). Returns
/// the manifest and the outcome blob size.
pub fn publish_member(
    store: &ArtifactStore,
    spec: &JobSpec,
    outcome: &JobOutcome,
    summary: (u64, u64, [u64; 4]),
    ctx: &PublishContext,
) -> Result<Manifest, StoreError> {
    let deck_text = xg_sim::write_deck(&spec.input);
    let deck_object = store.put_object(deck_text.as_bytes())?;
    let blob = encode_outcome(outcome);
    let outcome_bytes = blob.len() as u64;
    let outcome_object = store.put_object(&blob)?;
    let (steps_done, h_hash, diag_bits) = summary;
    let input = &spec.input;
    let manifest = Manifest {
        deck_hash: deck_hash(input, spec.steps),
        created_unix_us: ctx.created_unix_us,
        tag: spec.tag.clone(),
        cmat_key: input.cmat_key(),
        steps: spec.steps as u64,
        grid: [
            input.n_radial as u64,
            input.n_theta as u64,
            input.n_xi as u64,
            input.n_energy as u64,
            input.n_toroidal as u64,
        ],
        n_species: input.species.len() as u64,
        batch_k: ctx.batch_k,
        coll_cuts: ctx.coll_cuts.clone(),
        kernel: ctx.kernel.clone(),
        reduce_algo: input.reduce_algo.to_string(),
        machine: ctx.machine.clone(),
        phase_us: ctx.phase_us.clone(),
        steps_done,
        h_hash,
        diag_bits,
        deck_object,
        outcome_object,
        trace_object: ctx.trace_object,
        outcome_bytes,
    };
    store.publish(&manifest)?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_outcome() -> JobOutcome {
        let h = Tensor3::from_fn(3, 4, 2, |i, j, k| {
            Complex64::new(
                (i * 8 + j * 2 + k) as f64 * 0.25,
                -((i + j + k) as f64) * 0.5,
            )
        });
        JobOutcome {
            h,
            diagnostics: xg_sim::Diagnostics {
                time: 0.2,
                field_energy: 1.5e-3,
                heat_flux: -4.25e-5,
                h_norm2: 2.0,
            },
            steps: 20,
        }
    }

    #[test]
    fn outcome_blob_roundtrips_bitwise() {
        let o = sample_outcome();
        let blob = encode_outcome(&o);
        let back = decode_outcome(&blob).unwrap();
        assert_eq!(back.steps, o.steps);
        assert_eq!(back.h.shape(), o.h.shape());
        let bits = |t: &Tensor3<Complex64>| {
            t.as_slice()
                .iter()
                .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&back.h), bits(&o.h));
        assert_eq!(
            back.diagnostics.heat_flux.to_bits(),
            o.diagnostics.heat_flux.to_bits()
        );
        // Re-encoding is byte-identical: the codec is canonical.
        assert_eq!(encode_outcome(&back), blob);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_outcome(b"").is_err());
        assert!(decode_outcome(b"nope").is_err());
        let mut blob = encode_outcome(&sample_outcome());
        blob.truncate(blob.len() - 1);
        assert!(decode_outcome(&blob).is_err());
        let mut bad_magic = encode_outcome(&sample_outcome());
        bad_magic[0] = b'y';
        assert!(decode_outcome(&bad_magic).is_err());
    }

    #[test]
    fn publish_member_writes_a_loadable_manifest() {
        let dir = std::env::temp_dir()
            .join(format!("xg-serve-publish-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();
        let spec = JobSpec {
            input: xg_sim::CgyroInput::test_small(),
            steps: 20,
            tag: "t".into(),
            tenant: "default".into(),
        };
        let outcome = sample_outcome();
        let ctx = PublishContext {
            batch_k: 3,
            coll_cuts: "balanced".into(),
            kernel: "simd".into(),
            machine: "small_cluster".into(),
            phase_us: vec![("execute".into(), 1234)],
            trace_object: None,
            created_unix_us: 1,
        };
        let summary = (20, 0xabcd, [1, 2, 3, 4]);
        let m = publish_member(&store, &spec, &outcome, summary, &ctx).unwrap();
        let loaded = store.lookup(m.deck_hash).unwrap().unwrap();
        assert_eq!(loaded, m);
        assert_eq!(loaded.summary(), summary);
        // The stored blob decodes back to the same result bits.
        let blob = store.get_object(loaded.outcome_object).unwrap();
        let back = decode_outcome(&blob).unwrap();
        assert_eq!(encode_outcome(&back), encode_outcome(&outcome));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
