//! Admission control: bounded queue with typed rejection.
//!
//! Every rejection happens *at submit time*, synchronously, so a client is
//! never left holding a job id for work the server will not do. The queue
//! bound counts non-terminal jobs (queued + batched + running): admitting
//! faster than the worker pool drains eventually pushes back on the
//! submitter with [`AdmitError::QueueFull`] instead of growing without
//! bound.

use xg_sim::CgyroInput;

/// Why a submission was rejected at the door.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The server already holds `capacity` live (non-terminal) jobs —
    /// backpressure; retry after some complete.
    QueueFull {
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// The deck failed [`CgyroInput::validate`] (or could not be parsed).
    InvalidDeck {
        /// Underlying validation/parse message.
        reason: String,
    },
    /// The deck is valid but no ensemble of any size — not even `k = 1` —
    /// fits the server's modeled allocation
    /// ([`xg_cluster::max_feasible_k`] returned 0).
    OversizedGrid {
        /// Explanation with the modeled allocation.
        reason: String,
    },
    /// The requested step count is zero or not a whole number of reporting
    /// intervals (ensemble members checkpoint and report in lockstep).
    BadSteps {
        /// Explanation.
        reason: String,
    },
    /// The server is draining: it finishes what it holds but admits
    /// nothing new.
    Draining,
    /// The submission's tenant claim was refused: malformed name, a
    /// tenant the configured roster does not list, or a failed `auth=`
    /// secret check (see [`crate::TenantDirectory::resolve`]).
    TenantDenied {
        /// Underlying tenant-resolution message.
        reason: String,
    },
    /// Admitting the job would push its tenant past a configured quota
    /// (live jobs or live deck bytes). Backpressure scoped to one tenant:
    /// retry after some of that tenant's jobs complete.
    QuotaExceeded {
        /// The tenant whose quota fired.
        tenant: String,
        /// Which budget: `"jobs"` or `"bytes"`.
        resource: &'static str,
        /// Usage the submission would have reached.
        would_use: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// The durability journal refused the admission record (disk pressure
    /// or an injected write fault). The job was **not** enqueued — a
    /// submission the journal cannot persist would be silently lost by the
    /// next crash, so the server degrades by shedding it instead of
    /// accepting unjournaled work.
    JournalBackpressure {
        /// Underlying journal error.
        reason: String,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::QueueFull { capacity } => write!(
                f,
                "queue full: {capacity} live jobs already admitted (backpressure — retry \
                 after some complete)"
            ),
            AdmitError::InvalidDeck { reason } => write!(f, "invalid deck: {reason}"),
            AdmitError::OversizedGrid { reason } => write!(f, "oversized grid: {reason}"),
            AdmitError::BadSteps { reason } => write!(f, "bad step count: {reason}"),
            AdmitError::Draining => {
                write!(f, "server is draining and admits no new jobs")
            }
            AdmitError::TenantDenied { reason } => write!(f, "tenant denied: {reason}"),
            AdmitError::QuotaExceeded { tenant, resource, would_use, limit } => write!(
                f,
                "quota exceeded: tenant '{tenant}' would hold {would_use} live {resource} \
                 (limit {limit}) — retry after some of its jobs complete"
            ),
            AdmitError::JournalBackpressure { reason } => write!(
                f,
                "journal backpressure: {reason} (submission not persisted — retry)"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

impl AdmitError {
    /// Stable machine-readable kind, used by the wire protocol and the
    /// rejection-count metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            AdmitError::QueueFull { .. } => "queue-full",
            AdmitError::InvalidDeck { .. } => "invalid-deck",
            AdmitError::OversizedGrid { .. } => "oversized-grid",
            AdmitError::BadSteps { .. } => "bad-steps",
            AdmitError::Draining => "draining",
            AdmitError::TenantDenied { .. } => "tenant-denied",
            AdmitError::QuotaExceeded { .. } => "quota-exceeded",
            AdmitError::JournalBackpressure { .. } => "journal-backpressure",
        }
    }

    /// Every rejection kind, for metrics enumeration.
    pub const KINDS: [&'static str; 8] = [
        "queue-full",
        "invalid-deck",
        "oversized-grid",
        "bad-steps",
        "draining",
        "tenant-denied",
        "quota-exceeded",
        "journal-backpressure",
    ];
}

/// Deck-level admission checks shared by `submit` and `--dry-run`: the deck
/// must validate and the requested steps must be a positive multiple of the
/// reporting cadence. (Queue capacity and feasibility are checked by the
/// server, which knows its live-job count and machine model.)
pub fn check_spec(input: &CgyroInput, steps: usize) -> Result<(), AdmitError> {
    input
        .validate()
        .map_err(|reason| AdmitError::InvalidDeck { reason })?;
    if steps == 0 {
        return Err(AdmitError::BadSteps { reason: "steps must be positive".into() });
    }
    if !steps.is_multiple_of(input.steps_per_report) {
        return Err(AdmitError::BadSteps {
            reason: format!(
                "steps {} is not a multiple of the deck's reporting cadence {}",
                steps, input.steps_per_report
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_specs_pass() {
        let input = CgyroInput::test_small();
        assert_eq!(check_spec(&input, 2 * input.steps_per_report), Ok(()));
    }

    #[test]
    fn invalid_decks_are_named() {
        let mut input = CgyroInput::test_small();
        input.n_radial = 0;
        let err = check_spec(&input, 10).unwrap_err();
        assert_eq!(err.kind(), "invalid-deck");
        assert!(err.to_string().contains("n_radial"));
    }

    #[test]
    fn steps_must_align_with_cadence() {
        let input = CgyroInput::test_small(); // steps_per_report = 10
        assert_eq!(check_spec(&input, 0).unwrap_err().kind(), "bad-steps");
        let err = check_spec(&input, input.steps_per_report + 1).unwrap_err();
        assert_eq!(err.kind(), "bad-steps");
        assert!(err.to_string().contains("cadence"));
    }

    #[test]
    fn kinds_cover_every_variant() {
        let variants = [
            AdmitError::QueueFull { capacity: 1 },
            AdmitError::InvalidDeck { reason: String::new() },
            AdmitError::OversizedGrid { reason: String::new() },
            AdmitError::BadSteps { reason: String::new() },
            AdmitError::Draining,
            AdmitError::TenantDenied { reason: String::new() },
            AdmitError::QuotaExceeded {
                tenant: String::new(),
                resource: "jobs",
                would_use: 2,
                limit: 1,
            },
            AdmitError::JournalBackpressure { reason: String::new() },
        ];
        for v in &variants {
            assert!(AdmitError::KINDS.contains(&v.kind()), "{v}");
        }
    }
}
