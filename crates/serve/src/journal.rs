//! The durable job journal: a crash-safe write-ahead log of every job
//! lifecycle transition.
//!
//! The campaign server's in-memory job table dies with the process; the
//! journal is what survives. Every admission, placement, dispatch,
//! checkpoint, and terminal transition appends one [`JournalRecord`] to an
//! append-only segment file, CRC-framed and fsynced per the configured
//! [`JournalConfig::fsync_every`] policy. On startup the daemon replays the
//! log ([`Journal::open`] returns every decodable record) and rebuilds its
//! job table: terminal jobs are restored with their result summaries,
//! waiting jobs are re-admitted through the normal grouping path, and
//! running batches resume from their last journaled ensemble checkpoint.
//!
//! ## Record framing
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! A `kill -9` mid-write leaves a torn frame at the tail: the length header
//! promises more bytes than exist, or the CRC disagrees. Replay treats the
//! first undecodable frame as the end of the log, truncates the segment
//! back to its last good frame (with a warning, not a crash), and reports
//! the dropped byte count. Because the server journals *intent before
//! effect* (a `Submitted` record is committed before the client learns the
//! job id), a torn tail can only ever lose work the client was never
//! acknowledged for.
//!
//! ## Segments and compaction
//!
//! The log rotates to a fresh `seg-NNNNNN.xgj` file once the current
//! segment exceeds [`JournalConfig::segment_max_bytes`]. On rotation the
//! closed segments are compacted: records belonging to *fully-terminal*
//! jobs (Done/Failed/Cancelled — nothing left to recover) are dropped and
//! the survivors merged into one segment, so the journal's size tracks the
//! live job set, not campaign history.
//!
//! ## Fault injection
//!
//! [`ServeFaultPlan`] is the service-layer analogue of `xg_comm::FaultPlan`:
//! deterministic, append-counter-triggered write failures, torn writes, and
//! crash points, so recovery is tested the same seeded way the collectives
//! already are.

use crate::job::{BatchId, JobId, JobState};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// FNV-1a 64-bit hash — the journal's content fingerprint (deck hashes,
/// result summaries). Stable across platforms, no dependencies.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64: the workspace's standard seed-expansion step (same recurrence
/// `xg_comm::FaultPlan::seeded_crash` uses), reused here for seeded fault
/// plans and the client's retry jitter.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// CRC-32 (IEEE 802.3, reflected), table-driven. Hand-rolled: the container
// has no crc crate and the polynomial fits in twenty lines.
fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, e) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        table
    })
}

/// CRC-32 of `bytes` (IEEE, the checksum zlib and Ethernet use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// One journaled lifecycle transition.
///
/// Records are keyed by job id plus the deck's content hash, so a replayed
/// table can verify it is resuming the same work it admitted. `Checkpoint`
/// records carry the serialized [`xgyro_core::EnsembleCheckpoint`] bytes —
/// the restart image a resumed batch continues from bitwise-identically.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalRecord {
    /// A job passed admission. Written (and fsynced) *before* the client
    /// learns the job id, so an acknowledged submit is never lost.
    Submitted {
        /// The job.
        job: JobId,
        /// Client-supplied idempotency token ("" when none).
        token: String,
        /// [`fnv1a`] of the deck text (integrity cross-check on replay).
        deck_hash: u64,
        /// The full deck text (`xg_sim::write_deck` form) — everything
        /// needed to re-admit the job after a crash.
        deck: String,
        /// Requested steps.
        steps: u64,
        /// Client label.
        tag: String,
        /// Wall-clock submit time, microseconds since the Unix epoch
        /// (restored queue-latency accounting counts from here, not from
        /// replay time).
        submitted_unix_us: u64,
        /// Tenant the job is attributed to. Encoded as the v2 record
        /// (tag 9); v1 records (tag 1) from pre-tenant journals decode
        /// with [`crate::tenant::DEFAULT_TENANT`].
        tenant: String,
    },
    /// The job was placed into a batch.
    Batched {
        /// The job.
        job: JobId,
        /// The batch it joined.
        batch: BatchId,
    },
    /// A batch was dispatched: its members are now running.
    Running {
        /// The batch.
        batch: BatchId,
        /// Its members at dispatch, in member order.
        jobs: Vec<JobId>,
    },
    /// A coherent ensemble checkpoint was captured after a completed
    /// segment.
    Checkpoint {
        /// The batch.
        batch: BatchId,
        /// Surviving members at this checkpoint, in member order (matches
        /// the checkpoint's member images).
        jobs: Vec<JobId>,
        /// Monotonic per-batch checkpoint sequence number.
        seq: u64,
        /// Steps completed at this checkpoint.
        done_steps: u64,
        /// `EnsembleCheckpoint::to_bytes()` of the restart image.
        state: Vec<u8>,
    },
    /// The job finished successfully. Carries a result summary (content
    /// hash of the final distribution plus the exact diagnostics bits) so
    /// `RESULT` stays answerable — and bitwise-checkable — after a restart.
    Done {
        /// The job.
        job: JobId,
        /// Steps executed.
        steps: u64,
        /// [`fnv1a`] over the final `h` tensor's little-endian bytes.
        h_hash: u64,
        /// `f64::to_bits` of (time, field_energy, heat_flux, h_norm2).
        diag_bits: [u64; 4],
    },
    /// The job failed (member eviction or whole-batch failure).
    Failed {
        /// The job.
        job: JobId,
        /// Failure cause.
        detail: String,
    },
    /// The job was cancelled.
    Cancelled {
        /// The job.
        job: JobId,
        /// Cancellation context.
        detail: String,
    },
    /// The submission was answered from the artifact store: admission and
    /// completion in a single record (a cache-hit job is born `Done` and
    /// never occupies a batch). Written (and fsynced) *before* the client
    /// learns the job id, like `Submitted`, so an acknowledged hit replays
    /// after a crash with the same bitwise result summary.
    CacheHit {
        /// The job.
        job: JobId,
        /// Client-supplied idempotency token ("" when none).
        token: String,
        /// [`fnv1a`] of the deck text (integrity cross-check on replay).
        deck_hash: u64,
        /// The full deck text as submitted.
        deck: String,
        /// Requested steps.
        steps: u64,
        /// Client label.
        tag: String,
        /// Wall-clock submit time, microseconds since the Unix epoch.
        submitted_unix_us: u64,
        /// Steps the cached run executed (== `steps`).
        steps_done: u64,
        /// [`fnv1a`] over the cached final `h` tensor's LE bytes.
        h_hash: u64,
        /// `f64::to_bits` of (time, field_energy, heat_flux, h_norm2).
        diag_bits: [u64; 4],
        /// Tenant the hit is attributed to. Encoded as the v2 record
        /// (tag 10); v1 records (tag 8) decode with
        /// [`crate::tenant::DEFAULT_TENANT`].
        tenant: String,
    },
}

impl JournalRecord {
    /// The job this record is keyed on, when it is job-scoped.
    fn job(&self) -> Option<JobId> {
        match self {
            JournalRecord::Submitted { job, .. }
            | JournalRecord::Batched { job, .. }
            | JournalRecord::Done { job, .. }
            | JournalRecord::Failed { job, .. }
            | JournalRecord::Cancelled { job, .. }
            | JournalRecord::CacheHit { job, .. } => Some(*job),
            JournalRecord::Running { .. } | JournalRecord::Checkpoint { .. } => None,
        }
    }

    /// Encode to the journal payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            JournalRecord::Submitted {
                job,
                token,
                deck_hash,
                deck,
                steps,
                tag,
                submitted_unix_us,
                tenant,
            } => {
                out.push(9); // v2: v1 layout (tag 1) + trailing tenant
                put_u64(&mut out, job.0);
                put_str(&mut out, token);
                put_u64(&mut out, *deck_hash);
                put_str(&mut out, deck);
                put_u64(&mut out, *steps);
                put_str(&mut out, tag);
                put_u64(&mut out, *submitted_unix_us);
                put_str(&mut out, tenant);
            }
            JournalRecord::Batched { job, batch } => {
                out.push(2);
                put_u64(&mut out, job.0);
                put_u64(&mut out, batch.0);
            }
            JournalRecord::Running { batch, jobs } => {
                out.push(3);
                put_u64(&mut out, batch.0);
                put_jobs(&mut out, jobs);
            }
            JournalRecord::Checkpoint { batch, jobs, seq, done_steps, state } => {
                out.push(4);
                put_u64(&mut out, batch.0);
                put_jobs(&mut out, jobs);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *done_steps);
                put_bytes(&mut out, state);
            }
            JournalRecord::Done { job, steps, h_hash, diag_bits } => {
                out.push(5);
                put_u64(&mut out, job.0);
                put_u64(&mut out, *steps);
                put_u64(&mut out, *h_hash);
                for d in diag_bits {
                    put_u64(&mut out, *d);
                }
            }
            JournalRecord::Failed { job, detail } => {
                out.push(6);
                put_u64(&mut out, job.0);
                put_str(&mut out, detail);
            }
            JournalRecord::Cancelled { job, detail } => {
                out.push(7);
                put_u64(&mut out, job.0);
                put_str(&mut out, detail);
            }
            JournalRecord::CacheHit {
                job,
                token,
                deck_hash,
                deck,
                steps,
                tag,
                submitted_unix_us,
                steps_done,
                h_hash,
                diag_bits,
                tenant,
            } => {
                out.push(10); // v2: v1 layout (tag 8) + trailing tenant
                put_u64(&mut out, job.0);
                put_str(&mut out, token);
                put_u64(&mut out, *deck_hash);
                put_str(&mut out, deck);
                put_u64(&mut out, *steps);
                put_str(&mut out, tag);
                put_u64(&mut out, *submitted_unix_us);
                put_u64(&mut out, *steps_done);
                put_u64(&mut out, *h_hash);
                for d in diag_bits {
                    put_u64(&mut out, *d);
                }
                put_str(&mut out, tenant);
            }
        }
        out
    }

    /// Decode one payload. Fails on unknown tags, short buffers, trailing
    /// garbage, or non-UTF-8 strings.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let mut c = Cursor { buf: payload, off: 0 };
        let tag = c.u8()?;
        let rec = match tag {
            // Tag 1 is the pre-tenant (v1) Submitted layout; tag 9 is v2
            // with a trailing tenant. Old journals replay as the default
            // tenant — attribution is preserved going forward, never
            // invented backward.
            t @ (1 | 9) => JournalRecord::Submitted {
                job: JobId(c.u64()?),
                token: c.str()?,
                deck_hash: c.u64()?,
                deck: c.str()?,
                steps: c.u64()?,
                tag: c.str()?,
                submitted_unix_us: c.u64()?,
                tenant: if t == 9 {
                    c.str()?
                } else {
                    crate::tenant::DEFAULT_TENANT.to_string()
                },
            },
            2 => JournalRecord::Batched { job: JobId(c.u64()?), batch: BatchId(c.u64()?) },
            3 => JournalRecord::Running { batch: BatchId(c.u64()?), jobs: c.jobs()? },
            4 => JournalRecord::Checkpoint {
                batch: BatchId(c.u64()?),
                jobs: c.jobs()?,
                seq: c.u64()?,
                done_steps: c.u64()?,
                state: c.bytes()?,
            },
            5 => JournalRecord::Done {
                job: JobId(c.u64()?),
                steps: c.u64()?,
                h_hash: c.u64()?,
                diag_bits: [c.u64()?, c.u64()?, c.u64()?, c.u64()?],
            },
            6 => JournalRecord::Failed { job: JobId(c.u64()?), detail: c.str()? },
            7 => JournalRecord::Cancelled { job: JobId(c.u64()?), detail: c.str()? },
            // Tag 8 = v1 CacheHit, tag 10 = v2 with trailing tenant.
            t @ (8 | 10) => JournalRecord::CacheHit {
                job: JobId(c.u64()?),
                token: c.str()?,
                deck_hash: c.u64()?,
                deck: c.str()?,
                steps: c.u64()?,
                tag: c.str()?,
                submitted_unix_us: c.u64()?,
                steps_done: c.u64()?,
                h_hash: c.u64()?,
                diag_bits: [c.u64()?, c.u64()?, c.u64()?, c.u64()?],
                tenant: if t == 10 {
                    c.str()?
                } else {
                    crate::tenant::DEFAULT_TENANT.to_string()
                },
            },
            other => return Err(format!("unknown record tag {other}")),
        };
        if c.off != payload.len() {
            return Err(format!(
                "trailing garbage: {} of {} bytes consumed",
                c.off,
                payload.len()
            ));
        }
        Ok(rec)
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_jobs(out: &mut Vec<u8>, jobs: &[JobId]) {
    out.extend_from_slice(&(jobs.len() as u32).to_le_bytes());
    for j in jobs {
        put_u64(out, j.0);
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.off + n > self.buf.len() {
            return Err(format!(
                "truncated record: wanted {n} bytes at offset {}, have {}",
                self.off,
                self.buf.len()
            ));
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn str(&mut self) -> Result<String, String> {
        String::from_utf8(self.bytes()?).map_err(|e| format!("non-UTF-8 string: {e}"))
    }

    fn jobs(&mut self) -> Result<Vec<JobId>, String> {
        let n = self.u32()? as usize;
        // Bound by what the buffer can actually hold — a corrupt count must
        // not turn into a giant allocation.
        if n > self.buf.len() / 8 + 1 {
            return Err(format!("implausible member count {n}"));
        }
        (0..n).map(|_| Ok(JobId(self.u64()?))).collect()
    }
}

/// What an injected service-layer fault does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeFaultKind {
    /// The append fails cleanly (disk full, EIO): nothing is written, the
    /// journal stays framed and usable. The server surfaces this as
    /// journal-backpressure admission rejection.
    WriteError,
    /// Only the first `keep_bytes` of the frame reach the file — the torn
    /// tail a `kill -9` mid-`write(2)` leaves. The journal is poisoned
    /// (further appends refuse) exactly as a real crash would end them.
    TornWrite {
        /// Bytes of the frame that make it to disk.
        keep_bytes: usize,
    },
    /// The process "dies" before writing anything: the append is lost and
    /// the journal poisoned.
    Crash,
}

/// One scheduled service-layer fault: fires on the `at_append`-th append
/// (0-based, counted over the journal's lifetime including replayed
/// restarts).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeFaultSpec {
    /// 0-based append index at which to fire.
    pub at_append: u64,
    /// What happens.
    pub kind: ServeFaultKind,
}

/// A deterministic schedule of journal faults — the service-layer mirror of
/// `xg_comm::FaultPlan`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    specs: Vec<ServeFaultSpec>,
}

impl ServeFaultPlan {
    /// Empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault; builder-style.
    pub fn with(mut self, spec: ServeFaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Convenience: one clean write failure at append `at_append`.
    pub fn write_error(at_append: u64) -> Self {
        Self::new().with(ServeFaultSpec { at_append, kind: ServeFaultKind::WriteError })
    }

    /// Convenience: one torn write keeping `keep_bytes` of the frame.
    pub fn torn_write(at_append: u64, keep_bytes: usize) -> Self {
        Self::new().with(ServeFaultSpec {
            at_append,
            kind: ServeFaultKind::TornWrite { keep_bytes },
        })
    }

    /// Convenience: crash before append `at_append` is written.
    pub fn crash(at_append: u64) -> Self {
        Self::new().with(ServeFaultSpec { at_append, kind: ServeFaultKind::Crash })
    }

    /// Seeded torn-write plan: the append index lands in `[0, max_append)`
    /// and the kept byte count in `[0, 64)`, both derived from `seed` via
    /// SplitMix64 — so property tests sweep random crash points
    /// reproducibly, the same idiom `FaultPlan::seeded_crash` set.
    pub fn seeded_torn(seed: u64, max_append: u64) -> Self {
        assert!(max_append > 0, "seeded_torn needs a non-empty domain");
        let mut s = seed;
        let at_append = splitmix64(&mut s) % max_append;
        let keep_bytes = (splitmix64(&mut s) % 64) as usize;
        Self::torn_write(at_append, keep_bytes)
    }

    /// Whether any fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    fn fire(&self, append: u64) -> Option<&ServeFaultKind> {
        self.specs.iter().find(|s| s.at_append == append).map(|s| &s.kind)
    }
}

/// Journal configuration.
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Fsync cadence in appends: 1 = fsync on every commit (the durable
    /// default), N = batch N appends per fsync (bounded loss window — see
    /// `xg_cluster::journal_sync_plan` for the MTBF-aware choice), 0 =
    /// never fsync (OS page cache only).
    pub fsync_every: u32,
    /// Rotate to a fresh segment once the current one exceeds this size.
    pub segment_max_bytes: u64,
    /// Service-layer fault injection (None in production).
    pub fault_plan: Option<ServeFaultPlan>,
}

impl JournalConfig {
    /// Durable defaults in `dir`: fsync every append, 8 MiB segments.
    pub fn durable(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync_every: 1,
            segment_max_bytes: 8 << 20,
            fault_plan: None,
        }
    }
}

/// Why an append was not committed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// Real I/O failure (the journal is poisoned: the tail may be torn).
    Io(String),
    /// Injected clean write failure — nothing was written; the journal
    /// stays usable and the caller should shed load (admission
    /// backpressure).
    Backpressure(String),
    /// A previous torn write or crash point ended this journal's life;
    /// every subsequent append refuses (the process would be dead).
    Poisoned,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Backpressure(e) => write!(f, "journal write failed: {e}"),
            JournalError::Poisoned => write!(f, "journal poisoned by an earlier torn write"),
        }
    }
}

impl std::error::Error for JournalError {}

/// Running counters the journal maintains, exported under the serve
/// metrics' `journal` block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Committed appends.
    pub appends: u64,
    /// fsync(2) calls issued.
    pub fsyncs: u64,
    /// Payload + framing bytes written.
    pub bytes_written: u64,
    /// Segment rotations.
    pub rotations: u64,
    /// Compaction passes run (on rotation).
    pub compactions: u64,
    /// Records dropped by compaction (fully-terminal jobs).
    pub compacted_records: u64,
    /// Appends that failed (injected or real I/O).
    pub dropped: u64,
}

/// What replaying the on-disk log produced.
#[derive(Debug, Default)]
pub struct Replay {
    /// Every decodable record, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes discarded from the torn tail (0 on a clean log).
    pub torn_bytes: u64,
    /// Segment files read.
    pub segments: usize,
    /// Wall time spent reading and decoding, microseconds.
    pub replay_us: u64,
    /// Human-readable warnings (torn-tail truncation, ignored segments).
    pub warnings: Vec<String>,
}

/// The append-only journal writer. Obtain one (plus the replay of whatever
/// a previous life left behind) from [`Journal::open`].
#[derive(Debug)]
pub struct Journal {
    cfg: JournalConfig,
    file: File,
    seg_index: u64,
    seg_bytes: u64,
    appends_total: u64,
    since_sync: u32,
    poisoned: bool,
    stats: JournalStats,
}

fn seg_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:06}.xgj"))
}

/// Segment files in `dir`, sorted by index.
fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".xgj")) {
            if let Ok(i) = idx.parse::<u64>() {
                out.push((i, entry.path()));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Read one segment file: decodable records plus the byte offset of the
/// first bad frame (None when the whole file framed cleanly).
fn read_segment(path: &Path) -> std::io::Result<(Vec<JournalRecord>, Option<u64>, Vec<String>)> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let mut records = Vec::new();
    let mut warnings = Vec::new();
    let mut off = 0usize;
    while off < buf.len() {
        if off + 8 > buf.len() {
            warnings.push(format!("torn frame header at byte {off}"));
            return Ok((records, Some(off as u64), warnings));
        }
        let len =
            u32::from_le_bytes(buf[off..off + 4].try_into().expect("bounds checked")) as usize;
        let crc = u32::from_le_bytes(buf[off + 4..off + 8].try_into().expect("bounds checked"));
        if off + 8 + len > buf.len() {
            warnings.push(format!(
                "torn frame at byte {off}: header promises {len} bytes, {} remain",
                buf.len() - off - 8
            ));
            return Ok((records, Some(off as u64), warnings));
        }
        let payload = &buf[off + 8..off + 8 + len];
        if crc32(payload) != crc {
            warnings.push(format!("CRC mismatch at byte {off}"));
            return Ok((records, Some(off as u64), warnings));
        }
        match JournalRecord::decode(payload) {
            Ok(r) => records.push(r),
            Err(e) => {
                warnings.push(format!("undecodable record at byte {off}: {e}"));
                return Ok((records, Some(off as u64), warnings));
            }
        }
        off += 8 + len;
    }
    Ok((records, None, warnings))
}

impl Journal {
    /// Open (or create) the journal in `cfg.dir`, replaying whatever is
    /// there. A torn tail is truncated back to the last good frame —
    /// reported in [`Replay::warnings`], never an error. Appends continue
    /// into a fresh segment after the highest existing index.
    pub fn open(cfg: JournalConfig) -> std::io::Result<(Journal, Replay)> {
        let t0 = Instant::now();
        std::fs::create_dir_all(&cfg.dir)?;
        let segments = list_segments(&cfg.dir)?;
        let mut replay = Replay { segments: segments.len(), ..Replay::default() };
        let mut truncated = false;
        for (si, (index, path)) in segments.iter().enumerate() {
            if truncated {
                // A torn frame in a non-final segment ends the decodable
                // log: later segments were written after the corruption and
                // cannot be ordered against it. (In practice tearing only
                // happens at the true tail.)
                replay
                    .warnings
                    .push(format!("segment seg-{index:06}.xgj ignored (follows a torn frame)"));
                continue;
            }
            let (records, bad_at, mut warnings) = read_segment(path)?;
            replay.records.extend(records);
            replay.warnings.append(&mut warnings);
            if let Some(at) = bad_at {
                let total = std::fs::metadata(path)?.len();
                replay.torn_bytes += total - at;
                // Truncate back to the last good frame so the next append
                // starts cleanly framed.
                OpenOptions::new().write(true).open(path)?.set_len(at)?;
                truncated = true;
                if si + 1 < segments.len() {
                    continue; // warn about the rest, handled above
                }
            }
        }
        let next_index = segments.last().map(|(i, _)| i + 1).unwrap_or(0);
        let path = seg_path(&cfg.dir, next_index);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        replay.replay_us = t0.elapsed().as_micros() as u64;
        let journal = Journal {
            cfg,
            file,
            seg_index: next_index,
            seg_bytes: 0,
            appends_total: 0,
            since_sync: 0,
            poisoned: false,
            stats: JournalStats::default(),
        };
        Ok((journal, replay))
    }

    /// Counters so far.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Whether a torn write or crash point has ended this journal.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Append one record, framed and CRC'd, fsyncing per the configured
    /// cadence. Returns [`JournalError::Backpressure`] on an injected clean
    /// write failure (callers shed load), [`JournalError::Poisoned`] after
    /// a torn write/crash point, [`JournalError::Io`] on real I/O errors.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<(), JournalError> {
        if self.poisoned {
            self.stats.dropped += 1;
            return Err(JournalError::Poisoned);
        }
        let this_append = self.appends_total;
        self.appends_total += 1;
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if let Some(kind) = self.cfg.fault_plan.as_ref().and_then(|p| p.fire(this_append)) {
            match kind.clone() {
                ServeFaultKind::WriteError => {
                    self.stats.dropped += 1;
                    return Err(JournalError::Backpressure(format!(
                        "injected write error at append {this_append}"
                    )));
                }
                ServeFaultKind::TornWrite { keep_bytes } => {
                    let keep = keep_bytes.min(frame.len().saturating_sub(1));
                    let _ = self.file.write_all(&frame[..keep]);
                    let _ = self.file.sync_data();
                    self.poisoned = true;
                    self.stats.dropped += 1;
                    return Err(JournalError::Poisoned);
                }
                ServeFaultKind::Crash => {
                    self.poisoned = true;
                    self.stats.dropped += 1;
                    return Err(JournalError::Poisoned);
                }
            }
        }
        if let Err(e) = self.file.write_all(&frame) {
            // A partial write may have torn the tail; refuse further
            // appends rather than interleave frames with garbage.
            self.poisoned = true;
            self.stats.dropped += 1;
            return Err(JournalError::Io(e.to_string()));
        }
        self.seg_bytes += frame.len() as u64;
        self.stats.appends += 1;
        self.stats.bytes_written += frame.len() as u64;
        self.since_sync += 1;
        if self.cfg.fsync_every > 0 && self.since_sync >= self.cfg.fsync_every {
            self.sync().map_err(|e| JournalError::Io(e.to_string()))?;
        }
        if self.seg_bytes >= self.cfg.segment_max_bytes {
            self.rotate().map_err(|e| JournalError::Io(e.to_string()))?;
        }
        Ok(())
    }

    /// fsync the current segment (also called automatically per the
    /// `fsync_every` cadence and on rotation).
    pub fn sync(&mut self) -> std::io::Result<()> {
        let t0 = Instant::now();
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        self.since_sync = 0;
        xg_obs::record_journal_fsync(t0.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Close the current segment, open the next, and compact the closed
    /// ones (drop records of fully-terminal jobs, merge into one file).
    fn rotate(&mut self) -> std::io::Result<()> {
        self.sync()?;
        self.seg_index += 1;
        let path = seg_path(&self.cfg.dir, self.seg_index);
        self.file = OpenOptions::new().create(true).append(true).open(&path)?;
        self.seg_bytes = 0;
        self.stats.rotations += 1;
        self.compact_closed()?;
        Ok(())
    }

    /// Merge every closed segment into one, dropping records that belong
    /// only to fully-terminal jobs (nothing left to recover for them).
    /// Batch-scoped records survive while any referenced member is live.
    fn compact_closed(&mut self) -> std::io::Result<()> {
        let closed: Vec<(u64, PathBuf)> = list_segments(&self.cfg.dir)?
            .into_iter()
            .filter(|(i, _)| *i < self.seg_index)
            .collect();
        if closed.len() < 2 {
            return Ok(()); // nothing to merge
        }
        let mut records = Vec::new();
        for (_, path) in &closed {
            let (recs, bad, _) = read_segment(path)?;
            records.extend(recs);
            if bad.is_some() {
                // Should be unreachable (closed segments were written whole
                // by this process); leave the log alone rather than compact
                // around corruption.
                return Ok(());
            }
        }
        // A job is droppable once terminal. NOTE: terminal-state records
        // (and the Submitted records carrying their tokens) go with it —
        // compaction trades post-restart RESULT/dedup answers for old jobs
        // against unbounded log growth.
        let mut terminal: std::collections::BTreeSet<JobId> = Default::default();
        for r in &records {
            if let JournalRecord::Done { job, .. }
            | JournalRecord::Failed { job, .. }
            | JournalRecord::Cancelled { job, .. }
            | JournalRecord::CacheHit { job, .. } = r
            {
                terminal.insert(*job);
            }
        }
        let before = records.len();
        records.retain(|r| match r.job() {
            Some(j) => !terminal.contains(&j),
            None => match r {
                JournalRecord::Running { jobs, .. }
                | JournalRecord::Checkpoint { jobs, .. } => {
                    jobs.iter().any(|j| !terminal.contains(j))
                }
                _ => true,
            },
        });
        self.stats.compacted_records += (before - records.len()) as u64;
        // Write the merged segment under the first closed index via a temp
        // file + rename, so a crash mid-compaction leaves either the old
        // segments or the complete merged one.
        let merged_index = closed[0].0;
        let merged_path = seg_path(&self.cfg.dir, merged_index);
        let tmp_path = self.cfg.dir.join(format!("seg-{merged_index:06}.xgj.tmp"));
        {
            let mut tmp = File::create(&tmp_path)?;
            for r in &records {
                let payload = r.encode();
                tmp.write_all(&(payload.len() as u32).to_le_bytes())?;
                tmp.write_all(&crc32(&payload).to_le_bytes())?;
                tmp.write_all(&payload)?;
            }
            tmp.sync_data()?;
        }
        for (_, path) in closed.iter().skip(1) {
            std::fs::remove_file(path)?;
        }
        std::fs::rename(&tmp_path, &merged_path)?;
        self.stats.compactions += 1;
        Ok(())
    }
}

/// One job's state as reconstructed from the log.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayedJob {
    /// The job.
    pub id: JobId,
    /// Idempotency token ("" when none was supplied).
    pub token: String,
    /// Deck text as submitted.
    pub deck: String,
    /// [`fnv1a`] of the deck at submit time.
    pub deck_hash: u64,
    /// Requested steps.
    pub steps: u64,
    /// Client label.
    pub tag: String,
    /// Tenant attribution (pre-tenant records replay as
    /// [`crate::tenant::DEFAULT_TENANT`]).
    pub tenant: String,
    /// Original wall-clock submit time (µs since the Unix epoch).
    pub submitted_unix_us: u64,
    /// Last journaled lifecycle state.
    pub state: JobState,
    /// Last journaled batch placement.
    pub batch: Option<BatchId>,
    /// Terminal detail (failure cause / cancellation context).
    pub detail: String,
    /// For `Done` jobs: `(steps, h_hash, diag_bits)` — the summary `RESULT`
    /// serves after a restart.
    pub done_summary: Option<(u64, u64, [u64; 4])>,
}

/// A dispatched batch reconstructed from the log.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplayedBatch {
    /// Members at dispatch.
    pub jobs: Vec<JobId>,
    /// Latest checkpoint: `(seq, done_steps, member jobs, state bytes)`.
    pub checkpoint: Option<(u64, u64, Vec<JobId>, Vec<u8>)>,
}

/// The folded view of a replayed log: the consistent job table recovery
/// rebuilds the server from.
#[derive(Debug, Default)]
pub struct ReplayTable {
    /// Every job with a `Submitted` record, by id.
    pub jobs: BTreeMap<JobId, ReplayedJob>,
    /// Batches with a `Running` record whose members are not all terminal.
    pub running: BTreeMap<BatchId, ReplayedBatch>,
    /// Highest batch id seen (the grouper's id counter must start past it).
    pub max_batch: Option<u64>,
    /// Records that referenced unknown jobs or implied illegal transitions
    /// (possible after compaction dropped their history) — counted, never
    /// fatal.
    pub ignored: u64,
}

/// Fold records (append order) into a consistent job table. Tolerant by
/// construction: a record for an unknown job or an illegal transition is
/// counted in [`ReplayTable::ignored`] and skipped, so *any prefix* of a
/// valid log folds cleanly — the property the truncation proptest pins.
pub fn fold(records: &[JournalRecord]) -> ReplayTable {
    let mut t = ReplayTable::default();
    let note_batch = |t: &mut ReplayTable, b: BatchId| {
        t.max_batch = Some(t.max_batch.map_or(b.0, |m| m.max(b.0)));
    };
    for rec in records {
        match rec {
            JournalRecord::Submitted {
                job,
                token,
                deck_hash,
                deck,
                steps,
                tag,
                submitted_unix_us,
                tenant,
            } => {
                t.jobs.insert(
                    *job,
                    ReplayedJob {
                        id: *job,
                        token: token.clone(),
                        deck: deck.clone(),
                        deck_hash: *deck_hash,
                        steps: *steps,
                        tag: tag.clone(),
                        tenant: tenant.clone(),
                        submitted_unix_us: *submitted_unix_us,
                        state: JobState::Queued,
                        batch: None,
                        detail: String::new(),
                        done_summary: None,
                    },
                );
            }
            JournalRecord::Batched { job, batch } => {
                note_batch(&mut t, *batch);
                match t.jobs.get_mut(job) {
                    Some(j) if j.state.can_transition(JobState::Batched) => {
                        j.state = JobState::Batched;
                        j.batch = Some(*batch);
                    }
                    _ => t.ignored += 1,
                }
            }
            JournalRecord::Running { batch, jobs } => {
                note_batch(&mut t, *batch);
                let mut any = false;
                for job in jobs {
                    match t.jobs.get_mut(job) {
                        Some(j) if j.state.can_transition(JobState::Running) => {
                            j.state = JobState::Running;
                            j.batch = Some(*batch);
                            any = true;
                        }
                        _ => t.ignored += 1,
                    }
                }
                if any {
                    t.running
                        .insert(*batch, ReplayedBatch { jobs: jobs.clone(), checkpoint: None });
                }
            }
            JournalRecord::Checkpoint { batch, jobs, seq, done_steps, state } => {
                note_batch(&mut t, *batch);
                match t.running.get_mut(batch) {
                    Some(rb) => {
                        rb.checkpoint = Some((*seq, *done_steps, jobs.clone(), state.clone()));
                    }
                    None => t.ignored += 1,
                }
            }
            JournalRecord::Done { job, steps, h_hash, diag_bits } => {
                match t.jobs.get_mut(job) {
                    Some(j) if j.state.can_transition(JobState::Done) => {
                        j.state = JobState::Done;
                        j.done_summary = Some((*steps, *h_hash, *diag_bits));
                        j.detail = "completed".into();
                    }
                    _ => t.ignored += 1,
                }
            }
            JournalRecord::Failed { job, detail } => match t.jobs.get_mut(job) {
                Some(j) if j.state.can_transition(JobState::Failed) => {
                    j.state = JobState::Failed;
                    j.detail = detail.clone();
                }
                _ => t.ignored += 1,
            },
            JournalRecord::Cancelled { job, detail } => match t.jobs.get_mut(job) {
                Some(j) if j.state.can_transition(JobState::Cancelled) => {
                    j.state = JobState::Cancelled;
                    j.detail = detail.clone();
                }
                _ => t.ignored += 1,
            },
            JournalRecord::CacheHit {
                job,
                token,
                deck_hash,
                deck,
                steps,
                tag,
                submitted_unix_us,
                steps_done,
                h_hash,
                diag_bits,
                tenant,
            } => {
                // Born-Done: one record is both admission and completion.
                t.jobs.insert(
                    *job,
                    ReplayedJob {
                        id: *job,
                        token: token.clone(),
                        deck: deck.clone(),
                        deck_hash: *deck_hash,
                        steps: *steps,
                        tag: tag.clone(),
                        tenant: tenant.clone(),
                        submitted_unix_us: *submitted_unix_us,
                        state: JobState::Done,
                        batch: None,
                        detail: "served from artifact cache".into(),
                        done_summary: Some((*steps_done, *h_hash, *diag_bits)),
                    },
                );
            }
        }
    }
    // A batch whose members all terminalized is not running anymore.
    t.running.retain(|_, rb| {
        rb.jobs
            .iter()
            .any(|j| t.jobs.get(j).is_some_and(|job| !job.state.is_terminal()))
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xg-journal-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Submitted {
                job: JobId(0),
                token: "tok-a".into(),
                deck_hash: fnv1a(b"deck-a"),
                deck: "N_RADIAL=4\n".into(),
                steps: 20,
                tag: "a".into(),
                submitted_unix_us: 1_700_000_000_000_000,
                tenant: "alice".into(),
            },
            JournalRecord::Batched { job: JobId(0), batch: BatchId(0) },
            JournalRecord::Submitted {
                job: JobId(1),
                token: String::new(),
                deck_hash: fnv1a(b"deck-b"),
                deck: "N_RADIAL=8\n".into(),
                steps: 20,
                tag: "b".into(),
                submitted_unix_us: 1_700_000_000_500_000,
                tenant: crate::tenant::DEFAULT_TENANT.into(),
            },
            JournalRecord::Batched { job: JobId(1), batch: BatchId(0) },
            JournalRecord::Running { batch: BatchId(0), jobs: vec![JobId(0), JobId(1)] },
            JournalRecord::Checkpoint {
                batch: BatchId(0),
                jobs: vec![JobId(0), JobId(1)],
                seq: 0,
                done_steps: 10,
                state: vec![1, 2, 3, 4],
            },
            JournalRecord::Done {
                job: JobId(0),
                steps: 20,
                h_hash: 0xdead_beef,
                diag_bits: [1, 2, 3, 4],
            },
            JournalRecord::Failed { job: JobId(1), detail: "evicted".into() },
        ]
    }

    fn sample_cache_hit() -> JournalRecord {
        JournalRecord::CacheHit {
            job: JobId(7),
            token: "tok-hit".into(),
            deck_hash: fnv1a(b"deck-a"),
            deck: "N_RADIAL=4\n".into(),
            steps: 20,
            tag: "warm".into(),
            submitted_unix_us: 1_700_000_001_000_000,
            steps_done: 20,
            h_hash: 0xfeed_beef,
            diag_bits: [5, 6, 7, 8],
            tenant: "alice".into(),
        }
    }

    #[test]
    fn cache_hit_roundtrips_and_folds_born_done() {
        let rec = sample_cache_hit();
        assert_eq!(JournalRecord::decode(&rec.encode()).unwrap(), rec);
        let table = fold(&[rec]);
        let j = &table.jobs[&JobId(7)];
        assert_eq!(j.state, JobState::Done);
        assert_eq!(j.done_summary, Some((20, 0xfeed_beef, [5, 6, 7, 8])));
        assert_eq!(j.batch, None, "a cache hit never occupied a batch");
        assert_eq!(j.detail, "served from artifact cache");
        assert_eq!(table.ignored, 0);
    }

    #[test]
    fn cache_hit_is_compacted_like_other_terminal_jobs() {
        let dir = tmpdir("compact-hit");
        let mut cfg = JournalConfig::durable(&dir);
        cfg.segment_max_bytes = 128;
        let (mut j, _) = Journal::open(cfg.clone()).unwrap();
        j.append(&sample_cache_hit()).unwrap();
        // Enough live-job churn to force rotation + compaction.
        for i in 0..8u64 {
            j.append(&JournalRecord::Submitted {
                job: JobId(100 + i),
                token: String::new(),
                deck_hash: 0,
                deck: "X=1\n".repeat(8),
                steps: 1,
                tag: String::new(),
                submitted_unix_us: 1,
                tenant: crate::tenant::DEFAULT_TENANT.into(),
            })
            .unwrap();
        }
        assert!(j.stats().compactions > 0);
        drop(j);
        let (_, replay) = Journal::open(cfg).unwrap();
        let table = fold(&replay.records);
        assert!(!table.jobs.contains_key(&JobId(7)), "terminal hit compacted away");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc32_matches_the_standard_vector() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_roundtrip_through_encode_decode() {
        for rec in sample_records() {
            let enc = rec.encode();
            assert_eq!(JournalRecord::decode(&enc).expect("decodes"), rec);
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        assert!(JournalRecord::decode(&[]).is_err());
        assert!(JournalRecord::decode(&[99]).is_err(), "unknown tag");
        let mut enc = JournalRecord::Batched { job: JobId(1), batch: BatchId(2) }.encode();
        enc.push(0); // trailing garbage
        assert!(JournalRecord::decode(&enc).is_err());
        enc.truncate(5); // short buffer
        assert!(JournalRecord::decode(&enc).is_err());
    }

    #[test]
    fn append_then_open_replays_in_order() {
        let dir = tmpdir("roundtrip");
        let recs = sample_records();
        {
            let (mut j, replay) = Journal::open(JournalConfig::durable(&dir)).unwrap();
            assert!(replay.records.is_empty());
            for r in &recs {
                j.append(r).unwrap();
            }
            assert_eq!(j.stats().appends, recs.len() as u64);
            assert_eq!(j.stats().fsyncs, recs.len() as u64, "fsync_every=1");
        }
        let (_, replay) = Journal::open(JournalConfig::durable(&dir)).unwrap();
        assert_eq!(replay.records, recs);
        assert_eq!(replay.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_with_a_warning_and_appends_continue() {
        let dir = tmpdir("torn");
        {
            let (mut j, _) = Journal::open(JournalConfig::durable(&dir)).unwrap();
            for r in &sample_records()[..3] {
                j.append(r).unwrap();
            }
        }
        // Tear the tail by hand: append half a frame to the last segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x44, 0x33, 0x22, 0x11, 0xaa]).unwrap();
        drop(f);
        let before = std::fs::metadata(&path).unwrap().len();
        let (mut j, replay) = Journal::open(JournalConfig::durable(&dir)).unwrap();
        assert_eq!(replay.records.len(), 3, "good prefix survives");
        assert_eq!(replay.torn_bytes, 5);
        assert!(replay.warnings.iter().any(|w| w.contains("torn")), "{:?}", replay.warnings);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before - 5, "tail truncated");
        // The journal is alive: more appends land and replay cleanly.
        j.append(&sample_records()[3]).unwrap();
        drop(j);
        let (_, replay) = Journal::open(JournalConfig::durable(&dir)).unwrap();
        assert_eq!(replay.records.len(), 4);
        assert_eq!(replay.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_mismatch_ends_the_log_at_the_bad_frame() {
        let dir = tmpdir("crc");
        {
            let (mut j, _) = Journal::open(JournalConfig::durable(&dir)).unwrap();
            for r in sample_records().iter().take(4) {
                j.append(r).unwrap();
            }
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        // Flip one payload byte of the second frame.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len =
            u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize + 8;
        bytes[first_len + 10] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Journal::open(JournalConfig::durable(&dir)).unwrap();
        assert_eq!(replay.records.len(), 1, "only the frame before the corruption");
        assert!(replay.torn_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_compacts_terminal_jobs_away() {
        let dir = tmpdir("compact");
        let mut cfg = JournalConfig::durable(&dir);
        cfg.segment_max_bytes = 256; // rotate every few records
        let (mut j, _) = Journal::open(cfg.clone()).unwrap();
        // Job 0 terminalizes; job 100 stays live. Pad decks so segments
        // fill and several rotations (hence compactions) happen.
        let pad = "X_PAD=1\n".repeat(8);
        for r in &sample_records() {
            j.append(r).unwrap();
        }
        j.append(&JournalRecord::Submitted {
            job: JobId(100),
            token: "live".into(),
            deck_hash: fnv1a(pad.as_bytes()),
            deck: pad.clone(),
            steps: 20,
            tag: "live".into(),
            tenant: crate::tenant::DEFAULT_TENANT.into(),
            submitted_unix_us: 1,
        })
        .unwrap();
        for i in 0..6u64 {
            j.append(&JournalRecord::Batched { job: JobId(100), batch: BatchId(i + 1) })
                .unwrap();
        }
        assert!(j.stats().rotations > 0, "segments must have rotated");
        assert!(j.stats().compactions > 0, "closed segments must have compacted");
        assert!(j.stats().compacted_records > 0);
        drop(j);
        let (_, replay) = Journal::open(cfg).unwrap();
        let table = fold(&replay.records);
        // Terminal jobs 0 and 1 were compacted away; the live job remains.
        assert!(table.jobs.contains_key(&JobId(100)));
        assert!(!table.jobs.contains_key(&JobId(0)), "Done job compacted");
        assert!(!table.jobs.contains_key(&JobId(1)), "Failed job compacted");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_write_error_is_backpressure_not_poison() {
        let dir = tmpdir("write-error");
        let mut cfg = JournalConfig::durable(&dir);
        cfg.fault_plan = Some(ServeFaultPlan::write_error(1));
        let (mut j, _) = Journal::open(cfg).unwrap();
        let recs = sample_records();
        j.append(&recs[0]).unwrap();
        let err = j.append(&recs[1]).unwrap_err();
        assert!(matches!(err, JournalError::Backpressure(_)), "{err}");
        assert!(!j.is_poisoned());
        j.append(&recs[1]).unwrap(); // retried append (new index) lands
        assert_eq!(j.stats().dropped, 1);
        drop(j);
        let (_, replay) = Journal::open(JournalConfig::durable(&dir)).unwrap();
        assert_eq!(replay.records.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_fault_poisons_and_replay_recovers_the_prefix() {
        let dir = tmpdir("torn-fault");
        let mut cfg = JournalConfig::durable(&dir);
        cfg.fault_plan = Some(ServeFaultPlan::torn_write(2, 7));
        let (mut j, _) = Journal::open(cfg).unwrap();
        let recs = sample_records();
        j.append(&recs[0]).unwrap();
        j.append(&recs[1]).unwrap();
        assert_eq!(j.append(&recs[2]).unwrap_err(), JournalError::Poisoned);
        assert!(j.is_poisoned());
        assert_eq!(j.append(&recs[3]).unwrap_err(), JournalError::Poisoned);
        drop(j);
        // The next life sees the clean prefix; the 7 torn bytes are dropped.
        let (_, replay) = Journal::open(JournalConfig::durable(&dir)).unwrap();
        assert_eq!(replay.records, recs[..2].to_vec());
        assert_eq!(replay.torn_bytes, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fold_builds_the_expected_table() {
        let table = fold(&sample_records());
        assert_eq!(table.jobs.len(), 2);
        let j0 = &table.jobs[&JobId(0)];
        assert_eq!(j0.state, JobState::Done);
        assert_eq!(j0.done_summary, Some((20, 0xdead_beef, [1, 2, 3, 4])));
        assert_eq!(j0.token, "tok-a");
        let j1 = &table.jobs[&JobId(1)];
        assert_eq!(j1.state, JobState::Failed);
        assert_eq!(j1.detail, "evicted");
        // Both members terminal: the batch is not running anymore.
        assert!(table.running.is_empty());
        assert_eq!(table.max_batch, Some(0));
        assert_eq!(table.ignored, 0);
    }

    #[test]
    fn fold_keeps_running_batches_with_live_members() {
        let recs = &sample_records()[..6]; // through the Checkpoint record
        let table = fold(recs);
        assert_eq!(table.jobs[&JobId(0)].state, JobState::Running);
        let rb = &table.running[&BatchId(0)];
        assert_eq!(rb.jobs, vec![JobId(0), JobId(1)]);
        let (seq, done, members, state) = rb.checkpoint.clone().unwrap();
        assert_eq!((seq, done), (0, 10));
        assert_eq!(members, vec![JobId(0), JobId(1)]);
        assert_eq!(state, vec![1, 2, 3, 4]);
    }

    #[test]
    fn fnv_and_splitmix_are_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        let mut s = 42;
        let a = splitmix64(&mut s);
        let mut s2 = 42;
        assert_eq!(a, splitmix64(&mut s2), "deterministic");
    }

    /// Strategy: short journal-ish text (tokens, deck lines, details).
    fn arb_text() -> impl Strategy<Value = String> {
        const CHARS: &[u8] = b"abcXYZ019=_.\n ";
        prop::collection::vec(0usize..CHARS.len(), 0..40)
            .prop_map(|ix| ix.into_iter().map(|i| CHARS[i] as char).collect())
    }

    /// Strategy: an arbitrary (valid) record.
    fn arb_record() -> impl Strategy<Value = JournalRecord> {
        prop_oneof![
            (0u64.., arb_text(), 0u64.., arb_text(), 0u64.., (arb_text(), arb_text()), 0u64..)
                .prop_map(|(job, token, deck_hash, deck, steps, (tag, tenant), t)| {
                    JournalRecord::Submitted {
                        job: JobId(job),
                        token,
                        deck_hash,
                        deck,
                        steps,
                        tag,
                        tenant,
                        submitted_unix_us: t,
                    }
                }),
            (0u64.., 0u64..).prop_map(|(j, b)| JournalRecord::Batched {
                job: JobId(j),
                batch: BatchId(b),
            }),
            (0u64.., prop::collection::vec(0u64.., 0..5)).prop_map(|(b, js)| {
                JournalRecord::Running {
                    batch: BatchId(b),
                    jobs: js.into_iter().map(JobId).collect(),
                }
            }),
            (
                0u64..,
                prop::collection::vec(0u64.., 0..5),
                0u64..,
                0u64..,
                prop::collection::vec(0u8.., 0..64),
            )
                .prop_map(|(b, js, seq, done, state)| JournalRecord::Checkpoint {
                    batch: BatchId(b),
                    jobs: js.into_iter().map(JobId).collect(),
                    seq,
                    done_steps: done,
                    state,
                }),
            (0u64.., 0u64.., 0u64.., (0u64.., 0u64.., 0u64.., 0u64..)).prop_map(
                |(j, steps, h, (d0, d1, d2, d3))| JournalRecord::Done {
                    job: JobId(j),
                    steps,
                    h_hash: h,
                    diag_bits: [d0, d1, d2, d3],
                }
            ),
            (0u64.., arb_text()).prop_map(|(j, d)| JournalRecord::Failed {
                job: JobId(j),
                detail: d,
            }),
            (0u64.., arb_text()).prop_map(|(j, d)| JournalRecord::Cancelled {
                job: JobId(j),
                detail: d,
            }),
        ]
    }

    proptest! {
        /// Every record survives encode → decode bytewise.
        #[test]
        fn any_record_roundtrips(rec in arb_record()) {
            let enc = rec.encode();
            prop_assert_eq!(JournalRecord::decode(&enc).expect("decodes"), rec);
        }

        /// Any byte-prefix of a valid journal replays to a consistent job
        /// table: the decodable frames are exactly the whole frames inside
        /// the prefix, the torn tail is dropped (never a crash), and the
        /// fold never produces an illegal state.
        #[test]
        fn any_truncation_replays_consistently(
            recs in prop::collection::vec(arb_record(), 1..12),
            cut_frac in 0.0f64..1.0,
        ) {
            let dir = tmpdir(&format!("prop-{}", fnv1a(format!("{recs:?}{cut_frac}").as_bytes())));
            {
                let (mut j, _) = Journal::open(JournalConfig::durable(&dir)).unwrap();
                for r in &recs {
                    j.append(r).unwrap();
                }
            }
            let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
            let full = std::fs::metadata(&path).unwrap().len();
            let cut = (full as f64 * cut_frac) as u64;
            OpenOptions::new().write(true).open(&path).unwrap().set_len(cut).unwrap();
            let (_, replay) = Journal::open(JournalConfig::durable(&dir)).unwrap();
            // The replayed records are a prefix of what was written.
            prop_assert!(replay.records.len() <= recs.len());
            prop_assert_eq!(&replay.records[..], &recs[..replay.records.len()]);
            // And the fold is consistent: every job's state is reachable,
            // running batches only reference known live members.
            let table = fold(&replay.records);
            for (id, job) in &table.jobs {
                prop_assert_eq!(*id, job.id);
                if job.state == JobState::Done {
                    prop_assert!(job.done_summary.is_some());
                }
            }
            for rb in table.running.values() {
                prop_assert!(
                    rb.jobs.iter().any(|j| table
                        .jobs
                        .get(j)
                        .is_some_and(|job| !job.state.is_terminal())),
                    "running batch with no live member survived the fold"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
