//! The campaign server: admission → grouping → bounded workers → results.
//!
//! Threads:
//!
//! * **submitters** (callers of [`CampaignServer::submit`]) run admission
//!   and grouper placement synchronously under the state lock — a client
//!   holds a job id only for work the server has really accepted;
//! * one **batcher** thread sleeps until the earliest linger deadline and
//!   flushes expired underfull batches to the ready queue;
//! * `workers` **worker** threads pop ready batches and execute each as one
//!   XGYRO ensemble through [`xgyro_core::run_xgyro_resilient_from`] in
//!   bounded segments (`ckpt_every` steps), so cancellations are applied at
//!   checkpoint boundaries and a faulted member is evicted without killing
//!   its batch-mates.
//!
//! All state lives behind one mutex; nothing blocks while holding it except
//! condition-variable waits. Simulation segments run outside the lock.

use crate::admission::{check_spec, AdmitError};
use crate::batcher::{FlushReason, Grouper, GrouperConfig, Placement};
use crate::job::{BatchId, Job, JobEvent, JobId, JobOutcome, JobSpec, JobState, JobStatus};
use crate::metrics::Metrics;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xg_comm::FaultPlan;
use xg_costmodel::MachineModel;
use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;
use xgyro_core::{run_xgyro_resilient_from, EnsembleCheckpoint, EnsembleConfig, EnsembleError};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Per-simulation process grid batches execute on (the thread-backed
    /// substrate's analogue of the per-sim MPI decomposition).
    pub grid: ProcGrid,
    /// Operator cap on batch size; the effective cap may be lower where the
    /// memory budget binds ([`xg_cluster::max_feasible_k`]).
    pub k_max: usize,
    /// How long an underfull batch waits for key-mates before flushing.
    pub linger: Duration,
    /// Bound on live (non-terminal) jobs — admission backpressure.
    pub queue_capacity: usize,
    /// Worker threads (concurrently running batches).
    pub workers: usize,
    /// Segment length in steps: cancellations and evictions apply at these
    /// checkpoint boundaries.
    pub ckpt_every: usize,
    /// Deadline bounding every blocking communication wait.
    pub deadline: Duration,
    /// Modeled node allocation backing the memory budget.
    pub nodes: usize,
    /// Machine model pricing the memory budget.
    pub machine: MachineModel,
    /// Fault-injection chaos hook: consumed by the first batch executed
    /// (None for production operation).
    pub fault_plan: Option<FaultPlan>,
}

impl ServerConfig {
    /// A configuration sized for tests and the CI smoke run: tiny decks,
    /// 3 modeled small-cluster nodes (12 ranks — the smallest allocation
    /// whose memory budget admits `k = 3` for the small test deck), short
    /// linger.
    pub fn local_test() -> Self {
        Self {
            grid: ProcGrid::new(2, 1),
            k_max: 3,
            linger: Duration::from_millis(50),
            queue_capacity: 64,
            workers: 2,
            ckpt_every: 10,
            deadline: Duration::from_secs(10),
            nodes: 3,
            machine: MachineModel::small_cluster(),
            fault_plan: None,
        }
    }
}

/// A flushed batch waiting for a worker.
#[derive(Debug)]
struct ReadyBatch {
    id: BatchId,
    jobs: Vec<JobId>,
    reason: FlushReason,
}

#[derive(Debug)]
struct State {
    jobs: BTreeMap<JobId, Job>,
    next_job: u64,
    grouper: Grouper,
    ready: VecDeque<ReadyBatch>,
    metrics: Metrics,
    live: usize,
    draining: bool,
    shutdown: bool,
    fault_plan: Option<FaultPlan>,
}

struct Shared {
    cfg: ServerConfig,
    state: Mutex<State>,
    /// Workers wait here for ready batches.
    work: Condvar,
    /// The batcher thread waits here for its next linger deadline.
    timer: Condvar,
    /// Drain/join waits here for the live-job count to hit zero.
    quiet: Condvar,
}

/// The campaign service. Call [`CampaignServer::drain`] then
/// [`CampaignServer::shutdown`] for an orderly stop; a bare `shutdown`
/// cancels never-dispatched jobs and preempts running batches at their next
/// checkpoint boundary.
pub struct CampaignServer {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl CampaignServer {
    /// Start the service: one batcher thread plus `cfg.workers` workers.
    pub fn start(cfg: ServerConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(cfg.ckpt_every >= 1, "segment length must be positive");
        let grouper = Grouper::new(GrouperConfig {
            k_max: cfg.k_max,
            linger: cfg.linger,
            nodes: cfg.nodes,
            machine: cfg.machine.clone(),
        });
        let fault_plan = cfg.fault_plan.clone();
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(State {
                jobs: BTreeMap::new(),
                next_job: 0,
                grouper,
                ready: VecDeque::new(),
                metrics: Metrics::default(),
                live: 0,
                draining: false,
                shutdown: false,
                fault_plan,
            }),
            work: Condvar::new(),
            timer: Condvar::new(),
            quiet: Condvar::new(),
        });
        let mut threads = Vec::new();
        {
            let s = shared.clone();
            threads.push(std::thread::spawn(move || batcher_loop(&s)));
        }
        for _ in 0..shared.cfg.workers {
            let s = shared.clone();
            threads.push(std::thread::spawn(move || worker_loop(&s)));
        }
        Self { shared, threads }
    }

    /// Submit a job. On success the job is already placed in a batch
    /// (state [`JobState::Batched`]); on rejection nothing was admitted.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, AdmitError> {
        let shared = &self.shared;
        let mut guard = shared.state.lock();
        let st = &mut *guard;
        if let Err(e) = admit(shared, st, &spec) {
            st.metrics.on_reject(&e);
            return Err(e);
        }
        if st.live >= shared.cfg.queue_capacity {
            let e = AdmitError::QueueFull { capacity: shared.cfg.queue_capacity };
            st.metrics.on_reject(&e);
            return Err(e);
        }
        let id = JobId(st.next_job);
        st.next_job += 1;
        let (batch, flushed) = st.grouper.place(id, &spec, Instant::now());
        let cmat_key = spec.input.cmat_key();
        // Queued → Batched happens atomically inside submit (placement is
        // synchronous), so the job is born already batched; a subscriber's
        // initial snapshot covers the transition.
        st.jobs.insert(
            id,
            Job {
                id,
                spec,
                state: JobState::Batched,
                cmat_key,
                batch: Some(batch),
                detail: batch.to_string(),
                cancel_requested: false,
                submitted_at: Instant::now(),
                dispatched_at: None,
                outcome: None,
                subscribers: Vec::new(),
            },
        );
        st.live += 1;
        st.metrics.on_submit();
        if let Some(f) = flushed {
            st.ready.push_back(ReadyBatch {
                id: f.batch.id,
                jobs: f.batch.jobs,
                reason: f.reason,
            });
            shared.work.notify_all();
        }
        // A new batch may have created the earliest linger deadline.
        shared.timer.notify_one();
        Ok(id)
    }

    /// Dry-run placement: the deck's cmat key and where the job would land
    /// right now, computed by the same admission checks and grouper code
    /// path as [`CampaignServer::submit`] — without admitting anything.
    pub fn dry_run(&self, spec: &JobSpec) -> Result<(u64, Placement), AdmitError> {
        let guard = self.shared.state.lock();
        admit(&self.shared, &guard, spec)?;
        Ok((spec.input.cmat_key(), guard.grouper.would_join(spec)))
    }

    /// Current status of one job.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.shared.state.lock().jobs.get(&id).map(Job::status)
    }

    /// Status of every job, in submission order.
    pub fn list(&self) -> Vec<JobStatus> {
        self.shared.state.lock().jobs.values().map(Job::status).collect()
    }

    /// Subscribe to a job's state changes. The current state is delivered
    /// immediately (so subscribing after a transition cannot miss it);
    /// subsequent transitions stream until the job reaches a terminal
    /// state, after which the channel hangs up.
    pub fn subscribe(&self, id: JobId) -> Option<mpsc::Receiver<JobEvent>> {
        let mut guard = self.shared.state.lock();
        let job = guard.jobs.get_mut(&id)?;
        let (tx, rx) = mpsc::channel();
        let _ = tx.send(JobEvent { job: id, state: job.state, detail: job.detail.clone() });
        if !job.state.is_terminal() {
            job.subscribers.push(tx);
        }
        Some(rx)
    }

    /// The final output of a `Done` job.
    pub fn result(&self, id: JobId) -> Option<JobOutcome> {
        self.shared.state.lock().jobs.get(&id).and_then(|j| j.outcome.clone())
    }

    /// Cancel a job. Pre-dispatch jobs are removed from their (pending or
    /// ready) batch and terminalize immediately; running jobs are flagged
    /// and evicted at the next checkpoint boundary (the returned state is
    /// then still `Running`). Terminal jobs are left untouched.
    pub fn cancel(&self, id: JobId) -> Result<JobState, String> {
        let shared = &self.shared;
        let mut guard = shared.state.lock();
        let st = &mut *guard;
        let job = st.jobs.get(&id).ok_or_else(|| format!("no such job: {id}"))?;
        let (state, batch) = (job.state, job.batch);
        match state {
            s if s.is_terminal() => Ok(s),
            JobState::Running => {
                let job = st.jobs.get_mut(&id).expect("present");
                job.cancel_requested = true;
                job.detail = "cancel requested; evicts at next checkpoint".to_string();
                Ok(JobState::Running)
            }
            _ => {
                // Batched: preempt before dispatch.
                if let Some(b) = batch {
                    if !st.grouper.remove_job(b, id) {
                        // Already flushed: pull it out of the ready queue.
                        for rb in st.ready.iter_mut() {
                            if rb.id == b {
                                rb.jobs.retain(|j| *j != id);
                            }
                        }
                        st.ready.retain(|rb| !rb.jobs.is_empty());
                    }
                }
                transition(st, id, JobState::Cancelled, "cancelled before dispatch".into());
                if st.live == 0 {
                    shared.quiet.notify_all();
                }
                Ok(JobState::Cancelled)
            }
        }
    }

    /// Stop admitting, flush every pending batch, and block until all
    /// admitted jobs reach a terminal state (or `timeout` elapses). Returns
    /// true when the server went quiet in time.
    pub fn drain(&self, timeout: Duration) -> bool {
        let shared = &self.shared;
        let deadline = Instant::now() + timeout;
        let mut guard = shared.state.lock();
        guard.draining = true;
        let flushed = guard.grouper.flush_all();
        for f in flushed {
            guard.ready.push_back(ReadyBatch {
                id: f.batch.id,
                jobs: f.batch.jobs,
                reason: f.reason,
            });
        }
        shared.work.notify_all();
        while guard.live > 0 {
            if shared.quiet.wait_until(&mut guard, deadline).timed_out() {
                return guard.live == 0;
            }
        }
        true
    }

    /// Metrics snapshot as JSON.
    pub fn metrics_json(&self) -> String {
        let guard = self.shared.state.lock();
        guard.metrics.to_json(&jobs_by_state(&guard))
    }

    /// Metrics snapshot as Prometheus text: the serve counters followed by
    /// the daemon's process-wide phase timers (empty-but-well-formed when
    /// running with `XGYRO_OBS=0`).
    pub fn metrics_prom(&self) -> String {
        let mut text = {
            let guard = self.shared.state.lock();
            guard.metrics.to_prometheus(&jobs_by_state(&guard))
        };
        text.push_str(&xg_obs::expo::to_prometheus(xg_obs::Registry::global()));
        text
    }

    /// One-screen live view for `xgq top`: job-state counts, headline batch
    /// counters, and the daemon's per-phase wall-time table.
    pub fn top_text(&self) -> String {
        let (by_state, dispatched, saved) = {
            let guard = self.shared.state.lock();
            (
                jobs_by_state(&guard),
                guard.metrics.occupancy.values().sum::<u64>(),
                guard.metrics.cmat_saved_bytes,
            )
        };
        let mut s = String::from("jobs:");
        for (state, n) in &by_state {
            s.push_str(&format!(" {state}={n}"));
        }
        s.push('\n');
        s.push_str(&format!(
            "batches: dispatched={dispatched} cmat_saved_bytes={saved}\n"
        ));
        match xg_obs::expo::render_table(xg_obs::Registry::global()) {
            Some(table) => {
                s.push_str("phase timers (this daemon):\n");
                s.push_str(&table);
            }
            None => s.push_str(
                "phase timers: none recorded (daemon running with XGYRO_OBS=0?)\n",
            ),
        }
        s
    }

    /// Stop the service: never-dispatched jobs are cancelled, running
    /// batches are preempted at their next checkpoint boundary, and all
    /// threads are joined.
    pub fn shutdown(mut self) {
        let shared = self.shared.clone();
        {
            let mut guard = shared.state.lock();
            let st = &mut *guard;
            st.shutdown = true;
            st.draining = true;
            let pending: Vec<JobId> = st
                .grouper
                .flush_all()
                .into_iter()
                .flat_map(|f| f.batch.jobs)
                .chain(st.ready.drain(..).flat_map(|rb| rb.jobs))
                .collect();
            for id in pending {
                transition(st, id, JobState::Cancelled, "server shutdown".into());
            }
            if st.live == 0 {
                shared.quiet.notify_all();
            }
            shared.work.notify_all();
            shared.timer.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Live job counts per state, in [`JobState::ALL`] order.
fn jobs_by_state(st: &State) -> Vec<(JobState, usize)> {
    JobState::ALL
        .iter()
        .map(|s| (*s, st.jobs.values().filter(|j| j.state == *s).count()))
        .collect()
}

/// Admission checks that need no mutation: drain gate, deck validity,
/// grid compatibility, memory feasibility. Queue capacity is checked by
/// `submit` only (a dry run consumes no slot).
fn admit(shared: &Shared, st: &State, spec: &JobSpec) -> Result<(), AdmitError> {
    if st.draining || st.shutdown {
        return Err(AdmitError::Draining);
    }
    check_spec(&spec.input, spec.steps)?;
    // The deck must form a valid (k = 1) ensemble on the server's grid.
    EnsembleConfig::new(vec![spec.input.clone()], shared.cfg.grid).map_err(|e| match e {
        EnsembleError::BadGrid { reason } => AdmitError::OversizedGrid {
            reason: format!("deck does not fit the server grid: {reason}"),
        },
        other => AdmitError::InvalidDeck { reason: other.to_string() },
    })?;
    if st.grouper.k_cap_for(&spec.input) == 0 {
        return Err(AdmitError::OversizedGrid {
            reason: format!(
                "no ensemble of this deck fits {} node(s) of {} (per the memory budget)",
                shared.cfg.nodes, shared.cfg.machine.name
            ),
        });
    }
    Ok(())
}

/// Transition a job, enforcing the lifecycle graph, maintaining the
/// live-job count, and notifying subscribers.
fn transition(st: &mut State, id: JobId, to: JobState, detail: String) {
    let job = st.jobs.get_mut(&id).expect("job exists");
    assert!(
        job.state.can_transition(to),
        "illegal transition {} -> {to} for {id}",
        job.state
    );
    job.state = to;
    job.detail = detail.clone();
    emit(job, to, detail);
    if to.is_terminal() {
        st.live = st.live.checked_sub(1).expect("live-job count underflow");
    }
}

/// Deliver an event to the job's subscribers, dropping hung-up channels.
/// Terminal events also drop the subscriber list (hang-up signals "no more
/// events").
fn emit(job: &mut Job, state: JobState, detail: String) {
    let ev = JobEvent { job: job.id, state, detail };
    job.subscribers.retain(|tx| tx.send(ev.clone()).is_ok());
    if state.is_terminal() {
        job.subscribers.clear();
    }
}

/// The batcher thread: flush linger-expired batches to the ready queue.
fn batcher_loop(shared: &Shared) {
    let mut guard = shared.state.lock();
    loop {
        if guard.shutdown {
            return;
        }
        let expired = guard.grouper.expired(Instant::now());
        if !expired.is_empty() {
            for f in expired {
                guard.ready.push_back(ReadyBatch {
                    id: f.batch.id,
                    jobs: f.batch.jobs,
                    reason: f.reason,
                });
            }
            shared.work.notify_all();
            continue;
        }
        match guard.grouper.next_deadline() {
            Some(d) => {
                shared.timer.wait_until(&mut guard, d);
            }
            None => {
                // Nothing pending: sleep until a submit creates a batch.
                shared.timer.wait_for(&mut guard, Duration::from_secs(1));
            }
        }
    }
}

/// A worker thread: pop ready batches and execute them.
fn worker_loop(shared: &Shared) {
    loop {
        let rb = {
            let mut guard = shared.state.lock();
            loop {
                if guard.shutdown {
                    return;
                }
                if let Some(rb) = guard.ready.pop_front() {
                    break rb;
                }
                shared.work.wait(&mut guard);
            }
        };
        execute_batch(shared, rb);
    }
}

/// Run one batch as an XGYRO ensemble in `ckpt_every`-step segments,
/// applying cancellations (and shutdown) at checkpoint boundaries and
/// evicting faulted members without killing their batch-mates.
fn execute_batch(shared: &Shared, rb: ReadyBatch) {
    let grid = shared.cfg.grid;
    // Dispatch bookkeeping: transition members to Running, record queue
    // latency and occupancy, arm the chaos fault plan (first batch only).
    let (mut member_ids, mut inputs, steps_total, mut plan) = {
        let mut guard = shared.state.lock();
        let st = &mut *guard;
        let now = Instant::now();
        let mut inputs: Vec<CgyroInput> = Vec::new();
        let mut steps_total = 0;
        for id in &rb.jobs {
            let job = st.jobs.get_mut(id).expect("batched job exists");
            job.dispatched_at = Some(now);
            steps_total = job.spec.steps;
            inputs.push(job.spec.input.clone());
            // Microsecond resolution: under test configs dispatch latency
            // is routinely sub-millisecond, and ms-granular recording
            // rounded it all to zero (count > 0 with sum = 0).
            let lat_us = now.duration_since(job.submitted_at).as_micros() as u64;
            st.metrics.on_queue_latency_us(lat_us);
            transition(st, *id, JobState::Running, format!("{} (k={})", rb.id, rb.jobs.len()));
        }
        if rb.jobs.is_empty() {
            return;
        }
        st.metrics.on_dispatch(rb.jobs.len(), inputs[0].dims(), rb.reason);
        (rb.jobs.clone(), inputs, steps_total, st.fault_plan.take())
    };

    let mut checkpoint: Option<EnsembleCheckpoint> = None;
    let mut results: BTreeMap<JobId, JobOutcome> = BTreeMap::new();
    let mut done = 0usize;
    while done < steps_total && !member_ids.is_empty() {
        // Checkpoint boundary: apply cancellations (shutdown cancels all).
        let cancelled: Vec<usize> = {
            let guard = shared.state.lock();
            member_ids
                .iter()
                .enumerate()
                .filter(|(_, id)| guard.shutdown || guard.jobs[*id].cancel_requested)
                .map(|(pos, _)| pos)
                .collect()
        };
        for &pos in cancelled.iter().rev() {
            let id = member_ids.remove(pos);
            inputs.remove(pos);
            if let Some(cp) = checkpoint.take() {
                // Emptying the batch drops the checkpoint with it —
                // evict_member only refuses to evict the last member.
                checkpoint = cp.evict_member(pos).ok();
            }
            finish(shared, id, JobState::Cancelled, "preempted at checkpoint".into(), None);
        }
        if member_ids.is_empty() {
            return;
        }
        let cfg = match EnsembleConfig::new(inputs.clone(), grid) {
            Ok(c) => c,
            Err(e) => {
                fail_all(shared, &member_ids, &format!("ensemble rebuild failed: {e}"));
                return;
            }
        };
        let seg = shared.cfg.ckpt_every.min(steps_total - done);
        let out = run_xgyro_resilient_from(
            &cfg,
            checkpoint.take(),
            seg,
            seg,
            plan.take().unwrap_or_else(FaultPlan::new),
            shared.cfg.deadline,
        );
        match out {
            Ok(rec) => {
                // Fold the segment's communication traces into the
                // execution-phase breakdown before touching job states.
                shared.state.lock().metrics.on_batch_traces(&rec.outcome.traces);
                // Members evicted by faults terminalize as Failed; the
                // survivors carry on from the segment's checkpoint.
                for ev in &rec.events {
                    finish(
                        shared,
                        member_ids[ev.failed_member],
                        JobState::Failed,
                        format!("member evicted after fault: {}", ev.cause),
                        None,
                    );
                }
                let old_ids = member_ids.clone();
                member_ids = rec.surviving_members.iter().map(|&i| old_ids[i]).collect();
                inputs = rec.surviving_members.iter().map(|&i| inputs[i].clone()).collect();
                for s in &rec.outcome.sims {
                    results.insert(
                        old_ids[s.sim],
                        JobOutcome {
                            h: s.h.clone(),
                            diagnostics: s.diagnostics,
                            steps: done + seg,
                        },
                    );
                }
                checkpoint = Some(rec.checkpoint);
                done += seg;
            }
            Err(e) => {
                fail_all(shared, &member_ids, &format!("batch failed: {e}"));
                return;
            }
        }
    }
    for id in member_ids {
        let outcome = results.remove(&id);
        finish(shared, id, JobState::Done, "completed".into(), outcome);
    }
}

/// Terminalize one job (from `Running`) and wake drain waiters when the
/// server goes quiet.
fn finish(shared: &Shared, id: JobId, state: JobState, detail: String, outcome: Option<JobOutcome>) {
    let mut guard = shared.state.lock();
    let st = &mut *guard;
    st.jobs.get_mut(&id).expect("running job exists").outcome = outcome;
    transition(st, id, state, detail);
    if st.live == 0 {
        shared.quiet.notify_all();
    }
}

/// Fail every remaining member of a batch with the same cause.
fn fail_all(shared: &Shared, ids: &[JobId], detail: &str) {
    for id in ids {
        finish(shared, *id, JobState::Failed, detail.to_string(), None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_sim::CgyroInput;

    fn spec(input: CgyroInput, steps: usize, tag: &str) -> JobSpec {
        JobSpec { input, steps, tag: tag.to_string() }
    }

    #[test]
    fn a_full_batch_runs_to_done() {
        let server = CampaignServer::start(ServerConfig::local_test());
        let base = CgyroInput::test_small();
        let ids: Vec<JobId> = (0..3)
            .map(|i| {
                let input = base.with_gradients(1.0 + i as f64 * 0.5, 2.0);
                server.submit(spec(input, 20, &format!("j{i}"))).expect("admitted")
            })
            .collect();
        assert!(server.drain(Duration::from_secs(60)), "drain timed out");
        let statuses = server.list();
        assert_eq!(statuses.len(), 3);
        for s in &statuses {
            assert_eq!(s.state, JobState::Done, "{}: {}", s.id, s.detail);
            assert_eq!(s.batch, Some(BatchId(0)), "all three share one batch");
            assert!(s.queue_latency_ms.is_some());
        }
        for id in ids {
            let out = server.result(id).expect("outcome retained");
            assert_eq!(out.steps, 20);
        }
        let json = server.metrics_json();
        assert!(json.contains("\"k=3\": 1"), "occupancy histogram: {json}");
        server.shutdown();
    }

    #[test]
    fn linger_flushes_an_underfull_batch() {
        let mut cfg = ServerConfig::local_test();
        cfg.linger = Duration::from_millis(20);
        let server = CampaignServer::start(cfg);
        let id = server
            .submit(spec(CgyroInput::test_small(), 10, "solo"))
            .expect("admitted");
        // Wait for the batcher's linger flush before draining — an early
        // drain would flush the batch itself (reason "drain", not
        // "linger").
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.status(id).unwrap().state == JobState::Batched {
            assert!(Instant::now() < deadline, "linger flush never happened");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(server.drain(Duration::from_secs(60)));
        assert_eq!(server.status(id).unwrap().state, JobState::Done);
        let json = server.metrics_json();
        assert!(json.contains("\"linger\": 1"), "{json}");
        server.shutdown();
    }

    #[test]
    fn distinct_cmat_keys_form_distinct_batches() {
        let server = CampaignServer::start(ServerConfig::local_test());
        let base = CgyroInput::test_small();
        let mut hot = base.clone();
        hot.nu_ee *= 2.0;
        let a = server.submit(spec(base, 10, "a")).unwrap();
        let b = server.submit(spec(hot, 10, "b")).unwrap();
        let (ba, bb) = (
            server.status(a).unwrap().batch.unwrap(),
            server.status(b).unwrap().batch.unwrap(),
        );
        assert_ne!(ba, bb);
        assert!(server.drain(Duration::from_secs(60)));
        server.shutdown();
    }

    #[test]
    fn rejections_are_typed() {
        let mut cfg = ServerConfig::local_test();
        cfg.queue_capacity = 1;
        cfg.linger = Duration::from_secs(30); // keep the first job pending
        let server = CampaignServer::start(cfg);
        let base = CgyroInput::test_small();
        server.submit(spec(base.clone(), 10, "first")).unwrap();
        let err = server.submit(spec(base.clone(), 10, "second")).unwrap_err();
        assert_eq!(err.kind(), "queue-full");
        let mut bad = base.clone();
        bad.n_radial = 0;
        assert_eq!(server.submit(spec(bad, 10, "bad")).unwrap_err().kind(), "invalid-deck");
        assert_eq!(server.submit(spec(base, 7, "odd")).unwrap_err().kind(), "bad-steps");
        let json = server.metrics_json();
        assert!(json.contains("\"queue-full\": 1"), "{json}");
        server.shutdown();
    }

    #[test]
    fn cancel_before_dispatch_preempts_the_batch() {
        let mut cfg = ServerConfig::local_test();
        cfg.linger = Duration::from_secs(30);
        let server = CampaignServer::start(cfg);
        let id = server.submit(spec(CgyroInput::test_small(), 10, "doomed")).unwrap();
        assert_eq!(server.cancel(id).unwrap(), JobState::Cancelled);
        assert_eq!(server.status(id).unwrap().state, JobState::Cancelled);
        // Cancel is idempotent on terminal jobs.
        assert_eq!(server.cancel(id).unwrap(), JobState::Cancelled);
        assert!(server.drain(Duration::from_secs(5)), "nothing left to run");
        server.shutdown();
    }

    #[test]
    fn subscribe_streams_the_lifecycle() {
        let server = CampaignServer::start(ServerConfig::local_test());
        let base = CgyroInput::test_small();
        let id = server.submit(spec(base.with_gradients(1.0, 2.0), 10, "watched")).unwrap();
        let rx = server.subscribe(id).expect("job exists");
        assert!(server.drain(Duration::from_secs(60)));
        let states: Vec<JobState> = rx.iter().map(|e| e.state).collect();
        assert_eq!(states.first(), Some(&JobState::Batched), "snapshot first");
        assert_eq!(states.last(), Some(&JobState::Done));
        assert!(states.contains(&JobState::Running));
        server.shutdown();
    }

    #[test]
    fn dry_run_reports_key_and_placement_without_admitting() {
        let mut cfg = ServerConfig::local_test();
        cfg.linger = Duration::from_secs(30);
        let server = CampaignServer::start(cfg);
        let base = CgyroInput::test_small();
        let s = spec(base.clone(), 10, "probe");
        let (key, placement) = server.dry_run(&s).expect("valid");
        assert_eq!(key, base.cmat_key());
        assert!(matches!(placement, Placement::Opens { k_cap: 3 }));
        server.submit(s.clone()).unwrap();
        let (_, placement) = server.dry_run(&s).expect("valid");
        assert!(
            matches!(placement, Placement::Joins { occupancy: 1, .. }),
            "{placement:?}"
        );
        assert_eq!(server.list().len(), 1, "dry runs admit nothing");
        server.shutdown();
    }

    #[test]
    fn faulted_member_fails_without_killing_batch_mates() {
        let mut cfg = ServerConfig::local_test();
        // One injected crash on rank 2 (a rank of member 1 on the 2x1
        // grid) early in the first segment of the first batch.
        cfg.fault_plan = Some(FaultPlan::crash(2, 4));
        cfg.workers = 1;
        let server = CampaignServer::start(cfg);
        let base = CgyroInput::test_small();
        let ids: Vec<JobId> = (0..3)
            .map(|i| {
                server
                    .submit(spec(base.with_gradients(1.0 + i as f64, 2.0), 20, "f"))
                    .unwrap()
            })
            .collect();
        assert!(server.drain(Duration::from_secs(60)));
        let states: Vec<JobState> =
            ids.iter().map(|id| server.status(*id).unwrap().state).collect();
        assert_eq!(states.iter().filter(|s| **s == JobState::Failed).count(), 1);
        assert_eq!(states.iter().filter(|s| **s == JobState::Done).count(), 2);
        let failed = ids[states.iter().position(|s| *s == JobState::Failed).unwrap()];
        assert!(server.status(failed).unwrap().detail.contains("evicted"));
        server.shutdown();
    }
}
