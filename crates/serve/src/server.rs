//! The campaign server: admission → grouping → bounded workers → results.
//!
//! Threads:
//!
//! * **submitters** (callers of [`CampaignServer::submit`]) run admission
//!   and grouper placement synchronously under the state lock — a client
//!   holds a job id only for work the server has really accepted;
//! * one **batcher** thread sleeps until the earliest linger deadline and
//!   flushes expired underfull batches to the ready queue;
//! * `workers` **worker** threads pop ready batches and execute each as one
//!   XGYRO ensemble through [`xgyro_core::run_xgyro_resilient_from`] in
//!   bounded segments (`ckpt_every` steps), so cancellations are applied at
//!   checkpoint boundaries and a faulted member is evicted without killing
//!   its batch-mates.
//!
//! All state lives behind one mutex; nothing blocks while holding it except
//! condition-variable waits. Simulation segments run outside the lock.

use crate::admission::{check_spec, AdmitError};
use crate::artifacts::{self, ArtifactConfig, PublishContext};
use crate::batcher::{FlushReason, Grouper, GrouperConfig, Placement};
use crate::job::{BatchId, Job, JobEvent, JobId, JobOutcome, JobSpec, JobState, JobStatus};
use crate::journal::{self, Journal, JournalConfig, JournalRecord};
use crate::metrics::Metrics;
use crate::sched::DispatchQueue;
use crate::tenant::{TenantDirectory, TenantUsage};
use xg_artifact::{deck_hash, ArtifactStore, DeckHash, GcReport, Manifest, StoreStats};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xg_comm::FaultPlan;
use xg_costmodel::MachineModel;
use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;
use xgyro_core::{run_xgyro_resilient_from, EnsembleCheckpoint, EnsembleConfig, EnsembleError};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Per-simulation process grid batches execute on (the thread-backed
    /// substrate's analogue of the per-sim MPI decomposition).
    pub grid: ProcGrid,
    /// Operator cap on batch size; the effective cap may be lower where the
    /// memory budget binds ([`xg_cluster::max_feasible_k`]).
    pub k_max: usize,
    /// How long an underfull batch waits for key-mates before flushing.
    pub linger: Duration,
    /// Bound on live (non-terminal) jobs — admission backpressure.
    pub queue_capacity: usize,
    /// Worker threads (concurrently running batches).
    pub workers: usize,
    /// Segment length in steps: cancellations and evictions apply at these
    /// checkpoint boundaries.
    pub ckpt_every: usize,
    /// Deadline bounding every blocking communication wait.
    pub deadline: Duration,
    /// Modeled node allocation backing the memory budget.
    pub nodes: usize,
    /// Machine model pricing the memory budget.
    pub machine: MachineModel,
    /// Fault-injection chaos hook: consumed by the first batch executed
    /// (None for production operation).
    pub fault_plan: Option<FaultPlan>,
    /// Durability journal configuration. `None` runs journal-less (the
    /// pre-journal behaviour: a crash loses everything in memory); `Some`
    /// makes every lifecycle transition a persisted, replayable record and
    /// replays whatever a previous life left in the directory at startup.
    pub journal: Option<JournalConfig>,
    /// Content-addressed artifact store configuration. `None` runs
    /// cache-less; `Some` publishes every completed batch member and serves
    /// re-submitted byte-identical decks straight to `Done`.
    pub artifacts: Option<ArtifactConfig>,
    /// Tenant roster: per-tenant weights, priorities, quotas, and secrets.
    /// The default open directory accepts any well-formed tenant name,
    /// unquota'd at weight 1 (see [`TenantDirectory`]).
    pub tenants: TenantDirectory,
    /// DRR quantum for the fair-share dispatch queue: work units credited
    /// per round-robin visit per unit of tenant weight.
    pub quantum: u64,
    /// Terminal jobs retained in memory (count window): once more than
    /// this many jobs are terminal, the oldest are evicted together with
    /// their idempotency-token dedup entries — aligned with journal
    /// compaction, which forgets terminal jobs on the same principle.
    pub retain_jobs: usize,
    /// Terminal jobs older than this are evicted (age window).
    pub retain_age: Duration,
}

impl ServerConfig {
    /// A configuration sized for tests and the CI smoke run: tiny decks,
    /// 3 modeled small-cluster nodes (12 ranks — the smallest allocation
    /// whose memory budget admits `k = 3` for the small test deck), short
    /// linger.
    pub fn local_test() -> Self {
        Self {
            grid: ProcGrid::new(2, 1),
            k_max: 3,
            linger: Duration::from_millis(50),
            queue_capacity: 64,
            workers: 2,
            ckpt_every: 10,
            deadline: Duration::from_secs(10),
            nodes: 3,
            machine: MachineModel::small_cluster(),
            fault_plan: None,
            journal: None,
            artifacts: None,
            tenants: TenantDirectory::open(),
            quantum: crate::sched::DEFAULT_QUANTUM,
            retain_jobs: 4096,
            retain_age: Duration::from_secs(3600),
        }
    }
}

/// What a cache consult at admission would do for a deck, as reported by
/// [`CampaignServer::dry_run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// No artifact store is configured.
    Off,
    /// A manifest for this deck hash is published: submitting would be
    /// served from the store without executing any steps.
    Hit,
    /// The store has no entry for this deck hash.
    Miss,
}

impl std::fmt::Display for CacheStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheStatus::Off => "off",
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
        })
    }
}

/// Everything [`CampaignServer::dry_run`] computes about a submission
/// without admitting it.
#[derive(Clone, Debug)]
pub struct DryRun {
    /// The deck's cmat sharing key.
    pub cmat_key: u64,
    /// The deck's canonical semantic identity.
    pub deck_hash: DeckHash,
    /// What the artifact store would do with this submission.
    pub cache: CacheStatus,
    /// Where the grouper would place the job right now.
    pub placement: Placement,
}

/// What startup journal replay reconstructed. Retrieve with
/// [`CampaignServer::recovery_report`]; the same numbers are exported under
/// the metrics `recovery` block and the `xgserve_replay_*` families.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Journal records replayed.
    pub replayed_records: u64,
    /// Jobs restored into the job table (terminal and live).
    pub restored_jobs: u64,
    /// Running batches rebuilt and queued for resumption.
    pub resumed_batches: u64,
    /// Waiting jobs re-admitted through the grouper.
    pub readmitted_jobs: u64,
    /// Torn-tail bytes truncated during replay.
    pub torn_bytes: u64,
    /// Wall time the replay took, microseconds.
    pub replay_us: u64,
    /// Human-readable warnings (torn tails, dropped checkpoints, …).
    pub warnings: Vec<String>,
}

/// Resume context for a batch rebuilt from the journal.
#[derive(Debug)]
struct ResumeState {
    /// Decoded, validated ensemble checkpoint (None restarts from step 0).
    checkpoint: Option<EnsembleCheckpoint>,
    /// Steps already completed at that checkpoint.
    done: usize,
    /// Next checkpoint sequence number to journal.
    next_seq: u64,
}

/// A flushed batch waiting for a worker.
#[derive(Debug)]
struct ReadyBatch {
    id: BatchId,
    jobs: Vec<JobId>,
    reason: FlushReason,
    /// Set for batches rebuilt by journal replay and for batches
    /// preempted at a checkpoint boundary.
    resume: Option<ResumeState>,
    /// The tenant every member belongs to (batches are tenant-pure).
    tenant: String,
    /// The tenant's priority lane at enqueue time.
    priority: u8,
    /// Modeled node allocation this batch occupies while executing — the
    /// smallest feasible world for its deck and size, so several worlds
    /// run concurrently inside the server's node budget.
    nodes: usize,
}

#[derive(Debug)]
struct State {
    jobs: BTreeMap<JobId, Job>,
    next_job: u64,
    grouper: Grouper,
    ready: DispatchQueue<ReadyBatch>,
    metrics: Metrics,
    live: usize,
    draining: bool,
    shutdown: bool,
    fault_plan: Option<FaultPlan>,
    journal: Option<Journal>,
    /// Idempotency token → job id (rebuilt from the journal on restart).
    tokens: BTreeMap<String, JobId>,
    recovery: RecoveryReport,
    /// Modeled nodes occupied by currently executing worlds.
    nodes_in_use: usize,
    /// Workers parked waiting for a dispatchable batch.
    idle_workers: usize,
    /// Live (non-terminal) resource usage per tenant, checked against the
    /// roster's quotas at admission.
    tenant_usage: BTreeMap<String, TenantUsage>,
    /// Terminal jobs in the order they terminalized, for the bounded
    /// retention window.
    terminal_order: VecDeque<(JobId, Instant)>,
}

struct Shared {
    cfg: ServerConfig,
    /// The artifact store, when configured. Its methods take `&self` and
    /// commit atomically, so it lives outside the state mutex.
    store: Option<ArtifactStore>,
    state: Mutex<State>,
    /// Workers wait here for ready batches.
    work: Condvar,
    /// The batcher thread waits here for its next linger deadline.
    timer: Condvar,
    /// Drain/join waits here for the live-job count to hit zero.
    quiet: Condvar,
}

/// The campaign service. Call [`CampaignServer::drain`] then
/// [`CampaignServer::shutdown`] for an orderly stop; a bare `shutdown`
/// cancels never-dispatched jobs and preempts running batches at their next
/// checkpoint boundary.
pub struct CampaignServer {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl CampaignServer {
    /// Start the service: one batcher thread plus `cfg.workers` workers.
    ///
    /// When a journal is configured, whatever a previous life left in the
    /// journal directory is replayed first: terminal jobs are restored with
    /// their result summaries, waiting jobs re-admitted through the normal
    /// grouping path, and running batches queued to resume from their last
    /// journaled checkpoint.
    ///
    /// # Panics
    /// When the journal directory cannot be opened — a daemon that cannot
    /// persist its promises must not come up pretending it can.
    pub fn start(cfg: ServerConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(cfg.ckpt_every >= 1, "segment length must be positive");
        let grouper = Grouper::new(GrouperConfig {
            k_max: cfg.k_max,
            linger: cfg.linger,
            nodes: cfg.nodes,
            machine: cfg.machine.clone(),
        });
        let fault_plan = cfg.fault_plan.clone();
        let mut st = State {
            jobs: BTreeMap::new(),
            next_job: 0,
            grouper,
            ready: DispatchQueue::new(cfg.quantum),
            metrics: Metrics::default(),
            live: 0,
            draining: false,
            shutdown: false,
            fault_plan,
            journal: None,
            tokens: BTreeMap::new(),
            recovery: RecoveryReport::default(),
            nodes_in_use: 0,
            idle_workers: 0,
            tenant_usage: BTreeMap::new(),
            terminal_order: VecDeque::new(),
        };
        if let Some(jcfg) = cfg.journal.clone() {
            let (j, replay) = Journal::open(jcfg)
                .unwrap_or_else(|e| panic!("cannot open journal in {:?}: {e}", cfg.journal));
            st.journal = Some(j);
            replay_into(&cfg, &mut st, replay);
            let rec = st.recovery.clone();
            st.metrics.set_recovery(&rec);
        }
        // Same contract as the journal: a daemon configured to cache results
        // must not come up unable to keep that promise.
        let store = cfg.artifacts.as_ref().map(|a| {
            ArtifactStore::open(&a.dir)
                .unwrap_or_else(|e| panic!("cannot open artifact store in {:?}: {e}", a.dir))
        });
        let shared = Arc::new(Shared {
            cfg,
            store,
            state: Mutex::new(st),
            work: Condvar::new(),
            timer: Condvar::new(),
            quiet: Condvar::new(),
        });
        let mut threads = Vec::new();
        {
            let s = shared.clone();
            threads.push(std::thread::spawn(move || batcher_loop(&s)));
        }
        for _ in 0..shared.cfg.workers {
            let s = shared.clone();
            threads.push(std::thread::spawn(move || worker_loop(&s)));
        }
        Self { shared, threads }
    }

    /// Submit a job. On success the job is already placed in a batch
    /// (state [`JobState::Batched`]); on rejection nothing was admitted.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, AdmitError> {
        self.submit_with_token(spec, None).map(|(id, _)| id)
    }

    /// Submit with an optional client-supplied idempotency token. A token
    /// already bound to a job (in this life or a journaled previous one)
    /// returns that job's id with `true` ("duplicate") instead of
    /// enqueueing again — so a client retrying a SUBMIT whose response was
    /// lost can never double-run work.
    ///
    /// When a journal is configured, the `Submitted` record is committed
    /// (and fsynced, per policy) *before* any server state changes; if the
    /// journal refuses, the submission is shed with
    /// [`AdmitError::JournalBackpressure`] and nothing was admitted.
    pub fn submit_with_token(
        &self,
        spec: JobSpec,
        token: Option<&str>,
    ) -> Result<(JobId, bool), AdmitError> {
        self.submit_authed(spec, token, None)
    }

    /// Submit with an idempotency token and a tenant auth secret. The
    /// spec's `tenant` field is the *claim*; it is resolved against the
    /// daemon's [`TenantDirectory`] (name validity, roster membership, the
    /// `auth` secret when the roster demands one) and the job is admitted
    /// under the resolved identity — which also gates the tenant's
    /// live-job and live-byte quotas.
    pub fn submit_authed(
        &self,
        mut spec: JobSpec,
        token: Option<&str>,
        auth: Option<&str>,
    ) -> Result<(JobId, bool), AdmitError> {
        let shared = &self.shared;
        let mut guard = shared.state.lock();
        let st = &mut *guard;
        let token: &str = token.unwrap_or("");
        if !token.is_empty() {
            if let Some(id) = st.tokens.get(token) {
                return Ok((*id, true));
            }
        }
        // Identity first: quotas, fair share, and attribution all hang off
        // the resolved tenant, not the raw claim.
        let tenant = match shared.cfg.tenants.resolve(&spec.tenant, auth.unwrap_or("")) {
            Ok(t) => t,
            Err(e) => {
                let e = AdmitError::TenantDenied { reason: e.to_string() };
                st.metrics.on_reject(&e);
                return Err(e);
            }
        };
        spec.tenant = tenant.name.clone();
        if let Err(e) = admit(shared, st, &spec) {
            st.metrics.on_reject(&e);
            return Err(e);
        }
        if st.live >= shared.cfg.queue_capacity {
            let e = AdmitError::QueueFull { capacity: shared.cfg.queue_capacity };
            st.metrics.on_reject(&e);
            return Err(e);
        }
        // Artifact-store consult: a deck already published (by this life or
        // any previous one) is served straight to Done — no batch, no
        // worker, not one simulation step.
        if let Some(store) = shared.store.as_ref() {
            let dh = deck_hash(&spec.input, spec.steps);
            match store.lookup(dh) {
                Ok(Some(manifest)) => {
                    return serve_cache_hit(shared, st, spec, token, dh, &manifest);
                }
                Ok(None) => {
                    st.metrics.on_cache_miss();
                    xg_obs::record_cache_miss();
                }
                Err(e) => {
                    // A corrupt store entry must not block admission: count
                    // a miss and run the job for real.
                    st.metrics.on_cache_miss();
                    xg_obs::record_cache_miss();
                    eprintln!("xg-serve: artifact lookup for {dh} failed: {e}");
                }
            }
        }
        // Per-tenant quotas, checked after the cache consult — a hit is
        // born terminal and never holds live resources, so it is served
        // even to a tenant at its ceiling.
        let deck = xg_sim::write_deck(&spec.input);
        let deck_bytes = deck.len() as u64;
        {
            let usage = st.tenant_usage.get(&tenant.name).copied().unwrap_or_default();
            let quota = match (tenant.max_live_jobs, tenant.max_live_bytes) {
                (Some(maxj), _) if usage.live_jobs + 1 > maxj => {
                    Some(("jobs", usage.live_jobs as u64 + 1, maxj as u64))
                }
                (_, Some(maxb)) if usage.live_bytes + deck_bytes > maxb => {
                    Some(("bytes", usage.live_bytes + deck_bytes, maxb))
                }
                _ => None,
            };
            if let Some((resource, would_use, limit)) = quota {
                let e = AdmitError::QuotaExceeded {
                    tenant: tenant.name.clone(),
                    resource,
                    would_use,
                    limit,
                };
                st.metrics.on_reject(&e);
                return Err(e);
            }
        }
        let id = JobId(st.next_job);
        let submitted_unix_us = unix_us();
        // Journal the admission BEFORE mutating any state: the client must
        // never hold an id for a job the next life cannot replay. On
        // journal failure nothing was admitted — typed backpressure, not
        // unbounded unjournaled growth.
        if let Some(j) = st.journal.as_mut() {
            let rec = JournalRecord::Submitted {
                job: id,
                token: token.to_string(),
                deck_hash: journal::fnv1a(deck.as_bytes()),
                deck,
                steps: spec.steps as u64,
                tag: spec.tag.clone(),
                tenant: spec.tenant.clone(),
                submitted_unix_us,
            };
            if let Err(e) = j.append(&rec) {
                let e = AdmitError::JournalBackpressure { reason: e.to_string() };
                st.metrics.on_reject(&e);
                return Err(e);
            }
            xg_obs::record_journal_append();
        }
        st.next_job += 1;
        let (batch, flushed) = st.grouper.place(id, &spec, Instant::now());
        let cmat_key = spec.input.cmat_key();
        // Queued → Batched happens atomically inside submit (placement is
        // synchronous), so the job is born already batched; a subscriber's
        // initial snapshot covers the transition.
        st.jobs.insert(
            id,
            Job {
                id,
                spec,
                state: JobState::Batched,
                cmat_key,
                batch: Some(batch),
                detail: batch.to_string(),
                cancel_requested: false,
                submitted_at: Instant::now(),
                dispatched_at: None,
                outcome: None,
                token: (!token.is_empty()).then(|| token.to_string()),
                deck_bytes,
                restored_summary: None,
                subscribers: Vec::new(),
            },
        );
        if !token.is_empty() {
            st.tokens.insert(token.to_string(), id);
        }
        st.live += 1;
        let usage = st.tenant_usage.entry(tenant.name.clone()).or_default();
        usage.live_jobs += 1;
        usage.live_bytes += deck_bytes;
        st.metrics.on_submit();
        st.metrics.on_tenant_submit(&tenant.name);
        journal_append(st, &JournalRecord::Batched { job: id, batch });
        if let Some(f) = flushed {
            enqueue_ready(&shared.cfg, st, f.batch.id, f.batch.jobs, f.reason, None);
            shared.work.notify_all();
        }
        // A new batch may have created the earliest linger deadline.
        shared.timer.notify_one();
        Ok((id, false))
    }

    /// Dry-run placement: the deck's cmat key, canonical deck hash, cache
    /// status, and where the job would land right now — computed by the
    /// same admission checks, cache consult, and grouper code path as
    /// [`CampaignServer::submit`], without admitting anything (the cache
    /// probe does not even refresh the entry's LRU access time).
    pub fn dry_run(&self, spec: &JobSpec) -> Result<DryRun, AdmitError> {
        let guard = self.shared.state.lock();
        admit(&self.shared, &guard, spec)?;
        let dh = deck_hash(&spec.input, spec.steps);
        let cache = match self.shared.store.as_ref() {
            None => CacheStatus::Off,
            Some(s) if s.contains(dh) => CacheStatus::Hit,
            Some(_) => CacheStatus::Miss,
        };
        // Normalize an empty tenant claim the way admission would, so the
        // predicted placement matches what a real submit gets.
        let mut probe = spec.clone();
        if probe.tenant.is_empty() {
            probe.tenant = crate::tenant::DEFAULT_TENANT.to_string();
        }
        Ok(DryRun {
            cmat_key: spec.input.cmat_key(),
            deck_hash: dh,
            cache,
            placement: guard.grouper.would_join(&probe),
        })
    }

    /// Fetch a published manifest as its canonical JSON. `Ok(None)` is a
    /// clean miss; `Err` means no store is configured or the entry is
    /// corrupt.
    pub fn artifact_fetch(&self, hash: DeckHash) -> Result<Option<String>, String> {
        let store = self.store_or_err()?;
        match store.lookup(hash) {
            Ok(m) => Ok(m.map(|m| m.to_json())),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Field-level diff of two published manifests: the names of every
    /// field (besides the publication timestamp) where they disagree.
    pub fn artifact_diff(
        &self,
        a: DeckHash,
        b: DeckHash,
    ) -> Result<Vec<&'static str>, String> {
        let store = self.store_or_err()?;
        let load = |h: DeckHash| -> Result<Manifest, String> {
            store
                .lookup(h)
                .map_err(|e| e.to_string())?
                .ok_or_else(|| format!("no manifest for {h}"))
        };
        Ok(load(a)?.diff(&load(b)?))
    }

    /// Run retention GC down to `budget_bytes` (pinned manifests and their
    /// objects are never evicted).
    pub fn artifact_gc(&self, budget_bytes: u64) -> Result<GcReport, String> {
        self.store_or_err()?.gc(budget_bytes).map_err(|e| e.to_string())
    }

    /// Pin (or unpin) a manifest so GC never evicts it — the golden-result
    /// mechanism the CI replay job leans on.
    pub fn artifact_pin(&self, hash: DeckHash, pinned: bool) -> Result<(), String> {
        let store = self.store_or_err()?;
        if pinned { store.pin(hash) } else { store.unpin(hash) }.map_err(|e| e.to_string())
    }

    /// Store occupancy counters (`None` when running cache-less).
    pub fn artifact_stats(&self) -> Option<StoreStats> {
        self.shared.store.as_ref().and_then(|s| s.stats().ok())
    }

    fn store_or_err(&self) -> Result<&ArtifactStore, String> {
        self.shared
            .store
            .as_ref()
            .ok_or_else(|| "no artifact store configured (start xgqueued with --artifacts)".into())
    }

    /// Current status of one job.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.shared.state.lock().jobs.get(&id).map(Job::status)
    }

    /// Status of every job, in submission order.
    pub fn list(&self) -> Vec<JobStatus> {
        self.shared.state.lock().jobs.values().map(Job::status).collect()
    }

    /// Subscribe to a job's state changes. The current state is delivered
    /// immediately (so subscribing after a transition cannot miss it);
    /// subsequent transitions stream until the job reaches a terminal
    /// state, after which the channel hangs up.
    pub fn subscribe(&self, id: JobId) -> Option<mpsc::Receiver<JobEvent>> {
        let mut guard = self.shared.state.lock();
        let job = guard.jobs.get_mut(&id)?;
        let (tx, rx) = mpsc::channel();
        let _ = tx.send(JobEvent { job: id, state: job.state, detail: job.detail.clone() });
        if !job.state.is_terminal() {
            job.subscribers.push(tx);
        }
        Some(rx)
    }

    /// The final output of a `Done` job. Jobs that finished before a
    /// restart have only their journaled summary (the tensor died with the
    /// old process) — see [`CampaignServer::result_summary`].
    pub fn result(&self, id: JobId) -> Option<JobOutcome> {
        self.shared.state.lock().jobs.get(&id).and_then(|j| j.outcome.clone())
    }

    /// Result summary `(steps, h_hash, diag_bits)` of a `Done` job: the
    /// FNV-1a hash of the final distribution's little-endian bytes plus the
    /// exact `f64::to_bits` of the four diagnostics. Computed from the live
    /// outcome when present, from the journaled summary for jobs restored
    /// after a restart — identical either way, which is what lets the
    /// crash-recovery CI job assert bitwise-identical results across a
    /// `kill -9`.
    pub fn result_summary(&self, id: JobId) -> Option<(u64, u64, [u64; 4])> {
        let guard = self.shared.state.lock();
        let j = guard.jobs.get(&id)?;
        if j.state != JobState::Done {
            return None;
        }
        j.outcome.as_ref().map(outcome_summary).or(j.restored_summary)
    }

    /// What startup journal replay reconstructed (all-zero when running
    /// journal-less or from an empty directory).
    pub fn recovery_report(&self) -> RecoveryReport {
        self.shared.state.lock().recovery.clone()
    }

    /// Cancel a job. Pre-dispatch jobs are removed from their (pending or
    /// ready) batch and terminalize immediately; running jobs are flagged
    /// and evicted at the next checkpoint boundary (the returned state is
    /// then still `Running`). Terminal jobs are left untouched.
    pub fn cancel(&self, id: JobId) -> Result<JobState, String> {
        let shared = &self.shared;
        let mut guard = shared.state.lock();
        let st = &mut *guard;
        let job = st.jobs.get(&id).ok_or_else(|| format!("no such job: {id}"))?;
        let (state, batch) = (job.state, job.batch);
        match state {
            s if s.is_terminal() => Ok(s),
            JobState::Running => {
                let job = st.jobs.get_mut(&id).expect("present");
                job.cancel_requested = true;
                job.detail = "cancel requested; evicts at next checkpoint".to_string();
                Ok(JobState::Running)
            }
            _ => {
                // Batched: preempt before dispatch.
                if let Some(b) = batch {
                    if !st.grouper.remove_job(b, id) {
                        // Already flushed: pull it out of the ready queue
                        // (an emptied batch is dropped outright).
                        st.ready.retain(|rb| {
                            if rb.id == b {
                                rb.jobs.retain(|j| *j != id);
                            }
                            !rb.jobs.is_empty()
                        });
                    }
                }
                transition(st, id, JobState::Cancelled, "cancelled before dispatch".into());
                if st.live == 0 {
                    shared.quiet.notify_all();
                }
                Ok(JobState::Cancelled)
            }
        }
    }

    /// Stop admitting, flush every pending batch, and block until all
    /// admitted jobs reach a terminal state (or `timeout` elapses). Returns
    /// true when the server went quiet in time.
    pub fn drain(&self, timeout: Duration) -> bool {
        let shared = &self.shared;
        let deadline = Instant::now() + timeout;
        let mut guard = shared.state.lock();
        guard.draining = true;
        let flushed = guard.grouper.flush_all();
        {
            let st = &mut *guard;
            for f in flushed {
                enqueue_ready(&shared.cfg, st, f.batch.id, f.batch.jobs, f.reason, None);
            }
        }
        shared.work.notify_all();
        while guard.live > 0 {
            if shared.quiet.wait_until(&mut guard, deadline).timed_out() {
                return guard.live == 0;
            }
        }
        true
    }

    /// Metrics snapshot as JSON.
    pub fn metrics_json(&self) -> String {
        let guard = self.shared.state.lock();
        let (m, by_state) = metrics_snapshot(&guard);
        m.to_json(&by_state)
    }

    /// Metrics snapshot as Prometheus text: the serve counters followed by
    /// the daemon's process-wide phase timers (empty-but-well-formed when
    /// running with `XGYRO_OBS=0`).
    pub fn metrics_prom(&self) -> String {
        let mut text = {
            let guard = self.shared.state.lock();
            let (m, by_state) = metrics_snapshot(&guard);
            m.to_prometheus(&by_state)
        };
        text.push_str(&xg_obs::expo::to_prometheus(xg_obs::Registry::global()));
        text
    }

    /// One-screen live view for `xgq top`: job-state counts, headline batch
    /// counters, per-tenant accounting, and the daemon's per-phase
    /// wall-time table.
    pub fn top_text(&self) -> String {
        let (by_state, dispatched, saved, tenant_lines) = {
            let guard = self.shared.state.lock();
            let (m, _) = metrics_snapshot(&guard);
            let tenant_lines: Vec<String> = m
                .tenants
                .iter()
                .map(|(name, t)| {
                    format!(
                        "tenant {name}: submitted={} done={} work_done={} live_jobs={} \
                         live_bytes={} preemptions={}",
                        t.submitted, t.done, t.work_done, t.live_jobs, t.live_bytes,
                        t.preemptions,
                    )
                })
                .collect();
            (
                jobs_by_state(&guard),
                guard.metrics.occupancy.values().sum::<u64>(),
                guard.metrics.cmat_saved_bytes,
                tenant_lines,
            )
        };
        let mut s = String::from("jobs:");
        for (state, n) in &by_state {
            s.push_str(&format!(" {state}={n}"));
        }
        s.push('\n');
        s.push_str(&format!(
            "batches: dispatched={dispatched} cmat_saved_bytes={saved}\n"
        ));
        for line in &tenant_lines {
            s.push_str(line);
            s.push('\n');
        }
        match xg_obs::expo::render_table(xg_obs::Registry::global()) {
            Some(table) => {
                s.push_str("phase timers (this daemon):\n");
                s.push_str(&table);
            }
            None => s.push_str(
                "phase timers: none recorded (daemon running with XGYRO_OBS=0?)\n",
            ),
        }
        s
    }

    /// Stop the service: never-dispatched jobs are cancelled, running
    /// batches are preempted at their next checkpoint boundary, and all
    /// threads are joined.
    pub fn shutdown(mut self) {
        let shared = self.shared.clone();
        {
            let mut guard = shared.state.lock();
            let st = &mut *guard;
            st.shutdown = true;
            st.draining = true;
            let pending: Vec<JobId> = st
                .grouper
                .flush_all()
                .into_iter()
                .flat_map(|f| f.batch.jobs)
                .chain(st.ready.drain_all().into_iter().flat_map(|rb| rb.jobs))
                .collect();
            for id in pending {
                transition(st, id, JobState::Cancelled, "server shutdown".into());
            }
            if st.live == 0 {
                shared.quiet.notify_all();
            }
            shared.work.notify_all();
            shared.timer.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Live job counts per state, in [`JobState::ALL`] order.
fn jobs_by_state(st: &State) -> Vec<(JobState, usize)> {
    JobState::ALL
        .iter()
        .map(|s| (*s, st.jobs.values().filter(|j| j.state == *s).count()))
        .collect()
}

/// Metrics clone with fresh journal stats and per-tenant usage gauges
/// folded in, plus the state-count table — one consistent snapshot under
/// the caller's lock.
fn metrics_snapshot(st: &State) -> (Metrics, Vec<(JobState, usize)>) {
    let mut m = st.metrics.clone();
    if let Some(j) = &st.journal {
        m.set_journal_stats(j.stats());
    }
    m.set_tenant_usage(&st.tenant_usage);
    m.nodes_in_use = st.nodes_in_use as u64;
    (m, jobs_by_state(st))
}

/// Price and enqueue a flushed batch into the fair-share dispatch queue.
/// The batch's node ask is the smallest feasible world for its deck and
/// size ([`xg_cluster::min_nodes_unbalanced`]); its fair-share cost is its
/// member-steps of simulation work.
fn enqueue_ready(
    cfg: &ServerConfig,
    st: &mut State,
    id: BatchId,
    jobs: Vec<JobId>,
    reason: FlushReason,
    resume: Option<ResumeState>,
) {
    if jobs.is_empty() {
        return;
    }
    let (tenant, steps, nodes) = {
        let head = &st.jobs[&jobs[0]];
        let nodes = batch_nodes(cfg, &head.spec.input, jobs.len());
        (head.spec.tenant.clone(), head.spec.steps, nodes)
    };
    let (weight, priority) = tenant_sched_params(cfg, &tenant);
    let cost = jobs.len() as u64 * steps as u64;
    st.ready.push(
        &tenant,
        weight,
        priority,
        cost,
        ReadyBatch { id, jobs, reason, resume, tenant: tenant.clone(), priority, nodes },
    );
}

/// Modeled node allocation for one executing world: the smallest node
/// count whose memory budget fits a `k`-member ensemble of this deck,
/// clamped to the server's whole allocation (admission guarantees at
/// least `k = 1` fits it).
fn batch_nodes(cfg: &ServerConfig, input: &CgyroInput, k: usize) -> usize {
    xg_cluster::min_nodes_unbalanced(input, k, &cfg.machine, cfg.nodes)
        .map_or(cfg.nodes, |p| p.nodes)
}

/// The roster's scheduling parameters for a tenant; unlisted tenants (open
/// mode) run at weight 1 in the base priority lane.
fn tenant_sched_params(cfg: &ServerConfig, tenant: &str) -> (u32, u8) {
    cfg.tenants
        .get(tenant)
        .map_or((crate::tenant::DEFAULT_WEIGHT, 0), |t| (t.weight, t.priority))
}

/// Enforce the terminal-retention window: evict the oldest terminal jobs
/// beyond the count bound or past the age bound, dropping each one's
/// idempotency-token dedup entry with it. This mirrors journal compaction
/// (closed segments forget terminal jobs too), so what a restart would not
/// replay, the live table forgets on the same schedule — a retained id
/// keeps `RESULT` and token dedup working; an evicted one answers
/// not-found exactly as it would after a restart.
fn evict_terminals(st: &mut State, retain_jobs: usize, retain_age: Duration, now: Instant) {
    let mut evicted = 0u64;
    while let Some(&(id, at)) = st.terminal_order.front() {
        let over_count = st.terminal_order.len() > retain_jobs;
        let over_age = now.saturating_duration_since(at) >= retain_age;
        if !over_count && !over_age {
            break;
        }
        st.terminal_order.pop_front();
        let evictable = st.jobs.get(&id).is_some_and(|j| j.state.is_terminal());
        if evictable {
            if let Some(job) = st.jobs.remove(&id) {
                if let Some(tok) = &job.token {
                    if st.tokens.get(tok) == Some(&id) {
                        st.tokens.remove(tok);
                    }
                }
                evicted += 1;
            }
        }
    }
    if evicted > 0 {
        st.metrics.on_terminal_evicted(evicted);
    }
}

/// Wall-clock µs since the Unix epoch (0 if the clock predates it).
fn unix_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Best-effort journal append for post-admission lifecycle records. Only
/// the `Submitted` record is a hard durability contract (its failure fails
/// the submit with typed backpressure); the rest degrade gracefully — a
/// refused append is counted in the journal's `dropped` stat, and replay's
/// tolerant fold reconstructs what it can from whatever did land.
fn journal_append(st: &mut State, rec: &JournalRecord) {
    if let Some(j) = st.journal.as_mut() {
        if j.append(rec).is_ok() {
            xg_obs::record_journal_append();
        }
    }
}

/// Serve a submission from a published artifact: journal the `CacheHit`
/// record first (intent before effect — on journal refusal nothing is
/// admitted), then insert the job born `Done` with no batch. The full
/// outcome tensor is rehydrated from the stored blob when it is still
/// present, so `RESULT` works exactly as for a freshly executed job; a
/// GC-evicted blob degrades to summary-only, like a job restored from the
/// journal after a restart.
fn serve_cache_hit(
    shared: &Shared,
    st: &mut State,
    spec: JobSpec,
    token: &str,
    dh: DeckHash,
    manifest: &Manifest,
) -> Result<(JobId, bool), AdmitError> {
    let id = JobId(st.next_job);
    let (steps_done, h_hash, diag_bits) = manifest.summary();
    if let Some(j) = &mut st.journal {
        let deck = xg_sim::write_deck(&spec.input);
        let rec = JournalRecord::CacheHit {
            job: id,
            token: token.to_string(),
            deck_hash: journal::fnv1a(deck.as_bytes()),
            deck,
            steps: spec.steps as u64,
            tag: spec.tag.clone(),
            tenant: spec.tenant.clone(),
            submitted_unix_us: unix_us(),
            steps_done,
            h_hash,
            diag_bits,
        };
        if let Err(e) = j.append(&rec) {
            let e = AdmitError::JournalBackpressure { reason: e.to_string() };
            st.metrics.on_reject(&e);
            return Err(e);
        }
        xg_obs::record_journal_append();
    }
    st.next_job += 1;
    let store = shared.store.as_ref().expect("a hit implies a store");
    let outcome = store
        .get_object(manifest.outcome_object)
        .ok()
        .and_then(|b| artifacts::decode_outcome(&b).ok());
    let cmat_key = spec.input.cmat_key();
    let tenant = spec.tenant.clone();
    // Born Done: never counts against `live` (or the tenant's live
    // quotas), never occupies a batch, no lifecycle transition to journal
    // beyond the single CacheHit record.
    st.jobs.insert(
        id,
        Job {
            id,
            spec,
            state: JobState::Done,
            cmat_key,
            batch: None,
            detail: format!("served from artifact cache ({dh})"),
            cancel_requested: false,
            submitted_at: Instant::now(),
            dispatched_at: None,
            outcome,
            token: (!token.is_empty()).then(|| token.to_string()),
            deck_bytes: 0,
            restored_summary: Some((steps_done, h_hash, diag_bits)),
            subscribers: Vec::new(),
        },
    );
    if !token.is_empty() {
        st.tokens.insert(token.to_string(), id);
    }
    st.terminal_order.push_back((id, Instant::now()));
    st.metrics.on_submit();
    st.metrics.on_tenant_submit(&tenant);
    st.metrics.on_tenant_cache_hit(&tenant);
    st.metrics.on_cache_hit(manifest.outcome_bytes);
    xg_obs::record_cache_hit(manifest.outcome_bytes);
    evict_terminals(st, shared.cfg.retain_jobs, shared.cfg.retain_age, Instant::now());
    Ok((id, false))
}

/// `(steps, h_hash, diag_bits)` for a completed outcome: FNV-1a over the
/// little-endian bytes of the final distribution plus the exact `f64` bit
/// patterns of the diagnostics — a bitwise-comparable fingerprint small
/// enough to journal.
fn outcome_summary(o: &JobOutcome) -> (u64, u64, [u64; 4]) {
    let mut bytes = Vec::with_capacity(o.h.as_slice().len() * 16);
    for z in o.h.as_slice() {
        bytes.extend_from_slice(&z.re.to_le_bytes());
        bytes.extend_from_slice(&z.im.to_le_bytes());
    }
    let d = &o.diagnostics;
    (
        o.steps as u64,
        journal::fnv1a(&bytes),
        [
            d.time.to_bits(),
            d.field_energy.to_bits(),
            d.heat_flux.to_bits(),
            d.h_norm2.to_bits(),
        ],
    )
}

/// Rebuild server state from a journal replay: terminal jobs are restored
/// with their result summaries, members of still-running batches are queued
/// to resume from the last journaled checkpoint, and every other live job
/// is re-admitted through the normal grouping path. Tenant attribution
/// survives the crash: every restored job keeps its journaled tenant (v1
/// records replay as the default tenant) and live restored jobs re-count
/// against their tenant's quotas. Runs before any worker thread exists, so
/// it owns the state outright.
fn replay_into(cfg: &ServerConfig, st: &mut State, replay: journal::Replay) {
    let table = journal::fold(&replay.records);
    st.recovery = RecoveryReport {
        replayed_records: replay.records.len() as u64,
        torn_bytes: replay.torn_bytes,
        replay_us: replay.replay_us,
        warnings: replay.warnings,
        ..RecoveryReport::default()
    };
    if table.ignored > 0 {
        st.recovery
            .warnings
            .push(format!("{} record(s) ignored by the replay fold", table.ignored));
    }
    xg_obs::record_journal_replay(replay.replay_us);
    // Members that resume as their original batch (instead of regrouping):
    // non-terminal jobs of batches with a journaled `Running` record.
    let mut resumed_members: BTreeMap<JobId, BatchId> = BTreeMap::new();
    for (bid, rb) in &table.running {
        for j in &rb.jobs {
            if table.jobs.get(j).is_some_and(|rj| !rj.state.is_terminal()) {
                resumed_members.insert(*j, *bid);
            }
        }
    }
    // Seed batch numbering past everything the journal ever allocated so
    // re-placement cannot collide with a resumed batch id.
    st.grouper.seed_next_batch(table.max_batch.map_or(0, |m| m + 1));
    let now = Instant::now();
    let now_us = unix_us();
    for (id, rj) in &table.jobs {
        st.next_job = st.next_job.max(id.0 + 1);
        let input = match xg_sim::parse_deck(&rj.deck) {
            Ok(i) if journal::fnv1a(rj.deck.as_bytes()) == rj.deck_hash => i,
            Ok(_) => {
                st.recovery
                    .warnings
                    .push(format!("{id}: journaled deck hash mismatch — job dropped"));
                continue;
            }
            Err(e) => {
                st.recovery
                    .warnings
                    .push(format!("{id}: journaled deck unparseable ({e}) — job dropped"));
                continue;
            }
        };
        // Attribution survives the crash in the counters, not just the job
        // table: every replayed job re-credits its tenant's submitted
        // count, and a job that reached a terminal state in the previous
        // life credits done/failed/cancelled here — it will never run
        // again, so replay is its only chance to be accounted.
        st.metrics.on_tenant_submit(&rj.tenant);
        if rj.state.is_terminal() {
            let work = if rj.state == JobState::Done { rj.steps } else { 0 };
            st.metrics.on_tenant_terminal(&rj.tenant, rj.state, work);
        }
        // Back-date admission by the journaled wall-clock age so queue
        // latency spans the crash: the clock started at the original
        // submit, not at replay.
        let submitted_at = now
            .checked_sub(Duration::from_micros(now_us.saturating_sub(rj.submitted_unix_us)))
            .unwrap_or(now);
        let spec = JobSpec {
            input,
            steps: rj.steps as usize,
            tag: rj.tag.clone(),
            tenant: rj.tenant.clone(),
        };
        let cmat_key = spec.input.cmat_key();
        let deck_bytes = rj.deck.len() as u64;
        let mut job = Job {
            id: *id,
            spec,
            state: rj.state,
            cmat_key,
            batch: rj.batch,
            detail: rj.detail.clone(),
            cancel_requested: false,
            submitted_at,
            dispatched_at: None,
            outcome: None,
            token: (!rj.token.is_empty()).then(|| rj.token.clone()),
            deck_bytes,
            restored_summary: None,
            subscribers: Vec::new(),
        };
        if !rj.token.is_empty() {
            st.tokens.insert(rj.token.clone(), *id);
        }
        let count_live = |st: &mut State, tenant: &str, bytes: u64| {
            let u = st.tenant_usage.entry(tenant.to_string()).or_default();
            u.live_jobs += 1;
            u.live_bytes += bytes;
        };
        if rj.state.is_terminal() {
            job.restored_summary = rj.done_summary;
            st.jobs.insert(*id, job);
            st.terminal_order.push_back((*id, now));
            st.recovery.restored_jobs += 1;
        } else if let Some(b) = resumed_members.get(id) {
            // Re-runs Batched → Running when the resumed batch dispatches.
            job.state = JobState::Batched;
            job.batch = Some(*b);
            job.detail = format!("restored; resuming {b}");
            count_live(st, &rj.tenant, deck_bytes);
            st.jobs.insert(*id, job);
            st.live += 1;
            st.recovery.restored_jobs += 1;
        } else {
            // Waiting (or running in a batch whose journal trail was lost):
            // re-admit through the normal grouping path.
            let spec = job.spec.clone();
            let (batch, flushed) = st.grouper.place(*id, &spec, now);
            job.state = JobState::Batched;
            job.batch = Some(batch);
            job.detail = format!("restored; regrouped into {batch}");
            count_live(st, &rj.tenant, deck_bytes);
            st.jobs.insert(*id, job);
            st.live += 1;
            st.recovery.readmitted_jobs += 1;
            journal_append(st, &JournalRecord::Batched { job: *id, batch });
            if let Some(f) = flushed {
                enqueue_ready(cfg, st, f.batch.id, f.batch.jobs, f.reason, None);
            }
        }
    }
    // Queue each interrupted batch for resumption from its last journaled
    // checkpoint (step 0 when no checkpoint landed, or when the restored
    // one fails validation — correctness over speed, with a warning).
    for (bid, rb) in &table.running {
        let members: Vec<JobId> = match &rb.checkpoint {
            // The checkpoint's member list is authoritative: it reflects
            // evictions that happened after dispatch.
            Some((_, _, cp_jobs, _)) => cp_jobs.clone(),
            None => rb.jobs.clone(),
        };
        let live: Vec<JobId> = members
            .iter()
            .copied()
            .filter(|j| resumed_members.get(j) == Some(bid) && st.jobs.contains_key(j))
            .collect();
        if live.is_empty() {
            continue;
        }
        let mut resume = ResumeState { checkpoint: None, done: 0, next_seq: 0 };
        if let Some((seq, done_steps, cp_jobs, state)) = &rb.checkpoint {
            resume.next_seq = seq + 1;
            match EnsembleCheckpoint::from_bytes(state) {
                Ok(cp) => {
                    // Members that terminalized after the checkpoint are
                    // evicted from the restored state, highest position
                    // first (eviction shifts later positions down).
                    let mut cp = Some(cp);
                    for (pos, j) in cp_jobs.iter().enumerate().rev() {
                        if live.contains(j) {
                            continue;
                        }
                        cp = match cp.take().map(|c| c.evict_member(pos)) {
                            Some(Ok(next)) => Some(next),
                            _ => None,
                        };
                        if cp.is_none() {
                            st.recovery.warnings.push(format!(
                                "{bid}: cannot evict member {pos} from restored \
                                 checkpoint; restarting batch from step 0"
                            ));
                            break;
                        }
                    }
                    if let Some(cp) = cp {
                        let member = &st.jobs[&live[0]];
                        let d = member.spec.input.dims();
                        if cp.k() == live.len()
                            && cp.cmat_key() == member.cmat_key
                            && cp.dims() == (d.nc, d.nv, d.nt)
                        {
                            resume.checkpoint = Some(cp);
                            resume.done = *done_steps as usize;
                        } else {
                            st.recovery.warnings.push(format!(
                                "{bid}: restored checkpoint does not match its \
                                 members; restarting batch from step 0"
                            ));
                        }
                    }
                }
                Err(e) => {
                    st.recovery.warnings.push(format!(
                        "{bid}: undecodable checkpoint ({e:?}); restarting batch \
                         from step 0"
                    ));
                }
            }
        }
        st.recovery.resumed_batches += 1;
        enqueue_ready(cfg, st, *bid, live, FlushReason::Resume, Some(resume));
    }
}

/// Admission checks that need no mutation: drain gate, deck validity,
/// grid compatibility, memory feasibility. Queue capacity is checked by
/// `submit` only (a dry run consumes no slot).
fn admit(shared: &Shared, st: &State, spec: &JobSpec) -> Result<(), AdmitError> {
    if st.draining || st.shutdown {
        return Err(AdmitError::Draining);
    }
    check_spec(&spec.input, spec.steps)?;
    // The deck must form a valid (k = 1) ensemble on the server's grid.
    EnsembleConfig::new(vec![spec.input.clone()], shared.cfg.grid).map_err(|e| match e {
        EnsembleError::BadGrid { reason } => AdmitError::OversizedGrid {
            reason: format!("deck does not fit the server grid: {reason}"),
        },
        other => AdmitError::InvalidDeck { reason: other.to_string() },
    })?;
    if st.grouper.k_cap_for(&spec.input) == 0 {
        // Name the blocking constraint: the typed planner diagnosis says
        // whether divisibility or the memory budget rejected the deck.
        let why = match xg_cluster::diagnose(
            &spec.input,
            1,
            shared.cfg.nodes,
            &shared.cfg.machine,
            true,
        ) {
            Err(e) => format!("{} — {e}", e.kind()),
            Ok(_) => "memory".to_string(),
        };
        return Err(AdmitError::OversizedGrid {
            reason: format!(
                "no ensemble of this deck fits {} node(s) of {} ({why})",
                shared.cfg.nodes, shared.cfg.machine.name
            ),
        });
    }
    Ok(())
}

/// Transition a job, enforcing the lifecycle graph, maintaining the
/// live-job count, notifying subscribers, and journaling terminal
/// transitions (so a restart never re-runs finished work).
fn transition(st: &mut State, id: JobId, to: JobState, detail: String) {
    let (rec, released) = {
        let job = st.jobs.get_mut(&id).expect("job exists");
        assert!(
            job.state.can_transition(to),
            "illegal transition {} -> {to} for {id}",
            job.state
        );
        job.state = to;
        job.detail = detail.clone();
        emit(job, to, detail);
        let rec = match to {
            JobState::Done => {
                let (steps, h_hash, diag_bits) = job
                    .outcome
                    .as_ref()
                    .map(outcome_summary)
                    .or(job.restored_summary)
                    .unwrap_or((0, 0, [0; 4]));
                Some(JournalRecord::Done { job: id, steps, h_hash, diag_bits })
            }
            JobState::Failed => {
                Some(JournalRecord::Failed { job: id, detail: job.detail.clone() })
            }
            JobState::Cancelled => {
                Some(JournalRecord::Cancelled { job: id, detail: job.detail.clone() })
            }
            _ => None,
        };
        let released = to.is_terminal().then(|| {
            let work = if to == JobState::Done { job.spec.steps as u64 } else { 0 };
            (job.spec.tenant.clone(), job.deck_bytes, work)
        });
        (rec, released)
    };
    if let Some(rec) = rec {
        journal_append(st, &rec);
    }
    if let Some((tenant, deck_bytes, work)) = released {
        st.live = st.live.checked_sub(1).expect("live-job count underflow");
        // Return the job's live budget to its tenant; an emptied entry is
        // dropped so the usage map tracks only tenants with live work.
        if let Some(u) = st.tenant_usage.get_mut(&tenant) {
            u.live_jobs = u.live_jobs.saturating_sub(1);
            u.live_bytes = u.live_bytes.saturating_sub(deck_bytes);
            if *u == TenantUsage::default() {
                st.tenant_usage.remove(&tenant);
            }
        }
        st.metrics.on_tenant_terminal(&tenant, to, work);
        st.terminal_order.push_back((id, Instant::now()));
    }
}

/// Deliver an event to the job's subscribers, dropping hung-up channels.
/// Terminal events also drop the subscriber list (hang-up signals "no more
/// events").
fn emit(job: &mut Job, state: JobState, detail: String) {
    let ev = JobEvent { job: job.id, state, detail };
    job.subscribers.retain(|tx| tx.send(ev.clone()).is_ok());
    if state.is_terminal() {
        job.subscribers.clear();
    }
}

/// The batcher thread: flush linger-expired batches to the ready queue.
fn batcher_loop(shared: &Shared) {
    let mut guard = shared.state.lock();
    loop {
        if guard.shutdown {
            return;
        }
        let now = Instant::now();
        let expired = guard.grouper.expired(now);
        if !expired.is_empty() {
            let st = &mut *guard;
            for f in expired {
                enqueue_ready(&shared.cfg, st, f.batch.id, f.batch.jobs, f.reason, None);
            }
            shared.work.notify_all();
            continue;
        }
        // The batcher doubles as the retention sweeper: the age bound must
        // fire even when no submission or flush has run in a while.
        evict_terminals(&mut guard, shared.cfg.retain_jobs, shared.cfg.retain_age, now);
        match guard.grouper.next_deadline() {
            Some(d) => {
                shared.timer.wait_until(&mut guard, d);
            }
            None => {
                // Nothing pending: sleep until a submit creates a batch.
                shared.timer.wait_for(&mut guard, Duration::from_secs(1));
            }
        }
    }
}

/// A worker thread: pop ready batches whose node ask fits the remaining
/// machine budget and execute them. The worker is the single owner of the
/// node ledger — it reserves `rb.nodes` at pop and releases them when
/// `execute_batch` returns, whether the batch completed, failed, or was
/// preempted back into the queue.
fn worker_loop(shared: &Shared) {
    loop {
        let (rb, nodes) = {
            let mut guard = shared.state.lock();
            guard.idle_workers += 1;
            let rb = loop {
                if guard.shutdown {
                    guard.idle_workers -= 1;
                    return;
                }
                let st = &mut *guard;
                let avail = shared.cfg.nodes.saturating_sub(st.nodes_in_use);
                if let Some(rb) = st.ready.pop(|cand| cand.nodes <= avail) {
                    break rb;
                }
                shared.work.wait(&mut guard);
            };
            guard.idle_workers -= 1;
            guard.nodes_in_use += rb.nodes;
            guard.metrics.on_world_start();
            let nodes = rb.nodes;
            (rb, nodes)
        };
        execute_batch(shared, rb);
        {
            let mut guard = shared.state.lock();
            guard.nodes_in_use = guard.nodes_in_use.saturating_sub(nodes);
            guard.metrics.on_world_end();
            // Freed nodes may unblock a queued world on another worker.
            shared.work.notify_all();
        }
    }
}

/// Run one batch as an XGYRO ensemble in `ckpt_every`-step segments,
/// applying cancellations (and shutdown) at checkpoint boundaries and
/// evicting faulted members without killing their batch-mates. Each
/// completed segment (except the last) journals its checkpoint, so a crash
/// mid-batch resumes from the last boundary instead of step 0; the final
/// segment is deliberately *not* journaled — a crash between it and the
/// `Done` records re-runs that segment deterministically, which is cheaper
/// than reasoning about a "finished but unrecorded" limbo state.
fn execute_batch(shared: &Shared, rb: ReadyBatch) {
    let grid = shared.cfg.grid;
    let ReadyBatch { id: batch_id, jobs, reason, resume, tenant, priority, nodes } = rb;
    // Dispatch bookkeeping: transition members to Running, record queue
    // latency and occupancy, arm the chaos fault plan (first batch only).
    // Members of a preempted batch are *already* Running — they re-enter
    // here without a second transition, dispatch count, or Running record,
    // so a preempt/resume cycle is invisible to occupancy accounting.
    let (mut member_ids, mut inputs, steps_total, mut plan) = {
        let mut guard = shared.state.lock();
        let st = &mut *guard;
        let now = Instant::now();
        let mut inputs: Vec<CgyroInput> = Vec::new();
        let mut steps_total = 0;
        let mut fresh = 0usize;
        for id in &jobs {
            let job = st.jobs.get_mut(id).expect("batched job exists");
            steps_total = job.spec.steps;
            inputs.push(job.spec.input.clone());
            if job.state != JobState::Batched {
                continue;
            }
            fresh += 1;
            job.dispatched_at = Some(now);
            // Microsecond resolution: under test configs dispatch latency
            // is routinely sub-millisecond, and ms-granular recording
            // rounded it all to zero (count > 0 with sum = 0).
            let lat_us = now.duration_since(job.submitted_at).as_micros() as u64;
            st.metrics.on_queue_latency_us(lat_us);
            transition(st, *id, JobState::Running, format!("{batch_id} (k={})", jobs.len()));
        }
        if jobs.is_empty() {
            return;
        }
        if fresh > 0 {
            st.metrics.on_dispatch(jobs.len(), inputs[0].dims(), reason);
            journal_append(st, &JournalRecord::Running { batch: batch_id, jobs: jobs.clone() });
        }
        (jobs.clone(), inputs, steps_total, st.fault_plan.take())
    };
    let batch_k = member_ids.len() as u64;
    let exec_start = Instant::now();
    // The batch's communication trace across every segment — stored as one
    // artifact object and referenced by each member's manifest.
    let mut all_traces: Vec<Vec<xg_comm::OpRecord>> = Vec::new();

    let (mut checkpoint, mut done, mut next_seq) = match resume {
        Some(r) => (r.checkpoint, r.done, r.next_seq),
        None => (None, 0usize, 0u64),
    };
    let mut results: BTreeMap<JobId, JobOutcome> = BTreeMap::new();
    while done < steps_total && !member_ids.is_empty() {
        // Checkpoint boundary: apply cancellations (shutdown cancels all).
        let cancelled: Vec<usize> = {
            let guard = shared.state.lock();
            member_ids
                .iter()
                .enumerate()
                .filter(|(_, id)| guard.shutdown || guard.jobs[*id].cancel_requested)
                .map(|(pos, _)| pos)
                .collect()
        };
        for &pos in cancelled.iter().rev() {
            let id = member_ids.remove(pos);
            inputs.remove(pos);
            if let Some(cp) = checkpoint.take() {
                // Emptying the batch drops the checkpoint with it —
                // evict_member only refuses to evict the last member.
                checkpoint = cp.evict_member(pos).ok();
            }
            finish(shared, id, JobState::Cancelled, "preempted at checkpoint".into(), None);
        }
        if member_ids.is_empty() {
            return;
        }
        // Elastic preemption: yield this world's nodes when a
        // higher-priority batch is blocked and provably dispatchable once
        // they are released. The fit test is deliberately strict —
        // releasing nodes that still would not admit the waiting batch
        // would spin through pop/requeue without making progress. Members
        // stay Running; the batch re-enters the queue with its checkpoint,
        // and the worker that released the nodes pops the higher lane
        // first.
        {
            let mut guard = shared.state.lock();
            let st = &mut *guard;
            if let Some(need) = st.ready.min_over_higher_lanes(priority, |c| c.nodes as u64) {
                let avail_now = shared.cfg.nodes.saturating_sub(st.nodes_in_use) as u64;
                let blocked = st.idle_workers == 0 || need > avail_now;
                if blocked && need <= avail_now + nodes as u64 {
                    st.metrics.on_preempt(&tenant);
                    let resume = ResumeState { checkpoint: checkpoint.take(), done, next_seq };
                    enqueue_ready(
                        &shared.cfg,
                        st,
                        batch_id,
                        member_ids,
                        FlushReason::Preempt,
                        Some(resume),
                    );
                    shared.work.notify_all();
                    return;
                }
            }
        }
        let cfg = match EnsembleConfig::new(inputs.clone(), grid) {
            Ok(c) => c,
            Err(e) => {
                fail_all(shared, &member_ids, &format!("ensemble rebuild failed: {e}"));
                return;
            }
        };
        let seg = shared.cfg.ckpt_every.min(steps_total - done);
        let out = run_xgyro_resilient_from(
            &cfg,
            checkpoint.take(),
            seg,
            seg,
            plan.take().unwrap_or_else(FaultPlan::new),
            shared.cfg.deadline,
        );
        match out {
            Ok(rec) => {
                // Fold the segment's communication traces into the
                // execution-phase breakdown before touching job states.
                shared.state.lock().metrics.on_batch_traces(&rec.outcome.traces);
                if shared.store.is_some() {
                    all_traces.extend(rec.outcome.traces.iter().cloned());
                }
                // Members evicted by faults terminalize as Failed; the
                // survivors carry on from the segment's checkpoint.
                for ev in &rec.events {
                    finish(
                        shared,
                        member_ids[ev.failed_member],
                        JobState::Failed,
                        format!("member evicted after fault: {}", ev.cause),
                        None,
                    );
                }
                let old_ids = member_ids.clone();
                member_ids = rec.surviving_members.iter().map(|&i| old_ids[i]).collect();
                inputs = rec.surviving_members.iter().map(|&i| inputs[i].clone()).collect();
                for s in &rec.outcome.sims {
                    results.insert(
                        old_ids[s.sim],
                        JobOutcome {
                            h: s.h.clone(),
                            diagnostics: s.diagnostics,
                            steps: done + seg,
                        },
                    );
                }
                done += seg;
                if done < steps_total && !member_ids.is_empty() {
                    // Journal this boundary so a crash resumes here. The
                    // final segment is intentionally skipped (see above).
                    let crec = JournalRecord::Checkpoint {
                        batch: batch_id,
                        jobs: member_ids.clone(),
                        seq: next_seq,
                        done_steps: done as u64,
                        state: rec.checkpoint.to_bytes(),
                    };
                    next_seq += 1;
                    journal_append(&mut shared.state.lock(), &crec);
                }
                checkpoint = Some(rec.checkpoint);
            }
            Err(e) => {
                fail_all(shared, &member_ids, &format!("batch failed: {e}"));
                return;
            }
        }
    }
    // Publish artifacts BEFORE the Done transitions: when the journal
    // records Done, the artifact is already visible to admission — no
    // window where a terminal job has no cache entry.
    publish_batch(shared, batch_id, batch_k, &member_ids, &results, &all_traces, exec_start);
    for id in member_ids {
        let outcome = results.remove(&id);
        finish(shared, id, JobState::Done, "completed".into(), outcome);
    }
}

/// Publish every completed member of a batch into the artifact store: the
/// batch's communication trace once, then deck + outcome blobs and a
/// manifest per member. Publish failures are logged and skipped — a full
/// disk degrades the cache, never the campaign — and when an automatic GC
/// budget is configured the store is collected afterwards.
fn publish_batch(
    shared: &Shared,
    batch_id: BatchId,
    batch_k: u64,
    member_ids: &[JobId],
    results: &BTreeMap<JobId, JobOutcome>,
    all_traces: &[Vec<xg_comm::OpRecord>],
    exec_start: Instant,
) {
    let Some(store) = shared.store.as_ref() else { return };
    let acfg = shared.cfg.artifacts.as_ref().expect("store implies config");
    if member_ids.is_empty() {
        return;
    }
    let trace_object = if all_traces.iter().any(|t| !t.is_empty()) {
        let csv = xg_comm::traces_to_csv_with_meta(
            all_traces,
            &[("batch", &batch_id.to_string()), ("k", &batch_k.to_string())],
        );
        store.put_object(csv.as_bytes()).ok()
    } else {
        None
    };
    let specs: Vec<(JobId, JobSpec)> = {
        let guard = shared.state.lock();
        member_ids
            .iter()
            .filter(|id| results.contains_key(id))
            .map(|id| (*id, guard.jobs[id].spec.clone()))
            .collect()
    };
    let ctx = PublishContext {
        batch_k,
        coll_cuts: "balanced".into(),
        kernel: xg_obs::Registry::global().collision_kernel().unwrap_or_default(),
        machine: shared.cfg.machine.name.clone(),
        phase_us: vec![("execute".into(), exec_start.elapsed().as_micros() as u64)],
        trace_object,
        created_unix_us: unix_us(),
    };
    for (id, spec) in specs {
        let outcome = &results[&id];
        let summary = outcome_summary(outcome);
        if let Err(e) = artifacts::publish_member(store, &spec, outcome, summary, &ctx) {
            eprintln!("xg-serve: artifact publish for {id} failed: {e}");
        }
    }
    if let Some(budget) = acfg.budget_bytes {
        match store.gc(budget) {
            Ok(r) if r.evicted_manifests > 0 => {
                eprintln!(
                    "xg-serve: artifact gc evicted {} manifest(s), freed {} byte(s)",
                    r.evicted_manifests, r.bytes_freed
                );
            }
            Ok(_) => {}
            Err(e) => eprintln!("xg-serve: artifact gc failed: {e}"),
        }
    }
}

/// Terminalize one job (from `Running`) and wake drain waiters when the
/// server goes quiet.
fn finish(shared: &Shared, id: JobId, state: JobState, detail: String, outcome: Option<JobOutcome>) {
    let mut guard = shared.state.lock();
    let st = &mut *guard;
    st.jobs.get_mut(&id).expect("running job exists").outcome = outcome;
    transition(st, id, state, detail);
    if st.live == 0 {
        shared.quiet.notify_all();
    }
}

/// Fail every remaining member of a batch with the same cause.
fn fail_all(shared: &Shared, ids: &[JobId], detail: &str) {
    for id in ids {
        finish(shared, *id, JobState::Failed, detail.to_string(), None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_sim::CgyroInput;

    fn spec(input: CgyroInput, steps: usize, tag: &str) -> JobSpec {
        JobSpec {
            input,
            steps,
            tag: tag.to_string(),
            tenant: crate::tenant::DEFAULT_TENANT.to_string(),
        }
    }

    #[test]
    fn a_full_batch_runs_to_done() {
        let server = CampaignServer::start(ServerConfig::local_test());
        let base = CgyroInput::test_small();
        let ids: Vec<JobId> = (0..3)
            .map(|i| {
                let input = base.with_gradients(1.0 + i as f64 * 0.5, 2.0);
                server.submit(spec(input, 20, &format!("j{i}"))).expect("admitted")
            })
            .collect();
        assert!(server.drain(Duration::from_secs(60)), "drain timed out");
        let statuses = server.list();
        assert_eq!(statuses.len(), 3);
        for s in &statuses {
            assert_eq!(s.state, JobState::Done, "{}: {}", s.id, s.detail);
            assert_eq!(s.batch, Some(BatchId(0)), "all three share one batch");
            assert!(s.queue_latency_ms.is_some());
        }
        for id in ids {
            let out = server.result(id).expect("outcome retained");
            assert_eq!(out.steps, 20);
        }
        let json = server.metrics_json();
        assert!(json.contains("\"k=3\": 1"), "occupancy histogram: {json}");
        server.shutdown();
    }

    #[test]
    fn linger_flushes_an_underfull_batch() {
        let mut cfg = ServerConfig::local_test();
        cfg.linger = Duration::from_millis(20);
        let server = CampaignServer::start(cfg);
        let id = server
            .submit(spec(CgyroInput::test_small(), 10, "solo"))
            .expect("admitted");
        // Wait for the batcher's linger flush before draining — an early
        // drain would flush the batch itself (reason "drain", not
        // "linger").
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.status(id).unwrap().state == JobState::Batched {
            assert!(Instant::now() < deadline, "linger flush never happened");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(server.drain(Duration::from_secs(60)));
        assert_eq!(server.status(id).unwrap().state, JobState::Done);
        let json = server.metrics_json();
        assert!(json.contains("\"linger\": 1"), "{json}");
        server.shutdown();
    }

    #[test]
    fn distinct_cmat_keys_form_distinct_batches() {
        let server = CampaignServer::start(ServerConfig::local_test());
        let base = CgyroInput::test_small();
        let mut hot = base.clone();
        hot.nu_ee *= 2.0;
        let a = server.submit(spec(base, 10, "a")).unwrap();
        let b = server.submit(spec(hot, 10, "b")).unwrap();
        let (ba, bb) = (
            server.status(a).unwrap().batch.unwrap(),
            server.status(b).unwrap().batch.unwrap(),
        );
        assert_ne!(ba, bb);
        assert!(server.drain(Duration::from_secs(60)));
        server.shutdown();
    }

    #[test]
    fn rejections_are_typed() {
        let mut cfg = ServerConfig::local_test();
        cfg.queue_capacity = 1;
        cfg.linger = Duration::from_secs(30); // keep the first job pending
        let server = CampaignServer::start(cfg);
        let base = CgyroInput::test_small();
        server.submit(spec(base.clone(), 10, "first")).unwrap();
        let err = server.submit(spec(base.clone(), 10, "second")).unwrap_err();
        assert_eq!(err.kind(), "queue-full");
        let mut bad = base.clone();
        bad.n_radial = 0;
        assert_eq!(server.submit(spec(bad, 10, "bad")).unwrap_err().kind(), "invalid-deck");
        assert_eq!(server.submit(spec(base, 7, "odd")).unwrap_err().kind(), "bad-steps");
        let json = server.metrics_json();
        assert!(json.contains("\"queue-full\": 1"), "{json}");
        server.shutdown();
    }

    #[test]
    fn cancel_before_dispatch_preempts_the_batch() {
        let mut cfg = ServerConfig::local_test();
        cfg.linger = Duration::from_secs(30);
        let server = CampaignServer::start(cfg);
        let id = server.submit(spec(CgyroInput::test_small(), 10, "doomed")).unwrap();
        assert_eq!(server.cancel(id).unwrap(), JobState::Cancelled);
        assert_eq!(server.status(id).unwrap().state, JobState::Cancelled);
        // Cancel is idempotent on terminal jobs.
        assert_eq!(server.cancel(id).unwrap(), JobState::Cancelled);
        assert!(server.drain(Duration::from_secs(5)), "nothing left to run");
        server.shutdown();
    }

    #[test]
    fn subscribe_streams_the_lifecycle() {
        let server = CampaignServer::start(ServerConfig::local_test());
        let base = CgyroInput::test_small();
        let id = server.submit(spec(base.with_gradients(1.0, 2.0), 10, "watched")).unwrap();
        let rx = server.subscribe(id).expect("job exists");
        assert!(server.drain(Duration::from_secs(60)));
        let states: Vec<JobState> = rx.iter().map(|e| e.state).collect();
        assert_eq!(states.first(), Some(&JobState::Batched), "snapshot first");
        assert_eq!(states.last(), Some(&JobState::Done));
        assert!(states.contains(&JobState::Running));
        server.shutdown();
    }

    #[test]
    fn dry_run_reports_key_and_placement_without_admitting() {
        let mut cfg = ServerConfig::local_test();
        cfg.linger = Duration::from_secs(30);
        let server = CampaignServer::start(cfg);
        let base = CgyroInput::test_small();
        let s = spec(base.clone(), 10, "probe");
        let dr = server.dry_run(&s).expect("valid");
        assert_eq!(dr.cmat_key, base.cmat_key());
        assert_eq!(dr.deck_hash, xg_artifact::deck_hash(&base, 10));
        assert_eq!(dr.cache, CacheStatus::Off, "no store configured");
        assert!(matches!(dr.placement, Placement::Opens { k_cap: 3 }));
        server.submit(s.clone()).unwrap();
        let dr = server.dry_run(&s).expect("valid");
        assert!(
            matches!(dr.placement, Placement::Joins { occupancy: 1, .. }),
            "{:?}",
            dr.placement
        );
        assert_eq!(server.list().len(), 1, "dry runs admit nothing");
        server.shutdown();
    }

    /// Scratch artifact-store directory, wiped before use.
    fn scratch_store(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("xg-serve-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Block until `id` terminalizes (drain would leave the server
    /// rejecting the resubmissions these tests are about).
    fn await_done(server: &CampaignServer, id: JobId) {
        let rx = server.subscribe(id).expect("job exists");
        for ev in rx.iter() {
            if ev.state.is_terminal() {
                assert_eq!(ev.state, JobState::Done, "{}", ev.detail);
                return;
            }
        }
        panic!("subscription ended before {id} terminalized");
    }

    #[test]
    fn resubmitted_deck_is_served_from_the_artifact_cache() {
        let dir = scratch_store("hit");
        let mut cfg = ServerConfig::local_test();
        cfg.artifacts = Some(ArtifactConfig::at(&dir));
        let server = CampaignServer::start(cfg);
        let base = CgyroInput::test_small();
        let s = spec(base.clone(), 20, "first");
        // Cold store: dry run reports a miss.
        assert_eq!(server.dry_run(&s).unwrap().cache, CacheStatus::Miss);
        let first = server.submit(s.clone()).expect("admitted");
        await_done(&server, first);
        let baseline = server.result_summary(first).expect("done");
        // Warm store: dry run flips to hit, and a real resubmit is served
        // straight to Done — no drain needed, no batch, bitwise-equal.
        assert_eq!(server.dry_run(&s).unwrap().cache, CacheStatus::Hit);
        let second = server.submit(spec(base.clone(), 20, "again")).expect("admitted");
        let status = server.status(second).expect("exists");
        assert_eq!(status.state, JobState::Done, "{}", status.detail);
        assert!(status.batch.is_none(), "a cache hit never occupies a batch");
        assert!(status.detail.contains("artifact cache"), "{}", status.detail);
        assert_eq!(server.result_summary(second), Some(baseline));
        // The full tensor was rehydrated from the outcome blob, not just
        // the summary.
        let (a, b) = (server.result(first).unwrap(), server.result(second).unwrap());
        assert_eq!(
            crate::artifacts::encode_outcome(&a),
            crate::artifacts::encode_outcome(&b),
            "cache hit is bitwise-identical"
        );
        // A semantically different deck (more steps) is still a miss.
        assert_eq!(server.dry_run(&spec(base, 40, "x")).unwrap().cache, CacheStatus::Miss);
        let json = server.metrics_json();
        assert!(json.contains("\"hits\": 1"), "{json}");
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_hits_survive_a_restart_via_the_journal() {
        let dir = scratch_store("restart");
        let jdir = scratch_store("restart-journal");
        let mk_cfg = || {
            let mut cfg = ServerConfig::local_test();
            cfg.artifacts = Some(ArtifactConfig::at(&dir));
            cfg.journal = Some(JournalConfig::durable(&jdir));
            cfg
        };
        let base = CgyroInput::test_small();
        let (hit_id, baseline) = {
            let server = CampaignServer::start(mk_cfg());
            let first = server.submit(spec(base.clone(), 20, "a")).unwrap();
            await_done(&server, first);
            let baseline = server.result_summary(first).unwrap();
            let hit = server.submit(spec(base.clone(), 20, "b")).unwrap();
            assert_eq!(server.status(hit).unwrap().state, JobState::Done);
            server.shutdown();
            (hit, baseline)
        };
        // Next life: the CacheHit journal record replays the job born Done
        // with the same summary — and the store still serves new hits.
        let server = CampaignServer::start(mk_cfg());
        let replayed = server.status(hit_id).expect("replayed");
        assert_eq!(replayed.state, JobState::Done, "{}", replayed.detail);
        assert_eq!(server.result_summary(hit_id), Some(baseline));
        let third = server.submit(spec(base, 20, "c")).unwrap();
        assert_eq!(server.status(third).unwrap().state, JobState::Done);
        assert_eq!(server.result_summary(third), Some(baseline));
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&jdir).unwrap();
    }

    #[test]
    fn faulted_member_fails_without_killing_batch_mates() {
        let mut cfg = ServerConfig::local_test();
        // One injected crash on rank 2 (a rank of member 1 on the 2x1
        // grid) early in the first segment of the first batch.
        cfg.fault_plan = Some(FaultPlan::crash(2, 4));
        cfg.workers = 1;
        let server = CampaignServer::start(cfg);
        let base = CgyroInput::test_small();
        let ids: Vec<JobId> = (0..3)
            .map(|i| {
                server
                    .submit(spec(base.with_gradients(1.0 + i as f64, 2.0), 20, "f"))
                    .unwrap()
            })
            .collect();
        assert!(server.drain(Duration::from_secs(60)));
        let states: Vec<JobState> =
            ids.iter().map(|id| server.status(*id).unwrap().state).collect();
        assert_eq!(states.iter().filter(|s| **s == JobState::Failed).count(), 1);
        assert_eq!(states.iter().filter(|s| **s == JobState::Done).count(), 2);
        let failed = ids[states.iter().position(|s| *s == JobState::Failed).unwrap()];
        assert!(server.status(failed).unwrap().detail.contains("evicted"));
        server.shutdown();
    }
}
