//! Line-oriented TCP wire protocol: `xgqueued` serves it, `xgq` speaks it.
//!
//! One request per line (`COMMAND key=value …`); `SUBMIT`/`DRYRUN` are
//! followed by the deck text and a terminating `END` line. Responses start
//! with `OK` or `ERR <kind>: <message>`; multi-line payloads (`LIST`,
//! `METRICS`, `METRICS_PROM`, `TOP`) announce their length up front or end
//! with a lone `.`, and `SUBSCRIBE` streams `EVENT` lines until the job
//! terminalizes. The format is deliberately trivial — greppable in CI logs,
//! drivable from a shell with `nc`.
//!
//! Every line — request, deck body, or response — is capped at
//! [`MAX_LINE`] bytes. Without the cap a client that streams bytes with no
//! newline makes the server buffer without bound until the allocator kills
//! it; with it the server answers `ERR protocol: line-too-long` and closes
//! the connection (framing is unrecoverable once a line overflows).
//!
//! ```text
//! PING                          -> OK pong
//! SUBMIT steps=N [tag=T] [token=T] [tenant=NAME] [auth=SECRET] + deck
//!                               -> OK job-0 batch=batch-0 [dup=1]
//! DRYRUN steps=N [tenant=NAME]  + deck
//!                               -> OK cmat_key=0x… placement=… k_cap=…
//!                                     deck_hash=xgd1-… cache=hit|miss|off
//! STATUS job-N                  -> OK job-N state=… batch=… detail=…
//! RESULT job-N                  -> OK job-N steps=… h_hash=0x… diag=0x…,…
//! LIST                          -> OK <n>, then n status lines
//! CANCEL job-N                  -> OK <state>
//! SUBSCRIBE job-N               -> EVENT job-N <state> <detail>…, OK done
//! METRICS                       -> OK, JSON lines, then a lone '.'
//! METRICS_PROM                  -> OK, Prometheus text, then a lone '.'
//! TOP                           -> OK, live phase table, then a lone '.'
//! RECOVERY                      -> OK replayed=… restored=… resumed=…
//! FETCH xgd1-…                  -> OK, manifest JSON lines, then a lone '.'
//! DIFF xgd1-… xgd1-…            -> OK same | OK differs field,field,…
//! GC budget=N                   -> OK evicted_manifests=… bytes_freed=…
//! PIN xgd1-… | UNPIN xgd1-…     -> OK pinned | OK unpinned
//! DRAIN ms=N                    -> OK drained | ERR drain-timeout: …
//! SHUTDOWN                      -> OK bye (server exits)
//! ```
//!
//! `SUBMIT token=T` is the idempotency handle: a retried submit carrying a
//! token the server has already bound (in this life, or journaled in a
//! previous one) answers with the existing job id plus `dup=1` instead of
//! enqueueing again. `RESULT` serves the journaled result fingerprint, so
//! it keeps answering for jobs that completed before a daemon restart.
//!
//! `SUBMIT tenant=NAME` names the tenant the job is admitted, scheduled,
//! quota'd, and metered under (omitted = `default`). When the daemon runs
//! with a `--tenants` roster, only listed names are accepted, and a tenant
//! configured with a secret must echo it as `auth=SECRET` — the same
//! pre-shared-string trust model as the idempotency token.

use crate::batcher::Placement;
use crate::job::{JobId, JobSpec, JobStatus};
use crate::server::CampaignServer;
use xg_artifact::DeckHash;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xg_sim::parse_deck;

/// Longest wire line either side will buffer, in bytes. Real requests are
/// tens of bytes and deck lines are under a hundred; 1 MiB leaves three
/// orders of magnitude of headroom while bounding a hostile or broken
/// peer's memory footprint.
pub const MAX_LINE: usize = 1 << 20;

/// Outcome of one capped line read.
enum LineRead {
    /// Clean end of stream before any byte of a new line.
    Eof,
    /// A complete line (newline included, like `read_line`) is in the buffer.
    Line,
    /// The line exceeded the cap; the stream is mid-line and unframed.
    TooLong,
}

/// `BufRead::read_line` with a byte cap: appends at most `cap` bytes
/// (newline included) to `line`, which is cleared first. On `TooLong` the
/// unread remainder of the line is left in the stream — callers must treat
/// the connection as unframed and close it.
fn read_line_capped(
    reader: &mut impl BufRead,
    line: &mut String,
    cap: usize,
) -> std::io::Result<LineRead> {
    line.clear();
    let mut buf = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if buf.is_empty() {
                return Ok(LineRead::Eof);
            }
            break; // EOF mid-line: hand back what arrived, like read_line
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                buf.extend_from_slice(&chunk[..=pos]);
                reader.consume(pos + 1);
                break;
            }
            None => {
                buf.extend_from_slice(chunk);
                let n = chunk.len();
                reader.consume(n);
            }
        }
        if buf.len() > cap {
            return Ok(LineRead::TooLong);
        }
    }
    if buf.len() > cap {
        return Ok(LineRead::TooLong);
    }
    let s = String::from_utf8(buf).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("non-UTF-8 line: {e}"))
    })?;
    line.push_str(&s);
    Ok(LineRead::Line)
}

/// Serve the protocol on `listener` until a client sends `SHUTDOWN`.
/// Connections are handled concurrently; on exit the campaign server is
/// shut down gracefully (running batches preempt at their next checkpoint).
pub fn serve(listener: TcpListener, server: CampaignServer) -> std::io::Result<()> {
    let server = Arc::new(server);
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr()?;
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = conn?;
        let _ = stream.set_nodelay(true);
        let server = server.clone();
        let stop = stop.clone();
        handlers.push(std::thread::spawn(move || {
            let _ = handle_conn(stream, &server, &stop, addr);
        }));
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
    match Arc::try_unwrap(server) {
        Ok(s) => s.shutdown(),
        Err(_) => unreachable!("all connection handlers joined"),
    }
    Ok(())
}

fn handle_conn(
    stream: TcpStream,
    server: &CampaignServer,
    stop: &AtomicBool,
    addr: std::net::SocketAddr,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut line = String::new();
    loop {
        match read_line_capped(&mut reader, &mut line, MAX_LINE)? {
            LineRead::Eof => return Ok(()), // client hung up
            LineRead::TooLong => {
                writeln!(out, "ERR protocol: line-too-long (cap {MAX_LINE} bytes)")?;
                out.flush()?;
                return Ok(());
            }
            LineRead::Line => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        match cmd {
            "PING" => writeln!(out, "OK pong")?,
            "SUBMIT" | "DRYRUN" => {
                let spec = match read_spec(&mut reader, &args) {
                    Ok(s) => s,
                    Err(SpecError::Bad(msg)) => {
                        writeln!(out, "ERR bad-request: {msg}")?;
                        out.flush()?;
                        continue;
                    }
                    Err(SpecError::Protocol(msg)) => {
                        // Mid-deck framing is unrecoverable: we no longer
                        // know where the next request starts. Say why, then
                        // close.
                        writeln!(out, "ERR protocol: {msg}")?;
                        out.flush()?;
                        return Ok(());
                    }
                };
                if cmd == "SUBMIT" {
                    match server.submit_authed(spec, kv_arg(&args, "token"), kv_arg(&args, "auth"))
                    {
                        Ok((id, dup)) => {
                            let batch = server
                                .status(id)
                                .and_then(|s| s.batch)
                                .map(|b| b.to_string())
                                .unwrap_or_else(|| "-".into());
                            let dup = if dup { " dup=1" } else { "" };
                            writeln!(out, "OK {id} batch={batch}{dup}")?;
                        }
                        Err(e) => writeln!(out, "ERR {}: {e}", e.kind())?,
                    }
                } else {
                    match server.dry_run(&spec) {
                        Ok(dr) => {
                            let key = dr.cmat_key;
                            let tail =
                                format!("deck_hash={} cache={}", dr.deck_hash, dr.cache);
                            match dr.placement {
                                Placement::Joins { batch, occupancy, k_cap } => writeln!(
                                    out,
                                    "OK cmat_key={key:#018x} placement=joins batch={batch} \
                                     occupancy={occupancy} k_cap={k_cap} {tail}"
                                )?,
                                Placement::Opens { k_cap } => writeln!(
                                    out,
                                    "OK cmat_key={key:#018x} placement=opens k_cap={k_cap} \
                                     {tail}"
                                )?,
                                Placement::Infeasible => writeln!(
                                    out,
                                    "OK cmat_key={key:#018x} placement=infeasible k_cap=0 \
                                     {tail}"
                                )?,
                            }
                        }
                        Err(e) => writeln!(out, "ERR {}: {e}", e.kind())?,
                    }
                }
            }
            "STATUS" => match parse_job_arg(&args).and_then(|id| {
                server.status(id).ok_or_else(|| format!("no such job: {id}"))
            }) {
                Ok(s) => writeln!(out, "OK {}", fmt_status(&s))?,
                Err(msg) => writeln!(out, "ERR not-found: {msg}")?,
            },
            "RESULT" => match parse_job_arg(&args) {
                Ok(id) => match server.result_summary(id) {
                    Some((steps, h_hash, d)) => writeln!(
                        out,
                        "OK {id} steps={steps} h_hash={h_hash:#018x} \
                         diag={:#018x},{:#018x},{:#018x},{:#018x}",
                        d[0], d[1], d[2], d[3]
                    )?,
                    None => writeln!(out, "ERR not-found: no completed result for {id}")?,
                },
                Err(msg) => writeln!(out, "ERR not-found: {msg}")?,
            },
            "RECOVERY" => {
                let r = server.recovery_report();
                writeln!(
                    out,
                    "OK replayed={} restored={} resumed={} readmitted={} torn_bytes={} \
                     replay_us={} warnings={}",
                    r.replayed_records,
                    r.restored_jobs,
                    r.resumed_batches,
                    r.readmitted_jobs,
                    r.torn_bytes,
                    r.replay_us,
                    r.warnings.len()
                )?;
            }
            "LIST" => {
                let all = server.list();
                writeln!(out, "OK {}", all.len())?;
                for s in &all {
                    writeln!(out, "{}", fmt_status(s))?;
                }
            }
            "CANCEL" => match parse_job_arg(&args).and_then(|id| server.cancel(id)) {
                Ok(state) => writeln!(out, "OK {state}")?,
                Err(msg) => writeln!(out, "ERR not-found: {msg}")?,
            },
            "SUBSCRIBE" => match parse_job_arg(&args)
                .and_then(|id| server.subscribe(id).ok_or_else(|| format!("no such job: {id}")))
            {
                Ok(rx) => {
                    for ev in rx.iter() {
                        writeln!(out, "EVENT {} {} {}", ev.job, ev.state, ev.detail)?;
                        out.flush()?;
                        if ev.state.is_terminal() {
                            break;
                        }
                    }
                    writeln!(out, "OK done")?;
                }
                Err(msg) => writeln!(out, "ERR not-found: {msg}")?,
            },
            "FETCH" => match parse_hash_arg(&args, 0) {
                Ok(hash) => match server.artifact_fetch(hash) {
                    Ok(Some(json)) => {
                        writeln!(out, "OK")?;
                        out.write_all(json.as_bytes())?;
                        if !json.ends_with('\n') {
                            writeln!(out)?;
                        }
                        writeln!(out, ".")?;
                    }
                    Ok(None) => writeln!(out, "ERR not-found: no manifest for {hash}")?,
                    Err(msg) => writeln!(out, "ERR cache: {msg}")?,
                },
                Err(msg) => writeln!(out, "ERR bad-request: {msg}")?,
            },
            "DIFF" => match parse_hash_arg(&args, 0)
                .and_then(|a| parse_hash_arg(&args, 1).map(|b| (a, b)))
            {
                Ok((a, b)) => match server.artifact_diff(a, b) {
                    Ok(fields) if fields.is_empty() => writeln!(out, "OK same")?,
                    Ok(fields) => writeln!(out, "OK differs {}", fields.join(","))?,
                    Err(msg) => writeln!(out, "ERR cache: {msg}")?,
                },
                Err(msg) => writeln!(out, "ERR bad-request: {msg}")?,
            },
            "GC" => {
                match kv_arg(&args, "budget").and_then(|v| v.parse::<u64>().ok()) {
                    Some(budget) => match server.artifact_gc(budget) {
                        Ok(r) => writeln!(
                            out,
                            "OK evicted_manifests={} evicted_objects={} bytes_freed={} \
                             bytes_after={}",
                            r.evicted_manifests, r.evicted_objects, r.bytes_freed, r.bytes_after
                        )?,
                        Err(msg) => writeln!(out, "ERR cache: {msg}")?,
                    },
                    None => writeln!(out, "ERR bad-request: missing budget=BYTES")?,
                }
            }
            "PIN" | "UNPIN" => match parse_hash_arg(&args, 0) {
                Ok(hash) => match server.artifact_pin(hash, cmd == "PIN") {
                    Ok(()) => {
                        writeln!(out, "OK {}", if cmd == "PIN" { "pinned" } else { "unpinned" })?
                    }
                    Err(msg) => writeln!(out, "ERR cache: {msg}")?,
                },
                Err(msg) => writeln!(out, "ERR bad-request: {msg}")?,
            },
            "METRICS" => {
                writeln!(out, "OK")?;
                out.write_all(server.metrics_json().as_bytes())?;
                writeln!(out, ".")?;
            }
            "METRICS_PROM" => {
                writeln!(out, "OK")?;
                out.write_all(server.metrics_prom().as_bytes())?;
                writeln!(out, ".")?;
            }
            "TOP" => {
                writeln!(out, "OK")?;
                out.write_all(server.top_text().as_bytes())?;
                writeln!(out, ".")?;
            }
            "DRAIN" => {
                let ms = kv_arg(&args, "ms").and_then(|v| v.parse::<u64>().ok()).unwrap_or(60_000);
                if server.drain(Duration::from_millis(ms)) {
                    writeln!(out, "OK drained")?;
                } else {
                    writeln!(out, "ERR drain-timeout: jobs still live after {ms}ms")?;
                }
            }
            "SHUTDOWN" => {
                writeln!(out, "OK bye")?;
                out.flush()?;
                stop.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the stop flag.
                let _ = TcpStream::connect(addr);
                return Ok(());
            }
            other => writeln!(out, "ERR bad-request: unknown command '{other}'")?,
        }
        out.flush()?;
    }
}

/// Why a `SUBMIT`/`DRYRUN` body could not be accepted.
enum SpecError {
    /// The framing itself broke (over-cap line, mid-deck EOF): the
    /// connection can no longer be parsed and must close.
    Protocol(String),
    /// The request was well-framed but invalid (bad args, unparsable
    /// deck): reply and keep the connection.
    Bad(String),
}

/// Parse `steps=`/`tag=`/`tenant=` arguments plus the deck body (lines up
/// to `END`). The tenant here is the *claim*; the server resolves it
/// against its directory (and the `auth=` secret) at admission.
fn read_spec(reader: &mut impl BufRead, args: &[&str]) -> Result<JobSpec, SpecError> {
    let steps = kv_arg(args, "steps")
        .ok_or_else(|| SpecError::Bad("missing steps=N".into()))?
        .parse::<usize>()
        .map_err(|e| SpecError::Bad(format!("bad steps: {e}")))?;
    let tag = kv_arg(args, "tag").unwrap_or_default().to_string();
    let tenant = kv_arg(args, "tenant")
        .unwrap_or(crate::tenant::DEFAULT_TENANT)
        .to_string();
    let deck = read_deck_body(reader, MAX_LINE)?;
    let input = parse_deck(&deck).map_err(|e| SpecError::Bad(e.to_string()))?;
    Ok(JobSpec { input, steps, tag, tenant })
}

/// Read deck lines up to the `END` terminator, each capped at `cap` bytes.
/// Returns the body verbatim (embedded `\r` and blank lines preserved).
fn read_deck_body(reader: &mut impl BufRead, cap: usize) -> Result<String, SpecError> {
    let mut deck = String::new();
    let mut line = String::new();
    loop {
        match read_line_capped(reader, &mut line, cap)
            .map_err(|e| SpecError::Protocol(e.to_string()))?
        {
            LineRead::Eof => {
                return Err(SpecError::Protocol("connection closed before END".into()))
            }
            LineRead::TooLong => {
                return Err(SpecError::Protocol(format!("line-too-long (cap {cap} bytes)")))
            }
            LineRead::Line => {}
        }
        if line.trim() == "END" {
            return Ok(deck);
        }
        deck.push_str(&line);
    }
}

fn kv_arg<'a>(args: &[&'a str], key: &str) -> Option<&'a str> {
    args.iter().find_map(|a| a.strip_prefix(key)?.strip_prefix('='))
}

fn parse_job_arg(args: &[&str]) -> Result<JobId, String> {
    args.first().ok_or("missing job id".to_string())?.parse()
}

fn parse_hash_arg(args: &[&str], pos: usize) -> Result<DeckHash, String> {
    args.get(pos).ok_or("missing deck hash (xgd1-…)".to_string())?.parse()
}

fn fmt_status(s: &JobStatus) -> String {
    format!(
        "{} state={} batch={} tenant={} tag={} latency_ms={} detail={}",
        s.id,
        s.state,
        s.batch.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
        s.tenant,
        if s.tag.is_empty() { "-" } else { &s.tag },
        s.queue_latency_ms.map(|l| l.to_string()).unwrap_or_else(|| "-".into()),
        s.detail,
    )
}

/// A thin synchronous client for the protocol (what `xgq` is built on).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to an `xgqueued` server.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Requests are small and latency-sensitive; never Nagle-delay them.
        stream.set_nodelay(true)?;
        Ok(Self { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    /// Connect with a deadline on the connect itself *and* on every
    /// subsequent read/write. Use for quick idempotent requests where a
    /// hung daemon should surface as a timeout, not a forever-block; NOT
    /// for `SUBSCRIBE`/`DRAIN`, whose legitimate silences outlast any
    /// sensible request timeout.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> std::io::Result<Self> {
        use std::net::ToSocketAddrs;
        let sa = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other(format!("cannot resolve {addr}")))?;
        let stream = TcpStream::connect_timeout(&sa, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        match read_line_capped(&mut self.reader, &mut line, MAX_LINE)? {
            LineRead::Eof => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server hung up",
            )),
            LineRead::TooLong => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response line exceeds {MAX_LINE} bytes"),
            )),
            LineRead::Line => Ok(line.trim_end().to_string()),
        }
    }

    /// One-line request → one-line response (`PING`, `STATUS`, `CANCEL`,
    /// `DRAIN`, `SHUTDOWN`).
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        self.recv_line()
    }

    /// Submit (or dry-run) a deck; returns the response line.
    pub fn submit_deck(
        &mut self,
        deck_text: &str,
        steps: usize,
        tag: &str,
        dry_run: bool,
    ) -> std::io::Result<String> {
        self.submit_deck_tokened(deck_text, steps, tag, "", dry_run)
    }

    /// Submit (or dry-run) a deck carrying an idempotency token (`""` for
    /// none). With a token the request is safe to retry: a re-send the
    /// server already acknowledged answers `dup=1` with the original job id
    /// instead of double-enqueueing.
    pub fn submit_deck_tokened(
        &mut self,
        deck_text: &str,
        steps: usize,
        tag: &str,
        token: &str,
        dry_run: bool,
    ) -> std::io::Result<String> {
        self.submit_deck_as(deck_text, steps, tag, token, "", "", dry_run)
    }

    /// Submit (or dry-run) a deck as a named tenant, optionally carrying
    /// the tenant's `auth=` secret and an idempotency token (`""` for
    /// "absent" on any of the three).
    #[allow(clippy::too_many_arguments)]
    pub fn submit_deck_as(
        &mut self,
        deck_text: &str,
        steps: usize,
        tag: &str,
        token: &str,
        tenant: &str,
        auth: &str,
        dry_run: bool,
    ) -> std::io::Result<String> {
        let cmd = if dry_run { "DRYRUN" } else { "SUBMIT" };
        let tag_part = if tag.is_empty() { String::new() } else { format!(" tag={tag}") };
        let token_part =
            if token.is_empty() { String::new() } else { format!(" token={token}") };
        let tenant_part =
            if tenant.is_empty() { String::new() } else { format!(" tenant={tenant}") };
        let auth_part = if auth.is_empty() { String::new() } else { format!(" auth={auth}") };
        // One write for the whole request: several small writes would
        // trigger Nagle/delayed-ACK stalls that add tens of milliseconds
        // per submission — enough to spread a burst past the linger window.
        let mut req =
            format!("{cmd} steps={steps}{tag_part}{token_part}{tenant_part}{auth_part}\n");
        req.push_str(deck_text);
        if !deck_text.ends_with('\n') {
            req.push('\n');
        }
        req.push_str("END\n");
        self.writer.write_all(req.as_bytes())?;
        self.writer.flush()?;
        self.recv_line()
    }

    /// `LIST`: header plus one line per job.
    pub fn list(&mut self) -> std::io::Result<Vec<String>> {
        self.send("LIST")?;
        let header = self.recv_line()?;
        let n = header
            .strip_prefix("OK ")
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad LIST header: {header}")))?;
        (0..n).map(|_| self.recv_line()).collect()
    }

    /// Read a dot-framed payload: `OK`, lines, then a lone `.`.
    fn read_dot_payload(&mut self) -> std::io::Result<String> {
        let header = self.recv_line()?;
        if header != "OK" {
            return Err(std::io::Error::other(header));
        }
        let mut payload = String::new();
        loop {
            let line = self.recv_line()?;
            if line == "." {
                return Ok(payload);
            }
            payload.push_str(&line);
            payload.push('\n');
        }
    }

    /// `METRICS`: the JSON payload.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        self.send("METRICS")?;
        self.read_dot_payload()
    }

    /// `METRICS_PROM`: the Prometheus text payload (serve counters plus the
    /// daemon's process-wide phase timers).
    pub fn metrics_prom(&mut self) -> std::io::Result<String> {
        self.send("METRICS_PROM")?;
        self.read_dot_payload()
    }

    /// `TOP`: the live phase table rendered by the daemon.
    pub fn top(&mut self) -> std::io::Result<String> {
        self.send("TOP")?;
        self.read_dot_payload()
    }

    /// `FETCH`: a published manifest's canonical JSON by deck hash.
    pub fn fetch(&mut self, hash: &str) -> std::io::Result<String> {
        self.send(&format!("FETCH {hash}"))?;
        self.read_dot_payload()
    }

    /// `DIFF`: compare two published manifests; `OK same` or
    /// `OK differs field,…`.
    pub fn diff(&mut self, a: &str, b: &str) -> std::io::Result<String> {
        self.roundtrip(&format!("DIFF {a} {b}"))
    }

    /// `GC`: collect the artifact store down to `budget` bytes.
    pub fn gc(&mut self, budget: u64) -> std::io::Result<String> {
        self.roundtrip(&format!("GC budget={budget}"))
    }

    /// `SUBSCRIBE`: invoke `on_event` for every `EVENT` line until the
    /// terminal `OK done`; returns the last event line.
    pub fn subscribe(
        &mut self,
        job: &str,
        mut on_event: impl FnMut(&str),
    ) -> std::io::Result<String> {
        self.send(&format!("SUBSCRIBE {job}"))?;
        let mut last = String::new();
        loop {
            let line = self.recv_line()?;
            if line.starts_with("ERR") {
                return Err(std::io::Error::other(line));
            }
            if line == "OK done" {
                return Ok(last);
            }
            on_event(&line);
            last = line;
        }
    }
}

/// Bounded, jittered exponential backoff for idempotent wire requests.
///
/// Equal jitter: before retry `n` the client sleeps half the backoff
/// window deterministically plus a uniform draw over the other half
/// (window doubling per retry up to `cap`). The random half is what
/// avoids retry storms — when a daemon restarts under load, clients
/// re-arrive spread across the window instead of in synchronized waves —
/// while the deterministic half guarantees a floor, so a fixed retry
/// budget always spans a predictable outage (full jitter can draw
/// near-zero every time and burn its whole budget inside a short
/// restart; measured in EXPERIMENTS.md §R2). The jitter is seeded
/// SplitMix64, so a given client's schedule is reproducible.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts, first try included (1 = never retry).
    pub attempts: u32,
    /// Backoff window before the first retry; doubles each retry after.
    pub base: Duration,
    /// Ceiling on any single backoff window.
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// The `xgq` default: 5 attempts, 50 ms base, 2 s cap.
    pub fn client_default(seed: u64) -> Self {
        Self { attempts: 5, base: Duration::from_millis(50), cap: Duration::from_secs(2), seed }
    }

    /// No retries at all.
    pub fn none() -> Self {
        Self { attempts: 1, base: Duration::ZERO, cap: Duration::ZERO, seed: 0 }
    }

    /// Equal-jitter delay before retry `n` (0-based), advancing `jitter`:
    /// `window/2 + uniform(0, window/2)`.
    pub fn delay(&self, n: u32, jitter: &mut u64) -> Duration {
        let window = self.base.saturating_mul(1u32 << n.min(16)).min(self.cap);
        let nanos = window.as_nanos().min(u64::MAX as u128) as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        let half = nanos / 2;
        Duration::from_nanos(half + crate::journal::splitmix64(jitter) % (nanos - half + 1))
    }
}

/// A client wrapper that carries requests through connection failures and
/// daemon restarts: every attempt reconnects if needed (with
/// [`Client::connect_with_timeout`] deadlines), and delays between attempts
/// follow the policy's equal-jitter backoff.
///
/// Only I/O failures are retried — an `ERR …` response line is a valid
/// answer and comes back as `Ok`. Safe only for requests whose repetition
/// cannot double work: the read-only verbs, and `SUBMIT` when every
/// submission carries an idempotency token.
#[derive(Debug)]
pub struct RetryingClient {
    addr: String,
    timeout: Duration,
    policy: RetryPolicy,
    jitter: u64,
    conn: Option<Client>,
}

impl RetryingClient {
    /// New wrapper around `addr` with per-request `timeout`.
    pub fn new(addr: &str, timeout: Duration, policy: RetryPolicy) -> Self {
        let jitter = policy.seed;
        Self { addr: addr.to_string(), timeout, policy, jitter, conn: None }
    }

    /// Run one idempotent request, retrying per the policy. The connection
    /// is dropped and re-established after any I/O failure, so a retry
    /// lands on the restarted daemon, not a dead socket.
    pub fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> std::io::Result<T>,
    ) -> std::io::Result<T> {
        let mut last = None;
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.policy.delay(attempt - 1, &mut self.jitter));
            }
            if self.conn.is_none() {
                match Client::connect_with_timeout(&self.addr, self.timeout) {
                    Ok(c) => self.conn = Some(c),
                    Err(e) => {
                        last = Some(e);
                        continue;
                    }
                }
            }
            match op(self.conn.as_mut().expect("connected above")) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    // The stream may be mid-frame or dead: reconnect fresh.
                    self.conn = None;
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| std::io::Error::other("retry policy made no attempts")))
    }

    /// One-line request → one-line response, with retries.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.with_retries(|c| c.roundtrip(line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use proptest::prelude::*;
    use std::io::Cursor;
    use xg_sim::{write_deck, CgyroInput};

    fn start() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        // A long linger keeps grouping deterministic under test: batches
        // flush because they fill (k_cap), never because a slow test runner
        // let the deadline fire between submissions.
        let mut cfg = ServerConfig::local_test();
        cfg.linger = Duration::from_secs(30);
        let server = CampaignServer::start(cfg);
        let h = std::thread::spawn(move || serve(listener, server).expect("serve"));
        (addr, h)
    }

    #[test]
    fn a_full_wire_session() {
        let (addr, h) = start();
        let mut c = Client::connect(&addr.to_string()).expect("connect");
        assert_eq!(c.roundtrip("PING").unwrap(), "OK pong");

        let base = CgyroInput::test_small();
        // Dry-run first: reports the key and that a new batch would open.
        let probe = c.submit_deck(&write_deck(&base), 20, "probe", true).unwrap();
        assert!(probe.starts_with("OK cmat_key=0x"), "{probe}");
        assert!(probe.contains("placement=opens k_cap=3"), "{probe}");

        // Three compatible submissions fill one k=3 batch.
        for i in 0..3 {
            let deck = write_deck(&base.with_gradients(1.0 + i as f64, 2.0));
            let resp = c.submit_deck(&deck, 20, &format!("s{i}"), false).unwrap();
            assert!(resp.starts_with(&format!("OK job-{i} batch=batch-")), "{resp}");
        }
        assert_eq!(c.roundtrip("DRAIN ms=60000").unwrap(), "OK drained");

        let status = c.roundtrip("STATUS job-0").unwrap();
        assert!(status.contains("state=Done"), "{status}");
        let listing = c.list().unwrap();
        assert_eq!(listing.len(), 3);
        assert!(listing.iter().all(|l| l.contains("state=Done")), "{listing:?}");

        // Subscribing to a finished job still yields its terminal snapshot.
        let last = c.subscribe("job-1", |_| {}).unwrap();
        assert!(last.contains("Done"), "{last}");

        let json = c.metrics().unwrap();
        assert!(json.contains("\"k=3\": 1"), "{json}");
        assert!(json.contains("\"cmat_saved_bytes\""), "{json}");

        // The Prometheus view of the same counters must lint clean.
        let prom = c.metrics_prom().unwrap();
        assert!(prom.contains("xgserve_batches_total{k=\"3\"} 1"), "{prom}");
        xg_obs::expo::lint_prometheus(&prom).expect("exposition must lint");

        // TOP always answers, with a table or an explanatory placeholder.
        let top = c.top().unwrap();
        assert!(top.contains("jobs:"), "{top}");

        let err = c.roundtrip("STATUS job-99").unwrap();
        assert!(err.starts_with("ERR not-found"), "{err}");

        assert_eq!(c.roundtrip("SHUTDOWN").unwrap(), "OK bye");
        h.join().unwrap();
    }

    #[test]
    fn artifact_verbs_round_trip_over_the_wire() {
        let dir = std::env::temp_dir()
            .join(format!("xg-wire-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let mut cfg = ServerConfig::local_test();
        cfg.artifacts = Some(crate::artifacts::ArtifactConfig::at(&dir));
        let server = CampaignServer::start(cfg);
        let h = std::thread::spawn(move || serve(listener, server).expect("serve"));
        let mut c = Client::connect(&addr.to_string()).expect("connect");

        let base = CgyroInput::test_small();
        let deck = write_deck(&base);
        // Cold cache: dry run reports the deck hash and a miss.
        let probe = c.submit_deck(&deck, 20, "", true).unwrap();
        assert!(probe.contains("deck_hash=xgd1-"), "{probe}");
        assert!(probe.contains("cache=miss"), "{probe}");
        let hash = probe
            .split_whitespace()
            .find_map(|t| t.strip_prefix("deck_hash="))
            .unwrap()
            .to_string();
        assert!(c.fetch(&hash).is_err(), "nothing published yet");

        // Run it, then everything about the artifact is reachable by hash.
        let resp = c.submit_deck(&deck, 20, "t", false).unwrap();
        assert!(resp.starts_with("OK job-0"), "{resp}");
        // Wait for completion WITHOUT draining (a drained server admits no
        // resubmissions — the thing the rest of this test exercises).
        let last = c.subscribe("job-0", |_| {}).unwrap();
        assert!(last.contains("Done"), "{last}");
        let probe = c.submit_deck(&deck, 20, "", true).unwrap();
        assert!(probe.contains("cache=hit"), "{probe}");
        let manifest = c.fetch(&hash).unwrap();
        assert!(manifest.contains("\"schema\": \"xg-artifact-manifest-v1\""), "{manifest}");
        assert!(manifest.contains(&hash), "{manifest}");
        assert_eq!(c.diff(&hash, &hash).unwrap(), "OK same");
        assert_eq!(c.roundtrip(&format!("PIN {hash}")).unwrap(), "OK pinned");
        // A pinned manifest survives even a zero-byte budget.
        let gc = c.gc(0).unwrap();
        assert!(gc.starts_with("OK evicted_manifests=0"), "{gc}");
        assert!(c.fetch(&hash).is_ok(), "pinned manifest survived gc");
        assert_eq!(c.roundtrip(&format!("UNPIN {hash}")).unwrap(), "OK unpinned");
        let gc = c.gc(0).unwrap();
        assert!(gc.starts_with("OK evicted_manifests=1"), "{gc}");
        assert!(c.fetch(&hash).is_err(), "evicted after unpin");
        // A cached submission served straight to Done over the wire.
        let resp = c.roundtrip("STATUS job-1").unwrap_or_default();
        assert!(resp.starts_with("ERR"), "only one real job exists: {resp}");
        let bad = c.roundtrip("FETCH nope").unwrap();
        assert!(bad.starts_with("ERR bad-request"), "{bad}");

        assert_eq!(c.roundtrip("SHUTDOWN").unwrap(), "OK bye");
        h.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tenant_identity_auth_and_quota_on_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let mut cfg = ServerConfig::local_test();
        cfg.linger = Duration::from_secs(30);
        cfg.tenants =
            crate::tenant::TenantDirectory::parse("acme:weight=2:jobs=1,beta:secret=s3cr3t")
                .unwrap();
        let server = CampaignServer::start(cfg);
        let h = std::thread::spawn(move || serve(listener, server).expect("serve"));
        let mut c = Client::connect(&addr.to_string()).expect("connect");

        let base = CgyroInput::test_small();
        let deck = write_deck(&base);
        // Configured roster: an unlisted tenant (and the implicit default)
        // is refused with a typed error.
        let resp = c.submit_deck_as(&deck, 20, "", "", "mallory", "", false).unwrap();
        assert!(resp.starts_with("ERR tenant-denied"), "{resp}");
        let resp = c.submit_deck(&deck, 20, "", false).unwrap();
        assert!(resp.starts_with("ERR tenant-denied"), "{resp}");
        // A secret-bearing tenant must echo auth=.
        let resp = c.submit_deck_as(&deck, 20, "", "", "beta", "", false).unwrap();
        assert!(resp.starts_with("ERR tenant-denied"), "{resp}");
        let resp = c.submit_deck_as(&deck, 20, "", "", "beta", "s3cr3t", false).unwrap();
        assert!(resp.starts_with("OK job-0"), "{resp}");
        // acme's jobs=1 quota: the first live job admits, the second is
        // shed with the typed quota error naming the resource.
        let resp = c.submit_deck_as(&deck, 20, "a1", "", "acme", "", false).unwrap();
        assert!(resp.starts_with("OK job-1"), "{resp}");
        let deck2 = write_deck(&base.with_gradients(1.5, 2.0));
        let resp = c.submit_deck_as(&deck2, 20, "a2", "", "acme", "", false).unwrap();
        assert!(resp.starts_with("ERR quota-exceeded"), "{resp}");
        assert!(resp.contains("live jobs"), "{resp}");
        // STATUS and LIST carry the tenant column.
        let status = c.roundtrip("STATUS job-1").unwrap();
        assert!(status.contains("tenant=acme"), "{status}");
        // A terminal job releases its quota: cancel the queued one and the
        // rejected submission now admits.
        assert_eq!(c.roundtrip("CANCEL job-1").unwrap(), "OK Cancelled");
        let resp = c.submit_deck_as(&deck2, 20, "a2", "", "acme", "", false).unwrap();
        assert!(resp.starts_with("OK"), "{resp}");
        // Per-tenant metric families are exported.
        let json = c.metrics().unwrap();
        assert!(json.contains("\"acme\": {\"submitted\": 2"), "{json}");
        let prom = c.metrics_prom().unwrap();
        assert!(prom.contains("xgserve_tenant_submitted_total{tenant=\"beta\"} 1"), "{prom}");
        xg_obs::expo::lint_prometheus(&prom).expect("exposition must lint");
        assert_eq!(c.roundtrip("SHUTDOWN").unwrap(), "OK bye");
        h.join().unwrap();
    }

    #[test]
    fn bad_requests_get_typed_errors() {
        let (addr, h) = start();
        let mut c = Client::connect(&addr.to_string()).expect("connect");
        let resp = c.roundtrip("FROB").unwrap();
        assert!(resp.starts_with("ERR bad-request"), "{resp}");
        let resp = c.submit_deck("NOT_A_KEY=1\n", 10, "", false).unwrap();
        assert!(resp.starts_with("ERR bad-request"), "{resp}");
        // Steps misaligned with the deck cadence: typed admission error.
        let deck = write_deck(&CgyroInput::test_small());
        let resp = c.submit_deck(&deck, 7, "", false).unwrap();
        assert!(resp.starts_with("ERR bad-steps"), "{resp}");
        assert_eq!(c.roundtrip("SHUTDOWN").unwrap(), "OK bye");
        h.join().unwrap();
    }

    #[test]
    fn oversized_request_line_gets_a_typed_protocol_error() {
        // Regression: an uncapped read_line buffered a newline-free stream
        // without bound (OOM under a hostile or broken peer). A capped
        // server answers with a typed protocol error instead and closes.
        let (addr, h) = start();
        let mut c = Client::connect(&addr.to_string()).expect("connect");
        let mut big = vec![b'A'; 2 * MAX_LINE];
        big.push(b'\n');
        c.writer.write_all(&big).unwrap();
        c.writer.flush().unwrap();
        let resp = c.recv_line().unwrap();
        assert!(resp.starts_with("ERR protocol: line-too-long"), "{resp}");
        // The connection is unframed and was closed; a fresh one still works.
        let mut c2 = Client::connect(&addr.to_string()).expect("reconnect");
        assert_eq!(c2.roundtrip("PING").unwrap(), "OK pong");
        assert_eq!(c2.roundtrip("SHUTDOWN").unwrap(), "OK bye");
        h.join().unwrap();
    }

    #[test]
    fn oversized_deck_line_aborts_the_submit() {
        let (addr, h) = start();
        let mut c = Client::connect(&addr.to_string()).expect("connect");
        let deck = format!("GRAD={}\n", "9".repeat(2 * MAX_LINE));
        let resp = c.submit_deck(&deck, 20, "", false).unwrap();
        assert!(resp.starts_with("ERR protocol: line-too-long"), "{resp}");
        let mut c2 = Client::connect(&addr.to_string()).expect("reconnect");
        assert_eq!(c2.roundtrip("SHUTDOWN").unwrap(), "OK bye");
        h.join().unwrap();
    }

    // Characters deck lines may contain under the round-trip property:
    // letters, digits, key/value punctuation, whitespace — including
    // embedded '\r' and '\t', and the letters of "END" itself.
    const CHARSET: &[u8] = b"abcXYZ019 =._-\r\tEND";

    proptest! {
        /// Any deck body — blank lines, embedded '\r', trailing-newline or
        /// not — survives the SUBMIT framing byte-for-byte (modulo the
        /// trailing newline the client normalizes in), and the next request
        /// on the connection stays readable.
        #[test]
        fn deck_framing_round_trips(
            picks in prop::collection::vec(
                prop::collection::vec(0usize..CHARSET.len(), 0usize..40),
                0usize..8,
            ),
            tn in 0u8..2,
        ) {
            let trailing_newline = tn == 1;
            let lines: Vec<String> = picks
                .iter()
                .map(|l| l.iter().map(|&i| CHARSET[i] as char).collect::<String>())
                // A payload line that trims to the terminator cannot
                // round-trip by design — it IS the frame boundary.
                .filter(|l| l.trim() != "END")
                .collect();
            let mut payload = lines.join("\n");
            if trailing_newline && !payload.is_empty() {
                payload.push('\n');
            }
            // Frame exactly as Client::submit_deck does.
            let mut framed = payload.clone();
            if !framed.ends_with('\n') {
                framed.push('\n');
            }
            framed.push_str("END\n");
            framed.push_str("PING\n"); // next request must survive the deck read
            let mut reader = BufReader::new(Cursor::new(framed.into_bytes()));
            let deck = read_deck_body(&mut reader, MAX_LINE)
                .map_err(|e| match e {
                    SpecError::Protocol(m) | SpecError::Bad(m) => m,
                })
                .expect("framing must round-trip");
            let mut expect = payload;
            if !expect.ends_with('\n') {
                expect.push('\n');
            }
            prop_assert_eq!(&deck, &expect);
            let mut rest = String::new();
            prop_assert!(matches!(
                read_line_capped(&mut reader, &mut rest, MAX_LINE).unwrap(),
                LineRead::Line
            ));
            prop_assert_eq!(rest.as_str(), "PING\n");
        }

        /// Deck lines over the cap are rejected with a protocol error, not
        /// buffered.
        #[test]
        fn over_cap_deck_lines_are_rejected(extra in 1usize..200) {
            let cap = 64;
            let framed = format!("{}\nEND\n", "x".repeat(cap + extra));
            let mut reader = BufReader::new(Cursor::new(framed.into_bytes()));
            let err = read_deck_body(&mut reader, cap).expect_err("must reject");
            prop_assert!(matches!(err, SpecError::Protocol(_)));
        }
    }

    #[test]
    fn capped_reader_matches_read_line_on_small_input() {
        let mut reader = BufReader::new(Cursor::new(b"alpha\r\n\nbeta".to_vec()));
        let mut line = String::new();
        assert!(matches!(read_line_capped(&mut reader, &mut line, 64).unwrap(), LineRead::Line));
        assert_eq!(line, "alpha\r\n");
        assert!(matches!(read_line_capped(&mut reader, &mut line, 64).unwrap(), LineRead::Line));
        assert_eq!(line, "\n");
        // EOF mid-line still yields the partial tail, like read_line.
        assert!(matches!(read_line_capped(&mut reader, &mut line, 64).unwrap(), LineRead::Line));
        assert_eq!(line, "beta");
        assert!(matches!(read_line_capped(&mut reader, &mut line, 64).unwrap(), LineRead::Eof));
    }
}
