//! Line-oriented TCP wire protocol: `xgqueued` serves it, `xgq` speaks it.
//!
//! One request per line (`COMMAND key=value …`); `SUBMIT`/`DRYRUN` are
//! followed by the deck text and a terminating `END` line. Responses start
//! with `OK` or `ERR <kind>: <message>`; multi-line payloads (`LIST`,
//! `METRICS`) announce their length up front, and `SUBSCRIBE` streams
//! `EVENT` lines until the job terminalizes. The format is deliberately
//! trivial — greppable in CI logs, drivable from a shell with `nc`.
//!
//! ```text
//! PING                          -> OK pong
//! SUBMIT steps=N [tag=T] + deck -> OK job-0 batch=batch-0
//! DRYRUN steps=N        + deck  -> OK cmat_key=0x… placement=… k_cap=…
//! STATUS job-N                  -> OK job-N state=… batch=… detail=…
//! LIST                          -> OK <n>, then n status lines
//! CANCEL job-N                  -> OK <state>
//! SUBSCRIBE job-N               -> EVENT job-N <state> <detail>…, OK done
//! METRICS                       -> OK, JSON lines, then a lone '.'
//! DRAIN ms=N                    -> OK drained | ERR drain-timeout: …
//! SHUTDOWN                      -> OK bye (server exits)
//! ```

use crate::batcher::Placement;
use crate::job::{JobId, JobSpec, JobStatus};
use crate::server::CampaignServer;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xg_sim::parse_deck;

/// Serve the protocol on `listener` until a client sends `SHUTDOWN`.
/// Connections are handled concurrently; on exit the campaign server is
/// shut down gracefully (running batches preempt at their next checkpoint).
pub fn serve(listener: TcpListener, server: CampaignServer) -> std::io::Result<()> {
    let server = Arc::new(server);
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr()?;
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = conn?;
        let _ = stream.set_nodelay(true);
        let server = server.clone();
        let stop = stop.clone();
        handlers.push(std::thread::spawn(move || {
            let _ = handle_conn(stream, &server, &stop, addr);
        }));
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
    match Arc::try_unwrap(server) {
        Ok(s) => s.shutdown(),
        Err(_) => unreachable!("all connection handlers joined"),
    }
    Ok(())
}

fn handle_conn(
    stream: TcpStream,
    server: &CampaignServer,
    stop: &AtomicBool,
    addr: std::net::SocketAddr,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        match cmd {
            "PING" => writeln!(out, "OK pong")?,
            "SUBMIT" | "DRYRUN" => {
                let spec = match read_spec(&mut reader, &args) {
                    Ok(s) => s,
                    Err(msg) => {
                        writeln!(out, "ERR bad-request: {msg}")?;
                        continue;
                    }
                };
                if cmd == "SUBMIT" {
                    match server.submit(spec) {
                        Ok(id) => {
                            let batch = server
                                .status(id)
                                .and_then(|s| s.batch)
                                .map(|b| b.to_string())
                                .unwrap_or_else(|| "-".into());
                            writeln!(out, "OK {id} batch={batch}")?;
                        }
                        Err(e) => writeln!(out, "ERR {}: {e}", e.kind())?,
                    }
                } else {
                    match server.dry_run(&spec) {
                        Ok((key, Placement::Joins { batch, occupancy, k_cap })) => writeln!(
                            out,
                            "OK cmat_key={key:#018x} placement=joins batch={batch} \
                             occupancy={occupancy} k_cap={k_cap}"
                        )?,
                        Ok((key, Placement::Opens { k_cap })) => writeln!(
                            out,
                            "OK cmat_key={key:#018x} placement=opens k_cap={k_cap}"
                        )?,
                        Err(e) => writeln!(out, "ERR {}: {e}", e.kind())?,
                    }
                }
            }
            "STATUS" => match parse_job_arg(&args).and_then(|id| {
                server.status(id).ok_or_else(|| format!("no such job: {id}"))
            }) {
                Ok(s) => writeln!(out, "OK {}", fmt_status(&s))?,
                Err(msg) => writeln!(out, "ERR not-found: {msg}")?,
            },
            "LIST" => {
                let all = server.list();
                writeln!(out, "OK {}", all.len())?;
                for s in &all {
                    writeln!(out, "{}", fmt_status(s))?;
                }
            }
            "CANCEL" => match parse_job_arg(&args).and_then(|id| server.cancel(id)) {
                Ok(state) => writeln!(out, "OK {state}")?,
                Err(msg) => writeln!(out, "ERR not-found: {msg}")?,
            },
            "SUBSCRIBE" => match parse_job_arg(&args)
                .and_then(|id| server.subscribe(id).ok_or_else(|| format!("no such job: {id}")))
            {
                Ok(rx) => {
                    for ev in rx.iter() {
                        writeln!(out, "EVENT {} {} {}", ev.job, ev.state, ev.detail)?;
                        out.flush()?;
                        if ev.state.is_terminal() {
                            break;
                        }
                    }
                    writeln!(out, "OK done")?;
                }
                Err(msg) => writeln!(out, "ERR not-found: {msg}")?,
            },
            "METRICS" => {
                writeln!(out, "OK")?;
                out.write_all(server.metrics_json().as_bytes())?;
                writeln!(out, ".")?;
            }
            "DRAIN" => {
                let ms = kv_arg(&args, "ms").and_then(|v| v.parse::<u64>().ok()).unwrap_or(60_000);
                if server.drain(Duration::from_millis(ms)) {
                    writeln!(out, "OK drained")?;
                } else {
                    writeln!(out, "ERR drain-timeout: jobs still live after {ms}ms")?;
                }
            }
            "SHUTDOWN" => {
                writeln!(out, "OK bye")?;
                out.flush()?;
                stop.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the stop flag.
                let _ = TcpStream::connect(addr);
                return Ok(());
            }
            other => writeln!(out, "ERR bad-request: unknown command '{other}'")?,
        }
        out.flush()?;
    }
}

/// Parse `steps=`/`tag=` arguments plus the deck body (lines up to `END`).
fn read_spec(reader: &mut impl BufRead, args: &[&str]) -> Result<JobSpec, String> {
    let steps = kv_arg(args, "steps")
        .ok_or("missing steps=N")?
        .parse::<usize>()
        .map_err(|e| format!("bad steps: {e}"))?;
    let tag = kv_arg(args, "tag").unwrap_or_default().to_string();
    let mut deck = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err("connection closed before END".into());
        }
        if line.trim() == "END" {
            break;
        }
        deck.push_str(&line);
    }
    let input = parse_deck(&deck).map_err(|e| e.to_string())?;
    Ok(JobSpec { input, steps, tag })
}

fn kv_arg<'a>(args: &[&'a str], key: &str) -> Option<&'a str> {
    args.iter().find_map(|a| a.strip_prefix(key)?.strip_prefix('='))
}

fn parse_job_arg(args: &[&str]) -> Result<JobId, String> {
    args.first().ok_or("missing job id".to_string())?.parse()
}

fn fmt_status(s: &JobStatus) -> String {
    format!(
        "{} state={} batch={} tag={} latency_ms={} detail={}",
        s.id,
        s.state,
        s.batch.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
        if s.tag.is_empty() { "-" } else { &s.tag },
        s.queue_latency_ms.map(|l| l.to_string()).unwrap_or_else(|| "-".into()),
        s.detail,
    )
}

/// A thin synchronous client for the protocol (what `xgq` is built on).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to an `xgqueued` server.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Requests are small and latency-sensitive; never Nagle-delay them.
        stream.set_nodelay(true)?;
        Ok(Self { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server hung up",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// One-line request → one-line response (`PING`, `STATUS`, `CANCEL`,
    /// `DRAIN`, `SHUTDOWN`).
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        self.recv_line()
    }

    /// Submit (or dry-run) a deck; returns the response line.
    pub fn submit_deck(
        &mut self,
        deck_text: &str,
        steps: usize,
        tag: &str,
        dry_run: bool,
    ) -> std::io::Result<String> {
        let cmd = if dry_run { "DRYRUN" } else { "SUBMIT" };
        let tag_part = if tag.is_empty() { String::new() } else { format!(" tag={tag}") };
        // One write for the whole request: several small writes would
        // trigger Nagle/delayed-ACK stalls that add tens of milliseconds
        // per submission — enough to spread a burst past the linger window.
        let mut req = format!("{cmd} steps={steps}{tag_part}\n");
        req.push_str(deck_text);
        if !deck_text.ends_with('\n') {
            req.push('\n');
        }
        req.push_str("END\n");
        self.writer.write_all(req.as_bytes())?;
        self.writer.flush()?;
        self.recv_line()
    }

    /// `LIST`: header plus one line per job.
    pub fn list(&mut self) -> std::io::Result<Vec<String>> {
        self.send("LIST")?;
        let header = self.recv_line()?;
        let n = header
            .strip_prefix("OK ")
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad LIST header: {header}")))?;
        (0..n).map(|_| self.recv_line()).collect()
    }

    /// `METRICS`: the JSON payload.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        self.send("METRICS")?;
        let header = self.recv_line()?;
        if header != "OK" {
            return Err(std::io::Error::other(header));
        }
        let mut json = String::new();
        loop {
            let line = self.recv_line()?;
            if line == "." {
                return Ok(json);
            }
            json.push_str(&line);
            json.push('\n');
        }
    }

    /// `SUBSCRIBE`: invoke `on_event` for every `EVENT` line until the
    /// terminal `OK done`; returns the last event line.
    pub fn subscribe(
        &mut self,
        job: &str,
        mut on_event: impl FnMut(&str),
    ) -> std::io::Result<String> {
        self.send(&format!("SUBSCRIBE {job}"))?;
        let mut last = String::new();
        loop {
            let line = self.recv_line()?;
            if line.starts_with("ERR") {
                return Err(std::io::Error::other(line));
            }
            if line == "OK done" {
                return Ok(last);
            }
            on_event(&line);
            last = line;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use xg_sim::{write_deck, CgyroInput};

    fn start() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        // A long linger keeps grouping deterministic under test: batches
        // flush because they fill (k_cap), never because a slow test runner
        // let the deadline fire between submissions.
        let mut cfg = ServerConfig::local_test();
        cfg.linger = Duration::from_secs(30);
        let server = CampaignServer::start(cfg);
        let h = std::thread::spawn(move || serve(listener, server).expect("serve"));
        (addr, h)
    }

    #[test]
    fn a_full_wire_session() {
        let (addr, h) = start();
        let mut c = Client::connect(&addr.to_string()).expect("connect");
        assert_eq!(c.roundtrip("PING").unwrap(), "OK pong");

        let base = CgyroInput::test_small();
        // Dry-run first: reports the key and that a new batch would open.
        let probe = c.submit_deck(&write_deck(&base), 20, "probe", true).unwrap();
        assert!(probe.starts_with("OK cmat_key=0x"), "{probe}");
        assert!(probe.contains("placement=opens k_cap=3"), "{probe}");

        // Three compatible submissions fill one k=3 batch.
        for i in 0..3 {
            let deck = write_deck(&base.with_gradients(1.0 + i as f64, 2.0));
            let resp = c.submit_deck(&deck, 20, &format!("s{i}"), false).unwrap();
            assert!(resp.starts_with(&format!("OK job-{i} batch=batch-")), "{resp}");
        }
        assert_eq!(c.roundtrip("DRAIN ms=60000").unwrap(), "OK drained");

        let status = c.roundtrip("STATUS job-0").unwrap();
        assert!(status.contains("state=Done"), "{status}");
        let listing = c.list().unwrap();
        assert_eq!(listing.len(), 3);
        assert!(listing.iter().all(|l| l.contains("state=Done")), "{listing:?}");

        // Subscribing to a finished job still yields its terminal snapshot.
        let last = c.subscribe("job-1", |_| {}).unwrap();
        assert!(last.contains("Done"), "{last}");

        let json = c.metrics().unwrap();
        assert!(json.contains("\"k=3\": 1"), "{json}");
        assert!(json.contains("\"cmat_saved_bytes\""), "{json}");

        let err = c.roundtrip("STATUS job-99").unwrap();
        assert!(err.starts_with("ERR not-found"), "{err}");

        assert_eq!(c.roundtrip("SHUTDOWN").unwrap(), "OK bye");
        h.join().unwrap();
    }

    #[test]
    fn bad_requests_get_typed_errors() {
        let (addr, h) = start();
        let mut c = Client::connect(&addr.to_string()).expect("connect");
        let resp = c.roundtrip("FROB").unwrap();
        assert!(resp.starts_with("ERR bad-request"), "{resp}");
        let resp = c.submit_deck("NOT_A_KEY=1\n", 10, "", false).unwrap();
        assert!(resp.starts_with("ERR bad-request"), "{resp}");
        // Steps misaligned with the deck cadence: typed admission error.
        let deck = write_deck(&CgyroInput::test_small());
        let resp = c.submit_deck(&deck, 7, "", false).unwrap();
        assert!(resp.starts_with("ERR bad-steps"), "{resp}");
        assert_eq!(c.roundtrip("SHUTDOWN").unwrap(), "OK bye");
        h.join().unwrap();
    }
}
