//! Campaign metrics, exported as JSON and Prometheus text.
//!
//! The headline series is `cmat_saved_bytes`: for every dispatched batch of
//! size `k` the service stores one constant tensor instead of `k`, saving
//! `(k − 1) ×` the tensor ([`xg_costmodel::memory::cmat_saved_bytes`] — the
//! same law `xgplan` forecasts with, so the serving metrics and the
//! planning forecasts can never drift apart). The occupancy histogram shows
//! how close the batcher gets to the ideal of always-full batches; queue
//! latency shows what that packing costs in waiting; the execution-phase
//! breakdown (fed from batch traces) shows where the dispatched ensembles
//! spent their communication time.
//!
//! Aggregates that are undefined on an empty registry (latency max/mean
//! with no dispatches, the savings ratio with nothing dispatched) export as
//! JSON `null`, never a fake 0 — a campaign that saved nothing and one that
//! ran nothing must not look alike.
//!
//! All JSON is hand-rolled (the workspace's serde is a vendored marker-only
//! stub); keys are emitted in a fixed order so snapshots diff cleanly.
//! Latency is recorded in **microseconds** (sub-millisecond dispatches are
//! the common case under test configs; millisecond recording rounded them
//! all to zero) and exported both raw (`queue_latency_us`) and as derived
//! milliseconds under the original `queue_latency_ms` key shape.

use crate::admission::AdmitError;
use crate::batcher::FlushReason;
use crate::job::JobState;
use crate::tenant::TenantUsage;
use std::collections::BTreeMap;
use xg_comm::OpRecord;
use xg_tensor::SimDims;

/// Per-tenant counter family. Lifecycle counters accumulate forever;
/// `live_jobs`/`live_bytes` are gauges refreshed from the server's usage
/// ledger at export time (the same numbers admission checks quotas
/// against).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Accepted submissions (cache hits included — they are accepted).
    pub submitted: u64,
    /// Jobs that terminalized `Done`.
    pub done: u64,
    /// Jobs that terminalized `Failed`.
    pub failed: u64,
    /// Jobs that terminalized `Cancelled`.
    pub cancelled: u64,
    /// Simulation steps completed on behalf of this tenant (`Done` jobs'
    /// step counts) — the work unit fair share is measured in.
    pub work_done: u64,
    /// Submissions served straight from the artifact cache.
    pub cache_hits: u64,
    /// Times one of this tenant's running worlds yielded its nodes to a
    /// higher-priority lane at a checkpoint boundary.
    pub preemptions: u64,
    /// Live (non-terminal) jobs right now.
    pub live_jobs: u64,
    /// Live journaled deck bytes right now.
    pub live_bytes: u64,
}

/// Counter registry. The server updates it under its state lock; `to_json`
/// takes a snapshot of the live job states at export time.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Total accepted submissions.
    pub submitted: u64,
    /// Rejections by [`AdmitError::kind`].
    pub rejected: BTreeMap<&'static str, u64>,
    /// Dispatched-batch occupancy histogram: batch size k → batches.
    pub occupancy: BTreeMap<usize, u64>,
    /// Flush triggers by [`FlushReason`].
    pub flushes: BTreeMap<&'static str, u64>,
    /// Total constant-tensor bytes NOT allocated thanks to batching,
    /// summed over dispatched batches.
    pub cmat_saved_bytes: u64,
    /// What the same jobs would have allocated unbatched (k copies per
    /// batch) — the denominator for the savings ratio.
    pub cmat_unbatched_bytes: u64,
    /// Queue-latency (admission → dispatch) accumulators, microseconds.
    pub latency_count: u64,
    /// Sum of observed latencies (µs).
    pub latency_sum_us: u64,
    /// Largest observed latency (µs).
    pub latency_max_us: u64,
    /// Execution-phase breakdown accumulated from dispatched batches'
    /// traces: phase → (ops, bytes, wait µs). Wait stays 0 when the daemon
    /// runs with `XGYRO_OBS=0`.
    pub exec_phases: BTreeMap<String, (u64, u64, u64)>,
    /// Journal appends committed (refreshed from the journal at export;
    /// all journal counters stay 0 when running journal-less).
    pub journal_appends: u64,
    /// fsync(2) calls the journal issued.
    pub journal_fsyncs: u64,
    /// Frame bytes the journal wrote.
    pub journal_bytes: u64,
    /// Journal segment rotations.
    pub journal_rotations: u64,
    /// Compaction passes run on closed segments.
    pub journal_compactions: u64,
    /// Appends the journal failed to commit (backpressure/fault injection).
    pub journal_dropped: u64,
    /// Records replayed from the journal at startup.
    pub replay_records: u64,
    /// Jobs restored into the job table by replay.
    pub replay_restored_jobs: u64,
    /// Running batches rebuilt and resumed from journaled checkpoints.
    pub replay_resumed_batches: u64,
    /// Waiting jobs re-admitted through the grouper by replay.
    pub replay_readmitted_jobs: u64,
    /// Torn-tail bytes truncated during replay.
    pub replay_torn_bytes: u64,
    /// Wall time the startup replay took, microseconds.
    pub replay_us: u64,
    /// Submissions served straight to `Done` from the artifact store.
    pub cache_hits: u64,
    /// Store consults that found no published manifest (only counted when
    /// a store is configured; all cache counters stay 0 cache-less).
    pub cache_misses: u64,
    /// Outcome-blob bytes served from the store instead of recomputed —
    /// the cache's analogue of `cmat_saved_bytes`.
    pub cache_bytes_saved: u64,
    /// Per-tenant counter families, keyed by resolved tenant name.
    pub tenants: BTreeMap<String, TenantCounters>,
    /// Ensemble worlds executing right now.
    pub worlds_active: u64,
    /// High-water mark of concurrently executing worlds — ≥ 2 is the
    /// observable signature of elastic (non-serial) execution.
    pub worlds_peak: u64,
    /// Modeled nodes occupied by executing worlds (refreshed at export).
    pub nodes_in_use: u64,
    /// Checkpoint-boundary preemptions across all tenants.
    pub preemptions: u64,
    /// Terminal jobs evicted by the bounded retention window.
    pub terminal_evicted: u64,
}

impl Metrics {
    /// Record an accepted submission.
    pub fn on_submit(&mut self) {
        self.submitted += 1;
    }

    /// Record a rejection.
    pub fn on_reject(&mut self, err: &AdmitError) {
        *self.rejected.entry(err.kind()).or_insert(0) += 1;
    }

    /// Record a dispatched batch of `k` members sharing one tensor of
    /// `dims`, flushed for `reason`.
    pub fn on_dispatch(&mut self, k: usize, dims: SimDims, reason: FlushReason) {
        *self.occupancy.entry(k).or_insert(0) += 1;
        *self.flushes.entry(reason_key(reason)).or_insert(0) += 1;
        self.cmat_saved_bytes += xg_costmodel::cmat_saved_bytes(k, dims);
        self.cmat_unbatched_bytes += k as u64 * xg_costmodel::cmat_total_bytes(dims);
    }

    /// Record one job's queue latency at dispatch, in microseconds.
    pub fn on_queue_latency_us(&mut self, us: u64) {
        self.latency_count += 1;
        self.latency_sum_us += us;
        self.latency_max_us = self.latency_max_us.max(us);
    }

    /// Record a submission served from the artifact store (`bytes` is the
    /// stored outcome blob's size — work not recomputed).
    pub fn on_cache_hit(&mut self, bytes: u64) {
        self.cache_hits += 1;
        self.cache_bytes_saved += bytes;
    }

    /// Record a store consult that found nothing.
    pub fn on_cache_miss(&mut self) {
        self.cache_misses += 1;
    }

    /// Record an accepted submission against its tenant.
    pub fn on_tenant_submit(&mut self, tenant: &str) {
        self.tenants.entry(tenant.to_string()).or_default().submitted += 1;
    }

    /// Record a terminal transition against its tenant. `work` is the
    /// completed step count for `Done` jobs and 0 otherwise.
    pub fn on_tenant_terminal(&mut self, tenant: &str, state: JobState, work: u64) {
        let t = self.tenants.entry(tenant.to_string()).or_default();
        match state {
            JobState::Done => t.done += 1,
            JobState::Failed => t.failed += 1,
            JobState::Cancelled => t.cancelled += 1,
            _ => {}
        }
        t.work_done += work;
    }

    /// Record a cache-served submission against its tenant.
    pub fn on_tenant_cache_hit(&mut self, tenant: &str) {
        self.tenants.entry(tenant.to_string()).or_default().cache_hits += 1;
    }

    /// Record a checkpoint-boundary preemption of one of `tenant`'s
    /// running worlds.
    pub fn on_preempt(&mut self, tenant: &str) {
        self.preemptions += 1;
        self.tenants.entry(tenant.to_string()).or_default().preemptions += 1;
    }

    /// A world started executing (worker reserved its nodes).
    pub fn on_world_start(&mut self) {
        self.worlds_active += 1;
        self.worlds_peak = self.worlds_peak.max(self.worlds_active);
    }

    /// A world stopped executing (completed, failed, or preempted).
    pub fn on_world_end(&mut self) {
        self.worlds_active = self.worlds_active.saturating_sub(1);
    }

    /// Record `n` terminal jobs evicted by the retention window.
    pub fn on_terminal_evicted(&mut self, n: u64) {
        self.terminal_evicted += n;
    }

    /// Refresh the per-tenant live gauges from the server's usage ledger
    /// (called at export time under the state lock). Tenants absent from
    /// the ledger have no live work — their gauges drop to zero while
    /// their lifetime counters stay.
    pub fn set_tenant_usage(&mut self, usage: &BTreeMap<String, TenantUsage>) {
        for t in self.tenants.values_mut() {
            t.live_jobs = 0;
            t.live_bytes = 0;
        }
        for (name, u) in usage {
            let t = self.tenants.entry(name.clone()).or_default();
            t.live_jobs = u.live_jobs as u64;
            t.live_bytes = u.live_bytes;
        }
    }

    /// Fold one executed segment's per-rank traces into the phase
    /// breakdown.
    pub fn on_batch_traces(&mut self, traces: &[Vec<OpRecord>]) {
        for trace in traces {
            for r in trace {
                let e = self.exec_phases.entry(r.phase.clone()).or_insert((0, 0, 0));
                e.0 += 1;
                e.1 += r.bytes;
                e.2 += r.elapsed_us;
            }
        }
    }

    /// Refresh the journal counters from a live journal's stats (called by
    /// the server at export time).
    pub fn set_journal_stats(&mut self, s: crate::journal::JournalStats) {
        self.journal_appends = s.appends;
        self.journal_fsyncs = s.fsyncs;
        self.journal_bytes = s.bytes_written;
        self.journal_rotations = s.rotations;
        self.journal_compactions = s.compactions;
        self.journal_dropped = s.dropped;
    }

    /// Record what startup replay restored (set once when the server
    /// starts).
    pub fn set_recovery(&mut self, r: &crate::server::RecoveryReport) {
        self.replay_records = r.replayed_records;
        self.replay_restored_jobs = r.restored_jobs;
        self.replay_resumed_batches = r.resumed_batches;
        self.replay_readmitted_jobs = r.readmitted_jobs;
        self.replay_torn_bytes = r.torn_bytes;
        self.replay_us = r.replay_us;
    }

    /// Serialize, folding in a snapshot of live job states
    /// (`(state, count)` for every [`JobState`]).
    pub fn to_json(&self, jobs_by_state: &[(JobState, usize)]) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"schema\": \"xg-serve-metrics-v1\",\n");
        s.push_str(&format!("  \"submitted\": {},\n", self.submitted));
        s.push_str("  \"jobs_by_state\": {");
        for (i, (state, n)) in jobs_by_state.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{state}\": {n}"));
        }
        s.push_str("},\n");
        s.push_str("  \"rejected\": {");
        push_map(&mut s, self.rejected.iter().map(|(k, v)| (k.to_string(), *v)));
        s.push_str("},\n");
        s.push_str("  \"batch_occupancy\": {");
        push_map(&mut s, self.occupancy.iter().map(|(k, v)| (format!("k={k}"), *v)));
        s.push_str("},\n");
        s.push_str("  \"flush_reasons\": {");
        push_map(&mut s, self.flushes.iter().map(|(k, v)| (k.to_string(), *v)));
        s.push_str("},\n");
        s.push_str(&format!("  \"cmat_saved_bytes\": {},\n", self.cmat_saved_bytes));
        s.push_str(&format!(
            "  \"cmat_unbatched_bytes\": {},\n",
            self.cmat_unbatched_bytes
        ));
        // Undefined until something was dispatched: null, not 0.0 (a
        // campaign that saved nothing must not look like one that ran
        // nothing).
        if self.cmat_unbatched_bytes == 0 {
            s.push_str("  \"cmat_saved_ratio\": null,\n");
        } else {
            let ratio = self.cmat_saved_bytes as f64 / self.cmat_unbatched_bytes as f64;
            s.push_str(&format!("  \"cmat_saved_ratio\": {ratio:.6},\n"));
        }
        s.push_str("  \"exec_phases\": {");
        for (i, (phase, (ops, bytes, us))) in self.exec_phases.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{phase}\": {{\"ops\": {ops}, \"bytes\": {bytes}, \"wait_us\": {us}}}"
            ));
        }
        s.push_str("},\n");
        // Raw microseconds plus derived milliseconds (original key shape).
        self.push_latency(&mut s, "queue_latency_us", 1);
        s.push_str(",\n");
        self.push_latency(&mut s, "queue_latency_ms", 1000);
        s.push_str(",\n");
        s.push_str(&format!(
            "  \"journal\": {{\"appends\": {}, \"fsyncs\": {}, \"bytes\": {}, \
             \"rotations\": {}, \"compactions\": {}, \"dropped\": {}}},\n",
            self.journal_appends,
            self.journal_fsyncs,
            self.journal_bytes,
            self.journal_rotations,
            self.journal_compactions,
            self.journal_dropped,
        ));
        // Hit rate is undefined until the store was consulted: null, not
        // 0.0 (a cache that never hit and one never asked must not look
        // alike).
        let consults = self.cache_hits + self.cache_misses;
        let hit_rate = if consults == 0 {
            "null".to_string()
        } else {
            format!("{:.6}", self.cache_hits as f64 / consults as f64)
        };
        s.push_str(&format!(
            "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {hit_rate}, \
             \"bytes_saved\": {}}},\n",
            self.cache_hits, self.cache_misses, self.cache_bytes_saved,
        ));
        s.push_str(&format!(
            "  \"scheduler\": {{\"worlds_active\": {}, \"worlds_peak\": {}, \
             \"nodes_in_use\": {}, \"preemptions\": {}, \"terminal_evicted\": {}}},\n",
            self.worlds_active,
            self.worlds_peak,
            self.nodes_in_use,
            self.preemptions,
            self.terminal_evicted,
        ));
        s.push_str("  \"tenants\": {");
        for (i, (name, t)) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{name}\": {{\"submitted\": {}, \"done\": {}, \"failed\": {}, \
                 \"cancelled\": {}, \"work_done\": {}, \"cache_hits\": {}, \
                 \"preemptions\": {}, \"live_jobs\": {}, \"live_bytes\": {}}}",
                t.submitted,
                t.done,
                t.failed,
                t.cancelled,
                t.work_done,
                t.cache_hits,
                t.preemptions,
                t.live_jobs,
                t.live_bytes,
            ));
        }
        s.push_str("},\n");
        s.push_str(&format!(
            "  \"recovery\": {{\"replayed_records\": {}, \"restored_jobs\": {}, \
             \"resumed_batches\": {}, \"readmitted_jobs\": {}, \"torn_bytes\": {}, \
             \"replay_us\": {}}}\n",
            self.replay_records,
            self.replay_restored_jobs,
            self.replay_resumed_batches,
            self.replay_readmitted_jobs,
            self.replay_torn_bytes,
            self.replay_us,
        ));
        s.push_str("}\n");
        s
    }

    /// One latency block: `"count"`, `"sum"`, `"max"`, `"mean"` in units of
    /// `div` microseconds (1 → µs, 1000 → ms). Max and mean are `null`
    /// until something was dispatched.
    fn push_latency(&self, s: &mut String, key: &str, div: u64) {
        if self.latency_count == 0 {
            s.push_str(&format!(
                "  \"{key}\": {{\"count\": 0, \"sum\": 0, \"max\": null, \"mean\": null}}"
            ));
        } else {
            s.push_str(&format!(
                "  \"{key}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}}}",
                self.latency_count,
                self.latency_sum_us / div,
                self.latency_max_us / div,
                self.latency_sum_us as f64 / self.latency_count as f64 / div as f64
            ));
        }
    }

    /// Prometheus text exposition of the same counters (`xgserve_*`
    /// families). The daemon's `METRICS_PROM` verb appends the process-wide
    /// phase-timer exposition from `xg_obs` to this.
    pub fn to_prometheus(&self, jobs_by_state: &[(JobState, usize)]) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("# HELP xgserve_submitted_total Accepted submissions.\n");
        s.push_str("# TYPE xgserve_submitted_total counter\n");
        s.push_str(&format!("xgserve_submitted_total {}\n", self.submitted));
        s.push_str("# HELP xgserve_jobs Jobs currently in each lifecycle state.\n");
        s.push_str("# TYPE xgserve_jobs gauge\n");
        for (state, n) in jobs_by_state {
            s.push_str(&format!("xgserve_jobs{{state=\"{state}\"}} {n}\n"));
        }
        s.push_str("# HELP xgserve_rejected_total Rejections by admission error kind.\n");
        s.push_str("# TYPE xgserve_rejected_total counter\n");
        for (kind, n) in &self.rejected {
            s.push_str(&format!("xgserve_rejected_total{{kind=\"{kind}\"}} {n}\n"));
        }
        s.push_str("# HELP xgserve_batches_total Dispatched batches by occupancy.\n");
        s.push_str("# TYPE xgserve_batches_total counter\n");
        for (k, n) in &self.occupancy {
            s.push_str(&format!("xgserve_batches_total{{k=\"{k}\"}} {n}\n"));
        }
        s.push_str("# HELP xgserve_flushes_total Batch flushes by trigger.\n");
        s.push_str("# TYPE xgserve_flushes_total counter\n");
        for (reason, n) in &self.flushes {
            s.push_str(&format!("xgserve_flushes_total{{reason=\"{reason}\"}} {n}\n"));
        }
        s.push_str(
            "# HELP xgserve_cmat_saved_bytes_total Constant-tensor bytes elided by batching.\n",
        );
        s.push_str("# TYPE xgserve_cmat_saved_bytes_total counter\n");
        s.push_str(&format!("xgserve_cmat_saved_bytes_total {}\n", self.cmat_saved_bytes));
        s.push_str(
            "# HELP xgserve_cmat_unbatched_bytes_total What the same jobs would have allocated unbatched.\n",
        );
        s.push_str("# TYPE xgserve_cmat_unbatched_bytes_total counter\n");
        s.push_str(&format!(
            "xgserve_cmat_unbatched_bytes_total {}\n",
            self.cmat_unbatched_bytes
        ));
        s.push_str("# HELP xgserve_queue_latency_seconds Admission-to-dispatch wait.\n");
        s.push_str("# TYPE xgserve_queue_latency_seconds summary\n");
        s.push_str(&format!("xgserve_queue_latency_seconds_count {}\n", self.latency_count));
        s.push_str(&format!(
            "xgserve_queue_latency_seconds_sum {}\n",
            self.latency_sum_us as f64 / 1e6
        ));
        s.push_str("# HELP xgserve_exec_phase_ops_total Collective operations per execution phase.\n");
        s.push_str("# TYPE xgserve_exec_phase_ops_total counter\n");
        for (phase, (ops, _, _)) in &self.exec_phases {
            s.push_str(&format!("xgserve_exec_phase_ops_total{{phase=\"{phase}\"}} {ops}\n"));
        }
        s.push_str(
            "# HELP xgserve_exec_phase_wait_seconds_total Communication wait per execution phase.\n",
        );
        s.push_str("# TYPE xgserve_exec_phase_wait_seconds_total counter\n");
        for (phase, (_, _, us)) in &self.exec_phases {
            s.push_str(&format!(
                "xgserve_exec_phase_wait_seconds_total{{phase=\"{phase}\"}} {}\n",
                *us as f64 / 1e6
            ));
        }
        for (name, help, v) in [
            (
                "xgserve_journal_appends_total",
                "Committed write-ahead journal appends.",
                self.journal_appends,
            ),
            (
                "xgserve_journal_fsyncs_total",
                "fsync calls issued by the journal.",
                self.journal_fsyncs,
            ),
            (
                "xgserve_journal_bytes_total",
                "Frame bytes written to the journal.",
                self.journal_bytes,
            ),
            (
                "xgserve_journal_rotations_total",
                "Journal segment rotations.",
                self.journal_rotations,
            ),
            (
                "xgserve_journal_compactions_total",
                "Compaction passes over closed journal segments.",
                self.journal_compactions,
            ),
            (
                "xgserve_journal_dropped_total",
                "Journal appends that failed to commit.",
                self.journal_dropped,
            ),
            (
                "xgserve_replay_records_total",
                "Journal records replayed at startup.",
                self.replay_records,
            ),
            (
                "xgserve_replay_restored_jobs_total",
                "Jobs restored into the job table by startup replay.",
                self.replay_restored_jobs,
            ),
            (
                "xgserve_replay_resumed_batches_total",
                "Running batches resumed from journaled checkpoints.",
                self.replay_resumed_batches,
            ),
            (
                "xgserve_replay_readmitted_jobs_total",
                "Waiting jobs re-admitted through the grouper by replay.",
                self.replay_readmitted_jobs,
            ),
            (
                "xgserve_replay_torn_bytes_total",
                "Torn-tail bytes truncated during startup replay.",
                self.replay_torn_bytes,
            ),
            (
                "xgserve_cache_hits_total",
                "Submissions served from the artifact store.",
                self.cache_hits,
            ),
            (
                "xgserve_cache_misses_total",
                "Artifact-store consults that found no manifest.",
                self.cache_misses,
            ),
            (
                "xgserve_cache_bytes_saved_total",
                "Outcome bytes served from the artifact store instead of recomputed.",
                self.cache_bytes_saved,
            ),
        ] {
            s.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"));
        }
        s.push_str("# HELP xgserve_replay_seconds_total Wall time spent replaying the journal at startup.\n");
        s.push_str("# TYPE xgserve_replay_seconds_total counter\n");
        s.push_str(&format!(
            "xgserve_replay_seconds_total {}\n",
            self.replay_us as f64 / 1e6
        ));
        for (name, help, v) in [
            ("xgserve_worlds_active", "Ensemble worlds executing right now.", self.worlds_active),
            (
                "xgserve_worlds_peak",
                "High-water mark of concurrently executing worlds.",
                self.worlds_peak,
            ),
            (
                "xgserve_nodes_in_use",
                "Modeled nodes occupied by executing worlds.",
                self.nodes_in_use,
            ),
        ] {
            s.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, help, v) in [
            (
                "xgserve_preemptions_total",
                "Checkpoint-boundary world preemptions.",
                self.preemptions,
            ),
            (
                "xgserve_terminal_evicted_total",
                "Terminal jobs evicted by the bounded retention window.",
                self.terminal_evicted,
            ),
        ] {
            s.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"));
        }
        if !self.tenants.is_empty() {
            for (name, help, get, kind) in [
                (
                    "xgserve_tenant_submitted_total",
                    "Accepted submissions per tenant.",
                    (|t: &TenantCounters| t.submitted) as fn(&TenantCounters) -> u64,
                    "counter",
                ),
                (
                    "xgserve_tenant_done_total",
                    "Jobs completed per tenant.",
                    |t: &TenantCounters| t.done,
                    "counter",
                ),
                (
                    "xgserve_tenant_failed_total",
                    "Jobs failed per tenant.",
                    |t: &TenantCounters| t.failed,
                    "counter",
                ),
                (
                    "xgserve_tenant_cancelled_total",
                    "Jobs cancelled per tenant.",
                    |t: &TenantCounters| t.cancelled,
                    "counter",
                ),
                (
                    "xgserve_tenant_work_done_total",
                    "Simulation steps completed per tenant.",
                    |t: &TenantCounters| t.work_done,
                    "counter",
                ),
                (
                    "xgserve_tenant_cache_hits_total",
                    "Cache-served submissions per tenant.",
                    |t: &TenantCounters| t.cache_hits,
                    "counter",
                ),
                (
                    "xgserve_tenant_preemptions_total",
                    "World preemptions per tenant.",
                    |t: &TenantCounters| t.preemptions,
                    "counter",
                ),
                (
                    "xgserve_tenant_live_jobs",
                    "Live jobs per tenant (quota numerator).",
                    |t: &TenantCounters| t.live_jobs,
                    "gauge",
                ),
                (
                    "xgserve_tenant_live_bytes",
                    "Live deck bytes per tenant (quota numerator).",
                    |t: &TenantCounters| t.live_bytes,
                    "gauge",
                ),
            ] {
                s.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
                for (tenant, t) in &self.tenants {
                    s.push_str(&format!("{name}{{tenant=\"{tenant}\"}} {}\n", get(t)));
                }
            }
        }
        s
    }
}

fn reason_key(reason: FlushReason) -> &'static str {
    match reason {
        FlushReason::Full => "full",
        FlushReason::MemoryBudget => "memory-budget",
        FlushReason::Linger => "linger",
        FlushReason::Drain => "drain",
        FlushReason::Resume => "resume",
        FlushReason::Preempt => "preempt",
    }
}

fn push_map(s: &mut String, entries: impl Iterator<Item = (String, u64)>) {
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{k}\": {v}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_sim::CgyroInput;

    #[test]
    fn savings_track_the_costmodel_law() {
        let dims = CgyroInput::test_small().dims();
        let mut m = Metrics::default();
        m.on_dispatch(3, dims, FlushReason::Full);
        m.on_dispatch(2, dims, FlushReason::Linger);
        let one = xg_costmodel::cmat_total_bytes(dims);
        assert_eq!(m.cmat_saved_bytes, 2 * one + one);
        assert_eq!(m.cmat_unbatched_bytes, 5 * one);
        assert_eq!(m.occupancy[&3], 1);
        assert_eq!(m.occupancy[&2], 1);
        assert_eq!(m.flushes["full"], 1);
        assert_eq!(m.flushes["linger"], 1);
    }

    #[test]
    fn json_has_the_advertised_keys() {
        let dims = CgyroInput::test_small().dims();
        let mut m = Metrics::default();
        m.on_submit();
        m.on_reject(&AdmitError::Draining);
        m.on_dispatch(2, dims, FlushReason::Full);
        m.on_queue_latency_us(7_000);
        let json = m.to_json(&[(JobState::Done, 2), (JobState::Queued, 0)]);
        for key in [
            "\"schema\": \"xg-serve-metrics-v1\"",
            "\"submitted\": 1",
            "\"jobs_by_state\"",
            "\"Done\": 2",
            "\"rejected\": {\"draining\": 1}",
            "\"batch_occupancy\": {\"k=2\": 1}",
            "\"flush_reasons\": {\"full\": 1}",
            "\"cmat_saved_bytes\"",
            "\"exec_phases\"",
            "\"queue_latency_us\": {\"count\": 1, \"sum\": 7000, \"max\": 7000, \"mean\": 7000.000}",
            "\"queue_latency_ms\": {\"count\": 1, \"sum\": 7, \"max\": 7, \"mean\": 7.000}",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }

    #[test]
    fn latency_mean_and_max() {
        let mut m = Metrics::default();
        m.on_queue_latency_us(10_000);
        m.on_queue_latency_us(20_000);
        assert_eq!(m.latency_count, 2);
        assert_eq!(m.latency_max_us, 20_000);
        assert!(m.to_json(&[]).contains("\"mean\": 15.000"));
    }

    #[test]
    fn sub_millisecond_latencies_are_not_rounded_away() {
        // Regression: ms-granular recording turned three fast dispatches
        // into count=3, sum=0, mean=0.0 — indistinguishable from broken
        // timers. Microsecond recording keeps them.
        let mut m = Metrics::default();
        for us in [150, 300, 450] {
            m.on_queue_latency_us(us);
        }
        assert_eq!(m.latency_sum_us, 900);
        let json = m.to_json(&[]);
        assert!(
            json.contains("\"queue_latency_us\": {\"count\": 3, \"sum\": 900, \"max\": 450, \"mean\": 300.000}"),
            "{json}"
        );
        // The derived ms view floors to whole ms but keeps the true mean.
        assert!(
            json.contains("\"queue_latency_ms\": {\"count\": 3, \"sum\": 0, \"max\": 0, \"mean\": 0.300}"),
            "{json}"
        );
    }

    #[test]
    fn empty_registry_snapshot_uses_null_not_zero() {
        // Regression: an empty registry used to report max=0, mean=0.0 and
        // cmat_saved_ratio=0.0 — indistinguishable from genuinely zero
        // latency/savings.
        let m = Metrics::default();
        let json = m.to_json(&[]);
        assert!(json.contains("\"jobs_by_state\": {}"), "{json}");
        assert!(json.contains("\"cmat_saved_ratio\": null"), "{json}");
        assert!(json.contains("\"exec_phases\": {}"), "{json}");
        assert!(
            json.contains("\"queue_latency_us\": {\"count\": 0, \"sum\": 0, \"max\": null, \"mean\": null}"),
            "{json}"
        );
        assert!(
            json.contains("\"queue_latency_ms\": {\"count\": 0, \"sum\": 0, \"max\": null, \"mean\": null}"),
            "{json}"
        );
        // But a real zero-latency observation still reads 0, not null.
        let mut m = Metrics::default();
        m.on_queue_latency_us(0);
        assert!(m.to_json(&[]).contains("\"max\": 0, \"mean\": 0.000"));
    }

    #[test]
    fn exec_phase_breakdown_accumulates_traces() {
        use xg_comm::OpKind;
        let mut m = Metrics::default();
        let rec = |phase: &str, bytes, elapsed_us| OpRecord {
            op: OpKind::AllReduce,
            comm_label: "nv".into(),
            participants: 2,
            members: vec![0, 1],
            bytes,
            phase: phase.into(),
            elapsed_us,
        };
        m.on_batch_traces(&[
            vec![rec("str", 100, 30), rec("coll", 500, 70)],
            vec![rec("str", 100, 50)],
        ]);
        m.on_batch_traces(&[vec![rec("str", 100, 20)]]);
        assert_eq!(m.exec_phases["str"], (3, 300, 100));
        assert_eq!(m.exec_phases["coll"], (1, 500, 70));
        let json = m.to_json(&[]);
        assert!(
            json.contains("\"str\": {\"ops\": 3, \"bytes\": 300, \"wait_us\": 100}"),
            "{json}"
        );
    }

    #[test]
    fn cache_block_reports_hit_rate_or_null() {
        let m = Metrics::default();
        assert!(
            m.to_json(&[]).contains(
                "\"cache\": {\"hits\": 0, \"misses\": 0, \"hit_rate\": null, \"bytes_saved\": 0}"
            ),
            "{}",
            m.to_json(&[])
        );
        let mut m = Metrics::default();
        m.on_cache_miss();
        m.on_cache_hit(4096);
        m.on_cache_hit(4096);
        m.on_cache_miss();
        let json = m.to_json(&[]);
        assert!(
            json.contains(
                "\"cache\": {\"hits\": 2, \"misses\": 2, \"hit_rate\": 0.500000, \"bytes_saved\": 8192}"
            ),
            "{json}"
        );
        let text = m.to_prometheus(&[]);
        assert!(text.contains("xgserve_cache_hits_total 2"), "{text}");
        assert!(text.contains("xgserve_cache_misses_total 2"), "{text}");
        assert!(text.contains("xgserve_cache_bytes_saved_total 8192"), "{text}");
    }

    #[test]
    fn tenant_families_export_in_json_and_prometheus() {
        let mut m = Metrics::default();
        m.on_tenant_submit("acme");
        m.on_tenant_submit("acme");
        m.on_tenant_submit("beta");
        m.on_tenant_terminal("acme", JobState::Done, 200);
        m.on_tenant_terminal("beta", JobState::Failed, 0);
        m.on_tenant_cache_hit("acme");
        m.on_preempt("acme");
        m.on_world_start();
        m.on_world_start();
        m.on_world_end();
        m.on_terminal_evicted(3);
        let mut usage = BTreeMap::new();
        usage.insert("acme".to_string(), TenantUsage { live_jobs: 1, live_bytes: 512 });
        m.set_tenant_usage(&usage);
        let json = m.to_json(&[]);
        assert!(
            json.contains(
                "\"acme\": {\"submitted\": 2, \"done\": 1, \"failed\": 0, \
                 \"cancelled\": 0, \"work_done\": 200, \"cache_hits\": 1, \
                 \"preemptions\": 1, \"live_jobs\": 1, \"live_bytes\": 512}"
            ),
            "{json}"
        );
        assert!(
            json.contains(
                "\"scheduler\": {\"worlds_active\": 1, \"worlds_peak\": 2, \
                 \"nodes_in_use\": 0, \"preemptions\": 1, \"terminal_evicted\": 3}"
            ),
            "{json}"
        );
        // beta has no live work: gauges drop to 0, lifetime counters stay.
        assert!(json.contains("\"beta\": {\"submitted\": 1, \"done\": 0, \"failed\": 1"), "{json}");
        let text = m.to_prometheus(&[]);
        assert!(text.contains("xgserve_tenant_submitted_total{tenant=\"acme\"} 2"), "{text}");
        assert!(text.contains("xgserve_tenant_work_done_total{tenant=\"acme\"} 200"), "{text}");
        assert!(text.contains("xgserve_tenant_live_jobs{tenant=\"beta\"} 0"), "{text}");
        assert!(text.contains("xgserve_worlds_peak 2"), "{text}");
        assert!(text.contains("xgserve_preemptions_total 1"), "{text}");
        assert!(text.contains("xgserve_terminal_evicted_total 3"), "{text}");
        xg_obs::expo::lint_prometheus(&text).expect("must lint clean");
    }

    #[test]
    fn prometheus_exposition_lints_clean() {
        let dims = CgyroInput::test_small().dims();
        let mut m = Metrics::default();
        m.on_submit();
        m.on_dispatch(2, dims, FlushReason::Full);
        m.on_queue_latency_us(2_500);
        m.on_batch_traces(&[vec![OpRecord {
            op: xg_comm::OpKind::AllToAll,
            comm_label: "coll-ens".into(),
            participants: 2,
            members: vec![0, 1],
            bytes: 64,
            phase: "coll".into(),
            elapsed_us: 40,
        }]]);
        let text = m.to_prometheus(&[(JobState::Done, 2)]);
        assert!(text.contains("xgserve_submitted_total 1"), "{text}");
        assert!(text.contains("xgserve_jobs{state=\"Done\"} 2"), "{text}");
        assert!(text.contains("xgserve_batches_total{k=\"2\"} 1"), "{text}");
        assert!(text.contains("xgserve_queue_latency_seconds_sum 0.0025"), "{text}");
        assert!(
            text.contains("xgserve_exec_phase_wait_seconds_total{phase=\"coll\"} 0.00004"),
            "{text}"
        );
        xg_obs::expo::lint_prometheus(&text).expect("must lint clean");
    }
}
