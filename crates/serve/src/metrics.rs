//! Campaign metrics, exported as JSON.
//!
//! The headline series is `cmat_saved_bytes`: for every dispatched batch of
//! size `k` the service stores one constant tensor instead of `k`, saving
//! `(k − 1) ×` the tensor ([`xg_costmodel::memory::cmat_saved_bytes`] — the
//! same law `xgplan` forecasts with, so the serving metrics and the
//! planning forecasts can never drift apart). The occupancy histogram shows
//! how close the batcher gets to the ideal of always-full batches; queue
//! latency shows what that packing costs in waiting.
//!
//! All JSON is hand-rolled (the workspace's serde is a vendored marker-only
//! stub); keys are emitted in a fixed order so snapshots diff cleanly.

use crate::admission::AdmitError;
use crate::batcher::FlushReason;
use crate::job::JobState;
use std::collections::BTreeMap;
use xg_tensor::SimDims;

/// Counter registry. The server updates it under its state lock; `to_json`
/// takes a snapshot of the live job states at export time.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total accepted submissions.
    pub submitted: u64,
    /// Rejections by [`AdmitError::kind`].
    pub rejected: BTreeMap<&'static str, u64>,
    /// Dispatched-batch occupancy histogram: batch size k → batches.
    pub occupancy: BTreeMap<usize, u64>,
    /// Flush triggers by [`FlushReason`].
    pub flushes: BTreeMap<&'static str, u64>,
    /// Total constant-tensor bytes NOT allocated thanks to batching,
    /// summed over dispatched batches.
    pub cmat_saved_bytes: u64,
    /// What the same jobs would have allocated unbatched (k copies per
    /// batch) — the denominator for the savings ratio.
    pub cmat_unbatched_bytes: u64,
    /// Queue-latency (admission → dispatch) accumulators, milliseconds.
    pub latency_count: u64,
    /// Sum of observed latencies.
    pub latency_sum_ms: u64,
    /// Largest observed latency.
    pub latency_max_ms: u64,
}

impl Metrics {
    /// Record an accepted submission.
    pub fn on_submit(&mut self) {
        self.submitted += 1;
    }

    /// Record a rejection.
    pub fn on_reject(&mut self, err: &AdmitError) {
        *self.rejected.entry(err.kind()).or_insert(0) += 1;
    }

    /// Record a dispatched batch of `k` members sharing one tensor of
    /// `dims`, flushed for `reason`.
    pub fn on_dispatch(&mut self, k: usize, dims: SimDims, reason: FlushReason) {
        *self.occupancy.entry(k).or_insert(0) += 1;
        *self.flushes.entry(reason_key(reason)).or_insert(0) += 1;
        self.cmat_saved_bytes += xg_costmodel::cmat_saved_bytes(k, dims);
        self.cmat_unbatched_bytes += k as u64 * xg_costmodel::cmat_total_bytes(dims);
    }

    /// Record one job's queue latency at dispatch.
    pub fn on_queue_latency(&mut self, ms: u64) {
        self.latency_count += 1;
        self.latency_sum_ms += ms;
        self.latency_max_ms = self.latency_max_ms.max(ms);
    }

    /// Serialize, folding in a snapshot of live job states
    /// (`(state, count)` for every [`JobState`]).
    pub fn to_json(&self, jobs_by_state: &[(JobState, usize)]) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"schema\": \"xg-serve-metrics-v1\",\n");
        s.push_str(&format!("  \"submitted\": {},\n", self.submitted));
        s.push_str("  \"jobs_by_state\": {");
        for (i, (state, n)) in jobs_by_state.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{state}\": {n}"));
        }
        s.push_str("},\n");
        s.push_str("  \"rejected\": {");
        push_map(&mut s, self.rejected.iter().map(|(k, v)| (k.to_string(), *v)));
        s.push_str("},\n");
        s.push_str("  \"batch_occupancy\": {");
        push_map(&mut s, self.occupancy.iter().map(|(k, v)| (format!("k={k}"), *v)));
        s.push_str("},\n");
        s.push_str("  \"flush_reasons\": {");
        push_map(&mut s, self.flushes.iter().map(|(k, v)| (k.to_string(), *v)));
        s.push_str("},\n");
        s.push_str(&format!("  \"cmat_saved_bytes\": {},\n", self.cmat_saved_bytes));
        s.push_str(&format!(
            "  \"cmat_unbatched_bytes\": {},\n",
            self.cmat_unbatched_bytes
        ));
        let ratio = if self.cmat_unbatched_bytes == 0 {
            0.0
        } else {
            self.cmat_saved_bytes as f64 / self.cmat_unbatched_bytes as f64
        };
        s.push_str(&format!("  \"cmat_saved_ratio\": {ratio:.6},\n"));
        s.push_str(&format!(
            "  \"queue_latency_ms\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}}}\n",
            self.latency_count,
            self.latency_sum_ms,
            self.latency_max_ms,
            if self.latency_count == 0 {
                0.0
            } else {
                self.latency_sum_ms as f64 / self.latency_count as f64
            }
        ));
        s.push_str("}\n");
        s
    }
}

fn reason_key(reason: FlushReason) -> &'static str {
    match reason {
        FlushReason::Full => "full",
        FlushReason::MemoryBudget => "memory-budget",
        FlushReason::Linger => "linger",
        FlushReason::Drain => "drain",
    }
}

fn push_map(s: &mut String, entries: impl Iterator<Item = (String, u64)>) {
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{k}\": {v}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_sim::CgyroInput;

    #[test]
    fn savings_track_the_costmodel_law() {
        let dims = CgyroInput::test_small().dims();
        let mut m = Metrics::default();
        m.on_dispatch(3, dims, FlushReason::Full);
        m.on_dispatch(2, dims, FlushReason::Linger);
        let one = xg_costmodel::cmat_total_bytes(dims);
        assert_eq!(m.cmat_saved_bytes, 2 * one + one);
        assert_eq!(m.cmat_unbatched_bytes, 5 * one);
        assert_eq!(m.occupancy[&3], 1);
        assert_eq!(m.occupancy[&2], 1);
        assert_eq!(m.flushes["full"], 1);
        assert_eq!(m.flushes["linger"], 1);
    }

    #[test]
    fn json_has_the_advertised_keys() {
        let dims = CgyroInput::test_small().dims();
        let mut m = Metrics::default();
        m.on_submit();
        m.on_reject(&AdmitError::Draining);
        m.on_dispatch(2, dims, FlushReason::Full);
        m.on_queue_latency(7);
        let json = m.to_json(&[(JobState::Done, 2), (JobState::Queued, 0)]);
        for key in [
            "\"schema\": \"xg-serve-metrics-v1\"",
            "\"submitted\": 1",
            "\"jobs_by_state\"",
            "\"Done\": 2",
            "\"rejected\": {\"draining\": 1}",
            "\"batch_occupancy\": {\"k=2\": 1}",
            "\"flush_reasons\": {\"full\": 1}",
            "\"cmat_saved_bytes\"",
            "\"queue_latency_ms\"",
            "\"max\": 7",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }

    #[test]
    fn latency_mean_and_max() {
        let mut m = Metrics::default();
        m.on_queue_latency(10);
        m.on_queue_latency(20);
        assert_eq!(m.latency_count, 2);
        assert_eq!(m.latency_max_ms, 20);
        assert!(m.to_json(&[]).contains("\"mean\": 15.000"));
    }
}
