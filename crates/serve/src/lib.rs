//! xg-serve: a cmat-key-aware ensemble campaign service.
//!
//! Gyrokinetic campaigns are streams of many related CGYRO jobs. The paper's
//! observation — members sharing the collisional constant tensor structure
//! can run as one XGYRO ensemble, storing and exchanging **one** `cmat`
//! instead of k — turns job scheduling into a grouping problem: the more
//! compatible jobs run together, the more memory and collective traffic the
//! campaign saves. This crate is the long-running service that does the
//! grouping automatically:
//!
//! * **admission** ([`AdmitError`], [`check_spec`]) — a bounded queue with
//!   typed, synchronous rejection (invalid deck, misaligned steps, decks no
//!   allocation can hold, backpressure when full);
//! * **batching** ([`Grouper`]) — jobs group by [`BatchKey`] (the
//!   `cmat_key` plus the lockstep execution parameters) into maximal
//!   batches, capped by the operator's `k_max` *and* the planner's memory
//!   budget ([`xg_cluster::max_feasible_k`]), flushed when full, when the
//!   linger deadline expires, or on drain;
//! * **execution** ([`CampaignServer`]) — a bounded worker pool runs each
//!   batch as one XGYRO ensemble via the resilient checkpointed runner
//!   ([`xgyro_core::run_xgyro_resilient_from`]): a faulted member is
//!   evicted and marked `Failed` without killing its batch-mates, and
//!   cancellations preempt at checkpoint boundaries. Execution is
//!   **elastic**: each batch asks for the smallest feasible world
//!   ([`xg_cluster::min_nodes_unbalanced`]) and as many worlds run
//!   concurrently as the node budget holds;
//! * **multi-tenancy** ([`tenant`], [`sched`]) — submissions carry a
//!   tenant identity (optionally authenticated against a `--tenants`
//!   roster), admission enforces per-tenant live-job/byte quotas, and the
//!   dispatch queue divides machine time between tenants by weighted
//!   deficit round-robin with priority lanes that preempt lower-lane
//!   worlds at checkpoint boundaries;
//! * **observability** ([`JobState`] lifecycle events via poll or
//!   subscription, [`Metrics`] as JSON — including the batch-occupancy
//!   histogram and `cmat` bytes saved, computed with the same
//!   [`xg_costmodel`] law `xgplan` forecasts with);
//! * **wire protocol** ([`wire`]) — the line protocol served by the
//!   `xgqueued` binary and spoken by the `xgq` client;
//! * **durability** ([`journal`]) — a CRC-framed, fsynced write-ahead log
//!   of every job lifecycle transition, replayed on startup so a `kill -9`
//!   loses no acknowledged job; clients ride through the restart with
//!   idempotency tokens and the jittered [`wire::RetryingClient`];
//! * **result cache** ([`artifacts`]) — completed batch members are
//!   published into an [`xg_artifact::ArtifactStore`] keyed by canonical
//!   deck hash, and admission serves a re-submitted byte-identical deck
//!   straight to `Done` (journaled as a `CacheHit` record) without
//!   executing a single simulation step.

#![warn(missing_docs)]

pub mod admission;
pub mod artifacts;
pub mod batcher;
pub mod job;
pub mod journal;
pub mod metrics;
pub mod sched;
pub mod server;
pub mod tenant;
pub mod wire;

pub use admission::{check_spec, AdmitError};
pub use artifacts::{decode_outcome, encode_outcome, ArtifactConfig, PublishContext};
pub use batcher::{BatchKey, FlushReason, Grouper, GrouperConfig, Placement};
pub use job::{BatchId, JobEvent, JobId, JobOutcome, JobSpec, JobState, JobStatus};
pub use journal::{
    Journal, JournalConfig, JournalError, JournalRecord, JournalStats, Replay, ReplayTable,
    ServeFaultKind, ServeFaultPlan, ServeFaultSpec,
};
pub use metrics::{Metrics, TenantCounters};
pub use sched::{DispatchQueue, DEFAULT_QUANTUM};
pub use server::{CacheStatus, CampaignServer, DryRun, RecoveryReport, ServerConfig};
pub use tenant::{TenantDirectory, TenantSpec, TenantUsage, DEFAULT_TENANT};
pub use wire::{Client, RetryPolicy, RetryingClient};
