//! Job identity, specification, and the per-job lifecycle state machine.
//!
//! Every submission moves through a fixed state graph:
//!
//! ```text
//!   Queued ──► Batched ──► Running ──► Done
//!     │           │           ├─────► Failed
//!     │           │           └─────► Cancelled   (at a checkpoint boundary)
//!     └───────────┴─────────────────► Cancelled   (before dispatch)
//! ```
//!
//! Transitions outside this graph are bugs, not data — [`JobState::can_transition`]
//! is enforced by the server on every state change.

use std::time::Instant;
use xg_sim::CgyroInput;

/// Opaque job identity, unique per server instance. Renders as `job-N`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

impl std::str::FromStr for JobId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let n = s
            .strip_prefix("job-")
            .unwrap_or(s)
            .parse::<u64>()
            .map_err(|_| format!("'{s}' is not a job id (expected job-N)"))?;
        Ok(JobId(n))
    }
}

/// Batch identity. Renders as `batch-N`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BatchId(pub u64);

impl std::fmt::Display for BatchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch-{}", self.0)
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Admitted, waiting to be placed into a batch.
    Queued,
    /// Placed in a pending (not yet dispatched) batch.
    Batched,
    /// Its batch is executing on a worker.
    Running,
    /// Finished successfully; results are available.
    Done,
    /// The member faulted (or the whole batch failed) — evicted without
    /// killing its batch-mates.
    Failed,
    /// Cancelled before dispatch, or preempted at a checkpoint boundary.
    Cancelled,
}

impl JobState {
    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }

    /// Whether `self → to` is a legal lifecycle edge.
    pub fn can_transition(self, to: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, to),
            (Queued, Batched)
                | (Queued, Cancelled)
                | (Batched, Running)
                | (Batched, Cancelled)
                | (Running, Done)
                | (Running, Failed)
                | (Running, Cancelled)
        )
    }

    /// Every state, for metrics enumeration.
    pub const ALL: [JobState; 6] = [
        JobState::Queued,
        JobState::Batched,
        JobState::Running,
        JobState::Done,
        JobState::Failed,
        JobState::Cancelled,
    ];
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JobState::Queued => "Queued",
            JobState::Batched => "Batched",
            JobState::Running => "Running",
            JobState::Done => "Done",
            JobState::Failed => "Failed",
            JobState::Cancelled => "Cancelled",
        })
    }
}

impl std::str::FromStr for JobState {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Queued" => Ok(JobState::Queued),
            "Batched" => Ok(JobState::Batched),
            "Running" => Ok(JobState::Running),
            "Done" => Ok(JobState::Done),
            "Failed" => Ok(JobState::Failed),
            "Cancelled" => Ok(JobState::Cancelled),
            other => Err(format!("unknown job state '{other}'")),
        }
    }
}

/// What a client submits: a deck, how long to run it, and a label.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The full simulation input. Its [`CgyroInput::cmat_key`] decides
    /// which jobs this one can share a batch (and a constant tensor) with.
    pub input: CgyroInput,
    /// Time steps to run.
    pub steps: usize,
    /// Free-form label echoed in status output (no whitespace).
    pub tag: String,
    /// Tenant the job is attributed to — the unit of quota enforcement
    /// and fair-share scheduling (see [`crate::tenant`]). Resolved against
    /// the daemon's [`crate::TenantDirectory`] at admission.
    pub tenant: String,
}

impl JobSpec {
    /// A spec with an empty tag, attributed to the default tenant.
    pub fn new(input: CgyroInput, steps: usize) -> Self {
        Self {
            input,
            steps,
            tag: String::new(),
            tenant: crate::tenant::DEFAULT_TENANT.to_string(),
        }
    }

    /// Attribute the spec to `tenant`.
    pub fn with_tenant(mut self, tenant: &str) -> Self {
        self.tenant = tenant.to_string();
        self
    }
}

/// One state-change notification delivered to subscribers.
#[derive(Clone, Debug)]
pub struct JobEvent {
    /// The job.
    pub job: JobId,
    /// Its new state.
    pub state: JobState,
    /// Human-readable context (batch id, failure cause, …).
    pub detail: String,
}

/// A poll-style snapshot of one job.
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// The job.
    pub id: JobId,
    /// Submitted label.
    pub tag: String,
    /// Tenant the job is attributed to.
    pub tenant: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// The deck's cmat key (what the batcher groups on).
    pub cmat_key: u64,
    /// The batch it was placed into, once batched.
    pub batch: Option<BatchId>,
    /// Context for the current state (failure cause, eviction note, …).
    pub detail: String,
    /// Milliseconds from admission to dispatch (None until dispatched).
    pub queue_latency_ms: Option<u64>,
}

/// Final per-job output, retained for `Done` jobs.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Final global distribution (str layout), bitwise identical to running
    /// the same deck through `run_xgyro` in an equivalent ensemble.
    pub h: xg_tensor::Tensor3<xg_linalg::Complex64>,
    /// End-of-run diagnostics.
    pub diagnostics: xg_sim::Diagnostics,
    /// Steps actually executed.
    pub steps: usize,
}

/// Internal per-job record (server-side bookkeeping).
#[derive(Debug)]
pub(crate) struct Job {
    pub id: JobId,
    pub spec: JobSpec,
    pub state: JobState,
    pub cmat_key: u64,
    pub batch: Option<BatchId>,
    pub detail: String,
    pub cancel_requested: bool,
    /// Admission time as a monotonic instant. For jobs restored from the
    /// journal this is back-dated by the journaled wall-clock age, so
    /// queue-latency accounting spans the crash instead of restarting at
    /// replay time. (The wall-clock submit time and the idempotency token
    /// live in the journal's `Submitted` record and the server's token map,
    /// not here.)
    pub submitted_at: Instant,
    pub dispatched_at: Option<Instant>,
    pub outcome: Option<JobOutcome>,
    /// The idempotency token this job was submitted under, if any —
    /// retained so terminal-job eviction can drop the matching dedup
    /// entry instead of leaking it.
    pub token: Option<String>,
    /// Canonical deck-text size, counted against the tenant's live-byte
    /// quota while the job is non-terminal.
    pub deck_bytes: u64,
    /// For jobs already `Done` before a restart: the journaled result
    /// summary `(steps, h_hash, diag_bits)`. The full tensor is gone with
    /// the old process, but `RESULT` stays answerable — and
    /// bitwise-checkable — from this.
    pub restored_summary: Option<(u64, u64, [u64; 4])>,
    pub subscribers: Vec<std::sync::mpsc::Sender<JobEvent>>,
}

impl Job {
    pub(crate) fn status(&self) -> JobStatus {
        JobStatus {
            id: self.id,
            tag: self.spec.tag.clone(),
            tenant: self.spec.tenant.clone(),
            state: self.state,
            cmat_key: self.cmat_key,
            batch: self.batch,
            detail: self.detail.clone(),
            queue_latency_ms: self
                .dispatched_at
                .map(|d| d.duration_since(self.submitted_at).as_millis() as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_graph_is_exactly_the_documented_one() {
        use JobState::*;
        let legal = [
            (Queued, Batched),
            (Queued, Cancelled),
            (Batched, Running),
            (Batched, Cancelled),
            (Running, Done),
            (Running, Failed),
            (Running, Cancelled),
        ];
        for a in JobState::ALL {
            for b in JobState::ALL {
                let expect = legal.contains(&(a, b));
                assert_eq!(a.can_transition(b), expect, "{a} -> {b}");
            }
        }
        // Terminal states have no outgoing edges at all.
        for t in [Done, Failed, Cancelled] {
            assert!(t.is_terminal());
            for b in JobState::ALL {
                assert!(!t.can_transition(b), "{t} must be terminal");
            }
        }
    }

    #[test]
    fn ids_roundtrip_through_display() {
        let id = JobId(42);
        assert_eq!(id.to_string(), "job-42");
        assert_eq!("job-42".parse::<JobId>().unwrap(), id);
        assert_eq!("42".parse::<JobId>().unwrap(), id);
        assert!("job-x".parse::<JobId>().is_err());
        assert_eq!(BatchId(3).to_string(), "batch-3");
    }

    #[test]
    fn states_roundtrip_through_display() {
        for s in JobState::ALL {
            assert_eq!(s.to_string().parse::<JobState>().unwrap(), s);
        }
        assert!("queued".parse::<JobState>().is_err());
    }
}
