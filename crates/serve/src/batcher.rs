//! The cmat-key grouper: forms maximal shared-cmat batches from a job
//! stream.
//!
//! This is the serving-side analogue of the paper's Figure-3 communicator
//! split: two jobs may run as members of one XGYRO ensemble **iff** they
//! agree on everything the collisional constant tensor depends on —
//! exactly [`CgyroInput::cmat_key`] — plus the lockstep execution
//! parameters the ensemble runner additionally requires (reporting cadence
//! and step count). The grouper keys open batches on that triple, appends
//! compatible jobs in submission order, and flushes a batch when it
//! reaches its size cap, its linger deadline expires, or the server
//! drains.
//!
//! The size cap is `min(k_max, planner budget)`: [`xg_cluster::max_feasible_k`]
//! bounds the batch to the largest ensemble the configured node allocation
//! can actually hold in memory (for the `nl03c`-like deck on 32
//! Frontier-like nodes that is the paper's `k = 8` saturation point), and
//! the flush reason records *which* limit fired.
//!
//! The same code path answers `xgq submit --dry-run`: [`Grouper::would_join`]
//! computes the placement without mutating anything.

use crate::job::{BatchId, JobId, JobSpec};
use std::time::{Duration, Instant};
use xg_costmodel::MachineModel;
use xg_sim::CgyroInput;

/// What a batch groups on. Jobs with equal keys — and only those — may
/// share one constant tensor *and* step in lockstep as one ensemble.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BatchKey {
    /// The cmat dependency key ([`CgyroInput::cmat_key`]).
    pub cmat_key: u64,
    /// Steps per reporting interval — the ensemble admission requirement
    /// the cmat key deliberately ignores (`EnsembleError::CadenceMismatch`).
    pub cadence: usize,
    /// Total steps requested: ensemble members run the same step count.
    pub steps: usize,
    /// [`crate::tenant::tenant_key`] of the submitting tenant. Batches are
    /// tenant-pure: fair-share attribution and quota release are per batch
    /// member's tenant, and isolation forbids co-scheduling strangers in
    /// one ensemble world. ([`PendingBatch`] also stores the exact name;
    /// placement compares both, so a hash collision cannot mix tenants.)
    pub tenant: u64,
}

impl BatchKey {
    /// The key of a submission.
    pub fn of(spec: &JobSpec) -> Self {
        Self {
            cmat_key: spec.input.cmat_key(),
            cadence: spec.input.steps_per_report,
            steps: spec.steps,
            tenant: crate::tenant::tenant_key(&spec.tenant),
        }
    }
}

/// Why a batch left the pending set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// Reached the configured `k_max`.
    Full,
    /// Reached the memory-budget cap (the planner's largest feasible
    /// ensemble on the configured allocation, smaller than `k_max`).
    MemoryBudget,
    /// Linger deadline expired with the batch still open.
    Linger,
    /// The server drained/shut down with the batch still open.
    Drain,
    /// The batch was rebuilt from the durability journal after a restart
    /// (not flushed by the grouper at all).
    Resume,
    /// The batch was preempted at a checkpoint boundary by
    /// higher-priority work and re-queued mid-run (not flushed by the
    /// grouper at all).
    Preempt,
}

impl std::fmt::Display for FlushReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FlushReason::Full => "full",
            FlushReason::MemoryBudget => "memory-budget",
            FlushReason::Linger => "linger",
            FlushReason::Drain => "drain",
            FlushReason::Resume => "resume",
            FlushReason::Preempt => "preempt",
        })
    }
}

/// An open (not yet flushed) batch.
#[derive(Clone, Debug)]
pub struct PendingBatch {
    /// Batch identity.
    pub id: BatchId,
    /// The shared key.
    pub key: BatchKey,
    /// The tenant every member belongs to (batches are tenant-pure).
    pub tenant: String,
    /// Member jobs in submission order.
    pub jobs: Vec<JobId>,
    /// Effective size cap for this batch (`min(k_max, planner budget)`).
    pub k_cap: usize,
    /// When the batch was opened; it flushes at `opened_at + linger`.
    pub opened_at: Instant,
}

/// A batch handed to the dispatch queue.
#[derive(Clone, Debug)]
pub struct FlushedBatch {
    /// The batch, with its final membership.
    pub batch: PendingBatch,
    /// What triggered the flush.
    pub reason: FlushReason,
}

/// Where a (hypothetical) submission would land — the dry-run answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Joins an open batch: its id, current occupancy, and cap.
    Joins {
        /// The open batch.
        batch: BatchId,
        /// Members already in it.
        occupancy: usize,
        /// Its size cap.
        k_cap: usize,
    },
    /// Opens a new batch (no compatible open batch exists).
    Opens {
        /// The cap the new batch would get (always ≥ 1).
        k_cap: usize,
    },
    /// No feasible placement exists at all: not even a `k = 1` ensemble
    /// of this deck fits the modeled allocation. A real submission would
    /// be rejected at admission (`oversized-grid`), so the dry-run
    /// predicts the rejection instead of inventing a batch.
    Infeasible,
}

/// Grouper configuration.
#[derive(Clone, Debug)]
pub struct GrouperConfig {
    /// Hard upper bound on batch size.
    pub k_max: usize,
    /// How long an underfull batch waits for compatible jobs before it is
    /// flushed anyway.
    pub linger: Duration,
    /// Modeled node allocation backing the memory budget.
    pub nodes: usize,
    /// Machine model pricing the memory budget.
    pub machine: MachineModel,
}

/// The grouper. Purely synchronous — the server calls it under its lock,
/// tests call it directly.
#[derive(Debug)]
pub struct Grouper {
    cfg: GrouperConfig,
    pending: Vec<PendingBatch>,
    next_batch: u64,
}

impl Grouper {
    /// New empty grouper.
    pub fn new(cfg: GrouperConfig) -> Self {
        assert!(cfg.k_max >= 1, "k_max must be at least 1");
        Self { cfg, pending: Vec::new(), next_batch: 0 }
    }

    /// Advance the batch-id counter to at least `next`. Journal recovery
    /// calls this so batches formed after a restart never reuse an id a
    /// previous life already journaled.
    pub fn seed_next_batch(&mut self, next: u64) {
        self.next_batch = self.next_batch.max(next);
    }

    /// The effective batch-size cap for a deck: `k_max` clamped to the
    /// largest ensemble the modeled allocation can hold
    /// ([`xg_cluster::max_feasible_k_unbalanced`] — grid admission in
    /// unbalanced mode, so a deck whose dims don't divide evenly is still
    /// batched as long as a ragged coll split fits). Returns 0 when not
    /// even one member fits — such decks must be rejected at admission.
    pub fn k_cap_for(&self, input: &CgyroInput) -> usize {
        xg_cluster::max_feasible_k_unbalanced(
            input,
            self.cfg.nodes,
            &self.cfg.machine,
            self.cfg.k_max,
        )
    }

    /// Open batches (for introspection/status).
    pub fn pending(&self) -> &[PendingBatch] {
        &self.pending
    }

    /// Dry-run placement: where would `spec` land *right now*? Identical
    /// logic to [`Grouper::place`], without mutating the pending set —
    /// including agreement with admission: a deck for which not even
    /// `k = 1` fits reports [`Placement::Infeasible`], exactly where a
    /// real submission would draw the `oversized-grid` rejection.
    pub fn would_join(&self, spec: &JobSpec) -> Placement {
        let key = BatchKey::of(spec);
        match self
            .pending
            .iter()
            .find(|b| b.key == key && b.tenant == spec.tenant && b.jobs.len() < b.k_cap)
        {
            Some(b) => {
                Placement::Joins { batch: b.id, occupancy: b.jobs.len(), k_cap: b.k_cap }
            }
            None => match self.k_cap_for(&spec.input) {
                0 => Placement::Infeasible,
                k_cap => Placement::Opens { k_cap },
            },
        }
    }

    /// Place an admitted job. Appends to the open batch with the same key
    /// (preserving submission order) or opens a new one; when the batch
    /// reaches its cap it is flushed immediately and returned.
    pub fn place(
        &mut self,
        id: JobId,
        spec: &JobSpec,
        now: Instant,
    ) -> (BatchId, Option<FlushedBatch>) {
        let key = BatchKey::of(spec);
        let pos = self
            .pending
            .iter()
            .position(|b| b.key == key && b.tenant == spec.tenant && b.jobs.len() < b.k_cap);
        let pos = match pos {
            Some(p) => p,
            None => {
                let k_cap = self.k_cap_for(&spec.input);
                assert!(k_cap >= 1, "admission must reject decks with no feasible plan");
                self.pending.push(PendingBatch {
                    id: BatchId(self.next_batch),
                    key,
                    tenant: spec.tenant.clone(),
                    jobs: Vec::new(),
                    k_cap,
                    opened_at: now,
                });
                self.next_batch += 1;
                self.pending.len() - 1
            }
        };
        self.pending[pos].jobs.push(id);
        let batch_id = self.pending[pos].id;
        let flushed = if self.pending[pos].jobs.len() >= self.pending[pos].k_cap {
            // Order-preserving removal: `pending` stays in batch-open
            // order, so linger expiry and later placements see batches
            // oldest-first (swap_remove would silently scramble that).
            let batch = self.pending.remove(pos);
            let reason = if batch.k_cap < self.cfg.k_max {
                FlushReason::MemoryBudget
            } else {
                FlushReason::Full
            };
            Some(FlushedBatch { batch, reason })
        } else {
            None
        };
        (batch_id, flushed)
    }

    /// Flush every batch whose linger deadline has passed, oldest-open
    /// first. Single pass: expired batches are partitioned out rather
    /// than `Vec::remove`d one by one.
    pub fn expired(&mut self, now: Instant) -> Vec<FlushedBatch> {
        let linger = self.cfg.linger;
        let mut out = Vec::new();
        let mut kept = Vec::with_capacity(self.pending.len());
        for batch in self.pending.drain(..) {
            if now.duration_since(batch.opened_at) >= linger {
                out.push(FlushedBatch { batch, reason: FlushReason::Linger });
            } else {
                kept.push(batch);
            }
        }
        self.pending = kept;
        out
    }

    /// Flush everything (drain/shutdown).
    pub fn flush_all(&mut self) -> Vec<FlushedBatch> {
        self.pending
            .drain(..)
            .map(|batch| FlushedBatch { batch, reason: FlushReason::Drain })
            .collect()
    }

    /// The earliest linger deadline among open batches, if any — what the
    /// batcher thread sleeps until.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.pending.iter().map(|b| b.opened_at + self.cfg.linger).min()
    }

    /// Remove a cancelled job from its open batch (a not-yet-flushed batch
    /// is preemptible). Empty batches are dropped. Returns true when the
    /// job was found and removed.
    pub fn remove_job(&mut self, batch: BatchId, job: JobId) -> bool {
        let Some(pos) = self.pending.iter().position(|b| b.id == batch) else {
            return false;
        };
        let jobs = &mut self.pending[pos].jobs;
        let Some(jpos) = jobs.iter().position(|j| *j == job) else {
            return false;
        };
        jobs.remove(jpos);
        if jobs.is_empty() {
            self.pending.remove(pos);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_sim::CgyroInput;

    fn cfg(k_max: usize) -> GrouperConfig {
        GrouperConfig {
            k_max,
            linger: Duration::from_millis(100),
            // 2 small-cluster nodes = 8 ranks: every power-of-two k up to 8
            // has a valid, memory-feasible plan for the tiny test decks.
            nodes: 2,
            machine: MachineModel::small_cluster(),
        }
    }

    fn spec(input: &CgyroInput, steps: usize) -> JobSpec {
        JobSpec::new(input.clone(), steps)
    }

    #[test]
    fn identical_keys_fill_one_batch_then_flush_full() {
        let mut g = Grouper::new(cfg(2));
        let base = CgyroInput::test_small();
        let now = Instant::now();
        let (b0, f0) = g.place(JobId(0), &spec(&base.with_gradients(1.0, 2.0), 10), now);
        assert!(f0.is_none());
        let (b1, f1) = g.place(JobId(1), &spec(&base.with_gradients(2.0, 4.0), 10), now);
        assert_eq!(b0, b1);
        let flushed = f1.expect("k_max reached");
        assert_eq!(flushed.reason, FlushReason::Full);
        assert_eq!(flushed.batch.jobs, vec![JobId(0), JobId(1)]);
        assert!(g.pending().is_empty());
    }

    #[test]
    fn different_keys_never_share_a_batch() {
        let mut g = Grouper::new(cfg(8));
        let base = CgyroInput::test_small();
        let mut hot = base.clone();
        hot.nu_ee *= 2.0;
        let now = Instant::now();
        let (b0, _) = g.place(JobId(0), &spec(&base, 10), now);
        let (b1, _) = g.place(JobId(1), &spec(&hot, 10), now);
        assert_ne!(b0, b1);
        assert_eq!(g.pending().len(), 2);
    }

    #[test]
    fn cadence_and_steps_split_batches_despite_equal_cmat_key() {
        let mut g = Grouper::new(cfg(8));
        let base = CgyroInput::test_small();
        let mut other_cadence = base.clone();
        other_cadence.steps_per_report = 5;
        assert_eq!(other_cadence.cmat_key(), base.cmat_key());
        let now = Instant::now();
        let (b0, _) = g.place(JobId(0), &spec(&base, 10), now);
        let (b1, _) = g.place(JobId(1), &spec(&other_cadence, 10), now);
        let (b2, _) = g.place(JobId(2), &spec(&base, 20), now);
        assert_ne!(b0, b1, "cadence mismatch cannot step in lockstep");
        assert_ne!(b0, b2, "step-count mismatch cannot run as one job");
    }

    #[test]
    fn linger_expiry_flushes_underfull_batches() {
        let mut g = Grouper::new(cfg(8));
        let base = CgyroInput::test_small();
        let t0 = Instant::now();
        g.place(JobId(0), &spec(&base, 10), t0);
        assert!(g.expired(t0).is_empty(), "deadline not reached yet");
        let later = t0 + Duration::from_millis(150);
        let flushed = g.expired(later);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].reason, FlushReason::Linger);
        assert_eq!(g.next_deadline(), None);
    }

    #[test]
    fn dry_run_matches_real_placement() {
        let mut g = Grouper::new(cfg(4));
        let base = CgyroInput::test_small();
        let s = spec(&base, 10);
        assert_eq!(g.would_join(&s), Placement::Opens { k_cap: 4 });
        let now = Instant::now();
        let (b0, _) = g.place(JobId(0), &s, now);
        assert_eq!(
            g.would_join(&s),
            Placement::Joins { batch: b0, occupancy: 1, k_cap: 4 }
        );
        // A different key still opens fresh.
        let mut hot = base.clone();
        hot.nu_ee *= 2.0;
        assert_eq!(g.would_join(&spec(&hot, 10)), Placement::Opens { k_cap: 4 });
    }

    #[test]
    fn memory_budget_caps_the_batch_below_k_max() {
        // The paper's setup, analytically: nl03c on the 32-node minimum
        // allocation saturates at k = 8 even when the operator allows 16.
        let g = Grouper::new(GrouperConfig {
            k_max: 16,
            linger: Duration::from_millis(100),
            nodes: 32,
            machine: MachineModel::frontier_like(),
        });
        let big = CgyroInput::nl03c_like();
        assert_eq!(g.k_cap_for(&big), 8);
        let mut g = g;
        let now = Instant::now();
        let mut flushed = None;
        for i in 0..8 {
            let (_, f) = g.place(JobId(i), &spec(&big.with_gradients(1.0 + i as f64, 2.5), 10), now);
            flushed = f;
        }
        let f = flushed.expect("flushes at the budget cap");
        assert_eq!(f.reason, FlushReason::MemoryBudget);
        assert_eq!(f.batch.jobs.len(), 8);
    }

    #[test]
    fn dry_run_reports_infeasibility_like_admission_rejects() {
        // The would_join / admit agreement property (ISSUE satellite): a
        // deck for which not even k = 1 fits must dry-run as Infeasible —
        // never as `Opens { k_cap: 0 }`, which used to predict a join for
        // a submission the server would reject as `oversized-grid`.
        let g = Grouper::new(cfg(4)); // 2 small-cluster nodes
        let big = CgyroInput::nl03c_like(); // needs >= 32 frontier nodes
        assert_eq!(g.k_cap_for(&big), 0, "precondition: no feasible plan");
        assert_eq!(g.would_join(&spec(&big, 10)), Placement::Infeasible);
        // And a feasible deck never reports Infeasible.
        let small = CgyroInput::test_small();
        assert!(matches!(g.would_join(&spec(&small, 10)), Placement::Opens { k_cap } if k_cap >= 1));
    }

    #[test]
    fn flush_preserves_fifo_order_of_remaining_batches() {
        // Regression (ISSUE satellite): flushing a full batch used
        // swap_remove, which moved the newest open batch into the flushed
        // slot and broke oldest-batch-first ordering for linger expiry.
        let mut g = Grouper::new(cfg(2));
        let base = CgyroInput::test_small();
        let mk = |nu: f64| {
            let mut d = base.clone();
            d.nu_ee = nu;
            d
        };
        let t0 = Instant::now();
        let (a, _) = g.place(JobId(0), &spec(&mk(0.1), 10), t0);
        let (b, _) = g.place(JobId(1), &spec(&mk(0.2), 10), t0 + Duration::from_millis(1));
        let (c, _) = g.place(JobId(2), &spec(&mk(0.3), 10), t0 + Duration::from_millis(2));
        // Fill batch A (k_cap 2): it flushes out of position 0.
        let (a2, flushed) = g.place(JobId(3), &spec(&mk(0.1), 10), t0 + Duration::from_millis(3));
        assert_eq!(a, a2);
        assert!(flushed.is_some());
        // The survivors must still be in open order: B before C.
        let order: Vec<BatchId> = g.pending().iter().map(|p| p.id).collect();
        assert_eq!(order, vec![b, c], "flush must not scramble pending order");
        // And linger expiry flushes them oldest-open first.
        let out = g.expired(t0 + Duration::from_secs(1));
        let flushed_order: Vec<BatchId> = out.iter().map(|f| f.batch.id).collect();
        assert_eq!(flushed_order, vec![b, c]);
    }

    #[test]
    fn tenants_never_share_a_batch() {
        // Batches are tenant-pure even when every physics parameter
        // matches: isolation and per-tenant attribution both require it.
        let mut g = Grouper::new(cfg(8));
        let base = CgyroInput::test_small();
        let now = Instant::now();
        let (b0, _) = g.place(JobId(0), &spec(&base, 10).with_tenant("alice"), now);
        let (b1, _) = g.place(JobId(1), &spec(&base, 10).with_tenant("bob"), now);
        let (b2, _) = g.place(JobId(2), &spec(&base, 10).with_tenant("alice"), now);
        assert_ne!(b0, b1, "tenant purity");
        assert_eq!(b0, b2, "same tenant still co-batches");
        assert_eq!(g.pending().iter().map(|p| p.tenant.as_str()).collect::<Vec<_>>(),
                   vec!["alice", "bob"]);
    }

    #[test]
    fn cancellation_preempts_open_batches() {
        let mut g = Grouper::new(cfg(8));
        let base = CgyroInput::test_small();
        let now = Instant::now();
        let (b, _) = g.place(JobId(0), &spec(&base, 10), now);
        g.place(JobId(1), &spec(&base, 10), now);
        assert!(g.remove_job(b, JobId(0)));
        assert_eq!(g.pending()[0].jobs, vec![JobId(1)]);
        assert!(g.remove_job(b, JobId(1)));
        assert!(g.pending().is_empty(), "empty batches are dropped");
        assert!(!g.remove_job(b, JobId(1)), "already gone");
    }
}
