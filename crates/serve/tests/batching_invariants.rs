//! Property tests of the grouper's batching invariants.
//!
//! The three contract properties (ISSUE satellite):
//!
//! 1. jobs with differing [`BatchKey`]s are **never** co-batched — a batch
//!    executes as one XGYRO ensemble, and mixed keys cannot share `cmat`;
//! 2. jobs with identical keys are **always** co-batched up to the
//!    effective cap — a new batch opens only when every open key-mate
//!    batch is full;
//! 3. submission order is preserved — within a batch, and across the
//!    successive batches of one key.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use xg_costmodel::MachineModel;
use xg_serve::{BatchId, BatchKey, Grouper, GrouperConfig, JobId, JobSpec, Placement};
use xg_sim::CgyroInput;

/// A deck pool with `n_keys` distinct cmat keys (nu_ee variants).
fn deck(key: usize) -> CgyroInput {
    let mut d = CgyroInput::test_small();
    d.nu_ee = 0.1 * (1 + key) as f64;
    d
}

fn grouper(k_max: usize) -> Grouper {
    Grouper::new(GrouperConfig {
        k_max,
        // Long linger: these tests exercise placement, not expiry.
        linger: Duration::from_secs(3600),
        nodes: 2,
        machine: MachineModel::small_cluster(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn batches_are_key_pure_full_and_ordered(
        k_max in 1usize..6,
        choices in prop::collection::vec((0usize..3, 0usize..2), 1..40),
    ) {
        let mut g = grouper(k_max);
        let now = Instant::now();
        let mut key_of: BTreeMap<JobId, BatchKey> = BTreeMap::new();
        let mut batch_of: BTreeMap<JobId, BatchId> = BTreeMap::new();
        let mut closed: Vec<(BatchId, Vec<JobId>)> = Vec::new();
        for (i, (key, steps_choice)) in choices.iter().enumerate() {
            let spec = JobSpec::new(deck(*key), 10 * (1 + steps_choice));
            let id = JobId(i as u64);

            // Dry-run consistency: would_join predicts the real placement.
            let predicted = g.would_join(&spec);
            let (batch, flushed) = g.place(id, &spec, now);
            match predicted {
                Placement::Joins { batch: b, .. } => prop_assert_eq!(b, batch),
                Placement::Opens { .. } => {
                    prop_assert!(
                        !batch_of.values().any(|b| *b == batch),
                        "predicted a fresh batch but joined an existing one"
                    );
                }
                Placement::Infeasible => {
                    prop_assert!(false, "test decks always admit at least k = 1");
                }
            }

            key_of.insert(id, BatchKey::of(&spec));
            batch_of.insert(id, batch);
            if let Some(f) = flushed {
                prop_assert_eq!(f.batch.jobs.len(), f.batch.k_cap, "flushed before full");
                closed.push((f.batch.id, f.batch.jobs));
            }
        }
        let open: Vec<(BatchId, Vec<JobId>)> =
            g.pending().iter().map(|b| (b.id, b.jobs.clone())).collect();

        // (1) Key purity + (3) within-batch submission order.
        for (_, jobs) in closed.iter().chain(open.iter()) {
            prop_assert!(!jobs.is_empty());
            let k0 = key_of[&jobs[0]];
            for w in jobs.windows(2) {
                prop_assert_eq!(key_of[&w[0]], k0, "mixed keys in one batch");
                prop_assert!(w[0] < w[1], "submission order broken inside a batch");
            }
        }

        // (2) Maximal packing: per key, every batch except the one still
        // open is exactly full, so the batch count is the ceiling of
        // jobs / cap. (3b) Across batches of one key, id ranges are
        // consecutive: batch n+1's first job came after batch n's last.
        let mut per_key: BTreeMap<BatchKey, Vec<JobId>> = BTreeMap::new();
        for (id, k) in &key_of {
            per_key.entry(*k).or_default().push(*id);
        }
        for (key, jobs) in per_key {
            let cap = g.k_cap_for(&deck_for(&key));
            let n_batches = jobs
                .iter()
                .map(|j| batch_of[j])
                .collect::<std::collections::BTreeSet<_>>()
                .len();
            prop_assert_eq!(n_batches, jobs.len().div_ceil(cap), "not maximally packed");
            let mut in_batch_order: Vec<JobId> = Vec::new();
            for (_, members) in closed.iter().chain(open.iter()) {
                if key_of[&members[0]] == key {
                    in_batch_order.extend(members.iter().copied());
                }
            }
            prop_assert_eq!(in_batch_order, jobs, "cross-batch submission order broken");
        }
    }

    #[test]
    fn expiry_only_flushes_past_deadline_batches(
        k_max in 2usize..6,
        n in 1usize..6,
        advance_ms in 0u64..200,
    ) {
        let mut g = Grouper::new(GrouperConfig {
            k_max,
            linger: Duration::from_millis(100),
            nodes: 2,
            machine: MachineModel::small_cluster(),
        });
        let t0 = Instant::now();
        let spec = JobSpec::new(deck(0), 10);
        for i in 0..n {
            g.place(JobId(i as u64), &spec, t0);
        }
        let open_before: usize = g.pending().iter().map(|b| b.jobs.len()).sum();
        let flushed = g.expired(t0 + Duration::from_millis(advance_ms));
        if advance_ms >= 100 {
            prop_assert_eq!(g.pending().len(), 0);
            let total: usize = flushed.iter().map(|f| f.batch.jobs.len()).sum();
            prop_assert_eq!(total, open_before, "expiry lost or duplicated jobs");
        } else {
            prop_assert!(flushed.is_empty(), "flushed before the deadline");
        }
    }
}

/// Reconstruct a deck whose `BatchKey` equals `key` (the test pool is
/// parameterized by nu_ee alone, so search the pool).
fn deck_for(key: &BatchKey) -> CgyroInput {
    (0..3)
        .map(deck)
        .find(|d| d.cmat_key() == key.cmat_key)
        .expect("key came from the pool")
}
