//! Multi-tenant serving acceptance tests (ISSUE 10 tentpole): a saturated
//! `CampaignServer` divides machine time between tenants by weighted
//! fair share, runs elastic concurrent worlds inside the node budget,
//! and keeps tenant attribution across a `kill -9`.
//!
//! The drills here mirror the CI `multi-tenant` job but in-process:
//!
//! * **saturation** — four tenants with 4:2:1:1 weights each dump their
//!   whole campaign at once behind a busy worker; the journal's
//!   `Running` records then give the exact dispatch order, which must
//!   match the weights prefix by prefix (no tenant can buy more than
//!   its share by submitting first, none starves);
//! * **elasticity** — with a node budget sized for two minimum worlds,
//!   two worlds actually run concurrently (`worlds_peak >= 2`) and the
//!   ledger returns to zero when the queue drains;
//! * **crash** — a journal holding another life's acknowledged jobs
//!   replays with the original tenant attribution: zero lost jobs, and
//!   the per-tenant metrics account the recovered work to the tenants
//!   that submitted it, not to `default`;
//! * **cancel race** (bugfix satellite) — a job cancelled *between* the
//!   flush that moved it to the ready queue and its dispatch never runs,
//!   releases its quota slot immediately, and leaves no `Running` record.

use std::path::PathBuf;
use std::time::Duration;
use xg_serve::journal::{fnv1a, Journal, JournalConfig};
use xg_serve::{
    BatchId, CampaignServer, JobId, JobSpec, JobState, JournalRecord, ServerConfig,
    TenantDirectory,
};
use xg_sim::{write_deck, CgyroInput};

const STEPS: usize = 20;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xg-multi-tenant-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Pull the integer right after `"key": ` out of the hand-rolled metrics
/// JSON, starting the scan at `from` (0 = whole document).
fn json_u64(json: &str, key: &str, from: usize) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = json[from..].find(&needle)? + from + needle.len();
    let digits: String = json[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn spec_for(tenant: &str, deck: &CgyroInput, steps: usize, tag: &str) -> JobSpec {
    let mut s = JobSpec::new(deck.clone(), steps);
    s.tag = tag.to_string();
    s.with_tenant(tenant)
}

/// Block until `id` is dispatched — the saturation drills submit a long
/// warmup job and must not race the worker for the queue's head.
fn wait_running(server: &CampaignServer, id: JobId) {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let state = server.status(id).expect("warmup tracked").state;
        if state == JobState::Running {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "warmup never dispatched (state {state:?})"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Distinct same-key decks: gradient variants of the small test deck, so
/// every job is real work (no artifact-cache shortcuts, no dedup).
fn variant(i: usize) -> CgyroInput {
    CgyroInput::test_small().with_gradients(1.0 + 0.125 * i as f64, 2.0 + 0.25 * i as f64)
}

#[test]
fn saturated_tenants_dispatch_in_weight_proportion() {
    let dir = tmpdir("fair-share");
    let mut cfg = ServerConfig::local_test();
    // One job per batch (k_max = 1 flushes synchronously at submit — no
    // linger timing in the drill), one worker so the dispatch order is a
    // serial, journal-recorded sequence, and a quantum equal to one
    // batch's cost (1 member x STEPS) so each round-robin visit serves
    // exactly `weight` batches.
    cfg.k_max = 1;
    cfg.workers = 1;
    cfg.quantum = STEPS as u64;
    let mut jcfg = JournalConfig::durable(&dir);
    // Group fsyncs: the drill measures scheduling, not disk latency, and
    // the submit burst must land while the warmup batch is still running.
    jcfg.fsync_every = 64;
    cfg.journal = Some(jcfg);
    cfg.tenants = TenantDirectory::parse("a:weight=4,b:weight=2,c:weight=1,d:weight=1,warm")
        .expect("roster");
    let server = CampaignServer::start(cfg);

    // Occupy the only worker long enough for the whole campaign to queue
    // behind it: the saturation the fair-share guarantee is about. Sized
    // generously — the submit burst below takes microseconds per job, but
    // parallel test binaries can steal the CPU for whole scheduler ticks.
    let (warm, _) = server
        .submit_authed(spec_for("warm", &variant(99), 100 * STEPS, "warmup"), None, None)
        .expect("warmup admitted");
    wait_running(&server, warm);

    // Adversarial arrival order: tenant `a` dumps its whole campaign
    // before anyone else gets a submit in. Arrival order must not matter.
    let weights = [("a", 4u64), ("b", 2), ("c", 1), ("d", 1)];
    for (tenant, _) in weights {
        for i in 0..8 {
            server
                .submit_authed(
                    spec_for(tenant, &variant(i), STEPS, &format!("{tenant}{i}")),
                    None,
                    None,
                )
                .unwrap_or_else(|e| panic!("{tenant} job {i} rejected: {e}"));
        }
    }
    // Saturation precondition: the drill is only meaningful if the whole
    // campaign queued while the worker was still pinned.
    assert_eq!(
        server.status(warm).unwrap().state,
        JobState::Running,
        "warmup finished before the campaign queued — enlarge its step count"
    );
    assert!(server.drain(Duration::from_secs(300)), "drain timed out");
    for st in server.list() {
        assert_eq!(st.state, JobState::Done, "{}: {}", st.id, st.detail);
    }
    // Per-tenant accounting made it to the metrics snapshot.
    let json = server.metrics_json();
    for (tenant, _) in weights {
        let at = json.find(&format!("\"{tenant}\": ")).expect("tenant block");
        assert_eq!(json_u64(&json, "done", at), Some(8), "{tenant} done count");
        assert_eq!(
            json_u64(&json, "work_done", at),
            Some(8 * STEPS as u64),
            "{tenant} work attribution"
        );
    }
    server.shutdown();

    // The journal is the dispatch-order ground truth: `Running` records
    // are appended in dispatch order by the single worker.
    let (_j, replay) = Journal::open(JournalConfig::durable(&dir)).expect("reopen journal");
    let tenant_of: std::collections::BTreeMap<JobId, String> = replay
        .records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Submitted { job, tenant, .. } => Some((*job, tenant.clone())),
            _ => None,
        })
        .collect();
    let order: Vec<&str> = replay
        .records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Running { jobs, .. } => {
                let t = tenant_of[&jobs[0]].as_str();
                (t != "warm").then_some(t)
            }
            _ => None,
        })
        .collect();
    assert_eq!(order.len(), 32, "every job dispatched exactly once");
    // Prefix by prefix, dispatched work tracks the 4:2:1:1 weights: after
    // each full round (8 dispatches) every backlogged tenant holds
    // *exactly* its weighted share — stronger than the 10% tolerance the
    // acceptance drill asks for.
    for round in 1..=2 {
        let prefix = &order[..8 * round];
        for (tenant, w) in weights {
            let got = prefix.iter().filter(|t| **t == tenant).count() as u64;
            assert_eq!(
                got,
                w * round as u64,
                "after {} dispatches, {tenant} (weight {w}) got {got}: {prefix:?}",
                prefix.len()
            );
        }
    }
    // And nobody is served twice before per-tenant FIFO allows: within a
    // tenant the tags dispatch in submission order.
    let tags: Vec<&JournalRecord> = replay
        .records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Running { .. }))
        .collect();
    assert_eq!(tags.len(), 33, "32 campaign batches + 1 warmup");
}

#[test]
fn elastic_worlds_run_concurrently_inside_the_node_budget() {
    let mut cfg = ServerConfig::local_test();
    cfg.k_max = 1;
    cfg.workers = 2;
    // Budget exactly two minimum worlds, sized from the same planner the
    // server prices batches with.
    let world = xg_cluster::min_nodes_unbalanced(
        &variant(0),
        1,
        &cfg.machine,
        cfg.nodes.max(64),
    )
    .expect("test deck fits")
    .nodes;
    cfg.nodes = 2 * world;
    let server = CampaignServer::start(cfg);
    for i in 0..8 {
        server
            .submit(spec_for("default", &variant(i), 2 * STEPS, &format!("w{i}")))
            .expect("admitted");
    }
    assert!(server.drain(Duration::from_secs(300)), "drain timed out");
    for st in server.list() {
        assert_eq!(st.state, JobState::Done, "{}: {}", st.id, st.detail);
    }
    let json = server.metrics_json();
    assert!(
        json_u64(&json, "worlds_peak", 0) >= Some(2),
        "two worlds never ran concurrently: {json}"
    );
    // The ledger returned to zero: no leaked nodes, no phantom worlds.
    assert_eq!(json_u64(&json, "worlds_active", 0), Some(0), "{json}");
    assert_eq!(json_u64(&json, "nodes_in_use", 0), Some(0), "{json}");
    server.shutdown();
}

#[test]
fn kill_minus_nine_preserves_tenant_attribution_and_loses_nothing() {
    let dir = tmpdir("crash-attribution");
    // The journal a killed daemon left behind: four acknowledged jobs
    // (Submitted + Batched, never dispatched) from two tenants.
    let (mut j, _) = Journal::open(JournalConfig::durable(&dir)).expect("open");
    let owners = ["acme", "acme", "beta", "beta"];
    for (i, owner) in owners.iter().enumerate() {
        let deck = write_deck(&variant(i));
        j.append(&JournalRecord::Submitted {
            job: JobId(i as u64),
            token: format!("tok-{i}"),
            deck_hash: fnv1a(deck.as_bytes()),
            deck,
            steps: STEPS as u64,
            tag: format!("life1-{i}"),
            tenant: (*owner).to_string(),
            submitted_unix_us: 0,
        })
        .expect("append");
        j.append(&JournalRecord::Batched { job: JobId(i as u64), batch: BatchId(i as u64) })
            .expect("append");
    }
    // Two more jobs reached a terminal state before the crash: one Done,
    // one Cancelled, both owned by a third tenant. Replay is their only
    // chance to be accounted — they will never run again.
    for (i, rec) in [
        (4u64, None),
        (5u64, Some("client cancelled")),
    ] {
        let deck = write_deck(&variant(i as usize));
        j.append(&JournalRecord::Submitted {
            job: JobId(i),
            token: String::new(),
            deck_hash: fnv1a(deck.as_bytes()),
            deck,
            steps: STEPS as u64,
            tag: format!("life1-{i}"),
            tenant: "gamma".to_string(),
            submitted_unix_us: 0,
        })
        .expect("append");
        j.append(&JournalRecord::Batched { job: JobId(i), batch: BatchId(i) }).expect("append");
        match rec {
            None => {
                j.append(&JournalRecord::Running { batch: BatchId(i), jobs: vec![JobId(i)] })
                    .expect("append");
                j.append(&JournalRecord::Done {
                    job: JobId(i),
                    steps: STEPS as u64,
                    h_hash: 7,
                    diag_bits: [0; 4],
                })
                .expect("append");
            }
            Some(detail) => {
                j.append(&JournalRecord::Cancelled { job: JobId(i), detail: detail.into() })
                    .expect("append");
            }
        }
    }
    drop(j);

    let mut cfg = ServerConfig::local_test();
    cfg.journal = Some(JournalConfig::durable(&dir));
    cfg.tenants = TenantDirectory::parse("acme:weight=2,beta:weight=1,gamma").expect("roster");
    let server = CampaignServer::start(cfg);
    let rec = server.recovery_report();
    assert_eq!(rec.readmitted_jobs, 4, "zero lost jobs: {rec:?}");
    assert!(server.drain(Duration::from_secs(300)), "drain timed out");
    for (i, owner) in owners.iter().enumerate() {
        let st = server.status(JobId(i as u64)).expect("restored");
        assert_eq!(st.state, JobState::Done, "job-{i}: {}", st.detail);
        assert_eq!(st.tenant, *owner, "job-{i} lost its tenant across the crash");
    }
    // The recovered work is accounted to the original tenants, not to
    // `default` — including the submitted count credited at replay.
    let json = server.metrics_json();
    for owner in ["acme", "beta"] {
        let at = json.find(&format!("\"{owner}\": ")).expect("tenant block survived replay");
        assert_eq!(json_u64(&json, "submitted", at), Some(2), "{owner} submitted count");
        assert_eq!(json_u64(&json, "done", at), Some(2), "{owner} done count");
    }
    // Terminal-state jobs restored from the journal credit their tenant's
    // counters too (their previous life's process took the originals with
    // it): gamma never ran a step this life, yet its ledger is whole.
    let gamma = server.status(JobId(4)).expect("terminal job restored");
    assert_eq!(gamma.state, JobState::Done, "{}", gamma.detail);
    assert_eq!(gamma.tenant, "gamma");
    let at = json.find("\"gamma\": ").expect("terminal-only tenant credited at replay");
    assert_eq!(json_u64(&json, "submitted", at), Some(2), "gamma submitted");
    assert_eq!(json_u64(&json, "done", at), Some(1), "gamma done");
    assert_eq!(json_u64(&json, "cancelled", at), Some(1), "gamma cancelled");
    assert_eq!(json_u64(&json, "work_done", at), Some(STEPS as u64), "gamma work");
    // Idempotency tokens replayed with their tenant: a pre-crash retry
    // still deduplicates instead of double-running under a fresh id.
    let (dup_id, dup) = server
        .submit_authed(spec_for("acme", &variant(0), STEPS, "retry"), Some("tok-0"), None)
        .expect("token lookup is not admission");
    assert!(dup, "journaled token forgotten across restart");
    assert_eq!(dup_id, JobId(0));
    server.shutdown();
}

#[test]
fn cancel_between_flush_and_dispatch_never_runs_and_releases_quota() {
    let dir = tmpdir("cancel-race");
    let mut cfg = ServerConfig::local_test();
    // k_max = 1: the victim's batch is flushed to the ready queue
    // synchronously at submit, while the only worker is still busy — the
    // exact window the cancel race targets.
    cfg.k_max = 1;
    cfg.workers = 1;
    cfg.journal = Some(JournalConfig::durable(&dir));
    cfg.tenants = TenantDirectory::parse("q:jobs=1,warm").expect("roster");
    let server = CampaignServer::start(cfg);
    let (warm, _) = server
        .submit_authed(spec_for("warm", &variant(99), 20 * STEPS, "warmup"), None, None)
        .expect("warmup admitted");
    wait_running(&server, warm);
    let (victim, _) = server
        .submit_authed(spec_for("q", &variant(0), STEPS, "victim"), None, None)
        .expect("victim admitted");
    assert_eq!(server.status(victim).unwrap().state, JobState::Batched, "flushed, undispatched");

    assert_eq!(server.cancel(victim), Ok(JobState::Cancelled));
    // The live-job quota slot (q allows exactly one) is free immediately —
    // not after the cancelled batch would have dispatched.
    let (second, _) = server
        .submit_authed(spec_for("q", &variant(1), STEPS, "after"), None, None)
        .expect("cancel released the quota slot");

    assert!(server.drain(Duration::from_secs(300)), "drain timed out");
    let st = server.status(victim).expect("victim tracked");
    assert_eq!(st.state, JobState::Cancelled, "{}", st.detail);
    assert_eq!(st.queue_latency_ms, None, "victim was never dispatched");
    assert!(server.result(victim).is_none(), "a cancelled job has no outcome");
    assert_eq!(server.status(second).unwrap().state, JobState::Done);
    server.shutdown();

    // Ground truth: no `Running` record ever names the victim.
    let (_j, replay) = Journal::open(JournalConfig::durable(&dir)).expect("reopen journal");
    for r in &replay.records {
        if let JournalRecord::Running { jobs, .. } = r {
            assert!(!jobs.contains(&victim), "cancelled job was dispatched: {r:?}");
        }
    }
}
