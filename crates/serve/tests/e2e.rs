//! End-to-end acceptance test (ISSUE): submit N jobs carrying m distinct
//! cmat keys and assert that
//!
//! 1. exactly m batches form (one shared-cmat ensemble per key),
//! 2. every job reaches a terminal state,
//! 3. each member's result is **bitwise identical** to running the same
//!    decks through `run_xgyro` directly, and
//! 4. the batch-occupancy and cmat-bytes-saved metrics match
//!    `xg_costmodel`'s prediction.

use std::collections::BTreeSet;
use std::time::Duration;
use xg_serve::{CampaignServer, JobId, JobSpec, JobState, ServerConfig};
use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;
use xgyro_core::{run_xgyro, EnsembleConfig};

const STEPS: usize = 20;

fn config() -> ServerConfig {
    let mut cfg = ServerConfig::local_test();
    // Deterministic grouping: batches flush because they fill (k_cap = 3
    // on the modeled 3-node allocation), never by linger.
    cfg.linger = Duration::from_secs(600);
    cfg
}

/// m = 2 distinct cmat keys (nu_ee variants), 3 jobs each.
fn sweep() -> Vec<CgyroInput> {
    let base = CgyroInput::test_small();
    let mut hot = base.clone();
    hot.nu_ee *= 2.0;
    let mut decks = Vec::new();
    for key_deck in [&base, &hot] {
        for i in 0..3 {
            decks.push(key_deck.with_gradients(1.0 + 0.25 * i as f64, 2.0 + 0.5 * i as f64));
        }
    }
    decks
}

#[test]
fn n_jobs_m_keys_form_m_batches_with_exact_results_and_metrics() {
    let cfg = config();
    let grid = cfg.grid;
    let server = CampaignServer::start(cfg);
    let decks = sweep();
    let ids: Vec<JobId> = decks
        .iter()
        .enumerate()
        .map(|(i, d)| {
            server
                .submit(JobSpec { input: d.clone(), steps: STEPS, tag: format!("e2e{i}"), tenant: "default".into() })
                .expect("admitted")
        })
        .collect();
    assert!(server.drain(Duration::from_secs(120)), "drain timed out");

    // (1) Exactly m = 2 batches; co-batched iff cmat keys match.
    let statuses: Vec<_> = ids.iter().map(|id| server.status(*id).unwrap()).collect();
    let batches: BTreeSet<_> = statuses.iter().map(|s| s.batch.unwrap()).collect();
    assert_eq!(batches.len(), 2, "one batch per distinct cmat key");
    for (a, sa) in statuses.iter().enumerate() {
        for (b, sb) in statuses.iter().enumerate().skip(a + 1) {
            assert_eq!(
                sa.batch == sb.batch,
                decks[a].cmat_key() == decks[b].cmat_key(),
                "jobs {a} and {b}: co-batched must equal key-shared"
            );
        }
    }

    // (2) Every job terminated — here, successfully.
    for s in &statuses {
        assert!(s.state.is_terminal(), "{}: non-terminal {}", s.id, s.state);
        assert_eq!(s.state, JobState::Done, "{}: {}", s.id, s.detail);
    }

    // (3) Bitwise identity with a direct run_xgyro of each key group (the
    // batcher preserves submission order, so the ensemble member order is
    // the submission order).
    for group in decks.chunks(3) {
        let reference = run_xgyro(
            &EnsembleConfig::new(group.to_vec(), grid).expect("shared key"),
            STEPS,
        );
        for (j, deck) in group.iter().enumerate() {
            let pos = decks.iter().position(|d| std::ptr::eq(d, deck)).unwrap();
            let got = server.result(ids[pos]).expect("Done job retains its outcome");
            assert_eq!(
                got.h, reference.sims[j].h,
                "job {pos} diverged from the direct XGYRO run"
            );
            assert_eq!(got.steps, STEPS);
        }
    }

    // (4) Metrics match the cost model: two k=3 batches, each saving
    // (k-1) cmat copies against the unbatched baseline of k copies.
    let dims = decks[0].dims();
    let json = server.metrics_json();
    assert!(json.contains("\"k=3\": 2"), "occupancy histogram: {json}");
    let saved = 2 * xg_costmodel::cmat_saved_bytes(3, dims);
    let unbatched = 2 * 3 * xg_costmodel::cmat_total_bytes(dims);
    assert!(
        json.contains(&format!("\"cmat_saved_bytes\": {saved}")),
        "predicted {saved}: {json}"
    );
    assert!(
        json.contains(&format!("\"cmat_unbatched_bytes\": {unbatched}")),
        "predicted {unbatched}: {json}"
    );
    assert!(json.contains("\"Done\": 6"), "{json}");
    server.shutdown();
}

#[test]
fn every_lifecycle_path_terminates() {
    // One batch completes, one job is cancelled pre-dispatch, one member
    // faults mid-run: Done, Cancelled and Failed all coexist, and drain
    // still goes quiet.
    let mut cfg = config();
    cfg.workers = 1;
    cfg.fault_plan = Some(xg_comm::FaultPlan::crash(2, 4));
    let server = CampaignServer::start(cfg);
    let base = CgyroInput::test_small();

    // Fault target: the first dispatched batch (k=3, rank 2 = member 1).
    let faulted: Vec<JobId> = (0..3)
        .map(|i| {
            server
                .submit(JobSpec {
                    input: base.with_gradients(1.0 + i as f64, 2.0),
                    steps: STEPS,
                    tag: format!("faulted{i}"),
                    tenant: "default".into(),
                })
                .unwrap()
        })
        .collect();
    // A second key's job, cancelled while its underfull batch lingers.
    let mut hot = base.clone();
    hot.nu_ee *= 3.0;
    let doomed = server
        .submit(JobSpec { input: hot, steps: STEPS, tag: "doomed".into(), tenant: "default".into() })
        .unwrap();
    assert_eq!(server.cancel(doomed).unwrap(), JobState::Cancelled);

    assert!(server.drain(Duration::from_secs(120)), "drain timed out");
    let states: Vec<JobState> =
        faulted.iter().map(|id| server.status(*id).unwrap().state).collect();
    assert_eq!(states.iter().filter(|s| **s == JobState::Failed).count(), 1);
    assert_eq!(states.iter().filter(|s| **s == JobState::Done).count(), 2);
    assert_eq!(server.status(doomed).unwrap().state, JobState::Cancelled);

    // The survivors' results are still exact: bitwise equal to a clean
    // k=2 run of the surviving decks (member eviction must not perturb
    // batch-mates — the PR 1 resilience property, observed through the
    // serving stack).
    let survivors: Vec<usize> = states
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == JobState::Done)
        .map(|(i, _)| i)
        .collect();
    let clean_cfg = EnsembleConfig::new(
        survivors.iter().map(|&i| base.with_gradients(1.0 + i as f64, 2.0)).collect(),
        ProcGrid::new(2, 1),
    )
    .unwrap();
    let clean = run_xgyro(&clean_cfg, STEPS);
    for (j, &i) in survivors.iter().enumerate() {
        let got = server.result(faulted[i]).expect("survivor outcome");
        assert_eq!(got.h, clean.sims[j].h, "survivor {i} perturbed by the eviction");
    }
    server.shutdown();
}
