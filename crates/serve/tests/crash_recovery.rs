//! Crash-recovery acceptance tests (ISSUE 6 tentpole): a journaled
//! `CampaignServer` survives losing its process with zero lost jobs.
//!
//! The "crash" here is the honest in-process equivalent of `kill -9`: a
//! journal directory holding exactly what a killed daemon would have left
//! behind (records up to the kill point, optionally a torn tail), handed to
//! a fresh server. We assert the recovery contract end to end:
//!
//! * terminal jobs reappear with bitwise-identical result summaries, and
//!   idempotency tokens keep deduplicating across the restart;
//! * waiting jobs are re-admitted and complete, with queue latency counted
//!   from the original journaled submit time, not replay time;
//! * a running batch resumes from its journaled checkpoint and finishes
//!   **bitwise identical** to an uninterrupted run;
//! * a torn tail is truncated with a warning, not a refusal to start;
//! * a journal that cannot persist sheds the submit with typed
//!   backpressure instead of accepting unjournaled work.

use std::path::PathBuf;
use std::time::Duration;
use xg_serve::journal::{fnv1a, Journal, JournalConfig, ServeFaultPlan};
use xg_serve::{
    AdmitError, BatchId, CampaignServer, JobId, JobSpec, JobState, JournalRecord, ServerConfig,
};
use xg_sim::{write_deck, CgyroInput};
use xgyro_core::{run_xgyro, run_xgyro_resilient, EnsembleConfig};

const STEPS: usize = 20;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xg-crash-recovery-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &std::path::Path) -> ServerConfig {
    let mut cfg = ServerConfig::local_test();
    cfg.journal = Some(JournalConfig::durable(dir));
    cfg
}

/// Three same-key decks — one full k=3 batch on the local_test allocation.
fn sweep() -> Vec<CgyroInput> {
    let base = CgyroInput::test_small();
    (0..3).map(|i| base.with_gradients(1.0 + 0.25 * i as f64, 2.0 + 0.5 * i as f64)).collect()
}

fn unix_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[test]
fn restart_restores_done_jobs_and_keeps_tokens_deduplicating() {
    let dir = tmpdir("restart-done");
    let decks = sweep();

    // First life: run the campaign to completion, remember the summaries.
    let server = CampaignServer::start(config(&dir));
    let ids: Vec<JobId> = decks
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let spec = JobSpec { input: d.clone(), steps: STEPS, tag: format!("life1-{i}"), tenant: "default".into() };
            server.submit_with_token(spec, Some(&format!("tok-{i}"))).expect("admitted").0
        })
        .collect();
    assert!(server.drain(Duration::from_secs(120)), "drain timed out");
    let summaries: Vec<_> =
        ids.iter().map(|id| server.result_summary(*id).expect("done")).collect();
    server.shutdown();

    // Second life, same directory: every job is back, Done, with the same
    // bitwise result summary — and no re-execution happened (the restored
    // summary answers, there is nothing live to run).
    let server = CampaignServer::start(config(&dir));
    let rec = server.recovery_report();
    assert!(rec.replayed_records > 0, "nothing replayed: {rec:?}");
    assert_eq!(rec.restored_jobs, 3, "{rec:?}");
    assert_eq!(rec.readmitted_jobs, 0, "{rec:?}");
    assert_eq!(rec.resumed_batches, 0, "{rec:?}");
    assert_eq!(rec.torn_bytes, 0, "{rec:?}");
    for (id, want) in ids.iter().zip(&summaries) {
        let st = server.status(*id).expect("restored");
        assert_eq!(st.state, JobState::Done, "{id}: {}", st.detail);
        assert_eq!(server.result_summary(*id).expect("summary"), *want, "{id} summary drifted");
    }
    // A retried submit from before the crash still deduplicates: same
    // token, same id, dup=true — the double-enqueue a lost OK would cause.
    let (dup_id, dup) = server
        .submit_with_token(
            JobSpec { input: decks[1].clone(), steps: STEPS, tag: "retry".into(), tenant: "default".into() },
            Some("tok-1"),
        )
        .expect("token lookup is not admission");
    assert!(dup, "journaled token forgotten across restart");
    assert_eq!(dup_id, ids[1]);
    server.shutdown();
}

#[test]
fn waiting_jobs_are_readmitted_and_age_from_the_original_submit() {
    let dir = tmpdir("readmit");
    let decks = sweep();

    // A killed daemon's journal: two jobs acknowledged (Submitted +
    // Batched), never dispatched. Submitted 5 s before "now", so restored
    // queue-latency accounting must span the outage.
    let (mut j, _) = Journal::open(JournalConfig::durable(&dir)).expect("open");
    let before_us = unix_us().saturating_sub(5_000_000);
    for (i, d) in decks.iter().take(2).enumerate() {
        let deck = write_deck(d);
        j.append(&JournalRecord::Submitted {
            job: JobId(i as u64),
            token: String::new(),
            deck_hash: fnv1a(deck.as_bytes()),
            deck,
            steps: STEPS as u64,
            tag: format!("orphan{i}"),
            tenant: "default".into(),
            submitted_unix_us: before_us,
        })
        .expect("append");
        j.append(&JournalRecord::Batched { job: JobId(i as u64), batch: BatchId(0) })
            .expect("append");
    }
    drop(j);

    let server = CampaignServer::start(config(&dir));
    let rec = server.recovery_report();
    assert_eq!(rec.readmitted_jobs, 2, "{rec:?}");
    assert!(server.drain(Duration::from_secs(120)), "drain timed out");

    // Both orphans ran to completion, bitwise identical to a direct k=2
    // run of the same decks (readmission preserves submission order).
    let grid = ServerConfig::local_test().grid;
    let reference =
        run_xgyro(&EnsembleConfig::new(decks[..2].to_vec(), grid).expect("shared key"), STEPS);
    for i in 0..2u64 {
        let st = server.status(JobId(i)).expect("readmitted");
        assert_eq!(st.state, JobState::Done, "job-{i}: {}", st.detail);
        let got = server.result(JobId(i)).expect("outcome");
        assert_eq!(got.h, reference.sims[i as usize].h, "job-{i} diverged after readmission");
        // Queue latency counts from the journaled submit 5 s ago, not from
        // replay: the restart must not hide the outage from the operator.
        let latency = st.queue_latency_ms.expect("dispatched");
        assert!(latency >= 5_000, "latency {latency} ms forgot the pre-crash wait");
    }
    server.shutdown();
}

#[test]
fn running_batch_resumes_from_its_checkpoint_bitwise_identically() {
    let dir = tmpdir("resume");
    let decks: Vec<CgyroInput> = sweep().into_iter().take(2).collect();
    let grid = ServerConfig::local_test().grid;
    let config_k2 = EnsembleConfig::new(decks.clone(), grid).expect("shared key");

    // The checkpoint a killed daemon would have journaled: the real
    // ensemble state after the first 10-step segment.
    let half = run_xgyro_resilient(
        &config_k2,
        STEPS / 2,
        STEPS / 2,
        xg_comm::FaultPlan::new(),
        Duration::from_secs(10),
    )
    .expect("clean half run");

    let (mut j, _) = Journal::open(JournalConfig::durable(&dir)).expect("open");
    let members = vec![JobId(0), JobId(1)];
    for (i, d) in decks.iter().enumerate() {
        let deck = write_deck(d);
        j.append(&JournalRecord::Submitted {
            job: JobId(i as u64),
            token: String::new(),
            deck_hash: fnv1a(deck.as_bytes()),
            deck,
            steps: STEPS as u64,
            tag: format!("mid{i}"),
            tenant: "default".into(),
            submitted_unix_us: unix_us(),
        })
        .expect("append");
        j.append(&JournalRecord::Batched { job: JobId(i as u64), batch: BatchId(0) })
            .expect("append");
    }
    j.append(&JournalRecord::Running { batch: BatchId(0), jobs: members.clone() })
        .expect("append");
    j.append(&JournalRecord::Checkpoint {
        batch: BatchId(0),
        jobs: members,
        seq: 0,
        done_steps: (STEPS / 2) as u64,
        state: half.checkpoint.to_bytes(),
    })
    .expect("append");
    drop(j);

    let server = CampaignServer::start(config(&dir));
    let rec = server.recovery_report();
    assert_eq!(rec.resumed_batches, 1, "{rec:?}");
    assert_eq!(rec.restored_jobs, 2, "{rec:?}");
    // New submissions keep working alongside a resume (batch ids were
    // re-seeded past the journaled ones, so no collision).
    let fresh = server
        .submit(JobSpec { input: decks[0].clone(), steps: STEPS, tag: "after".into(), tenant: "default".into() })
        .expect("admitted");
    assert!(server.drain(Duration::from_secs(120)), "drain timed out");
    assert_eq!(server.status(fresh).unwrap().state, JobState::Done);
    assert_ne!(server.status(fresh).unwrap().batch, Some(BatchId(0)), "batch id collision");

    // The resumed second half lands bitwise on the uninterrupted run: the
    // crash cost a restart, never an answer.
    let reference = run_xgyro(&config_k2, STEPS);
    for i in 0..2u64 {
        let st = server.status(JobId(i)).expect("resumed");
        assert_eq!(st.state, JobState::Done, "job-{i}: {}", st.detail);
        let got = server.result(JobId(i)).expect("outcome");
        assert_eq!(got.h, reference.sims[i as usize].h, "job-{i} diverged across the crash");
        assert_eq!(got.steps, STEPS);
    }
    server.shutdown();
}

#[test]
fn torn_tail_is_truncated_with_a_warning_not_a_refusal() {
    let dir = tmpdir("torn");
    let decks = sweep();

    // First life: a finished campaign.
    let server = CampaignServer::start(config(&dir));
    for (i, d) in decks.iter().enumerate() {
        server
            .submit(JobSpec { input: d.clone(), steps: STEPS, tag: format!("t{i}"), tenant: "default".into() })
            .expect("admitted");
    }
    assert!(server.drain(Duration::from_secs(120)), "drain timed out");
    server.shutdown();

    // kill -9 mid-append: 7 garbage bytes (less than one frame header) on
    // the newest segment's tail.
    let last_seg = std::fs::read_dir(&dir)
        .expect("journal dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "xgj"))
        .max()
        .expect("at least one segment");
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new().append(true).open(&last_seg).expect("open tail");
    f.write_all(&[0xFF; 7]).expect("tear");
    drop(f);

    let server = CampaignServer::start(config(&dir));
    let rec = server.recovery_report();
    assert_eq!(rec.torn_bytes, 7, "{rec:?}");
    assert!(
        rec.warnings.iter().any(|w| w.contains("torn")),
        "no torn-tail warning: {:?}",
        rec.warnings
    );
    // Everything before the tear is intact.
    assert_eq!(rec.restored_jobs, 3, "{rec:?}");
    for i in 0..3u64 {
        assert_eq!(server.status(JobId(i)).unwrap().state, JobState::Done);
    }
    server.shutdown();
}

#[test]
fn journal_write_error_sheds_the_submit_with_typed_backpressure() {
    let dir = tmpdir("backpressure");
    let mut cfg = config(&dir);
    // The very first append (the first submit's `Submitted` record) fails
    // cleanly, as a full disk would.
    cfg.journal.as_mut().unwrap().fault_plan = Some(ServeFaultPlan::write_error(0));
    let server = CampaignServer::start(cfg);
    let deck = CgyroInput::test_small();

    let err = server
        .submit(JobSpec { input: deck.clone(), steps: STEPS, tag: "shed".into(), tenant: "default".into() })
        .expect_err("unjournaled work must be shed");
    assert!(
        matches!(err, AdmitError::JournalBackpressure { .. }),
        "wrong rejection: {err:?}"
    );

    // The fault was one-shot; the retry is admitted, journaled, and runs.
    let id = server
        .submit(JobSpec { input: deck, steps: STEPS, tag: "retry".into(), tenant: "default".into() })
        .expect("journal recovered");
    assert!(server.drain(Duration::from_secs(120)), "drain timed out");
    assert_eq!(server.status(id).unwrap().state, JobState::Done);
    server.shutdown();
}
