//! Golden-file snapshots of both metrics exposition formats (JSON and
//! Prometheus text), for the serve counters and the obs phase timers.
//!
//! The snapshots pin the exact bytes external consumers parse — key order,
//! spacing, null-vs-zero, bucket layout. A deliberate format change is made
//! by regenerating: `XG_UPDATE_GOLDEN=1 cargo test -p xg-serve --test
//! golden_snapshots` and committing the diff.

use std::path::Path;
use xg_obs::{Phase, Registry};
use xg_serve::job::JobState;
use xg_serve::metrics::Metrics;

fn check(name: &str, rendered: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("XG_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); regenerate with XG_UPDATE_GOLDEN=1", path.display()));
    assert_eq!(
        rendered,
        golden,
        "{name} drifted from its golden snapshot; if the change is deliberate, \
         regenerate with XG_UPDATE_GOLDEN=1 and commit the diff"
    );
}

/// A serve metrics registry with one of everything, built without any
/// wall-clock reads so the rendering is bit-stable.
fn serve_fixture() -> Metrics {
    use xg_comm::{OpKind, OpRecord};
    use xg_serve::admission::AdmitError;
    use xg_serve::batcher::FlushReason;
    use xg_sim::CgyroInput;

    let dims = CgyroInput::test_small().dims();
    let mut m = Metrics::default();
    m.on_submit();
    m.on_submit();
    m.on_reject(&AdmitError::Draining);
    m.on_dispatch(2, dims, FlushReason::Full);
    m.on_queue_latency_us(1_500);
    m.on_queue_latency_us(2_500);
    m.on_batch_traces(&[vec![
        OpRecord {
            op: OpKind::AllReduce,
            comm_label: "nv".into(),
            participants: 2,
            members: vec![0, 1],
            bytes: 128,
            phase: "str".into(),
            elapsed_us: 40,
        },
        OpRecord {
            op: OpKind::AllToAll,
            comm_label: "coll-ens".into(),
            participants: 2,
            members: vec![0, 1],
            bytes: 512,
            phase: "coll".into(),
            elapsed_us: 160,
        },
    ]]);
    m
}

/// An obs registry with fixed recordings (fed directly, bypassing the
/// env-gated free functions, so the fixture ignores `XGYRO_OBS`).
fn obs_fixture() -> Registry {
    let reg = Registry::default();
    reg.record_busy_us(Phase::Str, 100);
    reg.record_busy_us(Phase::Str, 300);
    reg.record_busy_us(Phase::Coll, 2_000);
    reg.record_comm_wait_us(Phase::Str, 40);
    reg.record_recovery_waste_us(5_000);
    reg.set_collision_kernel("avx2/t64");
    reg
}

#[test]
fn serve_metrics_json_matches_golden() {
    let by_state = [(JobState::Queued, 0), (JobState::Done, 2)];
    check("serve-metrics.json", &serve_fixture().to_json(&by_state));
}

#[test]
fn serve_metrics_prometheus_matches_golden() {
    let by_state = [(JobState::Queued, 0), (JobState::Done, 2)];
    let text = serve_fixture().to_prometheus(&by_state);
    xg_obs::expo::lint_prometheus(&text).expect("golden exposition must lint");
    check("serve-metrics.prom", &text);
}

#[test]
fn obs_metrics_json_matches_golden() {
    check("obs-metrics.json", &xg_obs::expo::to_json(&obs_fixture()));
}

#[test]
fn obs_metrics_prometheus_matches_golden() {
    let text = xg_obs::expo::to_prometheus(&obs_fixture());
    xg_obs::expo::lint_prometheus(&text).expect("golden exposition must lint");
    check("obs-metrics.prom", &text);
}
