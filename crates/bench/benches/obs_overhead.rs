//! The obs layer's zero-cost-when-disabled guarantee, measured.
//!
//! With `XGYRO_OBS=0` every probe must collapse to one relaxed atomic load
//! and a branch — no `Instant::now()`, no histogram traffic. These benches
//! price the probes in both states and the end-to-end stepper with timing
//! on vs. off; the `*_disabled` numbers are the ones the guarantee is
//! about (single-digit nanoseconds, independent of ensemble size).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xg_obs::Phase;
use xg_sim::{serial_simulation, CgyroInput};

fn bench_probe_cost(c: &mut Criterion) {
    xg_obs::set_enabled(false);
    c.bench_function("obs_span_disabled", |b| {
        b.iter(|| black_box(xg_obs::span(black_box(Phase::Str))));
    });
    c.bench_function("obs_comm_wait_disabled", |b| {
        b.iter(|| xg_obs::record_comm_wait(black_box("str"), black_box(42)));
    });

    xg_obs::set_enabled(true);
    c.bench_function("obs_span_enabled", |b| {
        b.iter(|| black_box(xg_obs::span(black_box(Phase::Str))));
    });
    c.bench_function("obs_comm_wait_enabled", |b| {
        b.iter(|| xg_obs::record_comm_wait(black_box("str"), black_box(42)));
    });
    xg_obs::set_enabled(false);
}

fn bench_stepper_overhead(c: &mut Criterion) {
    let input = CgyroInput::test_small();
    xg_obs::set_enabled(false);
    c.bench_function("serial_step_obs_off", |b| {
        let mut sim = serial_simulation(&input);
        b.iter(|| sim.step());
    });
    xg_obs::set_enabled(true);
    c.bench_function("serial_step_obs_on", |b| {
        let mut sim = serial_simulation(&input);
        b.iter(|| sim.step());
    });
    xg_obs::set_enabled(false);
}

criterion_group!(benches, bench_probe_cost, bench_stepper_overhead);
criterion_main!(benches);
