//! Figure 2 / T-sweep: evaluate the paper-scale performance model (the
//! evaluation itself is cheap — this guards against regressions making the
//! planning/costing path slow) and verify the headline shape inside the
//! bench so `cargo bench` fails loudly if the reproduction drifts.

use criterion::{criterion_group, criterion_main, Criterion};
use xg_cluster::{plan, simulate_cgyro_sequential, simulate_xgyro, SchedulePolicy};
use xg_costmodel::MachineModel;
use xg_sim::CgyroInput;

fn bench_figure2_eval(c: &mut Criterion) {
    let input = CgyroInput::nl03c_like();
    let machine = MachineModel::frontier_like();
    let policy = SchedulePolicy::production();
    c.bench_function("figure2_model_eval", |b| {
        b.iter(|| {
            let cgp = plan(&input, 1, 32, &machine).unwrap();
            let xgp = plan(&input, 8, 32, &machine).unwrap();
            let cg = simulate_cgyro_sequential(&input, cgp.grid, 8, 32, &machine, &policy);
            let xg = simulate_xgyro(&input, xgp.grid, 8, 32, &machine, &policy);
            let speedup = cg.total() / xg.total();
            assert!(speedup > 1.2 && speedup < 2.0, "figure-2 shape drifted: {speedup}");
            speedup
        });
    });
}

fn bench_min_nodes_search(c: &mut Criterion) {
    let input = CgyroInput::nl03c_like();
    let machine = MachineModel::frontier_like();
    c.bench_function("planner_min_nodes_nl03c", |b| {
        b.iter(|| {
            let p = xg_cluster::min_nodes(&input, 1, &machine, 256).unwrap();
            assert_eq!(p.nodes, 32);
            p.nodes
        });
    });
}

criterion_group!(benches, bench_figure2_eval, bench_min_nodes_search);
criterion_main!(benches);
