//! Direct O(nt²) vs pseudo-spectral O(nt·log nt) nonlinear bracket — the
//! algorithmic ablation behind `xg_sim::nonlinear::FFT_THRESHOLD`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xg_linalg::Complex64;
use xg_sim::nonlinear::NlKernel;
use xg_sim::CgyroInput;
use xg_tensor::Tensor3;

fn bench_nl_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("nl_bracket");
    for nt in [8usize, 16, 32] {
        let mut input = CgyroInput::test_small();
        input.n_toroidal = nt;
        input.nonlinear_coupling = 0.3;
        let k = NlKernel::new(&input);
        assert!(k.uses_fft());
        let nc = 8;
        let nvl = 4;
        let h = Tensor3::from_fn(nc, nvl, nt, |a, b, n| {
            Complex64::new(((a + b + n) as f64).sin(), ((a * b + n) as f64).cos())
        });
        let phi: Vec<Complex64> =
            (0..nc * nt).map(|i| Complex64::cis(i as f64 * 0.1)).collect();
        let mut out = Tensor3::new(nc, nvl, nt);
        g.bench_with_input(BenchmarkId::new("fft", nt), &nt, |b, _| {
            b.iter(|| k.eval(&h, &phi, 0, &mut out));
        });
        g.bench_with_input(BenchmarkId::new("direct", nt), &nt, |b, _| {
            b.iter(|| k.eval_direct(&h, &phi, 0, &mut out));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_nl_paths);
criterion_main!(benches);
