//! Batched multi-RHS collision apply: naive per-RHS (strided gather +
//! single-RHS matvec + copy round-trip, shared panel streamed k times) vs
//! batched-blocked (profile-contiguous layout, panel streamed once per k
//! RHS) vs blocked fanned over the persistent step pool. Sweeps `nv` and
//! ensemble size `k`; the quantitative record lives in
//! `BENCH_collision.json` (see `paper_figures bench-collision`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xg_linalg::{apply_panel_multi, matvec_complex_flat, Complex64};
use xg_sim::StepPool;
use xg_tensor::Tensor3;

const PAIRS: usize = 8;

fn panels(nv: usize) -> Vec<f64> {
    (0..PAIRS * nv * nv).map(|i| ((i as f64) * 0.137).sin() * 0.2).collect()
}

fn bench_apply_paths(c: &mut Criterion) {
    let pool = StepPool::new(4);
    for nv in [64usize, 128] {
        for k in [1usize, 4, 8] {
            let panels = panels(nv);
            // Legacy coll layout per member: profile strided by PAIRS.
            let legacy: Vec<Tensor3<Complex64>> = (0..k)
                .map(|s| {
                    Tensor3::from_fn(nv, PAIRS, 1, |iv, ic, _| {
                        Complex64::new(
                            ((s * 31 + iv * 7 + ic) as f64 * 0.071).cos(),
                            ((s * 17 + iv * 3 + ic) as f64 * 0.113).sin(),
                        )
                    })
                })
                .collect();
            let mut legacy_out: Vec<Tensor3<Complex64>> =
                (0..k).map(|_| Tensor3::new(nv, PAIRS, 1)).collect();
            let cp_in = Tensor3::from_fn(PAIRS, 1, k * nv, |ic, _, lane| {
                legacy[lane / nv][(lane % nv, ic, 0)]
            });
            let mut cp_out: Tensor3<Complex64> = Tensor3::new(PAIRS, 1, k * nv);
            let mut profile = vec![Complex64::ZERO; nv];
            let mut scratch = vec![Complex64::ZERO; nv];

            let mut g = c.benchmark_group(format!("collision_apply_nv{nv}"));
            // Panel bytes actually streamed per sweep by the naive path.
            g.throughput(Throughput::Bytes((PAIRS * nv * nv * 8 * k) as u64));
            g.bench_with_input(BenchmarkId::new("naive_per_rhs", k), &k, |b, &k| {
                b.iter(|| {
                    for s in 0..k {
                        for ic in 0..PAIRS {
                            for iv in 0..nv {
                                profile[iv] = legacy[s][(iv, ic, 0)];
                            }
                            let a = &panels[ic * nv * nv..(ic + 1) * nv * nv];
                            matvec_complex_flat(a, nv, nv, &profile, &mut scratch);
                            profile.copy_from_slice(&scratch);
                            for iv in 0..nv {
                                legacy_out[s][(iv, ic, 0)] = profile[iv];
                            }
                        }
                    }
                });
            });
            g.bench_with_input(BenchmarkId::new("blocked_multi_rhs", k), &k, |b, &k| {
                b.iter(|| {
                    for ic in 0..PAIRS {
                        let a = &panels[ic * nv * nv..(ic + 1) * nv * nv];
                        apply_panel_multi(a, nv, cp_in.line(ic, 0), cp_out.line_mut(ic, 0), k);
                    }
                });
            });
            g.bench_with_input(BenchmarkId::new("blocked_threads4", k), &k, |b, &k| {
                b.iter(|| {
                    pool.for_each_chunk(cp_out.as_mut_slice(), k * nv, |ic, out| {
                        let a = &panels[ic * nv * nv..(ic + 1) * nv * nv];
                        apply_panel_multi(a, nv, cp_in.line(ic, 0), out, k);
                    });
                });
            });
            g.finish();
        }
    }
}

criterion_group!(benches, bench_apply_paths);
criterion_main!(benches);
