//! Ensemble-layer benchmarks: the XGYRO run itself, ensemble
//! checkpointing, and trace replay pricing.

use criterion::{criterion_group, criterion_main, Criterion};
use xg_costmodel::{MachineModel, Placement};
use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;
use xgyro_core::{gradient_sweep, run_xgyro, run_xgyro_checkpointed, EnsembleCheckpoint};

fn bench_checkpoint_roundtrip(c: &mut Criterion) {
    let cfg = gradient_sweep(&CgyroInput::test_small(), 2, ProcGrid::new(2, 1));
    let (_, cp) = run_xgyro_checkpointed(&cfg, 2, None).unwrap();
    c.bench_function("ensemble_checkpoint_serialize_roundtrip", |b| {
        b.iter(|| {
            let bytes = cp.to_bytes();
            EnsembleCheckpoint::from_bytes(&bytes).unwrap()
        });
    });
}

fn bench_trace_replay(c: &mut Criterion) {
    let mut base = CgyroInput::test_small();
    base.nonlinear_coupling = 0.1;
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(2, 2));
    let outcome = run_xgyro(&cfg, 3);
    let machine = MachineModel::frontier_like();
    let placement = Placement { ranks_per_node: machine.ranks_per_node };
    c.bench_function("trace_replay_8ranks_3steps", |b| {
        b.iter(|| {
            xg_cluster::replay(&outcome.traces, &machine, placement, |_, _| 1e-5).unwrap()
        });
    });
}

fn bench_trace_csv(c: &mut Criterion) {
    let cfg = gradient_sweep(&CgyroInput::test_small(), 2, ProcGrid::new(2, 2));
    let outcome = run_xgyro(&cfg, 3);
    let csv = xg_comm::traces_to_csv(&outcome.traces);
    c.bench_function("trace_csv_parse", |b| {
        b.iter(|| xg_comm::traces_from_csv(&csv).unwrap());
    });
}

criterion_group!(benches, bench_checkpoint_roundtrip, bench_trace_replay, bench_trace_csv);
criterion_main!(benches);
