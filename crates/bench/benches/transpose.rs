//! Pack/unpack kernels of the str ↔ coll and str ↔ nl transposes — the
//! local data-movement cost underneath every AllToAll in Figures 1 and 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xg_linalg::Complex64;
use xg_tensor::{
    pack_coll_block, pack_str_block, unpack_into_coll, unpack_into_str, Decomp1D, Tensor3,
};

fn bench_pack_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("transpose_pack_roundtrip");
    for &(nc, nv, nt) in &[(64usize, 48usize, 4usize), (256, 96, 8)] {
        let parts = 4;
        let nc_d = Decomp1D::new(nc, parts);
        let nv_d = Decomp1D::new(nv, parts);
        let h = Tensor3::from_fn(nc, nv / parts, nt, |a, b, cc| {
            Complex64::new((a + b) as f64, cc as f64)
        });
        g.throughput(Throughput::Bytes((h.len() * 16) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{nc}x{nv}x{nt}")),
            &(),
            |b, _| {
                let mut coll: Tensor3<Complex64> = Tensor3::new(nv, nc_d.count(0), nt);
                let mut back: Tensor3<Complex64> = Tensor3::new(nc, nv / parts, nt);
                b.iter(|| {
                    for q in 0..parts {
                        let mut blk = Vec::new();
                        pack_str_block(&h, nc_d.range(q), &mut blk);
                        if q == 0 {
                            unpack_into_coll(&blk, nv_d.range(0), &mut coll);
                        }
                    }
                    let mut blk = Vec::new();
                    pack_coll_block(&coll, nv_d.range(0), &mut blk);
                    unpack_into_str(&blk, nc_d.range(0), &mut back);
                    back.as_slice()[0]
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_pack_roundtrip);
criterion_main!(benches);
