//! T-allreduce (paper §2.1): wall-clock collective costs on the thread
//! substrate vs participant count, plus AllToAll for the transpose path.
//! The absolute numbers are shared-memory speeds; the artifact is the
//! *trend with participants*, which is what the paper's optimization
//! exploits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xg_comm::World;
use xg_linalg::Complex64;

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_f64");
    let n = 64 * 1024; // 512 KiB of f64
    g.throughput(Throughput::Bytes((n * 8) as u64));
    for p in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                World::new(p).run(|comm| {
                    let mut buf = vec![1.0f64; n];
                    for _ in 0..4 {
                        comm.all_reduce_sum_f64(&mut buf);
                    }
                    buf[0]
                })
            });
        });
    }
    g.finish();
}

fn bench_allreduce_complex(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_complex");
    let n = 32 * 1024;
    g.throughput(Throughput::Bytes((n * 16) as u64));
    for p in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                World::new(p).run(|comm| {
                    let mut buf = vec![Complex64::new(1.0, -1.0); n];
                    for _ in 0..4 {
                        comm.all_reduce_sum_complex(&mut buf);
                    }
                    buf[0]
                })
            });
        });
    }
    g.finish();
}

fn bench_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoall_v");
    for p in [2usize, 4, 8] {
        let block = 16 * 1024 / p; // fixed total volume per rank
        g.throughput(Throughput::Bytes((p * block * 16) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                World::new(p).run(|comm| {
                    let send: Vec<Vec<Complex64>> =
                        (0..p).map(|_| vec![Complex64::ONE; block]).collect();
                    let recv = comm.all_to_all_v(send);
                    recv.len()
                })
            });
        });
    }
    g.finish();
}

fn bench_split(c: &mut Criterion) {
    c.bench_function("communicator_split_8ranks", |b| {
        b.iter(|| {
            World::new(8).run(|comm| {
                let g1 = comm.split((comm.rank() % 2) as u64, comm.rank() as u64, "a");
                let g2 = g1.split((g1.rank() % 2) as u64, g1.rank() as u64, "b");
                g2.size()
            })
        });
    });
}

criterion_group!(
    benches,
    bench_allreduce,
    bench_allreduce_complex,
    bench_alltoall,
    bench_split
);
criterion_main!(benches);
