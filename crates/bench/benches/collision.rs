//! Collision pipeline kernels: operator assembly, constant-tensor
//! pre-factorization (the setup cost CGYRO pays once), and the per-step
//! cmat application (the memory-bound hot kernel whose constant tensor the
//! paper shares across the ensemble).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xg_linalg::{Complex64, LuFactors, RealMatrix};
use xg_sim::{CgyroInput, CollisionOperator};

fn small_setup() -> (CgyroInput, xg_sim::grid::VelocityGrid) {
    let input = CgyroInput::test_medium();
    let v = xg_sim::grid::VelocityGrid::new(&input);
    (input, v)
}

fn bench_operator_build(c: &mut Criterion) {
    let (input, v) = small_setup();
    c.bench_function("collision_operator_build_nv72", |b| {
        b.iter(|| CollisionOperator::build(&input, &v));
    });
}

fn bench_cmat_build(c: &mut Criterion) {
    let (input, v) = small_setup();
    let cfg = xg_sim::grid::ConfigGrid::new(&input);
    let geo = xg_sim::geometry::Geometry::new(&input, &cfg);
    let op = CollisionOperator::build(&input, &v);
    c.bench_function("cmat_build_8_pairs_nv72", |b| {
        b.iter(|| {
            xg_sim::CollisionConstants::build(&input, &v, &cfg, &geo, &op, 0..2, 0..4)
        });
    });
}

fn bench_cmat_apply(c: &mut Criterion) {
    let (input, v) = small_setup();
    let cfg = xg_sim::grid::ConfigGrid::new(&input);
    let geo = xg_sim::geometry::Geometry::new(&input, &cfg);
    let op = CollisionOperator::build(&input, &v);
    let cm = xg_sim::CollisionConstants::build(&input, &v, &cfg, &geo, &op, 0..4, 0..4);
    let nv = v.nv();
    let mut g = c.benchmark_group("cmat_apply");
    g.throughput(Throughput::Bytes((nv * nv * 8 * 16) as u64));
    g.bench_function("stack_of_16_nv72", |b| {
        let mut x = vec![Complex64::new(1.0, 0.5); nv];
        let mut scratch = vec![Complex64::ZERO; nv];
        b.iter(|| {
            for ic in 0..4 {
                for it in 0..4 {
                    cm.apply(ic, it, &mut x, &mut scratch);
                }
            }
            x[0]
        });
    });
    g.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu_factorize");
    for n in [24usize, 72, 144] {
        let a = RealMatrix::from_fn(n, n, |i, j| {
            if i == j {
                4.0 + i as f64 * 0.01
            } else {
                ((i * 31 + j * 17) as f64).sin() * 0.3
            }
        });
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| LuFactors::factorize(a.clone()).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_operator_build, bench_cmat_build, bench_cmat_apply, bench_lu);
criterion_main!(benches);
