//! End-to-end time stepping: serial reference, distributed CGYRO, and the
//! XGYRO ensemble — the functional counterpart of Figure 2's comparison
//! (correctness-bearing; wall times here are shared-memory thread speeds).

use criterion::{criterion_group, criterion_main, Criterion};
use xg_sim::{serial_simulation, CgyroInput, DistTopology, Simulation};
use xg_tensor::ProcGrid;
use xgyro_core::{gradient_sweep, run_cgyro_baseline, run_xgyro};

fn bench_serial_step(c: &mut Criterion) {
    let input = CgyroInput::test_small();
    c.bench_function("serial_step_small", |b| {
        let mut sim = serial_simulation(&input);
        b.iter(|| sim.step());
    });
}

fn bench_dist_step(c: &mut Criterion) {
    let input = CgyroInput::test_small();
    let grid = ProcGrid::new(2, 2);
    c.bench_function("dist_step_2x2_incl_spawn", |b| {
        b.iter(|| {
            xg_comm::World::new(grid.size()).run(|comm| {
                let topo = DistTopology::cgyro(&input, grid, comm);
                let mut sim = Simulation::new(input.clone(), topo);
                sim.run_steps(2);
                sim.time()
            })
        });
    });
}

fn bench_xgyro_vs_baseline(c: &mut Criterion) {
    let cfg = gradient_sweep(&CgyroInput::test_small(), 2, ProcGrid::new(2, 1));
    c.bench_function("xgyro_ensemble_k2_3steps", |b| {
        b.iter(|| run_xgyro(&cfg, 3));
    });
    c.bench_function("cgyro_baseline_k2_3steps", |b| {
        b.iter(|| run_cgyro_baseline(&cfg, 3));
    });
}

criterion_group!(benches, bench_serial_step, bench_dist_step, bench_xgyro_vs_baseline);
criterion_main!(benches);
