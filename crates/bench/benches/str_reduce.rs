//! Str-phase reduction strategies (ISSUE P2): unfused per-moment
//! AllReduces vs one fused packed AllReduce vs fused reduce-scatter +
//! allgather, on the thread substrate. The absolute numbers are
//! shared-memory speeds; the artifact is the *relative* cost of paying
//! per-collective overhead once vs `moments` times per RK stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xg_comm::World;
use xg_linalg::Complex64;
use xg_tensor::Decomp1D;

const MOMENTS: usize = 2;
const ELEMS: usize = 4096;

fn bench_unfused(c: &mut Criterion) {
    let mut g = c.benchmark_group("str_reduce_unfused");
    g.throughput(Throughput::Bytes((MOMENTS * ELEMS * 16) as u64));
    for p in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                World::new(p).run(|comm| {
                    let mut buf = vec![Complex64::new(1.0, -1.0); MOMENTS * ELEMS];
                    for m in 0..MOMENTS {
                        comm.all_reduce_sum_complex(&mut buf[m * ELEMS..(m + 1) * ELEMS]);
                    }
                    buf[0]
                })
            });
        });
    }
    g.finish();
}

fn bench_fused(c: &mut Criterion) {
    let mut g = c.benchmark_group("str_reduce_fused");
    g.throughput(Throughput::Bytes((MOMENTS * ELEMS * 16) as u64));
    for p in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                World::new(p).run(|comm| {
                    let mut buf = vec![Complex64::new(1.0, -1.0); MOMENTS * ELEMS];
                    comm.all_reduce_sum_complex(&mut buf);
                    buf[0]
                })
            });
        });
    }
    g.finish();
}

fn bench_reduce_scatter(c: &mut Criterion) {
    let mut g = c.benchmark_group("str_reduce_scatter_gather");
    g.throughput(Throughput::Bytes((MOMENTS * ELEMS * 16) as u64));
    for p in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                World::new(p).run(|comm| {
                    let buf = vec![Complex64::new(1.0, -1.0); MOMENTS * ELEMS];
                    let d = Decomp1D::new(buf.len(), comm.size());
                    let counts: Vec<usize> =
                        (0..comm.size()).map(|r| d.count(r)).collect();
                    let mine = comm.reduce_scatter_sum_complex(&buf, &counts);
                    let full = comm.all_gather_into_flat(&mine);
                    full[0]
                })
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_unfused, bench_fused, bench_reduce_scatter);
criterion_main!(benches);
