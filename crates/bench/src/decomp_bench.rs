//! Decomposition-planner benchmark: balanced vs searched-unbalanced coll
//! layouts across machine models.
//!
//! This is the measurement behind `BENCH_decomp.json` and the unbalanced-
//! decomposition chapter's claim: on a heterogeneous machine (a slow node,
//! or a mixed-generation partition) the capacity-weighted coll split found
//! by [`xg_cluster::plan_decomposition`] beats the balanced split on
//! expected time-to-solution, while on a homogeneous machine the search
//! keeps the balanced layout (it never chooses worse). Both layouts are
//! priced with the same symbolic per-step schedule and the same Young/Daly
//! ETTS model `xgplan` uses, on the paper's nl03c-class deck — and both
//! produce bitwise-identical physics (coll cuts only move whole `(ic, it)`
//! collision matvecs between ranks), so the delta is pure wall time.

use std::fmt::Write as _;
use xg_cluster::{
    expected_time_to_solution, moved_rows_vs_balanced, plan_decomposition, FailureModel,
    SchedulePolicy,
};
use xg_costmodel::MachineModel;
use xg_sim::CgyroInput;

/// Sweep configuration for the decomposition benchmark.
pub struct DecompBenchConfig {
    /// Machine models to sweep (homogeneous and heterogeneous).
    pub machines: Vec<MachineModel>,
    /// Ensemble sizes to sweep on each machine.
    pub k_values: Vec<usize>,
    /// Node allocation.
    pub nodes: usize,
    /// Reporting steps of work priced into the ETTS.
    pub reports: usize,
}

impl DecompBenchConfig {
    /// The full sweep used to generate `BENCH_decomp.json`.
    pub fn full() -> Self {
        Self {
            machines: vec![
                MachineModel::frontier_like(),
                MachineModel::slow_node_like(),
                MachineModel::mixed_machine_like(),
            ],
            k_values: vec![2, 4, 8],
            nodes: 32,
            reports: 100,
        }
    }

    /// Smaller sweep for CI (same machines, one ensemble size).
    pub fn quick() -> Self {
        Self { k_values: vec![8], ..Self::full() }
    }
}

/// One `(machine, k)` point: the searched layout against the balanced one.
pub struct DecompBenchResult {
    /// Machine model name.
    pub machine: String,
    /// Ensemble size.
    pub k: usize,
    /// Node allocation.
    pub nodes: usize,
    /// Per-simulation grid, `n1xn2`.
    pub grid: String,
    /// Modeled wall seconds per reporting step, balanced split.
    pub step_balanced_s: f64,
    /// Modeled wall seconds per reporting step, chosen split.
    pub step_chosen_s: f64,
    /// Expected time-to-solution (s), balanced split.
    pub etts_balanced_s: f64,
    /// Expected time-to-solution (s), chosen split.
    pub etts_unbalanced_s: f64,
    /// `etts_balanced_s / etts_unbalanced_s` (≥ 1: the search never
    /// returns a layout worse than balanced).
    pub speedup: f64,
    /// Chosen layout label (`balanced` or `coll:...`).
    pub layout: String,
    /// Coll rows the chosen layout places differently from balanced.
    pub moved_rows: usize,
}

/// Run the sweep on the paper's nl03c-class deck. Infeasible `(machine,
/// k)` points are skipped (the planner's typed diagnosis covers those —
/// this bench measures layouts that run).
pub fn run_decomp_bench(cfg: &DecompBenchConfig) -> Vec<DecompBenchResult> {
    let input = CgyroInput::nl03c_like();
    let policy = SchedulePolicy::production();
    let fm = FailureModel::frontier_like();
    let mut out = Vec::new();
    for machine in &cfg.machines {
        for &k in &cfg.k_values {
            let Ok(dp) = plan_decomposition(&input, k, cfg.nodes, machine, &policy) else {
                continue;
            };
            let etts = |step_s: f64| {
                expected_time_to_solution(
                    &input,
                    k,
                    cfg.nodes,
                    cfg.reports as f64 * step_s,
                    machine,
                    &fm,
                )
                .etts_s
            };
            let etts_balanced_s = etts(dp.step_balanced_s);
            let etts_unbalanced_s = etts(dp.step_chosen_s);
            let moved_rows = dp
                .decomposition
                .coll_cuts
                .as_deref()
                .map(moved_rows_vs_balanced)
                .unwrap_or(0);
            out.push(DecompBenchResult {
                machine: machine.name.clone(),
                k,
                nodes: cfg.nodes,
                grid: format!("{}x{}", dp.decomposition.grid.n1, dp.decomposition.grid.n2),
                step_balanced_s: dp.step_balanced_s,
                step_chosen_s: dp.step_chosen_s,
                etts_balanced_s,
                etts_unbalanced_s,
                speedup: etts_balanced_s / etts_unbalanced_s,
                layout: dp.decomposition.label(input.dims().nc),
                moved_rows,
            });
        }
    }
    out
}

/// Render the results as the `BENCH_decomp.json` document.
pub fn decomp_bench_json(results: &[DecompBenchResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"decomp\",\n");
    s.push_str(
        "  \"description\": \"searched unbalanced coll decomposition vs balanced split on \
         the nl03c-class deck: modeled step time and Young/Daly ETTS per machine model; \
         layouts are bitwise-identical in output\",\n",
    );
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"machine\": \"{}\", \"k\": {}, \"nodes\": {}, \"grid\": \"{}\", \
             \"step_balanced_s\": {:.3}, \"step_chosen_s\": {:.3}, \
             \"etts_balanced_s\": {:.1}, \"etts_unbalanced_s\": {:.1}, \
             \"speedup\": {:.3}, \"moved_rows\": {}, \"layout\": \"{}\"}}",
            r.machine,
            r.k,
            r.nodes,
            r.grid,
            r.step_balanced_s,
            r.step_chosen_s,
            r.etts_balanced_s,
            r.etts_unbalanced_s,
            r.speedup,
            r.moved_rows,
            r.layout
        );
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable table of the same results.
pub fn decomp_bench_report(results: &[DecompBenchResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "P4: unbalanced decomposition vs balanced (modeled ETTS)");
    let _ = writeln!(
        out,
        "{:>14} {:>4} {:>6} {:>6} {:>10} {:>10} {:>12} {:>12} {:>8} {:>6}",
        "machine", "k", "nodes", "grid", "bal-s/rep", "cho-s/rep", "ETTS-bal(h)",
        "ETTS-cho(h)", "speedup", "moved"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:>14} {:>4} {:>6} {:>6} {:>10.1} {:>10.1} {:>12.2} {:>12.2} {:>7.2}x {:>6}",
            r.machine,
            r.k,
            r.nodes,
            r.grid,
            r.step_balanced_s,
            r.step_chosen_s,
            r.etts_balanced_s / 3600.0,
            r.etts_unbalanced_s / 3600.0,
            r.speedup,
            r.moved_rows
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_meets_the_acceptance_floor() {
        let results = run_decomp_bench(&DecompBenchConfig::quick());
        // One row per machine at k=8; all three are feasible on 32 nodes.
        assert_eq!(results.len(), 3);
        let by_name = |n: &str| results.iter().find(|r| r.machine == n).unwrap();

        // Homogeneous machine: the search must keep the balanced layout.
        let frontier = by_name("frontier-like");
        assert_eq!(frontier.layout, "balanced");
        assert_eq!(frontier.speedup, 1.0);
        assert_eq!(frontier.moved_rows, 0);

        // Slow-node machine: the acceptance floor is a ≥1.15x ETTS win.
        let slow = by_name("slow-node");
        assert!(slow.layout.starts_with("coll:"));
        assert!(
            slow.speedup >= 1.15,
            "slow-node ETTS speedup {:.3} below the 1.15x floor",
            slow.speedup
        );
        assert!(slow.moved_rows > 0);

        // Mixed machine: unbalanced, and never worse.
        let mixed = by_name("mixed-machine");
        assert!(mixed.speedup > 1.0);

        let json = decomp_bench_json(&results);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"bench\": \"decomp\""));
        assert!(json.contains("\"speedup\""));
        let report = decomp_bench_report(&results);
        assert!(report.contains("speedup"));
    }
}
