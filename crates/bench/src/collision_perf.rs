//! Measured collision-apply benchmark: naive per-RHS vs batched-blocked vs
//! batched-blocked + threads, swept over `nv` and ensemble size `k`.
//!
//! This is the measurement behind `BENCH_collision.json` (the repo-root
//! perf trajectory artifact) and EXPERIMENTS.md §P. Three pipelines over
//! identical inputs:
//!
//! * **naive** — the pre-batching hot path: per member, gather each
//!   velocity profile element-by-element out of the legacy coll layout
//!   `(nv, nc, nt)` (stride `nc·nt`), one single-RHS matvec plus the
//!   `copy_from_slice` round-trip, scatter back. The shared `nv×nv` panel
//!   is re-streamed once **per member**.
//! * **blocked** — the batched path: profiles live contiguously in the
//!   `(nc, nt, k·nv)` layout and one register-blocked multi-RHS apply
//!   streams the shared panel once **per k members**.
//! * **threaded** — blocked, with the `(ic, it)` panel loop fanned over a
//!   persistent [`StepPool`].
//!
//! All three produce bitwise-identical outputs (asserted once per shape
//! before timing), so the comparison is pure pipeline cost.

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use xg_linalg::{matvec_complex_flat, Complex64};
use xg_sim::StepPool;
use xg_tensor::Tensor3;

/// Sweep configuration for the collision-apply benchmark.
pub struct CollisionBenchConfig {
    /// Velocity-space sizes to sweep (panel is `nv × nv`).
    pub nv_values: Vec<usize>,
    /// Ensemble sizes (right-hand sides per panel) to sweep.
    pub k_values: Vec<usize>,
    /// Number of `(ic, it)` pairs, i.e. distinct panels per measurement.
    pub pairs: usize,
    /// Worker-pool width for the threaded pipeline.
    pub threads: usize,
    /// Minimum wall time per timing loop.
    pub target: Duration,
}

impl CollisionBenchConfig {
    /// The full sweep used to generate `BENCH_collision.json`.
    pub fn full() -> Self {
        Self {
            nv_values: vec![32, 64, 128, 256],
            k_values: vec![1, 4, 8],
            // Large enough that the panel set exceeds L2 from nv=128 up
            // (32 × 128 KiB = 4 MiB), approaching the production regime
            // where cmat dwarfs every cache level.
            pairs: 32,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(8),
            target: Duration::from_millis(120),
        }
    }

    /// Tiny smoke-test sweep for CI (seconds, not minutes).
    pub fn quick() -> Self {
        Self {
            nv_values: vec![16, 64],
            k_values: vec![1, 4],
            pairs: 4,
            threads: 2,
            target: Duration::from_millis(8),
        }
    }
}

/// One measured `(nv, k)` point.
pub struct CollisionBenchResult {
    /// Velocity-space size.
    pub nv: usize,
    /// Right-hand sides per panel.
    pub k: usize,
    /// Panels per measurement.
    pub pairs: usize,
    /// ns per full sweep over all pairs × members, naive pipeline.
    pub naive_ns: f64,
    /// ns per sweep, batched-blocked pipeline (single thread).
    pub blocked_ns: f64,
    /// ns per sweep, batched-blocked + worker pool.
    pub threaded_ns: f64,
    /// naive / blocked.
    pub speedup_blocked: f64,
    /// naive / threaded.
    pub speedup_threaded: f64,
}

/// Time `f` adaptively: double the iteration count until the loop runs at
/// least `target`, return ns per iteration.
fn time_ns(target: Duration, mut f: impl FnMut()) -> f64 {
    f(); // warm up (page in buffers, settle the panel in cache or not)
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed();
        if dt >= target || iters >= 1 << 24 {
            return dt.as_nanos() as f64 / iters as f64;
        }
        iters *= 2;
    }
}

/// Deterministic non-trivial fill values (no `rand` dependency).
fn panel_val(i: usize) -> f64 {
    ((i as f64) * 0.137).sin() * 0.2
}

fn state_val(i: usize) -> Complex64 {
    Complex64::new(((i as f64) * 0.071).cos(), ((i as f64) * 0.113).sin())
}

/// Run the sweep. Every pipeline's output is checked bitwise-identical to
/// the naive reference before timing.
pub fn run_collision_bench(cfg: &CollisionBenchConfig) -> Vec<CollisionBenchResult> {
    let pool = StepPool::new(cfg.threads);
    let mut out = Vec::new();
    for &nv in &cfg.nv_values {
        for &k in &cfg.k_values {
            out.push(measure_point(nv, k, cfg.pairs, &pool, cfg.target));
        }
    }
    out
}

fn measure_point(
    nv: usize,
    k: usize,
    pairs: usize,
    pool: &StepPool,
    target: Duration,
) -> CollisionBenchResult {
    // Shared panels: one nv×nv matrix per (ic, it) pair.
    let panels: Vec<f64> = (0..pairs * nv * nv).map(panel_val).collect();
    let panel = |ic: usize| &panels[ic * nv * nv..(ic + 1) * nv * nv];

    // Legacy coll layout, one tensor per member: (nv, pairs, 1) — the
    // velocity profile at a pair is strided by `pairs`.
    let legacy_in: Vec<Tensor3<Complex64>> = (0..k)
        .map(|s| {
            Tensor3::from_fn(nv, pairs, 1, |iv, ic, _| state_val(s * nv * pairs + iv * pairs + ic))
        })
        .collect();
    let mut legacy_out: Vec<Tensor3<Complex64>> =
        (0..k).map(|_| Tensor3::new(nv, pairs, 1)).collect();

    // Profile-contiguous layout: (pairs, 1, k·nv), member s in lanes
    // [s·nv, (s+1)·nv) — same values as the legacy tensors.
    let cp_in = Tensor3::from_fn(pairs, 1, k * nv, |ic, _, lane| {
        legacy_in[lane / nv][(lane % nv, ic, 0)]
    });
    let mut cp_out: Tensor3<Complex64> = Tensor3::new(pairs, 1, k * nv);

    let mut profile = vec![Complex64::ZERO; nv];
    let mut scratch = vec![Complex64::ZERO; nv];

    // --- Correctness pin: all three pipelines agree bitwise. ---
    for s in 0..k {
        for ic in 0..pairs {
            for iv in 0..nv {
                profile[iv] = legacy_in[s][(iv, ic, 0)];
            }
            matvec_complex_flat(panel(ic), nv, nv, &profile, &mut scratch);
            profile.copy_from_slice(&scratch);
            for iv in 0..nv {
                legacy_out[s][(iv, ic, 0)] = profile[iv];
            }
        }
    }
    for ic in 0..pairs {
        let (x, y) = (cp_in.line(ic, 0), cp_out.line_mut(ic, 0));
        xg_linalg::apply_panel_multi(panel(ic), nv, x, y, k);
    }
    for s in 0..k {
        for ic in 0..pairs {
            for iv in 0..nv {
                assert_eq!(
                    legacy_out[s][(iv, ic, 0)],
                    cp_out[(ic, 0, s * nv + iv)],
                    "pipelines diverged at nv={nv} k={k}"
                );
            }
        }
    }

    // --- Timings. ---
    let naive_ns = time_ns(target, || {
        for s in 0..k {
            for ic in 0..pairs {
                for iv in 0..nv {
                    profile[iv] = legacy_in[s][(iv, ic, 0)];
                }
                matvec_complex_flat(panel(ic), nv, nv, &profile, &mut scratch);
                profile.copy_from_slice(&scratch);
                for iv in 0..nv {
                    legacy_out[s][(iv, ic, 0)] = profile[iv];
                }
            }
        }
    });
    let blocked_ns = time_ns(target, || {
        for ic in 0..pairs {
            let (x, y) = (cp_in.line(ic, 0), cp_out.line_mut(ic, 0));
            xg_linalg::apply_panel_multi(panel(ic), nv, x, y, k);
        }
    });
    let threaded_ns = time_ns(target, || {
        pool.for_each_chunk(cp_out.as_mut_slice(), k * nv, |ic, out| {
            xg_linalg::apply_panel_multi(panel(ic), nv, cp_in.line(ic, 0), out, k);
        });
    });

    CollisionBenchResult {
        nv,
        k,
        pairs,
        naive_ns,
        blocked_ns,
        threaded_ns,
        speedup_blocked: naive_ns / blocked_ns,
        speedup_threaded: naive_ns / threaded_ns,
    }
}

/// Render the results as the `BENCH_collision.json` document (hand-built:
/// the workspace deliberately has no JSON dependency).
pub fn collision_bench_json(results: &[CollisionBenchResult], threads: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"collision_apply\",\n");
    s.push_str(
        "  \"description\": \"per-(ic,it) cmat panel apply: naive per-RHS (strided \
         gather + single-RHS matvec + copy, panel streamed k times) vs batched-blocked \
         (profile-contiguous multi-RHS, panel streamed once) vs blocked + worker pool\",\n",
    );
    let _ = writeln!(s, "  \"threads\": {threads},");
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"nv\": {}, \"k\": {}, \"pairs\": {}, \"naive_ns\": {:.0}, \
             \"blocked_ns\": {:.0}, \"threaded_ns\": {:.0}, \
             \"speedup_blocked\": {:.3}, \"speedup_threaded\": {:.3}}}",
            r.nv,
            r.k,
            r.pairs,
            r.naive_ns,
            r.blocked_ns,
            r.threaded_ns,
            r.speedup_blocked,
            r.speedup_threaded
        );
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable table of the same results.
pub fn collision_bench_report(results: &[CollisionBenchResult], threads: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "P: batched multi-RHS collision apply ({threads} threads in pool)");
    let _ = writeln!(
        out,
        "{:>5} {:>3} {:>6} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "nv", "k", "pairs", "naive_ns", "blocked_ns", "threaded_ns", "x_blk", "x_thr"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:>5} {:>3} {:>6} {:>12.0} {:>12.0} {:>12.0} {:>9.2} {:>9.2}",
            r.nv, r.k, r.pairs, r.naive_ns, r.blocked_ns, r.threaded_ns,
            r.speedup_blocked, r.speedup_threaded
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_wellformed_results() {
        let cfg = CollisionBenchConfig {
            nv_values: vec![8, 16],
            k_values: vec![1, 4],
            pairs: 3,
            threads: 2,
            target: Duration::from_micros(200),
        };
        let results = run_collision_bench(&cfg);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(r.naive_ns > 0.0 && r.blocked_ns > 0.0 && r.threaded_ns > 0.0);
            assert!(r.speedup_blocked.is_finite());
        }
        let json = collision_bench_json(&results, cfg.threads);
        // Minimal well-formedness: balanced braces/brackets, expected keys.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"collision_apply\""));
        assert!(json.contains("\"speedup_blocked\""));
        let report = collision_bench_report(&results, cfg.threads);
        assert!(report.contains("x_blk"));
    }
}
