//! Measured collision-apply benchmark: naive per-RHS vs batched-blocked vs
//! SIMD-tiled vs SIMD-tiled + threads, swept over `nv` and ensemble size
//! `k`.
//!
//! This is the measurement behind `BENCH_collision.json` (the repo-root
//! perf trajectory artifact) and EXPERIMENTS.md §P. Four pipelines over
//! identical inputs:
//!
//! * **naive** — the pre-batching hot path: per member, gather each
//!   velocity profile element-by-element out of the legacy coll layout
//!   `(nv, nc, nt)` (stride `nc·nt`), one single-RHS matvec plus the
//!   `copy_from_slice` round-trip, scatter back. The shared `nv×nv` panel
//!   is re-streamed once **per member**.
//! * **blocked** — the batched path: profiles live contiguously in the
//!   `(nc, nt, k·nv)` layout and one register-blocked multi-RHS apply
//!   streams the shared panel once **per k members**. Pinned to the
//!   **scalar, un-tiled** kernel so the column keeps its historical
//!   meaning across the SIMD work.
//! * **simd** — blocked, through the autotuned kernel: the runtime-probed
//!   SIMD micro-kernel (`avx512`/`avx2`/`scalar`) with the L2-sized row
//!   tile the tuner picked for this `(nv, k)`. Single thread.
//! * **threaded** — simd, with the `(pair, row-tile)` task loop fanned
//!   over a persistent [`StepPool`] (the production tile-granular split).
//!
//! All four produce bitwise-identical outputs (asserted once per shape
//! before timing), so the comparison is pure pipeline cost.

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use xg_costmodel::KernelChoice;
use xg_linalg::{
    apply_panel_multi_with, apply_panel_rows_ptr, matvec_complex_flat, Complex64, SimdLevel,
};
use xg_sim::{SendPtr, StepPool};
use xg_tensor::Tensor3;

/// Sweep configuration for the collision-apply benchmark.
pub struct CollisionBenchConfig {
    /// Velocity-space sizes to sweep (panel is `nv × nv`).
    pub nv_values: Vec<usize>,
    /// Ensemble sizes (right-hand sides per panel) to sweep.
    pub k_values: Vec<usize>,
    /// Number of `(ic, it)` pairs, i.e. distinct panels per measurement.
    pub pairs: usize,
    /// Worker-pool width for the threaded pipeline.
    pub threads: usize,
    /// Minimum wall time per timing loop.
    pub target: Duration,
}

impl CollisionBenchConfig {
    /// The full sweep used to generate `BENCH_collision.json`.
    pub fn full() -> Self {
        Self {
            nv_values: vec![32, 64, 128, 256],
            k_values: vec![1, 4, 8],
            // Large enough that the panel set exceeds L2 from nv=128 up
            // (32 × 128 KiB = 4 MiB), approaching the production regime
            // where cmat dwarfs every cache level.
            pairs: 32,
            // Same env override the StepPool honours, so the artifact can be
            // regenerated at a pinned pool width regardless of host core
            // count.
            threads: std::env::var(xg_sim::THREADS_ENV)
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(8)
                }),
            target: Duration::from_millis(120),
        }
    }

    /// Tiny smoke-test sweep for CI (seconds, not minutes).
    pub fn quick() -> Self {
        Self {
            nv_values: vec![16, 64],
            k_values: vec![1, 4],
            pairs: 4,
            threads: 2,
            target: Duration::from_millis(8),
        }
    }
}

/// One measured `(nv, k)` point.
pub struct CollisionBenchResult {
    /// Velocity-space size.
    pub nv: usize,
    /// Right-hand sides per panel.
    pub k: usize,
    /// Panels per measurement.
    pub pairs: usize,
    /// ns per full sweep over all pairs × members, naive pipeline.
    pub naive_ns: f64,
    /// ns per sweep, batched-blocked pipeline (scalar kernel, one thread).
    pub blocked_ns: f64,
    /// ns per sweep, autotuned SIMD + L2-tiled kernel (one thread).
    pub simd_ns: f64,
    /// ns per sweep, SIMD-tiled + worker pool (tile-granular tasks).
    pub threaded_ns: f64,
    /// naive / blocked.
    pub speedup_blocked: f64,
    /// naive / simd.
    pub speedup_simd: f64,
    /// naive / threaded.
    pub speedup_threaded: f64,
    /// The autotuned kernel the simd and threaded pipelines ran
    /// (e.g. `avx512/t128`).
    pub kernel: KernelChoice,
}

/// Time `f` adaptively: double the iteration count until the loop runs at
/// least `target`, return ns per iteration.
fn time_ns(target: Duration, mut f: impl FnMut()) -> f64 {
    f(); // warm up (page in buffers, settle the panel in cache or not)
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed();
        if dt >= target || iters >= 1 << 24 {
            return dt.as_nanos() as f64 / iters as f64;
        }
        iters *= 2;
    }
}

/// Deterministic non-trivial fill values (no `rand` dependency).
fn panel_val(i: usize) -> f64 {
    ((i as f64) * 0.137).sin() * 0.2
}

fn state_val(i: usize) -> Complex64 {
    Complex64::new(((i as f64) * 0.071).cos(), ((i as f64) * 0.113).sin())
}

/// Run the sweep. Every pipeline's output is checked bitwise-identical to
/// the naive reference before timing.
pub fn run_collision_bench(cfg: &CollisionBenchConfig) -> Vec<CollisionBenchResult> {
    let pool = StepPool::new(cfg.threads);
    let mut out = Vec::new();
    for &nv in &cfg.nv_values {
        for &k in &cfg.k_values {
            out.push(measure_point(nv, k, cfg.pairs, &pool, cfg.target));
        }
    }
    out
}

fn measure_point(
    nv: usize,
    k: usize,
    pairs: usize,
    pool: &StepPool,
    target: Duration,
) -> CollisionBenchResult {
    // Shared panels: one nv×nv matrix per (ic, it) pair.
    let panels: Vec<f64> = (0..pairs * nv * nv).map(panel_val).collect();
    let panel = |ic: usize| &panels[ic * nv * nv..(ic + 1) * nv * nv];

    // Legacy coll layout, one tensor per member: (nv, pairs, 1) — the
    // velocity profile at a pair is strided by `pairs`.
    let legacy_in: Vec<Tensor3<Complex64>> = (0..k)
        .map(|s| {
            Tensor3::from_fn(nv, pairs, 1, |iv, ic, _| state_val(s * nv * pairs + iv * pairs + ic))
        })
        .collect();
    let mut legacy_out: Vec<Tensor3<Complex64>> =
        (0..k).map(|_| Tensor3::new(nv, pairs, 1)).collect();

    // Profile-contiguous layout: (pairs, 1, k·nv), member s in lanes
    // [s·nv, (s+1)·nv) — same values as the legacy tensors.
    let cp_in = Tensor3::from_fn(pairs, 1, k * nv, |ic, _, lane| {
        legacy_in[lane / nv][(lane % nv, ic, 0)]
    });
    let mut cp_out: Tensor3<Complex64> = Tensor3::new(pairs, 1, k * nv);

    let mut profile = vec![Complex64::ZERO; nv];
    let mut scratch = vec![Complex64::ZERO; nv];

    // The kernel the production collision path would run for this shape.
    let kernel = xg_costmodel::tune_collision_kernel(nv, k);
    let tiles = nv.div_ceil(kernel.tile_rows.max(1));

    // --- Correctness pin: all four pipelines agree bitwise. ---
    for s in 0..k {
        for ic in 0..pairs {
            for iv in 0..nv {
                profile[iv] = legacy_in[s][(iv, ic, 0)];
            }
            matvec_complex_flat(panel(ic), nv, nv, &profile, &mut scratch);
            profile.copy_from_slice(&scratch);
            for iv in 0..nv {
                legacy_out[s][(iv, ic, 0)] = profile[iv];
            }
        }
    }
    let check = |cp_out: &Tensor3<Complex64>, which: &str| {
        for s in 0..k {
            for ic in 0..pairs {
                for iv in 0..nv {
                    assert_eq!(
                        legacy_out[s][(iv, ic, 0)],
                        cp_out[(ic, 0, s * nv + iv)],
                        "{which} pipeline diverged at nv={nv} k={k}"
                    );
                }
            }
        }
    };
    for ic in 0..pairs {
        let (x, y) = (cp_in.line(ic, 0), cp_out.line_mut(ic, 0));
        apply_panel_multi_with(SimdLevel::Scalar, panel(ic), nv, x, y, k, nv);
    }
    check(&cp_out, "blocked");
    cp_out.fill(Complex64::ZERO);
    for ic in 0..pairs {
        let (x, y) = (cp_in.line(ic, 0), cp_out.line_mut(ic, 0));
        apply_panel_multi_with(kernel.level, panel(ic), nv, x, y, k, kernel.tile_rows);
    }
    check(&cp_out, "simd");
    cp_out.fill(Complex64::ZERO);
    run_threaded(pool, &cp_in, &mut cp_out, &panels, nv, k, kernel, tiles);
    check(&cp_out, "threaded");

    // --- Timings. ---
    let naive_ns = time_ns(target, || {
        for s in 0..k {
            for ic in 0..pairs {
                for iv in 0..nv {
                    profile[iv] = legacy_in[s][(iv, ic, 0)];
                }
                matvec_complex_flat(panel(ic), nv, nv, &profile, &mut scratch);
                profile.copy_from_slice(&scratch);
                for iv in 0..nv {
                    legacy_out[s][(iv, ic, 0)] = profile[iv];
                }
            }
        }
    });
    let blocked_ns = time_ns(target, || {
        for ic in 0..pairs {
            let (x, y) = (cp_in.line(ic, 0), cp_out.line_mut(ic, 0));
            apply_panel_multi_with(SimdLevel::Scalar, panel(ic), nv, x, y, k, nv);
        }
    });
    let simd_ns = time_ns(target, || {
        for ic in 0..pairs {
            let (x, y) = (cp_in.line(ic, 0), cp_out.line_mut(ic, 0));
            apply_panel_multi_with(kernel.level, panel(ic), nv, x, y, k, kernel.tile_rows);
        }
    });
    let threaded_ns = time_ns(target, || {
        run_threaded(pool, &cp_in, &mut cp_out, &panels, nv, k, kernel, tiles);
    });

    CollisionBenchResult {
        nv,
        k,
        pairs,
        naive_ns,
        blocked_ns,
        simd_ns,
        threaded_ns,
        speedup_blocked: naive_ns / blocked_ns,
        speedup_simd: naive_ns / simd_ns,
        speedup_threaded: naive_ns / threaded_ns,
        kernel,
    }
}

/// The production tile-granular split: one pool task per `(pair,
/// row-tile)`, writing disjoint row ranges of disjoint per-pair lane
/// blocks through the `Send + Sync` pointer wrapper.
#[allow(clippy::too_many_arguments)]
fn run_threaded(
    pool: &StepPool,
    cp_in: &Tensor3<Complex64>,
    cp_out: &mut Tensor3<Complex64>,
    panels: &[f64],
    nv: usize,
    k: usize,
    kernel: KernelChoice,
    tiles: usize,
) {
    let pairs = cp_in.shape().0;
    let out = SendPtr(cp_out.as_mut_slice().as_mut_ptr());
    pool.for_each_task(pairs * tiles, |t| {
        let (ic, tile) = (t / tiles, t % tiles);
        let r0 = tile * kernel.tile_rows;
        let r1 = (r0 + kernel.tile_rows).min(nv);
        // SAFETY: tasks write disjoint rows of disjoint per-pair lane
        // blocks; cp_out outlives the blocking round.
        unsafe {
            apply_panel_rows_ptr(
                kernel.level,
                &panels[ic * nv * nv..(ic + 1) * nv * nv],
                nv,
                cp_in.line(ic, 0),
                out.add(ic * k * nv),
                k,
                r0..r1,
            );
        }
    });
}

/// Render the results as the `BENCH_collision.json` document (hand-built:
/// the workspace deliberately has no JSON dependency).
pub fn collision_bench_json(results: &[CollisionBenchResult], threads: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"collision_apply\",\n");
    s.push_str(
        "  \"description\": \"per-(ic,it) cmat panel apply: naive per-RHS (strided \
         gather + single-RHS matvec + copy, panel streamed k times) vs batched-blocked \
         (profile-contiguous multi-RHS, scalar kernel, panel streamed once) vs autotuned \
         SIMD + L2-tiled kernel vs SIMD-tiled + worker pool (tile-granular tasks)\",\n",
    );
    let _ = writeln!(s, "  \"threads\": {threads},");
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"nv\": {}, \"k\": {}, \"pairs\": {}, \"naive_ns\": {:.0}, \
             \"blocked_ns\": {:.0}, \"simd_ns\": {:.0}, \"threaded_ns\": {:.0}, \
             \"speedup_blocked\": {:.3}, \"speedup_simd\": {:.3}, \
             \"speedup_threaded\": {:.3}, \"kernel\": \"{}\"}}",
            r.nv,
            r.k,
            r.pairs,
            r.naive_ns,
            r.blocked_ns,
            r.simd_ns,
            r.threaded_ns,
            r.speedup_blocked,
            r.speedup_simd,
            r.speedup_threaded,
            r.kernel
        );
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable table of the same results.
pub fn collision_bench_report(results: &[CollisionBenchResult], threads: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "P: batched multi-RHS collision apply ({threads} threads in pool)");
    let _ = writeln!(
        out,
        "{:>5} {:>3} {:>6} {:>12} {:>12} {:>12} {:>12} {:>7} {:>7} {:>7}  kernel",
        "nv", "k", "pairs", "naive_ns", "blocked_ns", "simd_ns", "threaded_ns", "x_blk",
        "x_simd", "x_thr"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:>5} {:>3} {:>6} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>7.2} {:>7.2} {:>7.2}  {}",
            r.nv, r.k, r.pairs, r.naive_ns, r.blocked_ns, r.simd_ns, r.threaded_ns,
            r.speedup_blocked, r.speedup_simd, r.speedup_threaded, r.kernel
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_wellformed_results() {
        let cfg = CollisionBenchConfig {
            nv_values: vec![8, 16],
            k_values: vec![1, 4],
            pairs: 3,
            threads: 2,
            target: Duration::from_micros(200),
        };
        let results = run_collision_bench(&cfg);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(
                r.naive_ns > 0.0 && r.blocked_ns > 0.0 && r.simd_ns > 0.0 && r.threaded_ns > 0.0
            );
            assert!(r.speedup_blocked.is_finite());
            assert!(r.speedup_simd.is_finite());
            assert!(r.kernel.tile_rows >= 1 && r.kernel.tile_rows <= r.nv);
        }
        let json = collision_bench_json(&results, cfg.threads);
        // Minimal well-formedness: balanced braces/brackets, expected keys.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"collision_apply\""));
        assert!(json.contains("\"speedup_blocked\""));
        assert!(json.contains("\"simd_ns\""));
        assert!(json.contains("\"speedup_simd\""));
        assert!(json.contains("\"kernel\""));
        let report = collision_bench_report(&results, cfg.threads);
        assert!(report.contains("x_blk"));
        assert!(report.contains("x_simd"));
    }
}
