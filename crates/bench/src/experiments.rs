//! One function per paper artifact. Each returns a human-readable report
//! string (also consumed by EXPERIMENTS.md and the integration tests).

use std::fmt::Write as _;
use xg_costmodel::{allreduce_time, CollectiveShape, MachineModel, Placement};
use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;
use xgyro_core::{
    cmat_memory_law, gradient_sweep, run_cgyro_baseline, run_single_cgyro, run_xgyro,
    summarize_trace,
};

/// The functional deck used for trace experiments (small, fast).
pub fn trace_deck() -> CgyroInput {
    CgyroInput::test_small()
}

/// **F1** — CGYRO str/coll communication logic (paper Figure 1).
///
/// Runs a small distributed CGYRO simulation and prints rank 0's
/// communication pattern, demonstrating that one communicator (`nv`)
/// serves both the str-phase AllReduce (field + upwind) and the str↔coll
/// AllToAll transpose.
pub fn figure1() -> String {
    let input = trace_deck();
    let grid = ProcGrid::new(4, 1);
    let (_result, traces) = run_single_cgyro(&input, grid, 2, 0);
    let summary = summarize_trace(&traces[0]);
    let ar = summary.str_allreduce().expect("str AllReduce present");
    let a2a = summary.coll_alltoall().expect("coll AllToAll present");
    let mut out = String::new();
    let _ = writeln!(out, "F1: CGYRO communication logic (rank 0 of a {}x{} grid, 2 steps)", grid.n1, grid.n2);
    let _ = writeln!(out, "{}", summary.to_table());
    let _ = writeln!(
        out,
        "str AllReduce communicator:  '{}' ({} ranks)",
        ar.comm_label, ar.participants
    );
    let _ = writeln!(
        out,
        "coll AllToAll communicator:  '{}' ({} ranks)",
        a2a.comm_label, a2a.participants
    );
    let reused = ar.comm_label == a2a.comm_label && ar.participants == a2a.participants;
    let _ = writeln!(
        out,
        "=> communicator reuse (paper Figure 1): {}",
        if reused { "CONFIRMED — same communicator serves both" } else { "VIOLATED" }
    );
    assert!(reused, "CGYRO must reuse the nv communicator");
    out
}

/// **F3** — XGYRO communication logic (paper Figure 3).
pub fn figure3() -> String {
    let input = trace_deck();
    let grid = ProcGrid::new(2, 2);
    let k = 3;
    let cfg = gradient_sweep(&input, k, grid);
    let outcome = run_xgyro(&cfg, 2);
    let summary = summarize_trace(&outcome.traces[0]);
    let ar = summary.str_allreduce().expect("str AllReduce present");
    let a2a = summary.coll_alltoall().expect("coll AllToAll present");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "F3: XGYRO communication logic (k={k} sims of {}x{} ranks, rank 0, 2 steps)",
        grid.n1, grid.n2
    );
    let _ = writeln!(out, "{}", summary.to_table());
    let _ = writeln!(
        out,
        "str AllReduce:  '{}' with {} ranks (per-simulation, unchanged)",
        ar.comm_label, ar.participants
    );
    let _ = writeln!(
        out,
        "coll AllToAll:  '{}' with {} ranks (= k x n1, ensemble-wide)",
        a2a.comm_label, a2a.participants
    );
    assert_eq!(ar.participants, grid.n1);
    assert_eq!(a2a.participants, k * grid.n1);
    assert_ne!(ar.comm_label, a2a.comm_label, "communicators separated");
    let _ = writeln!(
        out,
        "=> nv/coll communicator separation (paper Figure 3): CONFIRMED"
    );
    out
}

/// **F2** — the benchmark table (paper Figure 2): 8× nl03c on 32
/// Frontier-like nodes, CGYRO-sequential vs XGYRO, seconds per reporting
/// step by phase.
pub fn figure2() -> String {
    let input = CgyroInput::nl03c_like();
    let machine = MachineModel::frontier_like();
    let policy = xg_cluster::SchedulePolicy::production();
    let k = 8;
    let nodes = 32;
    let cg_plan = xg_cluster::plan(&input, 1, nodes, &machine).expect("CGYRO plan");
    let xg_plan = xg_cluster::plan(&input, k, nodes, &machine).expect("XGYRO plan");
    let cg = xg_cluster::simulate_cgyro_sequential(&input, cg_plan.grid, k, nodes, &machine, &policy);
    let xg = xg_cluster::simulate_xgyro(&input, xg_plan.grid, k, nodes, &machine, &policy);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "F2: {k} x nl03c-like on {nodes} {} nodes ({} ranks), seconds per reporting step",
        machine.name,
        machine.ranks(nodes)
    );
    let _ = writeln!(
        out,
        "    CGYRO grid: n1={} n2={} (x{k} sequential) | XGYRO grids: n1={} n2={} (k={k} concurrent)",
        cg_plan.grid.n1, cg_plan.grid.n2, xg_plan.grid.n1, xg_plan.grid.n2
    );
    out.push_str(&xg_cluster::figure2_table(&[&cg, &xg]));
    let _ = writeln!(
        out,
        "paper:   CGYRO sum 375 s (str comm 145 s) | XGYRO 250 s (str comm 33 s) | speedup 1.5x"
    );
    // A sample in the format of the paper's published logs ("Complete
    // simulation logs can be found in [5]"): the benchmark reports at
    // t = 81 (3 reporting steps of 27 time units in our normalization).
    let _ = writeln!(out, "\nout.cgyro.timing-style log (XGYRO run):");
    out.push_str(&xg_cluster::cgyro_timing_log(&xg, 3, 27.0));
    out
}

/// **T-mem** — cmat dominates memory ~10×, ratio strong-scaling invariant,
/// and per-process cmat drops 1/k with ensemble size.
pub fn memory_claims() -> String {
    let input = CgyroInput::nl03c_like();
    let mut out = String::new();
    let _ = writeln!(out, "T-mem: memory inventory for nl03c-like (nv=576, nc=131072, nt=16)");
    let _ = writeln!(out, "  full cmat = {:.2} TB", xg_sim::cmat_total_bytes(&input) as f64 / 1e12);
    let _ = writeln!(out, "\n  strong scaling (CGYRO, per-rank):");
    let _ = writeln!(out, "  ranks   cmat/rank GB   other/rank GB   ratio");
    for (n1, n2) in [(8usize, 16usize), (16, 16), (32, 16), (64, 16)] {
        let grid = ProcGrid::new(n1, n2);
        let inv = xg_cluster::rank_inventory(&input, grid, n1);
        let cmat = xg_cluster::total_bytes(&inv, Some(xg_cluster::BufferCategory::Constant));
        let total = xg_cluster::total_bytes(&inv, None);
        let other = total - cmat;
        let _ = writeln!(
            out,
            "  {:>5}   {:>12.2}   {:>13.2}   {:>5.1}x",
            n1 * n2,
            cmat as f64 / 1e9,
            other as f64 / 1e9,
            cmat as f64 / other as f64
        );
    }
    let _ = writeln!(out, "  (paper: \"cmat is 10x the size of all the other memory buffers combined\",");
    let _ = writeln!(out, "   and the ratio \"does not change with strong scaling\")");
    let _ = writeln!(out, "\n  ensemble sharing (per-rank cmat, 256 total ranks):");
    let _ = writeln!(out, "  k     cmat/rank GB");
    for k in [1usize, 2, 4, 8] {
        let grid = ProcGrid::new(16 / k, 16);
        let inv = xg_cluster::rank_inventory(&input, grid, k * grid.n1);
        let cmat = xg_cluster::total_bytes(&inv, Some(xg_cluster::BufferCategory::Constant));
        let _ = writeln!(out, "  {:<4}  {:>12.2}", k, cmat as f64 / 1e9);
    }
    let _ = writeln!(out, "  (unchanged: one shared copy over the same 256 ranks, per Figure 3)");
    out
}

/// **T-nodes** — minimum feasible node counts (paper §3: single nl03c needs
/// ≥32 Frontier nodes; XGYRO runs 8 on the same 32).
pub fn node_claims() -> String {
    let input = CgyroInput::nl03c_like();
    let machine = MachineModel::frontier_like();
    let mut out = String::new();
    let _ = writeln!(out, "T-nodes: minimum feasible allocations ({} model)", machine.name);
    let _ = writeln!(out, "  k     min nodes   ranks   grid(n1xn2)   per-rank GB (budget {:.1})",
        machine.usable_mem_per_rank() as f64 / 1e9);
    for k in [1usize, 2, 4, 8, 16] {
        match xg_cluster::min_nodes(&input, k, &machine, 256) {
            Some(p) => {
                let _ = writeln!(
                    out,
                    "  {:<5} {:>9}   {:>5}   {:>6}x{:<5} {:>10.1}",
                    k,
                    p.nodes,
                    p.ranks,
                    p.grid.n1,
                    p.grid.n2,
                    p.per_rank_bytes as f64 / 1e9
                );
            }
            None => {
                let _ = writeln!(out, "  {:<5} {:>9}", k, "infeasible");
            }
        }
    }
    let _ = writeln!(out, "  (paper: a single nl03c requires at least 32 nodes; XGYRO runs 8");
    let _ = writeln!(out, "   variants on those same 32 nodes)");
    out
}

/// **T-allreduce** — AllReduce cost vs participant count (paper §2.1: "the
/// overall cost of AllReduce is proportional with the number of
/// participating processes"). Model sweep + functional wall-clock
/// microbenchmark on the thread substrate.
pub fn allreduce_claims() -> String {
    let machine = MachineModel::frontier_like();
    let bytes = (131072 * 16) as u64; // the nl03c moment buffer
    let mut out = String::new();
    let _ = writeln!(out, "T-allreduce: modeled AllReduce time vs participants ({} KB buffer)", bytes / 1024);
    let _ = writeln!(out, "  ranks   nodes   time (us)   vs p=2");
    let rpn = machine.ranks_per_node;
    let base = {
        let members: Vec<usize> = (0..2).map(|i| i * 16).collect();
        allreduce_time(&machine, CollectiveShape::from_members(&members, Placement { ranks_per_node: rpn }), bytes)
    };
    for p in [2usize, 4, 8, 16, 32, 64] {
        // Members spread n2=16 apart, as in the nl03c decomposition.
        let members: Vec<usize> = (0..p).map(|i| i * 16).collect();
        let shape = CollectiveShape::from_members(&members, Placement { ranks_per_node: rpn });
        let t = allreduce_time(&machine, shape, bytes);
        let _ = writeln!(
            out,
            "  {:>5}   {:>5}   {:>9.1}   {:>5.2}x",
            p,
            shape.nodes,
            t * 1e6,
            t / base
        );
    }
    // Functional microbenchmark: actual wall time on the thread substrate
    // (absolute values are shared-memory speeds; the point is the trend).
    let _ = writeln!(out, "\n  functional wall-clock (thread substrate, 1 MB, 50 reps):");
    let n = 131072; // f64 elements = 1 MiB
    for p in [2usize, 4, 8] {
        let world = xg_comm::World::new(p);
        let start = std::time::Instant::now();
        world.run(|c| {
            let mut buf = vec![1.0f64; n];
            for _ in 0..50 {
                c.all_reduce_sum_f64(&mut buf);
            }
        });
        let dt = start.elapsed().as_secs_f64() / 50.0;
        let _ = writeln!(out, "  p={p}: {:.2} ms/op", dt * 1e3);
    }
    out
}

/// **T-correct** — trajectory equivalence: XGYRO vs independent CGYRO runs
/// (bitwise) and vs the serial reference.
pub fn correctness_claims() -> String {
    let base = trace_deck();
    let grid = ProcGrid::new(2, 2);
    let k = 3;
    let cfg = gradient_sweep(&base, k, grid);
    let steps = 4;
    let xg = run_xgyro(&cfg, steps);
    let cg = run_cgyro_baseline(&cfg, steps);
    let mut out = String::new();
    let _ = writeln!(out, "T-correct: k={k} gradient variants, {steps} steps, grid {}x{}", grid.n1, grid.n2);
    let mut max_dev_bitwise = 0usize;
    for (x, c) in xg.sims.iter().zip(&cg.sims) {
        let identical = x.h.as_slice() == c.h.as_slice();
        if !identical {
            max_dev_bitwise += 1;
        }
        let mut serial = xg_sim::serial_simulation(&cfg.members()[x.sim]);
        serial.run_steps(steps);
        let dev = xg_linalg::norms::max_deviation(serial.h().as_slice(), x.h.as_slice());
        let _ = writeln!(
            out,
            "  sim {}: XGYRO == CGYRO bitwise: {}; |XGYRO - serial| = {:.2e}",
            x.sim,
            if identical { "yes" } else { "NO" },
            dev
        );
        assert!(identical, "bitwise equivalence violated");
        assert!(dev < 1e-11, "serial deviation too large: {dev}");
    }
    let law = cmat_memory_law(&cfg);
    let _ = writeln!(
        out,
        "  per-rank cmat: CGYRO {} B -> XGYRO {} B (exactly 1/k)",
        law.cgyro_per_rank, law.xgyro_per_rank
    );
    let _ = writeln!(out, "  mismatched trajectories: {max_dev_bitwise}");
    out
}

/// **T-sweep** — savings vs ensemble size k at fixed 32 nodes (paper §2.1:
/// savings grow with the number of simulations per ensemble).
pub fn ensemble_sweep_claims() -> String {
    let input = CgyroInput::nl03c_like();
    let machine = MachineModel::frontier_like();
    let policy = xg_cluster::SchedulePolicy::production();
    let nodes = 32;
    let mut out = String::new();
    let _ = writeln!(out, "T-sweep: k variants on {nodes} nodes, seconds per reporting step");
    let _ = writeln!(out, "  k     feasible   XGYRO total   CGYROx k   speedup   XGYRO str-comm");
    for k in [1usize, 2, 4, 8, 16] {
        match xg_cluster::plan(&input, k, nodes, &machine) {
            Some(p) if p.feasible() => {
                let xg = xg_cluster::simulate_xgyro(&input, p.grid, k, nodes, &machine, &policy);
                let cg_plan = xg_cluster::plan(&input, 1, nodes, &machine).unwrap();
                let cg = xg_cluster::simulate_cgyro_sequential(
                    &input, cg_plan.grid, k, nodes, &machine, &policy,
                );
                let _ = writeln!(
                    out,
                    "  {:<5} {:>8}   {:>11.1}   {:>8.1}   {:>6.2}x   {:>14.1}",
                    k,
                    "yes",
                    xg.total(),
                    cg.total(),
                    cg.total() / xg.total(),
                    xg.str_comm()
                );
            }
            _ => {
                let _ = writeln!(out, "  {:<5} {:>8}   (cmat sharing cannot shrink per-sim state)", k, "NO");
            }
        }
    }
    out
}

/// **T-scaling** (extension) — strong scaling of a single CGYRO simulation
/// vs using the same nodes for an XGYRO ensemble. The paper's premise
/// (its reference \[2\]): adding nodes to one simulation buys diminishing
/// returns because communication overhead grows; XGYRO spends the same
/// nodes on more simulations instead.
pub fn scaling_claims() -> String {
    let input = CgyroInput::nl03c_like();
    let machine = MachineModel::frontier_like();
    let policy = xg_cluster::SchedulePolicy::production();
    let mut out = String::new();
    let _ = writeln!(out, "T-scaling: one nl03c-like simulation, strong scaling");
    let _ = writeln!(out, "  nodes   ranks   grid      s/report   efficiency   comm fraction");
    let base = xg_cluster::plan(&input, 1, 32, &machine)
        .map(|p| xg_cluster::simulate_xgyro(&input, p.grid, 1, 32, &machine, &policy))
        .expect("32-node baseline");
    for nodes in [32usize, 64, 128] {
        let Some(p) = xg_cluster::plan(&input, 1, nodes, &machine) else {
            continue;
        };
        let r = xg_cluster::simulate_xgyro(&input, p.grid, 1, nodes, &machine, &policy);
        let eff = base.total() * 32.0 / (r.total() * nodes as f64);
        let _ = writeln!(
            out,
            "  {:>5}   {:>5}   {:>3}x{:<4} {:>9.1}   {:>9.2}   {:>12.2}",
            nodes,
            p.ranks,
            p.grid.n1,
            p.grid.n2,
            r.total(),
            eff,
            r.comm_total() / r.total()
        );
    }
    let _ = writeln!(
        out,
        "\n  alternative use of 64 nodes: 2 ensembles of k=8 -> 16 simulations at {:.1} s/report each batch",
        xg_cluster::plan(&input, 8, 32, &machine)
            .map(|p| xg_cluster::simulate_xgyro(&input, p.grid, 8, 32, &machine, &policy).total())
            .unwrap_or(f64::NAN)
    );
    let _ = writeln!(
        out,
        "  (communication fraction grows with node count; ensembles convert nodes into throughput)"
    );
    out
}

/// **T-machines** (extension) — does the XGYRO advantage transfer across
/// machine balances? Evaluate the F2 scenario on every machine preset
/// (each machine's minimum feasible allocation for one simulation).
pub fn machine_transfer_claims() -> String {
    let input = CgyroInput::nl03c_like();
    let policy = xg_cluster::SchedulePolicy::production();
    let mut out = String::new();
    let _ = writeln!(out, "T-machines: k=8 ensemble vs sequential across machine models");
    let _ = writeln!(
        out,
        "  machine           min nodes   CGYROx8 s   XGYRO s   speedup   str-comm ratio"
    );
    for machine in [
        MachineModel::frontier_like(),
        MachineModel::perlmutter_like(),
        MachineModel::slow_fabric_cluster(),
    ] {
        let Some(single) = xg_cluster::min_nodes(&input, 1, &machine, 512) else {
            let _ = writeln!(out, "  {:<17} (does not fit)", machine.name);
            continue;
        };
        let nodes = single.nodes;
        // If the full ensemble does not fit on the single-sim minimum
        // (memory headroom differs by machine), grow the allocation to the
        // ensemble's own minimum and compare there.
        let (nodes, ens) = match xg_cluster::plan(&input, 8, nodes, &machine)
            .filter(|p| p.feasible())
        {
            Some(p) => (nodes, p),
            None => {
                let Some(p) = xg_cluster::min_nodes(&input, 8, &machine, 512) else {
                    let _ = writeln!(out, "  {:<17} {:>9}   (k=8 never fits)", machine.name, nodes);
                    continue;
                };
                (p.nodes, p.clone())
            }
        };
        let single = xg_cluster::plan(&input, 1, nodes, &machine).expect("grid exists");
        let cg =
            xg_cluster::simulate_cgyro_sequential(&input, single.grid, 8, nodes, &machine, &policy);
        let xg = xg_cluster::simulate_xgyro(&input, ens.grid, 8, nodes, &machine, &policy);
        let _ = writeln!(
            out,
            "  {:<17} {:>9}   {:>9.1}   {:>7.1}   {:>6.2}x   {:>13.1}x",
            machine.name,
            nodes,
            cg.total(),
            xg.total(),
            cg.total() / xg.total(),
            cg.str_comm() / xg.str_comm()
        );
    }
    let _ = writeln!(
        out,
        "  (the advantage holds wherever AllReduce cost grows with participants;\n   slower fabrics benefit more)"
    );
    out
}

/// **A-abl** — ablations: (a) what sharing buys (shared vs replicated cmat
/// under the XGYRO topology); (b) cost-model sensitivity to the AllReduce
/// congestion coefficient; (c) deterministic vs unordered reductions.
pub fn ablations() -> String {
    let mut out = String::new();

    // (a) shared vs replicated cmat: memory feasibility on 32 nodes.
    let input = CgyroInput::nl03c_like();
    let machine = MachineModel::frontier_like();
    let _ = writeln!(out, "A-abl(a): shared vs replicated cmat, k=8 on 32 nodes");
    let shared = xg_cluster::plan(&input, 8, 32, &machine).unwrap();
    // Replicated: same per-sim grid but cmat split only over n1 ranks.
    let grid = shared.grid;
    let inv = xg_cluster::rank_inventory(&input, grid, grid.n1);
    let repl_per_rank = xg_cluster::total_bytes(&inv, None);
    let _ = writeln!(
        out,
        "  shared:     {:>6.1} GB/rank  (feasible: {})",
        shared.per_rank_bytes as f64 / 1e9,
        shared.feasible()
    );
    let _ = writeln!(
        out,
        "  replicated: {:>6.1} GB/rank  (feasible: {})",
        repl_per_rank as f64 / 1e9,
        repl_per_rank <= machine.usable_mem_per_rank()
    );
    let _ = writeln!(out, "  => without sharing, 8 sims cannot fit on 32 nodes at all\n");

    // (b) congestion-coefficient sensitivity of the F2 speedup.
    let policy = xg_cluster::SchedulePolicy::production();
    let _ = writeln!(out, "A-abl(b): F2 speedup vs AllReduce congestion coefficient");
    let _ = writeln!(out, "  gamma    CGYRO str-comm   speedup");
    for gamma in [0.0, 0.15, 0.31, 0.62] {
        let mut m = machine.clone();
        m.allreduce_congestion = gamma;
        let cgp = xg_cluster::plan(&input, 1, 32, &m).unwrap();
        let xgp = xg_cluster::plan(&input, 8, 32, &m).unwrap();
        let cg = xg_cluster::simulate_cgyro_sequential(&input, cgp.grid, 8, 32, &m, &policy);
        let xg = xg_cluster::simulate_xgyro(&input, xgp.grid, 8, 32, &m, &policy);
        let _ = writeln!(
            out,
            "  {:<7.2}  {:>13.1}s   {:>6.2}x",
            gamma,
            cg.str_comm(),
            cg.total() / xg.total()
        );
    }
    let _ = writeln!(out, "  => the paper's savings hinge on AllReduce cost growing with participants\n");

    // (b') AllReduce algorithm regime: how the participant scaling — and
    // with it the XGYRO advantage — depends on which algorithm the MPI
    // library picks.
    let _ = writeln!(out, "A-abl(b'): AllReduce participant scaling by algorithm (2 MB buffer)");
    let _ = writeln!(out, "  algorithm              t(p=2)      t(p=16)     ratio");
    let bytes = (131072 * 16) as u64;
    for algo in xg_costmodel::ALL_ALGOS {
        let shape = |p: usize| {
            let members: Vec<usize> = (0..p).map(|i| i * 16).collect();
            xg_costmodel::CollectiveShape::from_members(
                &members,
                xg_costmodel::Placement { ranks_per_node: machine.ranks_per_node },
            )
        };
        let t2 = xg_costmodel::allreduce_time_with(&machine, shape(2), bytes, algo);
        let t16 = xg_costmodel::allreduce_time_with(&machine, shape(16), bytes, algo);
        let _ = writeln!(
            out,
            "  {:<22} {:>8.1}us  {:>8.1}us  {:>6.2}x",
            format!("{algo:?}"),
            t2 * 1e6,
            t16 * 1e6,
            t16 / t2
        );
    }
    let _ = writeln!(out, "  => under every algorithm regime the 8x smaller communicator wins;");
    let _ = writeln!(out, "     the congested regime (what Frontier-scale runs see) wins hardest\n");

    // (d) blocking-collective wait amplification (discrete-event replay):
    // the mechanism we credit for the paper's XGYRO str-comm exceeding the
    // closed-form model — jittered per-rank compute is absorbed as wait
    // time inside the blocking AllReduce.
    let _ = writeln!(out, "A-abl(d): wait amplification inside blocking collectives (replay)");
    {
        let base = trace_deck();
        let cfg = gradient_sweep(&base, 2, ProcGrid::new(2, 1));
        let outcome = run_xgyro(&cfg, 2);
        let m = MachineModel::frontier_like();
        let p = Placement { ranks_per_node: m.ranks_per_node };
        let quiet = xg_cluster::replay(&outcome.traces, &m, p, |_, _| 1e-4).unwrap();
        let jittery = xg_cluster::replay(&outcome.traces, &m, p, |r, i| {
            1e-4 + if (r + i) % 7 == 0 { 5e-4 } else { 0.0 }
        })
        .unwrap();
        let q = quiet.breakdown.get("str", "comm:AllReduce");
        let j = jittery.breakdown.get("str", "comm:AllReduce");
        let _ = writeln!(
            out,
            "  str AllReduce in-collective time: balanced {:.2} ms, jittered {:.2} ms ({:.1}x)",
            q * 1e3,
            j * 1e3,
            j / q
        );
        let _ = writeln!(
            out,
            "  total wait absorbed: balanced {:.2} ms, jittered {:.2} ms",
            quiet.total_wait() * 1e3,
            jittery.total_wait() * 1e3
        );
        let _ = writeln!(out, "  => measured 'communication time' in production logs includes");
        let _ = writeln!(out, "     imbalance wait, which closed-form wire models exclude\n");
    }

    // (c) deterministic rank-order reductions vs recomputation: two
    // identical runs must agree bitwise (this is what makes the XGYRO ==
    // CGYRO comparison exact rather than approximate).
    let _ = writeln!(out, "A-abl(c): reduction determinism");
    let deck = trace_deck();
    let cfg = gradient_sweep(&deck, 2, ProcGrid::new(2, 1));
    let a = run_xgyro(&cfg, 3);
    let b = run_xgyro(&cfg, 3);
    let identical = a.sims.iter().zip(&b.sims).all(|(x, y)| x.h.as_slice() == y.h.as_slice());
    let _ = writeln!(out, "  repeated ensemble runs bitwise identical: {identical}");
    assert!(identical);
    out
}

/// Run every experiment, concatenated (the `all` subcommand).
pub fn run_all() -> String {
    let mut out = String::new();
    for (name, f) in experiments() {
        out.push_str(&format!("\n{}\n{}\n", "=".repeat(72), name));
        out.push_str(&format!("{}\n", "=".repeat(72)));
        out.push_str(&f());
    }
    out
}

/// An experiment entry: `(id, function)`.
pub type Experiment = (&'static str, fn() -> String);

/// The experiment registry.
pub fn experiments() -> Vec<Experiment> {
    vec![
        ("f1", figure1 as fn() -> String),
        ("f2", figure2),
        ("f3", figure3),
        ("mem", memory_claims),
        ("nodes", node_claims),
        ("allreduce", allreduce_claims),
        ("correct", correctness_claims),
        ("sweep", ensemble_sweep_claims),
        ("scaling", scaling_claims),
        ("machines", machine_transfer_claims),
        ("ablation", ablations),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        let ids: Vec<&str> = experiments().iter().map(|(n, _)| *n).collect();
        for id in ["f1", "f2", "f3", "mem", "nodes", "allreduce", "correct", "sweep", "scaling", "machines", "ablation"] {
            assert!(ids.contains(&id), "missing experiment {id}");
        }
    }

    #[test]
    fn figure2_report_contains_headline() {
        let r = figure2();
        assert!(r.contains("speedup"));
        assert!(r.contains("str comm"));
    }

    #[test]
    fn memory_report_mentions_ratio() {
        let r = memory_claims();
        assert!(r.contains("ratio"));
        assert!(r.contains("10x"));
    }
}
