//! # xg-bench
//!
//! The experiment harness: one function per paper artifact (figures 1–3 and
//! the quantitative claims of §1–§3), each returning a rendered report.
//! The `paper_figures` binary dispatches on experiment id; the Criterion
//! benches exercise the hot kernels. See DESIGN.md §5 for the experiment
//! index and EXPERIMENTS.md for recorded paper-vs-measured numbers.

#![warn(missing_docs)]

pub mod batching;
pub mod collision_perf;
pub mod decomp_bench;
pub mod experiments;
pub mod str_reduce;

pub use batching::{
    batching_bench_json, batching_bench_report, run_batching_bench, BatchingBenchConfig,
    BatchingBenchResult,
};
pub use decomp_bench::{
    decomp_bench_json, decomp_bench_report, run_decomp_bench, DecompBenchConfig,
    DecompBenchResult,
};
pub use collision_perf::{
    collision_bench_json, collision_bench_report, run_collision_bench, CollisionBenchConfig,
    CollisionBenchResult,
};
pub use experiments::*;
pub use str_reduce::{
    run_str_reduce_bench, str_reduce_bench_json, str_reduce_bench_report, StrReduceBenchConfig,
    StrReduceBenchResult,
};
