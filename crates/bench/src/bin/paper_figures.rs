//! Regenerate the paper's figures and tables.
//!
//! Usage: `paper_figures [<experiment-id>|all]` or `paper_figures --write-dir DIR`
//! (defaults to `all`). See DESIGN.md §5 for the experiment index.
//!
//! `paper_figures bench-collision [--quick] [--out PATH] [--nv LIST]
//! [--k LIST]` runs the measured naive/blocked/simd/threaded
//! collision-apply sweep and writes the JSON artifact (default
//! `BENCH_collision.json` in the working directory). `--nv`/`--k` pin the
//! sweep to comma-separated shape lists (CI asserts specific points).
//!
//! `paper_figures bench-str-reduce [--quick] [--out PATH]` runs the measured
//! unfused/fused/reduce-scatter str-phase reduction sweep and writes the
//! JSON artifact (default `BENCH_str_reduce.json`).
//!
//! `paper_figures bench-batching [--quick] [--out PATH]` serves sweep
//! campaigns through `xg-serve` against an unbatched k=1 baseline and
//! writes the JSON artifact (default `BENCH_batching.json`).
//!
//! `paper_figures bench-decomp [--quick] [--out PATH]` prices the searched
//! unbalanced coll decomposition against the balanced split across machine
//! models and writes the JSON artifact (default `BENCH_decomp.json`).

fn out_path_arg(args: &[String], default: &str) -> String {
    match args.iter().position(|a| a == "--out") {
        Some(pos) => match args.get(pos + 1) {
            Some(p) => p.clone(),
            None => {
                eprintln!("--out needs a path");
                std::process::exit(2);
            }
        },
        None => default.to_string(),
    }
}

/// `--flag v1,v2,...` → `Some(vec![v1, v2, ...])`.
fn list_arg(args: &[String], flag: &str) -> Option<Vec<usize>> {
    let pos = args.iter().position(|a| a == flag)?;
    let Some(v) = args.get(pos + 1) else {
        eprintln!("{flag} needs a comma-separated list");
        std::process::exit(2);
    };
    Some(
        v.split(',')
            .map(|s| {
                s.parse().unwrap_or_else(|_| {
                    eprintln!("{flag}: bad value '{s}'");
                    std::process::exit(2);
                })
            })
            .collect(),
    )
}

fn bench_collision(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = out_path_arg(args, "BENCH_collision.json");
    let mut cfg = if quick {
        xg_bench::CollisionBenchConfig::quick()
    } else {
        xg_bench::CollisionBenchConfig::full()
    };
    if let Some(nv) = list_arg(args, "--nv") {
        cfg.nv_values = nv;
    }
    if let Some(k) = list_arg(args, "--k") {
        cfg.k_values = k;
    }
    let results = xg_bench::run_collision_bench(&cfg);
    print!("{}", xg_bench::collision_bench_report(&results, cfg.threads));
    std::fs::write(&out_path, xg_bench::collision_bench_json(&results, cfg.threads))
        .expect("write bench json");
    println!("wrote {out_path}");
}

fn bench_str_reduce(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = out_path_arg(args, "BENCH_str_reduce.json");
    let cfg = if quick {
        xg_bench::StrReduceBenchConfig::quick()
    } else {
        xg_bench::StrReduceBenchConfig::full()
    };
    let results = xg_bench::run_str_reduce_bench(&cfg);
    print!("{}", xg_bench::str_reduce_bench_report(&results));
    std::fs::write(&out_path, xg_bench::str_reduce_bench_json(&results))
        .expect("write bench json");
    println!("wrote {out_path}");
}

fn bench_batching(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = out_path_arg(args, "BENCH_batching.json");
    let cfg = if quick {
        xg_bench::BatchingBenchConfig::quick()
    } else {
        xg_bench::BatchingBenchConfig::full()
    };
    let results = xg_bench::run_batching_bench(&cfg);
    print!("{}", xg_bench::batching_bench_report(&results));
    std::fs::write(&out_path, xg_bench::batching_bench_json(&results))
        .expect("write bench json");
    println!("wrote {out_path}");
}

fn bench_decomp(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = out_path_arg(args, "BENCH_decomp.json");
    let cfg = if quick {
        xg_bench::DecompBenchConfig::quick()
    } else {
        xg_bench::DecompBenchConfig::full()
    };
    let results = xg_bench::run_decomp_bench(&cfg);
    print!("{}", xg_bench::decomp_bench_report(&results));
    std::fs::write(&out_path, xg_bench::decomp_bench_json(&results))
        .expect("write bench json");
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench-collision") {
        bench_collision(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-str-reduce") {
        bench_str_reduce(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-batching") {
        bench_batching(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-decomp") {
        bench_decomp(&args[1..]);
        return;
    }
    // Optional: --write-dir DIR saves each experiment to DIR/<id>.txt.
    if let Some(pos) = args.iter().position(|a| a == "--write-dir") {
        let Some(dir) = args.get(pos + 1) else {
            eprintln!("--write-dir needs a directory");
            std::process::exit(2);
        };
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create output dir");
        for (id, f) in xg_bench::experiments() {
            let path = dir.join(format!("{id}.txt"));
            std::fs::write(&path, f()).expect("write experiment output");
            println!("wrote {}", path.display());
        }
        return;
    }
    let arg = args.first().cloned().unwrap_or_else(|| "all".to_string());
    if arg == "all" {
        print!("{}", xg_bench::run_all());
        return;
    }
    match xg_bench::experiments().into_iter().find(|(n, _)| *n == arg) {
        Some((_, f)) => print!("{}", f()),
        None => {
            eprintln!(
                "unknown experiment '{arg}'; available: all, {}",
                xg_bench::experiments()
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }
    }
}
