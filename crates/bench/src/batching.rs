//! Measured campaign-batching benchmark: N sweep jobs served through the
//! `xg-serve` campaign service (cmat-key batching on) vs the same N decks
//! run back-to-back as independent `k = 1` XGYRO jobs.
//!
//! This is the measurement behind `BENCH_batching.json` and the serving
//! chapter's efficiency claim: grouping key-compatible jobs into one
//! shared-cmat ensemble builds the collisional constant tensor **once per
//! batch** instead of once per job, so the batched campaign's wall time
//! and memory both shrink as occupancy grows. Both paths execute on the
//! same process grid with one worker, so the comparison isolates
//! amortization, not parallelism.
//!
//! Each point also measures the **repeat pass**: the first campaign
//! publishes every member into an artifact store, then a fresh daemon over
//! the same store is handed the identical decks again. Every one should be
//! served from the cache at admission (born `Done`, zero simulation
//! steps), so `repeat_ms` vs `batched_ms` is the measured payoff of the
//! content-addressed result cache on a perfectly warmed campaign.

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use xg_serve::{ArtifactConfig, CampaignServer, JobSpec, JobState, ServerConfig};
use xg_sim::CgyroInput;
use xgyro_core::{run_xgyro, EnsembleConfig};

/// Sweep configuration for the campaign-batching benchmark.
pub struct BatchingBenchConfig {
    /// Campaign sizes (total submitted jobs) to sweep.
    pub n_jobs_values: Vec<usize>,
    /// Distinct cmat keys per campaign (jobs are dealt round-robin).
    pub n_keys_values: Vec<usize>,
    /// Time steps per job (must be a multiple of the deck's report cadence).
    pub steps: usize,
}

impl BatchingBenchConfig {
    /// The full sweep used to generate `BENCH_batching.json`.
    pub fn full() -> Self {
        Self { n_jobs_values: vec![6, 12], n_keys_values: vec![1, 2, 3], steps: 20 }
    }

    /// Tiny smoke-test sweep for CI (seconds, not minutes).
    pub fn quick() -> Self {
        Self { n_jobs_values: vec![6], n_keys_values: vec![1, 2], steps: 10 }
    }
}

/// One measured `(n_jobs, n_keys)` campaign.
pub struct BatchingBenchResult {
    /// Jobs submitted.
    pub n_jobs: usize,
    /// Distinct cmat keys among them.
    pub n_keys: usize,
    /// Batch-size cap the grouper applied (planner-fed).
    pub k_max: usize,
    /// Shared-cmat batches the campaign dispatched.
    pub batches: usize,
    /// Mean jobs per batch.
    pub mean_occupancy: f64,
    /// Wall ms, submit-through-drain on the campaign server.
    pub batched_ms: f64,
    /// Wall ms, the same decks as independent `k = 1` runs.
    pub unbatched_ms: f64,
    /// unbatched / batched.
    pub speedup: f64,
    /// cmat bytes the batching avoided allocating (server metric).
    pub cmat_saved_bytes: u64,
    /// Saved fraction of the unbatched cmat footprint.
    pub saved_ratio: f64,
    /// Cache hits when the identical decks are re-submitted to a fresh
    /// daemon over the same artifact store.
    pub repeat_hits: u64,
    /// repeat_hits / n_jobs (1.0 = every member served from the store).
    pub repeat_hit_rate: f64,
    /// Wall ms for the repeat pass (admission-served, no simulation).
    pub repeat_ms: f64,
    /// Outcome bytes the repeat pass did not recompute (server metric).
    pub cache_bytes_saved: u64,
}

/// The campaign decks: `n_jobs` gradient variants dealt round-robin over
/// `n_keys` collisionality values (distinct `nu_ee` → distinct cmat key).
fn sweep_decks(n_jobs: usize, n_keys: usize) -> Vec<CgyroInput> {
    let base = CgyroInput::test_small();
    (0..n_jobs)
        .map(|i| {
            let mut d = base.with_gradients(1.0 + 0.2 * i as f64, 2.0 + 0.1 * i as f64);
            d.nu_ee = 0.1 * (1 + i % n_keys) as f64;
            d
        })
        .collect()
}

/// Run the sweep. Each point serves the campaign once and replays the same
/// decks unbatched on the identical process grid.
pub fn run_batching_bench(cfg: &BatchingBenchConfig) -> Vec<BatchingBenchResult> {
    let mut out = Vec::new();
    for &n_jobs in &cfg.n_jobs_values {
        for &n_keys in &cfg.n_keys_values {
            out.push(measure_point(n_jobs, n_keys, cfg.steps));
        }
    }
    out
}

fn measure_point(n_jobs: usize, n_keys: usize, steps: usize) -> BatchingBenchResult {
    let store_dir = std::env::temp_dir().join(format!(
        "xg-bench-artifacts-{}-{n_jobs}-{n_keys}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut scfg = ServerConfig::local_test();
    // One worker and drain-driven flushing: serialized execution on both
    // sides, so the delta is cmat amortization, not thread parallelism.
    scfg.workers = 1;
    scfg.linger = Duration::from_secs(600);
    scfg.queue_capacity = n_jobs.max(scfg.queue_capacity);
    scfg.artifacts = Some(ArtifactConfig::at(&store_dir));
    let k_max = scfg.k_max;
    let grid = scfg.grid;
    let repeat_cfg = {
        let mut c = ServerConfig::local_test();
        c.workers = 1;
        c.linger = Duration::from_secs(600);
        c.queue_capacity = n_jobs.max(c.queue_capacity);
        c.artifacts = Some(ArtifactConfig::at(&store_dir));
        c
    };
    let decks = sweep_decks(n_jobs, n_keys);

    let server = CampaignServer::start(scfg);
    let t0 = Instant::now();
    let ids: Vec<_> = decks
        .iter()
        .map(|d| {
            server
                .submit(JobSpec::new(d.clone(), steps))
                .expect("bench campaign fits the queue")
        })
        .collect();
    assert!(server.drain(Duration::from_secs(600)), "campaign drain timed out");
    let batched = t0.elapsed();
    for id in &ids {
        assert_eq!(server.status(*id).expect("known job").state, JobState::Done);
    }
    let json = server.metrics_json();
    let cmat_saved_bytes = metric_u64(&json, "cmat_saved_bytes");
    let cmat_unbatched_bytes = metric_u64(&json, "cmat_unbatched_bytes");
    let batches = ids
        .iter()
        .map(|id| server.status(*id).expect("known job").batch)
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    server.shutdown();

    let t0 = Instant::now();
    for d in &decks {
        let cfg = EnsembleConfig::new(vec![d.clone()], grid).expect("valid deck");
        let out = run_xgyro(&cfg, steps);
        assert_eq!(out.sims.len(), 1);
    }
    let unbatched = t0.elapsed();

    // Repeat pass: a fresh daemon over the warmed store (the first one is
    // drained, and a drained server admits nothing). Hits are born Done at
    // admission, so no drain is needed before reading the metrics.
    let repeat = CampaignServer::start(repeat_cfg);
    let t0 = Instant::now();
    let repeat_ids: Vec<_> = decks
        .iter()
        .map(|d| {
            repeat
                .submit(JobSpec::new(d.clone(), steps))
                .expect("repeat campaign fits the queue")
        })
        .collect();
    for id in &repeat_ids {
        assert_eq!(repeat.status(*id).expect("known job").state, JobState::Done);
    }
    let repeat_ms = t0.elapsed().as_secs_f64() * 1e3;
    let rjson = repeat.metrics_json();
    let repeat_hits = metric_u64(&rjson, "hits");
    let cache_bytes_saved = metric_u64(&rjson, "bytes_saved");
    repeat.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);

    let (batched_ms, unbatched_ms) =
        (batched.as_secs_f64() * 1e3, unbatched.as_secs_f64() * 1e3);
    BatchingBenchResult {
        n_jobs,
        n_keys,
        k_max,
        batches,
        mean_occupancy: n_jobs as f64 / batches as f64,
        batched_ms,
        unbatched_ms,
        speedup: unbatched_ms / batched_ms,
        cmat_saved_bytes,
        saved_ratio: cmat_saved_bytes as f64 / cmat_unbatched_bytes as f64,
        repeat_hits,
        repeat_hit_rate: repeat_hits as f64 / n_jobs as f64,
        repeat_ms,
        cache_bytes_saved,
    }
}

/// Pull `"key": N` out of the server's metrics JSON (hand-rolled on both
/// sides: the workspace deliberately has no JSON dependency).
fn metric_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let at = json.find(&pat).unwrap_or_else(|| panic!("metric {key} missing: {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer metric")
}

/// Render the results as the `BENCH_batching.json` document.
pub fn batching_bench_json(results: &[BatchingBenchResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"batching\",\n");
    s.push_str(
        "  \"description\": \"campaign served through xg-serve with cmat-key batching \
         vs the same decks as independent k=1 XGYRO runs, one worker, same grid; \
         repeat_* columns re-submit the identical decks to a fresh daemon over the \
         warmed artifact store\",\n",
    );
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"n_jobs\": {}, \"n_keys\": {}, \"k_max\": {}, \"batches\": {}, \
             \"mean_occupancy\": {:.2}, \"batched_ms\": {:.1}, \"unbatched_ms\": {:.1}, \
             \"speedup\": {:.3}, \"cmat_saved_bytes\": {}, \"saved_ratio\": {:.4}, \
             \"repeat_hits\": {}, \"repeat_hit_rate\": {:.4}, \"repeat_ms\": {:.1}, \
             \"cache_bytes_saved\": {}}}",
            r.n_jobs,
            r.n_keys,
            r.k_max,
            r.batches,
            r.mean_occupancy,
            r.batched_ms,
            r.unbatched_ms,
            r.speedup,
            r.cmat_saved_bytes,
            r.saved_ratio,
            r.repeat_hits,
            r.repeat_hit_rate,
            r.repeat_ms,
            r.cache_bytes_saved
        );
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable table of the same results.
pub fn batching_bench_report(results: &[BatchingBenchResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "P3: campaign batching efficiency (served vs k=1 runs)");
    let _ = writeln!(
        out,
        "{:>6} {:>6} {:>6} {:>8} {:>6} {:>12} {:>12} {:>8} {:>12} {:>7} {:>6} {:>10} {:>12}",
        "jobs", "keys", "k_max", "batches", "occ", "batched_ms", "unbatch_ms", "speedup",
        "saved_B", "saved%", "hit%", "repeat_ms", "cache_B"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:>6} {:>6} {:>6} {:>8} {:>6.2} {:>12.1} {:>12.1} {:>8.2} {:>12} {:>7.1} \
             {:>6.1} {:>10.1} {:>12}",
            r.n_jobs,
            r.n_keys,
            r.k_max,
            r.batches,
            r.mean_occupancy,
            r.batched_ms,
            r.unbatched_ms,
            r.speedup,
            r.cmat_saved_bytes,
            100.0 * r.saved_ratio,
            100.0 * r.repeat_hit_rate,
            r.repeat_ms,
            r.cache_bytes_saved
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_wellformed_results() {
        let cfg = BatchingBenchConfig {
            n_jobs_values: vec![3],
            n_keys_values: vec![1],
            steps: 10,
        };
        let results = run_batching_bench(&cfg);
        assert_eq!(results.len(), 1);
        let r = &results[0];
        // 3 jobs, 1 key, k_max 3 → one full batch saving 2 cmat copies.
        assert_eq!(r.batches, 1);
        assert_eq!(r.mean_occupancy, 3.0);
        assert_eq!(
            r.cmat_saved_bytes,
            xg_costmodel::cmat_saved_bytes(3, CgyroInput::test_small().dims())
        );
        assert!(r.batched_ms > 0.0 && r.unbatched_ms > 0.0);
        assert!(r.speedup.is_finite() && r.saved_ratio > 0.0);
        // The repeat pass over the warmed store must hit on every member.
        assert_eq!(r.repeat_hits, 3);
        assert_eq!(r.repeat_hit_rate, 1.0);
        assert!(r.repeat_ms > 0.0 && r.cache_bytes_saved > 0);
        let json = batching_bench_json(&results);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"batching\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"repeat_hit_rate\": 1.0000"));
        let report = batching_bench_report(&results);
        assert!(report.contains("speedup"));
    }
}
