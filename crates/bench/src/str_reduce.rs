//! Measured str-phase reduction benchmark: unfused per-moment AllReduces
//! vs one fused packed AllReduce vs fused reduce-scatter + allgather,
//! swept over rank count and moment size.
//!
//! This is the measurement behind `BENCH_str_reduce.json` (the repo-root
//! perf trajectory artifact) and EXPERIMENTS.md §P2. Three reduction
//! strategies over identical inputs on the thread-backed [`xg_comm::World`]:
//!
//! * **unfused** — the pre-fusion hot path: one `AllReduce` per moment
//!   (field solve, then upwind), paying per-collective latency `moments`
//!   times per RK stage.
//! * **fused** — all moments packed into one contiguous staging buffer and
//!   reduced in a single `AllReduce` per stage.
//! * **reduce-scatter** — the fused buffer reduced via
//!   `reduce_scatter_sum_complex` + `all_gather_into_flat`, the
//!   bandwidth-optimal decomposition for large messages.
//!
//! All three produce bitwise-identical sums (asserted once per shape
//! before timing), so the comparison is pure communication cost.

use std::fmt::Write as _;
use std::time::Instant;
use xg_comm::World;
use xg_linalg::Complex64;
use xg_tensor::Decomp1D;

/// Sweep configuration for the str-phase reduction benchmark.
pub struct StrReduceBenchConfig {
    /// World sizes (nv-communicator participant counts) to sweep.
    pub ranks_values: Vec<usize>,
    /// Per-moment element counts (`nc · nt_loc`) to sweep.
    pub elems_values: Vec<usize>,
    /// Moments packed per stage (2 electrostatic, 3 electromagnetic).
    pub moments: usize,
    /// Timed reduction calls per measurement.
    pub iters: usize,
}

impl StrReduceBenchConfig {
    /// The full sweep used to generate `BENCH_str_reduce.json`.
    pub fn full() -> Self {
        Self {
            ranks_values: vec![2, 4, 8],
            elems_values: vec![256, 2048, 16384],
            moments: 2,
            iters: 200,
        }
    }

    /// Tiny smoke-test sweep for CI (seconds, not minutes).
    pub fn quick() -> Self {
        Self {
            ranks_values: vec![2, 4],
            elems_values: vec![256, 2048],
            moments: 2,
            iters: 20,
        }
    }
}

/// One measured `(ranks, elems)` point.
pub struct StrReduceBenchResult {
    /// Participants in the reduction.
    pub ranks: usize,
    /// Elements per moment.
    pub elems: usize,
    /// Moments packed per fused call.
    pub moments: usize,
    /// ns per stage-equivalent reduction, unfused (one call per moment).
    pub unfused_ns: f64,
    /// ns per stage-equivalent reduction, fused (one packed call).
    pub fused_ns: f64,
    /// ns per stage-equivalent reduction, reduce-scatter + allgather.
    pub rs_ns: f64,
    /// unfused / fused.
    pub speedup_fused: f64,
    /// unfused / reduce-scatter.
    pub speedup_rs: f64,
}

/// Deterministic non-trivial fill values (no `rand` dependency).
fn state_val(rank: usize, i: usize) -> Complex64 {
    Complex64::new(
        ((rank * 31 + i) as f64 * 0.071).cos(),
        ((rank * 17 + i) as f64 * 0.113).sin(),
    )
}

/// Run the sweep. Every strategy's output is checked bitwise-identical to
/// the fused reference before timing.
pub fn run_str_reduce_bench(cfg: &StrReduceBenchConfig) -> Vec<StrReduceBenchResult> {
    let mut out = Vec::new();
    for &ranks in &cfg.ranks_values {
        for &elems in &cfg.elems_values {
            out.push(measure_point(ranks, elems, cfg.moments, cfg.iters));
        }
    }
    out
}

fn measure_point(ranks: usize, elems: usize, moments: usize, iters: usize) -> StrReduceBenchResult {
    let world = World::new(ranks);
    let timings = world.run(|comm| {
        let rank = comm.rank();
        let p = comm.size();
        // One packed stage buffer: `moments` sections of `elems` each.
        let local: Vec<Complex64> = (0..moments * elems).map(|i| state_val(rank, i)).collect();
        let d = Decomp1D::new(local.len(), p);
        let counts: Vec<usize> = (0..p).map(|r| d.count(r)).collect();

        // --- Correctness pin: all three strategies agree bitwise. ---
        let mut fused_ref = local.clone();
        comm.all_reduce_sum_complex(&mut fused_ref);
        let mut unfused_ref = local.clone();
        for m in 0..moments {
            comm.all_reduce_sum_complex(&mut unfused_ref[m * elems..(m + 1) * elems]);
        }
        assert_eq!(fused_ref, unfused_ref, "fused vs unfused diverged");
        let mine = comm.reduce_scatter_sum_complex(&local, &counts);
        let rs_ref = comm.all_gather_into_flat(&mine);
        assert_eq!(fused_ref, rs_ref, "fused vs reduce-scatter diverged");

        // --- Timings (collectives synchronize, so every rank measures
        //     the same loop; rank 0's clock is reported). ---
        let mut buf = local.clone();
        comm.barrier();
        let t0 = Instant::now();
        for _ in 0..iters {
            buf.copy_from_slice(&local);
            for m in 0..moments {
                comm.all_reduce_sum_complex(&mut buf[m * elems..(m + 1) * elems]);
            }
        }
        let unfused = t0.elapsed();

        comm.barrier();
        let t0 = Instant::now();
        for _ in 0..iters {
            buf.copy_from_slice(&local);
            comm.all_reduce_sum_complex(&mut buf);
        }
        let fused = t0.elapsed();

        comm.barrier();
        let t0 = Instant::now();
        for _ in 0..iters {
            let mine = comm.reduce_scatter_sum_complex(&local, &counts);
            let full = comm.all_gather_into_flat(&mine);
            buf.copy_from_slice(&full);
        }
        let rs = t0.elapsed();

        (unfused, fused, rs)
    });

    let (unfused, fused, rs) = timings[0];
    let per = |d: std::time::Duration| d.as_nanos() as f64 / iters as f64;
    let (unfused_ns, fused_ns, rs_ns) = (per(unfused), per(fused), per(rs));
    StrReduceBenchResult {
        ranks,
        elems,
        moments,
        unfused_ns,
        fused_ns,
        rs_ns,
        speedup_fused: unfused_ns / fused_ns,
        speedup_rs: unfused_ns / rs_ns,
    }
}

/// Render the results as the `BENCH_str_reduce.json` document (hand-built:
/// the workspace deliberately has no JSON dependency).
pub fn str_reduce_bench_json(results: &[StrReduceBenchResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"str_reduce\",\n");
    s.push_str(
        "  \"description\": \"str-phase reduction per RK stage: unfused per-moment \
         AllReduces vs one fused packed AllReduce vs fused reduce-scatter + allgather, \
         on the thread-backed World\",\n",
    );
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"ranks\": {}, \"elems\": {}, \"moments\": {}, \"unfused_ns\": {:.0}, \
             \"fused_ns\": {:.0}, \"rs_ns\": {:.0}, \
             \"speedup_fused\": {:.3}, \"speedup_rs\": {:.3}}}",
            r.ranks,
            r.elems,
            r.moments,
            r.unfused_ns,
            r.fused_ns,
            r.rs_ns,
            r.speedup_fused,
            r.speedup_rs
        );
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable table of the same results.
pub fn str_reduce_bench_report(results: &[StrReduceBenchResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "P2: fused str-phase reduction (per RK-stage equivalent)");
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>8} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "ranks", "elems", "moments", "unfused_ns", "fused_ns", "rs_ns", "x_fus", "x_rs"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>8} {:>12.0} {:>12.0} {:>12.0} {:>9.2} {:>9.2}",
            r.ranks, r.elems, r.moments, r.unfused_ns, r.fused_ns, r.rs_ns,
            r.speedup_fused, r.speedup_rs
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_wellformed_results() {
        let cfg = StrReduceBenchConfig {
            ranks_values: vec![2, 3],
            elems_values: vec![16, 64],
            moments: 2,
            iters: 3,
        };
        let results = run_str_reduce_bench(&cfg);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(r.unfused_ns > 0.0 && r.fused_ns > 0.0 && r.rs_ns > 0.0);
            assert!(r.speedup_fused.is_finite() && r.speedup_rs.is_finite());
        }
        let json = str_reduce_bench_json(&results);
        // Minimal well-formedness: balanced braces/brackets, expected keys.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"str_reduce\""));
        assert!(json.contains("\"speedup_fused\""));
        let report = str_reduce_bench_report(&results);
        assert!(report.contains("x_fus"));
    }
}
