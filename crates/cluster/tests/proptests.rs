//! Property-based tests of the planner and memory model.

use proptest::prelude::*;
use xg_cluster::{plan, rank_inventory, total_bytes, valid_grids, BufferCategory};
use xg_costmodel::MachineModel;
use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;

fn deck(nr: usize, nth: usize, nxi: usize, nen: usize, nt: usize) -> CgyroInput {
    let mut d = CgyroInput::test_small();
    d.n_radial = nr;
    d.n_theta = nth;
    d.n_xi = nxi;
    d.n_energy = nen;
    d.n_toroidal = nt;
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn valid_grids_really_divide(
        nr in 1usize..9, nth in 4usize..10, nxi in 2usize..7, nen in 2usize..5,
        nt in 1usize..9, ranks in 1usize..64,
    ) {
        let input = deck(nr, nth, nxi, nen, nt);
        let dims = input.dims();
        for g in valid_grids(&input, ranks) {
            prop_assert_eq!(g.size(), ranks);
            prop_assert_eq!(dims.nt % g.n2, 0);
            prop_assert_eq!(dims.nv % g.n1, 0);
            prop_assert_eq!(dims.nc % g.n1, 0);
        }
        // The list is exhaustive: brute-force every factorization.
        let brute: usize = (1..=ranks)
            .filter(|&n2| {
                ranks % n2 == 0 && dims.nt.is_multiple_of(n2) && {
                    let n1 = ranks / n2;
                    n1 <= dims.nv && dims.nv.is_multiple_of(n1) && dims.nc.is_multiple_of(n1)
                }
            })
            .count();
        prop_assert_eq!(valid_grids(&input, ranks).len(), brute);
    }

    #[test]
    fn per_rank_memory_decreases_with_more_ranks(
        nr in 2usize..9, nth in 4usize..10, nt in 1usize..5,
    ) {
        let input = deck(nr, nth, 4, 3, nt);
        let m = MachineModel::small_cluster();
        let mut last: Option<u64> = None;
        for nodes in 1..=8usize {
            if let Some(p) = plan(&input, 1, nodes, &m) {
                if let Some(prev) = last {
                    prop_assert!(
                        p.per_rank_bytes <= prev,
                        "memory grew with nodes: {prev} -> {}",
                        p.per_rank_bytes
                    );
                }
                last = Some(p.per_rank_bytes);
            }
        }
    }

    #[test]
    fn cmat_share_law_exact_for_any_partition(
        nr in 1usize..6, nth in 4usize..9, nt in 1usize..5,
        n1 in 1usize..5, n2 in 1usize..4, k in 1usize..6,
    ) {
        let input = deck(nr, nth, 4, 3, nt);
        let dims = input.dims();
        prop_assume!(n1 <= dims.nv && n2 <= dims.nt);
        let grid = ProcGrid::new(n1, n2);
        // The inventory reports the worst-case rank: exactly
        // nv² · ceil(nc / (k·n1)) · ceil(nt / n2) · 8 bytes.
        let inv = rank_inventory(&input, grid, k * n1);
        let per_rank = total_bytes(&inv, Some(BufferCategory::Constant));
        let expected = (dims.nv * dims.nv) as u64
            * dims.nc.div_ceil(k * n1) as u64
            * dims.nt.div_ceil(n2) as u64
            * 8;
        prop_assert_eq!(per_rank, expected);
        // Worst-case slices over the whole job cover the tensor at least
        // once (the law the sharing argument rests on).
        let total = xg_sim::cmat_total_bytes(&input);
        let coverage = per_rank * (k * n1) as u64 * n2 as u64;
        prop_assert!(coverage >= total, "slices must cover the tensor");
    }

    #[test]
    fn campaign_best_never_worse_than_baseline(
        n_variants in 1usize..6,
    ) {
        let input = CgyroInput::test_medium();
        let m = MachineModel::small_cluster();
        let policy = xg_cluster::SchedulePolicy::mini();
        if let Some(planned) =
            xg_cluster::optimize_campaign(&input, n_variants, 1, 2, &m, &policy)
        {
            if let Some(base) = planned.baseline() {
                prop_assert!(planned.best().node_hours <= base.node_hours + 1e-12);
            }
        }
    }
}

mod replay_props {
    use proptest::prelude::*;
    use xg_cluster::replay;
    use xg_comm::{OpKind, OpRecord};
    use xg_costmodel::{MachineModel, Placement};

    /// Build consistent per-rank traces: a random sequence of collectives
    /// over random (contiguous) subgroups, where every member of a group
    /// gets the op appended in the same global order.
    fn consistent_traces(nranks: usize, ops: &[(usize, usize, u8)]) -> Vec<Vec<OpRecord>> {
        let mut traces: Vec<Vec<OpRecord>> = (0..nranks).map(|_| Vec::new()).collect();
        for &(start, len, kind) in ops {
            let start = start % nranks;
            let len = 1 + len % (nranks - start).max(1);
            let members: Vec<usize> = (start..start + len).collect();
            let op = match kind % 3 {
                0 => OpKind::AllReduce,
                1 => OpKind::AllToAll,
                _ => OpKind::Barrier,
            };
            let rec = OpRecord {
                op,
                comm_label: format!("g{start}-{len}"),
                participants: members.len(),
                members: members.clone(),
                bytes: 1024 * (1 + kind as u64),
                phase: "str".into(),
                elapsed_us: 0,
            };
            for &m in &members {
                traces[m].push(rec.clone());
            }
        }
        traces
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn consistent_traces_never_deadlock(
            nranks in 1usize..9,
            ops in prop::collection::vec((0usize..8, 0usize..8, 0u8..255), 0..30),
        ) {
            let traces = consistent_traces(nranks, &ops);
            let m = MachineModel::small_cluster();
            let p = Placement { ranks_per_node: m.ranks_per_node };
            let out = replay(&traces, &m, p, |_, _| 0.0).expect("consistent traces replay");
            // Makespan bounds: at least any single rank's serial op time,
            // at most the sum of all distinct collective times.
            prop_assert!(out.makespan().is_finite() && out.makespan() >= 0.0);
            prop_assert!(out.total_wait() >= -1e-15);
            // Zero injected compute + nested-interval groups can still wait
            // (a rank can be held up by a group-mate's earlier op), but
            // every rank must finish no later than the makespan.
            for &t in &out.finish_times {
                prop_assert!(t <= out.makespan() + 1e-15);
            }
        }

        #[test]
        fn uniform_compute_adds_exactly_per_op(
            nranks in 2usize..6,
            nops in 1usize..20,
            compute_us in 0.0f64..500.0,
        ) {
            // All ranks in one group, uniform compute: zero wait, makespan =
            // Σ (compute + op time).
            let ops: Vec<(usize, usize, u8)> = (0..nops).map(|_| (0, nranks * 8, 0)).collect();
            let traces = consistent_traces(nranks, &ops);
            let m = MachineModel::small_cluster();
            let p = Placement { ranks_per_node: m.ranks_per_node };
            let c = compute_us * 1e-6;
            let out = replay(&traces, &m, p, move |_, _| c).expect("replay");
            prop_assert!(out.total_wait() < 1e-12, "wait {:?}", out.wait_times);
            let op_t = xg_costmodel::op_time(&m, p, &traces[0][0]);
            let expect = nops as f64 * (c + op_t);
            prop_assert!((out.makespan() - expect).abs() < 1e-9 * (1.0 + expect));
        }
    }
}
