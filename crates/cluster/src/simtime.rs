//! Performance-mode execution: symbolic per-step schedules priced by the
//! cost model.
//!
//! The schedule mirrors a production CGYRO step (which our functional
//! mini-code reproduces structurally, with fewer arrays):
//!
//! * **str**, per RK stage: streaming stencil compute + a set of
//!   velocity-moment AllReduce operations on the `nv` communicator
//!   (3 field components + 3 species upwind moments in production);
//! * **nl**: round-trip AllToAll transposes on the `nt` communicator +
//!   the convolution compute;
//! * **coll**, once per step: round-trip AllToAll on the coll communicator
//!   (per-simulation in CGYRO mode, ensemble-wide in XGYRO mode) + the
//!   constant-tensor matvec stack (memory-bound: streams the local `cmat`
//!   slice once per simulation sharing it).
//!
//! All times are per **reporting step** (`steps_per_report` time steps), as
//! in the paper's Figure 2.

use xg_costmodel::{
    allreduce_time, alltoall_time, CollectiveShape, KernelCost, MachineModel, PhaseBreakdown,
    Placement,
};
use xg_sim::CgyroInput;
use xg_tensor::{Decomp1D, ProcGrid, RaggedDecomp};

/// Tunable op-count structure of one time step.
#[derive(Clone, Copy, Debug)]
pub struct SchedulePolicy {
    /// Explicit integrator stages per step.
    pub rk_stages: usize,
    /// Separate moment AllReduce operations per stage (production CGYRO:
    /// 3 field components + 3 species upwind moments).
    pub moment_reductions_per_stage: usize,
    /// Moments packed into each reduction (buffer-size multiplier). `1`
    /// models the legacy one-call-per-moment schedule; the fused schedule
    /// carries several moments per call, trading latency terms for bytes.
    pub moments_per_reduction: usize,
    /// Nonlinear transpose round-trips per step.
    pub nl_roundtrips_per_step: usize,
    /// Collision transpose round-trips per step.
    pub coll_roundtrips_per_step: usize,
    /// Streaming stencil flops per state point per stage.
    pub str_flops_per_point: u64,
    /// Streaming stencil bytes per state point per stage.
    pub str_bytes_per_point: u64,
    /// Nonlinear flops per state point per toroidal mode.
    pub nl_flops_per_point_per_mode: u64,
    /// Nonlinear bytes per state point per toroidal mode.
    pub nl_bytes_per_point_per_mode: u64,
    /// Fixed per-reporting-step overhead (diagnostics + I/O), seconds.
    pub report_overhead_s: f64,
}

impl SchedulePolicy {
    /// Op counts of the production code (used for the paper-scale runs).
    pub fn production() -> Self {
        Self {
            rk_stages: 4,
            moment_reductions_per_stage: 6,
            moments_per_reduction: 1,
            nl_roundtrips_per_step: 1,
            coll_roundtrips_per_step: 1,
            str_flops_per_point: 80,
            str_bytes_per_point: 64,
            nl_flops_per_point_per_mode: 10,
            nl_bytes_per_point_per_mode: 32,
            report_overhead_s: 1.0,
        }
    }

    /// Op counts of our functional mini-code (one fused reduction carrying
    /// 2 moments per stage, nl round-trip every stage) — used to
    /// cross-check functional traces against the symbolic schedule.
    pub fn mini() -> Self {
        Self {
            rk_stages: 4,
            moment_reductions_per_stage: 1,
            moments_per_reduction: 2,
            nl_roundtrips_per_step: 4,
            coll_roundtrips_per_step: 1,
            str_flops_per_point: 80,
            str_bytes_per_point: 64,
            nl_flops_per_point_per_mode: 10,
            nl_bytes_per_point_per_mode: 32,
            report_overhead_s: 0.0,
        }
    }
}

/// One costed scenario (ensemble or single run on a node allocation).
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario label.
    pub label: String,
    /// Ensemble size.
    pub k: usize,
    /// Nodes used.
    pub nodes: usize,
    /// Per-simulation grid.
    pub grid: ProcGrid,
    /// Wall-clock seconds per reporting step, by (phase, category).
    pub breakdown: PhaseBreakdown,
}

impl ScenarioReport {
    /// Total wall seconds per reporting step.
    pub fn total(&self) -> f64 {
        self.breakdown.total()
    }

    /// The paper's headline metric: str-phase communication seconds.
    pub fn str_comm(&self) -> f64 {
        self.breakdown.get("str", "comm")
    }

    /// All communication seconds.
    pub fn comm_total(&self) -> f64 {
        self.breakdown.get("str", "comm")
            + self.breakdown.get("nl", "comm")
            + self.breakdown.get("coll", "comm")
    }
}

/// Communicator member lists for one reference rank (rank 0 of sim 0) of an
/// ensemble with block placement: sim `s` owns global ranks
/// `[s·n1·n2, (s+1)·n1·n2)`, local rank = `i1·n2 + i2`.
struct Comms {
    nv: Vec<usize>,
    nt: Vec<usize>,
    coll: Vec<usize>,
}

fn ensemble_comms(grid: ProcGrid, k: usize) -> Comms {
    let per_sim = grid.size();
    // nv comm of sim 0 at i2 = 0.
    let nv: Vec<usize> = (0..grid.n1).map(|i1| grid.rank(i1, 0)).collect();
    // nt comm of sim 0 at i1 = 0.
    let nt: Vec<usize> = (0..grid.n2).map(|i2| grid.rank(0, i2)).collect();
    // Ensemble coll comm at i2 = 0: (s, i1) lexicographic.
    let mut coll = Vec::with_capacity(k * grid.n1);
    for s in 0..k {
        for i1 in 0..grid.n1 {
            coll.push(s * per_sim + grid.rank(i1, 0));
        }
    }
    Comms { nv, nt, coll }
}

/// Price one simulation's reporting step inside an ensemble of `k` members
/// on `nodes` nodes (all members are symmetric, so one member's wall time
/// is the ensemble's wall time).
pub fn simulate_ensemble_member(
    input: &CgyroInput,
    grid: ProcGrid,
    k: usize,
    nodes: usize,
    machine: &MachineModel,
    policy: &SchedulePolicy,
    label: &str,
) -> ScenarioReport {
    simulate_ensemble_member_decomp(input, grid, k, nodes, machine, policy, label, None)
}

/// Relative speed of coll position `p = s·n1 + i1`: its cut is shared by
/// every toroidal slice `i2`, so the position runs at the pace of its
/// slowest hosting rank (block placement, `speed_of_rank`).
pub fn coll_position_speeds(grid: ProcGrid, k: usize, machine: &MachineModel) -> Vec<f64> {
    let per_sim = grid.size();
    let mut speeds = Vec::with_capacity(k * grid.n1);
    for s in 0..k {
        for i1 in 0..grid.n1 {
            let speed = (0..grid.n2)
                .map(|i2| machine.speed_of_rank(s * per_sim + grid.rank(i1, i2)))
                .fold(f64::INFINITY, f64::min);
            speeds.push(speed);
        }
    }
    speeds
}

/// Decomposition-aware variant of [`simulate_ensemble_member`]: prices the
/// schedule under heterogeneous node speeds and (optionally) planned
/// unbalanced coll-phase `nc` cuts. On a homogeneous machine with balanced
/// (or absent) cuts this reproduces [`simulate_ensemble_member`] exactly.
///
/// Heterogeneity model: a rank on a node of speed `s` delivers `s` times
/// the machine's `flops_per_rank`/`mem_bw_per_rank`. The str and nl phases
/// split `nv`/`nt` uniformly (those cuts are pinned for bitwise
/// reproducibility), so their compute is gated by the slowest rank in the
/// job. The coll phase is where cuts can move: its compute is the max over
/// coll positions of `work(rows_p) / speed_p` — a capacity-weighted cut
/// equalizes exactly this.
#[allow(clippy::too_many_arguments)]
pub fn simulate_ensemble_member_decomp(
    input: &CgyroInput,
    grid: ProcGrid,
    k: usize,
    nodes: usize,
    machine: &MachineModel,
    policy: &SchedulePolicy,
    label: &str,
    coll_cuts: Option<&[usize]>,
) -> ScenarioReport {
    let d = input.dims();
    let placement = Placement { ranks_per_node: machine.ranks_per_node };
    let comms = ensemble_comms(grid, k);
    let nv_shape = CollectiveShape::from_members(&comms.nv, placement);
    let nt_shape = CollectiveShape::from_members(&comms.nt, placement);
    let coll_shape = CollectiveShape::from_members(&comms.coll, placement);

    let nv_loc = Decomp1D::new(d.nv, grid.n1).max_count();
    let nt_loc = Decomp1D::new(d.nt, grid.n2).max_count();
    let state_elems = (d.nc * nv_loc * nt_loc) as u64;
    let state_bytes = state_elems * 16;
    let moment_bytes = (d.nc * nt_loc * policy.moments_per_reduction) as u64 * 16;

    let mut b = PhaseBreakdown::new();

    // --- str phase ---
    let ar_per_step =
        (policy.rk_stages * policy.moment_reductions_per_stage) as f64;
    let t_ar = allreduce_time(machine, nv_shape, moment_bytes);
    b.add("str", "comm", ar_per_step * t_ar);
    // Slowest rank actually used by the job: str/nl cuts are uniform, so
    // every rank does the same local work and the slowest one gates.
    let used_ranks = k * grid.size();
    let min_speed = (0..used_ranks)
        .map(|r| machine.speed_of_rank(r))
        .fold(1.0f64, f64::min);
    let str_kernel = KernelCost {
        flops: state_elems * policy.str_flops_per_point,
        bytes: state_elems * policy.str_bytes_per_point,
    };
    b.add("str", "compute", policy.rk_stages as f64 * str_kernel.time(machine) / min_speed);

    // --- nl phase ---
    if input.nonlinear_coupling != 0.0 {
        let t_a2a = alltoall_time(machine, nt_shape, state_bytes);
        b.add(
            "nl",
            "comm",
            (2 * policy.nl_roundtrips_per_step) as f64 * t_a2a,
        );
        let nl_kernel = KernelCost {
            flops: state_elems * d.nt as u64 * policy.nl_flops_per_point_per_mode,
            bytes: state_elems * d.nt as u64 * policy.nl_bytes_per_point_per_mode,
        };
        b.add(
            "nl",
            "compute",
            policy.nl_roundtrips_per_step as f64 * nl_kernel.time(machine) / min_speed,
        );
    }

    // --- coll phase ---
    let t_coll_a2a = alltoall_time(machine, coll_shape, state_bytes);
    b.add(
        "coll",
        "comm",
        (2 * policy.coll_roundtrips_per_step) as f64 * t_coll_a2a,
    );
    // cmat application: the local slice covers a planned share of the nc
    // configuration points; it is applied once per member simulation (k
    // times), so the per-rank matvec volume equals CGYRO's regardless of
    // k. The phase finishes when the slowest coll position finishes: max
    // over positions of work(rows_p) / speed_p. With balanced cuts on a
    // homogeneous machine this is exactly the worst-rank (max_count) cost.
    let positions = k * grid.n1;
    let coll_decomp = match coll_cuts {
        None => RaggedDecomp::balanced(d.nc, positions),
        Some(cuts) => {
            assert_eq!(cuts.len(), positions, "coll cuts must have k*n1 entries");
            RaggedDecomp::from_counts(cuts)
        }
    };
    let speeds = coll_position_speeds(grid, k, machine);
    let coll_time = |rows: usize| -> f64 {
        let pairs = (rows * nt_loc * k) as u64;
        let kernel = KernelCost {
            flops: 4 * (d.nv as u64) * (d.nv as u64) * pairs,
            bytes: 8 * (d.nv as u64) * (d.nv as u64) * pairs + pairs * 2 * 16 * d.nv as u64,
        };
        kernel.time(machine)
    };
    let coll_compute = (0..positions)
        .map(|p| coll_time(coll_decomp.count(p)) / speeds[p])
        .fold(0.0f64, f64::max);
    b.add(
        "coll",
        "compute",
        policy.coll_roundtrips_per_step as f64 * coll_compute,
    );

    // Scale to a reporting step and add fixed overhead.
    let mut per_report = b.scaled(input.steps_per_report as f64);
    per_report.add("report", "overhead", policy.report_overhead_s);

    ScenarioReport {
        label: label.to_string(),
        k,
        nodes,
        grid,
        breakdown: per_report,
    }
}

/// The paper's XGYRO scenario: k members run **concurrently** as one job;
/// wall time per reporting step is one member's time.
pub fn simulate_xgyro(
    input: &CgyroInput,
    grid: ProcGrid,
    k: usize,
    nodes: usize,
    machine: &MachineModel,
    policy: &SchedulePolicy,
) -> ScenarioReport {
    simulate_ensemble_member(input, grid, k, nodes, machine, policy, &format!("XGYRO k={k}"))
}

/// The paper's CGYRO baseline: the k members run **sequentially**, each on
/// the full allocation; wall time is the sum.
pub fn simulate_cgyro_sequential(
    input: &CgyroInput,
    grid: ProcGrid,
    k: usize,
    nodes: usize,
    machine: &MachineModel,
    policy: &SchedulePolicy,
) -> ScenarioReport {
    let one = simulate_ensemble_member(input, grid, 1, nodes, machine, policy, "CGYRO");
    ScenarioReport {
        label: format!("CGYRO x{k} (sequential)"),
        k,
        nodes,
        grid,
        breakdown: one.breakdown.scaled(k as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner;

    fn frontier_f2() -> (CgyroInput, MachineModel, SchedulePolicy) {
        (
            CgyroInput::nl03c_like(),
            MachineModel::frontier_like(),
            SchedulePolicy::production(),
        )
    }

    #[test]
    fn figure2_shape_xgyro_wins() {
        let (input, m, pol) = frontier_f2();
        let cg_plan = planner::plan(&input, 1, 32, &m).unwrap();
        let xg_plan = planner::plan(&input, 8, 32, &m).unwrap();
        let cg = simulate_cgyro_sequential(&input, cg_plan.grid, 8, 32, &m, &pol);
        let xg = simulate_xgyro(&input, xg_plan.grid, 8, 32, &m, &pol);

        // Headline: XGYRO completes the 8-member reporting step faster.
        let speedup = cg.total() / xg.total();
        assert!(
            (1.2..2.0).contains(&speedup),
            "speedup {speedup:.2} (cg {:.0}s, xg {:.0}s)",
            cg.total(),
            xg.total()
        );
        // str communication drops by a large factor.
        let str_ratio = cg.str_comm() / xg.str_comm();
        assert!(str_ratio > 3.0, "str comm ratio {str_ratio:.1}");
        // Everything except str comm is roughly unchanged (within 25%).
        let cg_rest = cg.total() - cg.str_comm();
        let xg_rest = xg.total() - xg.str_comm();
        let rest_ratio = cg_rest / xg_rest;
        assert!(
            (0.8..1.25).contains(&rest_ratio),
            "non-str time should be ~equal: {cg_rest:.0} vs {xg_rest:.0}"
        );
    }

    #[test]
    fn figure2_absolute_scale_near_paper() {
        // Calibration check: the CGYRO column should land near the paper's
        // 375 s total / 145 s str-comm (we accept ±40%; the XGYRO column is
        // then a model prediction).
        let (input, m, pol) = frontier_f2();
        let plan = planner::plan(&input, 1, 32, &m).unwrap();
        let cg = simulate_cgyro_sequential(&input, plan.grid, 8, 32, &m, &pol);
        assert!(
            (225.0..525.0).contains(&cg.total()),
            "CGYRO total {:.0}s vs paper 375s",
            cg.total()
        );
        assert!(
            (87.0..203.0).contains(&cg.str_comm()),
            "CGYRO str comm {:.0}s vs paper 145s",
            cg.str_comm()
        );
    }

    #[test]
    fn coll_compute_independent_of_k() {
        let (input, m, pol) = frontier_f2();
        let cg = simulate_ensemble_member(
            &input,
            planner::plan(&input, 1, 32, &m).unwrap().grid,
            1,
            32,
            &m,
            &pol,
            "cg",
        );
        let xg = simulate_ensemble_member(
            &input,
            planner::plan(&input, 8, 32, &m).unwrap().grid,
            8,
            32,
            &m,
            &pol,
            "xg",
        );
        // Per step, XGYRO applies 1/8 of the slice to 8 sims = same work as
        // one CGYRO sim on 8x the ranks... per *reporting* step CGYRO runs
        // eight times sequentially, so compare per-member wall directly:
        let cg8 = cg.breakdown.get("coll", "compute") * 8.0;
        let xg8 = xg.breakdown.get("coll", "compute");
        assert!(
            (cg8 - xg8).abs() / cg8 < 0.05,
            "coll compute must match: {cg8} vs {xg8}"
        );
    }

    #[test]
    fn linear_run_has_no_nl_cost() {
        let (mut input, m, pol) = frontier_f2();
        input.nonlinear_coupling = 0.0;
        let plan = planner::plan(&input, 1, 32, &m).unwrap();
        let r = simulate_ensemble_member(&input, plan.grid, 1, 32, &m, &pol, "lin");
        assert_eq!(r.breakdown.get("nl", "comm"), 0.0);
        assert_eq!(r.breakdown.get("nl", "compute"), 0.0);
    }

    #[test]
    fn str_comm_grows_with_participants() {
        let (input, m, pol) = frontier_f2();
        // Same sim at n1 = 2 vs n1 = 16.
        let small = simulate_ensemble_member(&input, ProcGrid::new(2, 16), 1, 4, &m, &pol, "s");
        let large = simulate_ensemble_member(&input, ProcGrid::new(16, 16), 1, 32, &m, &pol, "l");
        assert!(large.str_comm() > 3.0 * small.str_comm());
    }
}
