//! Unbalanced & heterogeneous decomposition search.
//!
//! "Optimising Performance Through Unbalanced Decompositions" (arxiv
//! 1205.2509): when per-part costs differ, the best split is not the equal
//! one. On a heterogeneous machine (slow-node, mixed-machine presets or a
//! `NODE_SPEEDS=` machinefile) a balanced coll-phase split runs at the
//! slowest position's pace; this planner searches capacity-weighted cut
//! candidates, prices each with the same symbolic schedule `xgplan` uses,
//! and returns the cheapest — with the balanced split always in the
//! candidate set, so the search never chooses worse than balanced.
//!
//! Only the coll-phase `nc` cuts are searched. They are **bitwise-neutral**
//! (each `(ic, it)` collision matvec is independent — moving cut points
//! moves whole matvecs between ranks without reassociating any sum), so
//! every layout this module emits produces output bitwise-identical to the
//! balanced run. Ragged `nv` cuts would reorder the rank-order partial sums
//! of the str-phase moment reductions and are deliberately out of scope.

use crate::planner::{diagnose, Infeasibility, JobPlan};
use crate::simtime::{
    coll_position_speeds, simulate_ensemble_member_decomp, SchedulePolicy,
};
use xg_costmodel::MachineModel;
use xg_sim::CgyroInput;
use xg_tensor::{Decomposition, RaggedDecomp};

/// A searched decomposition with its modeled cost against the balanced
/// baseline on the same grid.
#[derive(Clone, Debug)]
pub struct DecompPlan {
    /// The memory-feasible placement the layout runs on.
    pub plan: JobPlan,
    /// The chosen layout (`coll_cuts = None` when balanced won).
    pub decomposition: Decomposition,
    /// Modeled wall seconds per reporting step with balanced cuts.
    pub step_balanced_s: f64,
    /// Modeled wall seconds per reporting step with the chosen cuts.
    pub step_chosen_s: f64,
}

impl DecompPlan {
    /// Modeled balanced-over-chosen speedup (≥ 1 by construction).
    pub fn speedup(&self) -> f64 {
        self.step_balanced_s / self.step_chosen_s
    }

    /// True when the search chose a non-balanced layout.
    pub fn is_unbalanced(&self) -> bool {
        self.decomposition.coll_cuts.is_some()
    }
}

/// Search the coll-cut space for `(deck, k, nodes, machine)` and return the
/// cheapest priced layout. Grid admission runs in unbalanced mode (ragged
/// grids allowed where no exactly-dividing one exists); errors carry the
/// typed [`Infeasibility`] diagnosis.
pub fn plan_decomposition(
    input: &CgyroInput,
    k: usize,
    nodes: usize,
    machine: &MachineModel,
    policy: &SchedulePolicy,
) -> Result<DecompPlan, Infeasibility> {
    let jp = diagnose(input, k, nodes, machine, true)?;
    let grid = jp.grid;
    let nc = input.dims().nc;
    let positions = k * grid.n1;

    let price = |cuts: Option<&[usize]>| -> f64 {
        simulate_ensemble_member_decomp(input, grid, k, nodes, machine, policy, "cand", cuts)
            .total()
    };
    let step_balanced_s = price(None);

    // Candidate cuts: the balanced split plus capacity-weighted splits at
    // several weighting exponents (`speed^alpha`). Alpha 1.0 equalizes
    // compute exactly when compute dominates; softer exponents hedge when
    // fixed per-position costs (comm, latency) flatten the optimum.
    let speeds = coll_position_speeds(grid, k, machine);
    let uniform = speeds.iter().all(|&s| s == speeds[0]);
    let mut best_cuts: Option<Vec<usize>> = None;
    let mut best_time = step_balanced_s;
    if !uniform {
        for alpha in [0.5, 0.75, 1.0] {
            let weights: Vec<f64> = speeds.iter().map(|s| s.powf(alpha)).collect();
            let cuts = RaggedDecomp::weighted(nc, &weights).counts();
            if RaggedDecomp::from_counts(&cuts) == RaggedDecomp::balanced(nc, positions) {
                continue;
            }
            let t = price(Some(&cuts));
            if t < best_time {
                best_time = t;
                best_cuts = Some(cuts);
            }
        }
    }

    Ok(DecompPlan {
        plan: jp,
        decomposition: Decomposition { grid, k, coll_cuts: best_cuts },
        step_balanced_s,
        step_chosen_s: best_time,
    })
}

/// Capacity-weighted coll cuts for a set of surviving coll positions — the
/// post-eviction rebalance rule. `capacities[p]` is the relative speed of
/// surviving position `p`; returns one row count per position summing to
/// `nc`. With uniform capacities this is exactly the balanced (uniform
/// shrink) split.
pub fn rebalanced_cuts(nc: usize, capacities: &[f64]) -> Vec<usize> {
    RaggedDecomp::weighted(nc, capacities).counts()
}

/// Rows that `cuts` place differently from the balanced split of the same
/// shape: `nc − Σ_p |range_cuts(p) ∩ range_balanced(p)|`. The obs counter
/// `xgyro_rebalance_moved_rows` records this — the data-movement cost of
/// rebalancing, against which the wall-time payoff is judged.
pub fn moved_rows_vs_balanced(cuts: &[usize]) -> usize {
    let d = RaggedDecomp::from_counts(cuts);
    let b = RaggedDecomp::balanced(d.total(), d.parts());
    let mut overlap = 0usize;
    for p in 0..d.parts() {
        let (r, s) = (d.range(p), b.range(p));
        let lo = r.start.max(s.start);
        let hi = r.end.min(s.end);
        overlap += hi.saturating_sub(lo);
    }
    d.total() - overlap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nl03c() -> CgyroInput {
        CgyroInput::nl03c_like()
    }

    #[test]
    fn homogeneous_machine_search_stays_balanced() {
        let m = MachineModel::frontier_like();
        let pol = SchedulePolicy::production();
        let dp = plan_decomposition(&nl03c(), 8, 32, &m, &pol).unwrap();
        assert!(!dp.is_unbalanced());
        assert_eq!(dp.step_balanced_s, dp.step_chosen_s);
        assert_eq!(dp.speedup(), 1.0);
        assert_eq!(dp.decomposition.label(nl03c().dims().nc), "balanced");
    }

    #[test]
    fn slow_node_machine_gets_an_unbalanced_win() {
        let m = MachineModel::slow_node_like();
        let pol = SchedulePolicy::production();
        let dp = plan_decomposition(&nl03c(), 8, 32, &m, &pol).unwrap();
        assert!(dp.is_unbalanced(), "slow-node machine must trigger rebalancing");
        assert!(
            dp.speedup() >= 1.15,
            "modeled speedup {:.3} below the acceptance floor",
            dp.speedup()
        );
        // The cuts are a valid decomposition of nc over k·n1 positions.
        let nc = nl03c().dims().nc;
        dp.decomposition.validate(nc).unwrap();
        let cuts = dp.decomposition.coll_cuts.as_ref().unwrap();
        assert_eq!(cuts.iter().sum::<usize>(), nc);
        // Positions on the slow node hold fewer rows than full-speed ones.
        let speeds = coll_position_speeds(dp.plan.grid, 8, &m);
        let slow_max = cuts
            .iter()
            .zip(&speeds)
            .filter(|(_, s)| **s < 1.0)
            .map(|(c, _)| *c)
            .max()
            .unwrap();
        let fast_min = cuts
            .iter()
            .zip(&speeds)
            .filter(|(_, s)| **s == 1.0)
            .map(|(c, _)| *c)
            .min()
            .unwrap();
        assert!(slow_max < fast_min, "slow {slow_max} !< fast {fast_min}");
    }

    #[test]
    fn mixed_machine_also_improves() {
        let m = MachineModel::mixed_machine_like();
        let pol = SchedulePolicy::production();
        let dp = plan_decomposition(&nl03c(), 8, 32, &m, &pol).unwrap();
        assert!(dp.is_unbalanced());
        assert!(dp.speedup() > 1.0);
    }

    #[test]
    fn search_propagates_typed_infeasibility() {
        let m = MachineModel::frontier_like();
        let pol = SchedulePolicy::production();
        let err = plan_decomposition(&nl03c(), 1, 16, &m, &pol).unwrap_err();
        assert_eq!(err.kind(), "memory");
    }

    #[test]
    fn rebalanced_cuts_and_moved_rows() {
        // Uniform capacities = uniform shrink = nothing moved.
        let cuts = rebalanced_cuts(64, &[1.0; 8]);
        assert_eq!(cuts, vec![8; 8]);
        assert_eq!(moved_rows_vs_balanced(&cuts), 0);
        // A half-speed straggler sheds rows; some rows move.
        let caps = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.5];
        let cuts = rebalanced_cuts(64, &caps);
        assert_eq!(cuts.iter().sum::<usize>(), 64);
        assert!(cuts[7] < cuts[0]);
        assert!(moved_rows_vs_balanced(&cuts) > 0);
    }
}
