//! Campaign optimization: batch N parameter-sweep variants into XGYRO
//! ensembles to minimize node-hours on a fixed allocation.
//!
//! This is the decision the paper's approach creates: given `n_variants`
//! simulations that could share `cmat`, a node allocation, and the
//! machine/schedule models, choose the ensemble size `k` (and number of
//! batches) that completes the campaign cheapest. Larger `k` amortizes
//! better (AllReduce shrinks) until the per-simulation state no longer
//! fits in memory.

use crate::planner;
use crate::simtime::{simulate_xgyro, ScenarioReport, SchedulePolicy};
use xg_costmodel::MachineModel;
use xg_sim::CgyroInput;

/// One evaluated batching option.
#[derive(Clone, Debug)]
pub struct CampaignOption {
    /// Ensemble size per batch.
    pub k: usize,
    /// Number of sequential batches (`ceil(n_variants / k)`).
    pub batches: usize,
    /// Wall seconds per reporting step for one batch.
    pub batch_seconds: f64,
    /// Total node-hours for the whole campaign (`batches × batch time ×
    /// nodes × reports / 3600`).
    pub node_hours: f64,
    /// The per-batch scenario report.
    pub report: ScenarioReport,
}

/// The optimizer's answer.
#[derive(Clone, Debug)]
pub struct CampaignPlan {
    /// All feasible options, sorted by node-hours ascending.
    pub options: Vec<CampaignOption>,
}

impl CampaignPlan {
    /// The cheapest option.
    pub fn best(&self) -> &CampaignOption {
        &self.options[0]
    }

    /// Node-hours of the k=1 (pure CGYRO sequential) option, if feasible.
    pub fn baseline(&self) -> Option<&CampaignOption> {
        self.options.iter().find(|o| o.k == 1)
    }
}

/// Evaluate all ensemble sizes that divide the rank pool and fit in
/// memory; returns `None` when not even `k = 1` fits on `nodes`.
///
/// ```
/// use xg_cluster::{optimize_campaign, SchedulePolicy};
/// use xg_costmodel::MachineModel;
/// use xg_sim::CgyroInput;
///
/// // 8 nl03c variants on the 32 nodes a single run needs: batching them
/// // as one XGYRO ensemble is the cheapest plan.
/// let plan = optimize_campaign(
///     &CgyroInput::nl03c_like(), 8, 32, 10,
///     &MachineModel::frontier_like(), &SchedulePolicy::production(),
/// ).unwrap();
/// assert_eq!(plan.best().k, 8);
/// ```
pub fn optimize_campaign(
    input: &CgyroInput,
    n_variants: usize,
    nodes: usize,
    reports: usize,
    machine: &MachineModel,
    policy: &SchedulePolicy,
) -> Option<CampaignPlan> {
    assert!(n_variants > 0 && reports > 0);
    let mut options = Vec::new();
    for k in 1..=n_variants {
        let Some(plan) = planner::plan(input, k, nodes, machine) else {
            continue;
        };
        if !plan.feasible() {
            continue;
        }
        let report = simulate_xgyro(input, plan.grid, k, nodes, machine, policy);
        let batches = n_variants.div_ceil(k);
        let batch_seconds = report.total();
        let node_hours =
            batches as f64 * batch_seconds * reports as f64 * nodes as f64 / 3600.0;
        options.push(CampaignOption { k, batches, batch_seconds, node_hours, report });
    }
    if options.is_empty() {
        return None;
    }
    options.sort_by(|a, b| a.node_hours.total_cmp(&b.node_hours));
    Some(CampaignPlan { options })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_variant_campaign_prefers_k8() {
        let input = CgyroInput::nl03c_like();
        let machine = MachineModel::frontier_like();
        let policy = SchedulePolicy::production();
        let plan = optimize_campaign(&input, 8, 32, 10, &machine, &policy).unwrap();
        assert_eq!(plan.best().k, 8, "largest feasible ensemble wins");
        let base = plan.baseline().expect("k=1 feasible");
        assert!(plan.best().node_hours < base.node_hours);
        let saving = 1.0 - plan.best().node_hours / base.node_hours;
        assert!((0.2..0.6).contains(&saving), "saving {saving:.2}");
    }

    #[test]
    fn non_divisible_variant_counts_batch_correctly() {
        let input = CgyroInput::nl03c_like();
        let machine = MachineModel::frontier_like();
        let policy = SchedulePolicy::production();
        // 12 variants: k=8 needs 2 batches (8 + 4 slots, one partly idle);
        // the optimizer accounts full batch cost either way.
        let plan = optimize_campaign(&input, 12, 32, 1, &machine, &policy).unwrap();
        let k8 = plan.options.iter().find(|o| o.k == 8).unwrap();
        assert_eq!(k8.batches, 2);
        let k4 = plan.options.iter().find(|o| o.k == 4).unwrap();
        assert_eq!(k4.batches, 3);
        // With 12 variants, 3 batches of 4 beat 2 batches of 8 (the second
        // k=8 batch runs half-empty at full cost) — the optimizer must see
        // through that.
        assert!(k4.node_hours < k8.node_hours, "{} vs {}", k4.node_hours, k8.node_hours);
        assert_eq!(plan.best().k, 4);
    }

    #[test]
    fn infeasible_everything_returns_none() {
        let input = CgyroInput::nl03c_like();
        let machine = MachineModel::frontier_like();
        let policy = SchedulePolicy::production();
        // 4 nodes cannot host even one nl03c.
        assert!(optimize_campaign(&input, 4, 4, 1, &machine, &policy).is_none());
    }

    #[test]
    fn small_decks_trivially_optimize() {
        let input = CgyroInput::test_medium();
        let machine = MachineModel::small_cluster();
        let policy = SchedulePolicy::mini();
        let plan = optimize_campaign(&input, 3, 1, 2, &machine, &policy).unwrap();
        assert!(!plan.options.is_empty());
        assert!(plan.best().node_hours > 0.0);
    }
}
