//! Per-rank memory inventory.
//!
//! Models the buffer footprint of a **production** CGYRO-class run (the
//! paper's subject), not just our lean functional mini-code: besides the
//! distribution stack, the real code carries gyroaverage coefficient
//! tables, nonlinear FFT workspaces, transpose staging and field arrays.
//! The named inventory below reproduces the paper's headline memory fact —
//! for the `nl03c`-like deck the constant tensor is ≈10× everything else
//! combined — and its strong-scaling invariance (both sides split along
//! `nc`/`nt`).

use xg_sim::CgyroInput;
use xg_tensor::{Decomp1D, ProcGrid};

/// What role a buffer plays (used for report grouping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferCategory {
    /// The collisional constant tensor.
    Constant,
    /// Evolving distribution-sized complex state.
    State,
    /// Precomputed coefficient tables.
    Coefficient,
    /// Transpose/FFT staging.
    Workspace,
    /// Field-sized arrays (`nc × nt_loc`).
    Field,
}

/// One named buffer with its per-rank size.
#[derive(Clone, Debug)]
pub struct BufferSpec {
    /// Buffer name (mirrors production CGYRO array names where sensible).
    pub name: &'static str,
    /// Per-rank bytes (worst-case rank).
    pub bytes: u64,
    /// Role.
    pub category: BufferCategory,
}

/// Per-rank inventory for one simulation distributed on `grid`, with the
/// constant tensor split over `coll_parts` ranks (`n1` in CGYRO mode,
/// `k·n1` in XGYRO mode).
pub fn rank_inventory(
    input: &CgyroInput,
    grid: ProcGrid,
    coll_parts: usize,
) -> Vec<BufferSpec> {
    let d = input.dims();
    let nv_loc = Decomp1D::new(d.nv, grid.n1).max_count() as u64;
    let nt_loc = Decomp1D::new(d.nt, grid.n2).max_count() as u64;
    let nc = d.nc as u64;
    let nv = d.nv as u64;
    let state = nc * nv_loc * nt_loc; // complex elements
    let cplx = 16u64;
    let real = 8u64;
    let field = nc * nt_loc;

    let cmat_bytes =
        nv * nv * Decomp1D::new(d.nc, coll_parts).max_count() as u64 * nt_loc * real;

    let mut out = vec![BufferSpec {
        name: "cmat",
        bytes: cmat_bytes,
        category: BufferCategory::Constant,
    }];
    // Distribution-sized complex state (production CGYRO: h_x, h_0, cap_h,
    // four RK stage buffers, omega_cap_h, omega_s, omega_ss).
    for name in [
        "h_x", "h_0", "cap_h", "rhs_1", "rhs_2", "rhs_3", "rhs_4", "omega_cap_h", "omega_s",
        "omega_ss",
    ] {
        out.push(BufferSpec { name, bytes: state * cplx, category: BufferCategory::State });
    }
    // Coefficient tables.
    for name in ["gyro_avg_phi", "gyro_avg_apar", "gyro_avg_bpar", "dv_gyro_phi", "dv_gyro_apar", "dv_gyro_bpar", "omega_drift", "omega_drive", "upfac1", "upfac2"] {
        out.push(BufferSpec {
            name,
            bytes: state * real,
            category: BufferCategory::Coefficient,
        });
    }
    out.push(BufferSpec {
        name: "omega_stream",
        bytes: state * cplx,
        category: BufferCategory::Coefficient,
    });
    // Workspaces: nonlinear FFT pairs and transpose staging.
    for name in ["nl_f", "nl_g", "nl_fft_x", "nl_fft_y", "transpose_send", "transpose_recv", "coll_h", "coll_scratch"] {
        out.push(BufferSpec {
            name,
            bytes: state * cplx,
            category: BufferCategory::Workspace,
        });
    }
    // Field-sized arrays (potential + old copies + moment accumulators).
    for name in ["field_phi", "field_apar", "field_bpar", "field_old", "field_old2", "field_old3", "moment_n", "moment_e", "moment_v"] {
        out.push(BufferSpec { name, bytes: field * cplx, category: BufferCategory::Field });
    }
    out
}

/// Summed bytes of an inventory, optionally filtered by category.
pub fn total_bytes(inv: &[BufferSpec], category: Option<BufferCategory>) -> u64 {
    inv.iter()
        .filter(|b| category.is_none_or(|c| b.category == c))
        .map(|b| b.bytes)
        .sum()
}

/// The cmat-to-everything-else ratio of an inventory.
pub fn cmat_ratio(inv: &[BufferSpec]) -> f64 {
    let cmat = total_bytes(inv, Some(BufferCategory::Constant)) as f64;
    let rest = total_bytes(inv, None) as f64 - cmat;
    cmat / rest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nl03c_cmat_dominates_by_about_10x() {
        // Paper §1: "for the benchmark input nl03c the constant cmat is 10x
        // the size of all the other memory buffers combined."
        let input = CgyroInput::nl03c_like();
        let grid = ProcGrid::new(16, 16); // 256 ranks
        let inv = rank_inventory(&input, grid, grid.n1);
        let r = cmat_ratio(&inv);
        assert!((8.0..14.0).contains(&r), "cmat/rest = {r:.2}, expected ≈10x");
    }

    #[test]
    fn ratio_invariant_under_strong_scaling() {
        // Paper §2: "The relative difference in size compared to the other
        // buffers thus does not change with strong scaling."
        let input = CgyroInput::nl03c_like();
        let r1 = cmat_ratio(&rank_inventory(&input, ProcGrid::new(8, 16), 8));
        let r2 = cmat_ratio(&rank_inventory(&input, ProcGrid::new(16, 16), 16));
        let r3 = cmat_ratio(&rank_inventory(&input, ProcGrid::new(32, 16), 32));
        assert!((r1 - r2).abs() / r2 < 0.05, "{r1} vs {r2}");
        assert!((r3 - r2).abs() / r2 < 0.05, "{r3} vs {r2}");
    }

    #[test]
    fn xgyro_sharing_shrinks_only_cmat() {
        let input = CgyroInput::nl03c_like();
        let grid = ProcGrid::new(2, 16); // per-sim grid in the k=8 ensemble
        let k = 8;
        let cgyro = rank_inventory(&input, grid, grid.n1);
        let xgyro = rank_inventory(&input, grid, k * grid.n1);
        let cg_cmat = total_bytes(&cgyro, Some(BufferCategory::Constant));
        let xg_cmat = total_bytes(&xgyro, Some(BufferCategory::Constant));
        assert_eq!(cg_cmat, xg_cmat * k as u64, "cmat drops k-fold");
        // Everything else identical.
        let cg_rest = total_bytes(&cgyro, None) - cg_cmat;
        let xg_rest = total_bytes(&xgyro, None) - xg_cmat;
        assert_eq!(cg_rest, xg_rest);
    }

    #[test]
    fn inventory_has_distinct_names() {
        let input = CgyroInput::test_small();
        let inv = rank_inventory(&input, ProcGrid::new(2, 1), 2);
        let mut names: Vec<_> = inv.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), inv.len(), "buffer names must be unique");
        assert!(inv.iter().all(|b| b.bytes > 0));
    }

    #[test]
    fn state_buffers_scale_with_decomposition() {
        let input = CgyroInput::test_medium();
        let one = rank_inventory(&input, ProcGrid::new(1, 1), 1);
        let four = rank_inventory(&input, ProcGrid::new(2, 2), 2);
        let s1 = total_bytes(&one, Some(BufferCategory::State));
        let s4 = total_bytes(&four, Some(BufferCategory::State));
        assert_eq!(s1, s4 * 4, "state splits over both grid dimensions");
    }
}
