//! `xgplan` — plan a CGYRO/XGYRO campaign on a modeled machine before
//! burning an allocation.
//!
//! ```text
//! xgplan --deck input.cgyro [--machine FILE|PRESET] [--variants N]
//!        [--nodes N] [--reports R]
//! ```
//!
//! Prints: the deck's memory law, the minimum feasible allocation, the
//! per-ensemble-size forecast on the chosen node count, and the cheapest
//! batching of the requested variants.

use std::process::exit;
use xg_costmodel::{parse_machine, preset, MachineModel, PRESET_NAMES};
use xg_sim::load_deck;

fn usage() -> ! {
    eprintln!(
        "usage: xgplan --deck input.cgyro [--machine FILE|PRESET] [--variants N]\n\
         \u{20}                [--nodes N] [--reports R]\n\
         presets: {}",
        PRESET_NAMES.join(", ")
    );
    exit(2)
}

fn main() {
    let mut deck_path = None;
    let mut machine: Option<MachineModel> = None;
    let mut variants = 8usize;
    let mut nodes: Option<usize> = None;
    let mut reports = 10usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deck" => deck_path = Some(it.next().unwrap_or_else(|| usage())),
            "--machine" => {
                let v = it.next().unwrap_or_else(|| usage());
                machine = Some(match preset(&v) {
                    Some(m) => m,
                    None => match std::fs::read_to_string(&v) {
                        Ok(text) => parse_machine(&text).unwrap_or_else(|e| {
                            eprintln!("xgplan: {e}");
                            exit(1);
                        }),
                        Err(e) => {
                            eprintln!("xgplan: '{v}' is neither a preset nor a readable file: {e}");
                            exit(1);
                        }
                    },
                });
            }
            "--variants" => {
                variants = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--nodes" => {
                nodes = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--reports" => {
                reports = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let deck_path = deck_path.unwrap_or_else(|| usage());
    let input = load_deck(std::path::Path::new(&deck_path)).unwrap_or_else(|e| {
        eprintln!("xgplan: {e}");
        exit(1);
    });
    let machine = machine.unwrap_or_else(MachineModel::frontier_like);
    let policy = xg_cluster::SchedulePolicy::production();

    let d = input.dims();
    println!(
        "deck: nc={} nv={} nt={}  cmat={:.3} TB  key={:#018x}",
        d.nc,
        d.nv,
        d.nt,
        xg_sim::cmat_total_bytes(&input) as f64 / 1e12,
        input.cmat_key()
    );
    println!(
        "machine: {} ({} ranks/node, {:.1} GB usable/rank)",
        machine.name,
        machine.ranks_per_node,
        machine.usable_mem_per_rank() as f64 / 1e9
    );

    let Some(single) = xg_cluster::min_nodes(&input, 1, &machine, 4096) else {
        println!("this deck does not fit on the machine at any allocation up to 4096 nodes");
        exit(1);
    };
    println!(
        "\nminimum single-simulation allocation: {} nodes ({} ranks, grid {}x{}, {:.1} GB/rank)",
        single.nodes,
        single.ranks,
        single.grid.n1,
        single.grid.n2,
        single.per_rank_bytes as f64 / 1e9
    );

    let nodes = nodes.unwrap_or(single.nodes);
    println!("\nensemble forecast on {nodes} nodes (seconds per reporting step):");
    println!("  k     feasible   s/report   speedup vs CGYROxk");
    for k in [1usize, 2, 4, 8, 16, 32] {
        if k > variants.max(1) * 4 {
            break;
        }
        match xg_cluster::plan(&input, k, nodes, &machine) {
            Some(p) if p.feasible() => {
                let xg = xg_cluster::simulate_xgyro(&input, p.grid, k, nodes, &machine, &policy);
                let cg = xg_cluster::simulate_cgyro_sequential(
                    &input, single.grid, k, nodes, &machine, &policy,
                );
                println!(
                    "  {:<5} {:>8}   {:>8.1}   {:>8.2}x",
                    k,
                    "yes",
                    xg.total(),
                    cg.total() / xg.total()
                );
            }
            Some(_) => println!("  {:<5} {:>8}", k, "no (memory)"),
            None => println!("  {:<5} {:>8}", k, "no (no valid grid)"),
        }
    }

    match xg_cluster::optimize_campaign(&input, variants, nodes, reports, &machine, &policy) {
        Some(plan) => {
            let best = plan.best();
            println!(
                "\ncheapest batching for {variants} variants x {reports} reports: \
                 {} batch(es) of k={} -> {:.1} node-hours",
                best.batches, best.k, best.node_hours
            );
            if let Some(base) = plan.baseline() {
                println!(
                    "  (sequential baseline: {:.1} node-hours; saving {:.0}%)",
                    base.node_hours,
                    100.0 * (1.0 - best.node_hours / base.node_hours)
                );
            }
        }
        None => println!("\nno feasible batching for {variants} variants on {nodes} nodes"),
    }
}
