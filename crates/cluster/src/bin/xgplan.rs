//! `xgplan` — plan a CGYRO/XGYRO campaign on a modeled machine before
//! burning an allocation.
//!
//! ```text
//! xgplan --deck input.cgyro [--machine FILE|PRESET] [--variants N]
//!        [--nodes N] [--reports R] [--mtbf-hours H] [--restart-s S]
//!        [--journal-fsync-ms MS] [--submit-rate-hz HZ] [--profile FILE]
//!        [--kernel-tune] [--hit-rate P]
//! ```
//!
//! `--hit-rate P` prices a warmed result cache (`xgqueued --artifacts`)
//! into the forecast: a fraction P of the campaign's members are expected
//! to be served from the artifact store at admission, so only the missing
//! `(1 - P)` fraction pays compute.
//!
//! `--kernel-tune` sweeps the collision-kernel autotuner for the deck's
//! `nv` over ensemble sizes: the roofline-predicted kernel on the modeled
//! machine next to the kernel actually tuned (one-shot measured) on this
//! host, with both times.
//!
//! `--profile` closes the loop between forecast and reality: FILE is a
//! Prometheus scrape from a run with `XGYRO_OBS=1` (`xgyro`'s exporter or
//! `xgq metrics --prom --out FILE`), and xgplan prints the measured
//! per-phase wall time next to its own predictions.
//!
//! Prints: the deck's memory law, the minimum feasible allocation, the
//! per-ensemble-size forecast on the chosen node count — including the
//! MTBF-aware expected time-to-solution (a k-member job occupies k× the
//! nodes, so its MTBF is k× worse; checkpoint/restart overhead is priced
//! at the Young-optimal cadence) — an MTBF sensitivity sweep, the
//! recommended `xgqueued --journal-sync` cadence (the same Young formula
//! applied to the daemon's write-ahead log), and the cheapest batching of
//! the requested variants.

use std::process::exit;
use xg_cluster::FailureModel;
use xg_costmodel::{
    best_allreduce_algo, parse_machine, preset, CollectiveShape, MachineModel, Placement,
    PRESET_NAMES,
};
use xg_sim::load_deck;

/// Predicted-best str-phase AllReduce algorithm for one member on `grid`:
/// the same cost-model call `DistTopology` makes at topology build time,
/// fed the nv-communicator membership (ranks stride by `n2`) and the fused
/// message size (all moments packed into one buffer).
fn predicted_str_algo(
    input: &xg_sim::CgyroInput,
    grid: xg_tensor::ProcGrid,
    machine: &MachineModel,
) -> String {
    if grid.n1 <= 1 {
        // The nv communicator is a singleton: no str collective at all.
        return "-".into();
    }
    let d = input.dims();
    let sections = if input.beta_e > 0.0 { 3 } else { 2 };
    let nt_loc = d.nt.div_ceil(grid.n2);
    let bytes = (sections * d.nc * nt_loc * 16) as u64;
    let shape = CollectiveShape::from_members(
        &grid.row_members(0),
        Placement { ranks_per_node: machine.ranks_per_node },
    );
    best_allreduce_algo(machine, shape, bytes).to_string()
}

fn usage() -> ! {
    eprintln!(
        "usage: xgplan --deck input.cgyro [--machine FILE|PRESET] [--variants N]\n\
         \u{20}                [--nodes N] [--reports R] [--mtbf-hours H] [--restart-s S]\n\
         \u{20}                [--journal-fsync-ms MS] [--submit-rate-hz HZ] [--profile FILE]\n\
         \u{20}                [--kernel-tune] [--decomp FILE]\n\
         \u{20}  --decomp:     write the searched decomposition (grid + coll cuts)\n\
         \u{20}                to FILE, loadable by `xgyro --decomp`\n\
         \u{20}  --profile:    Prometheus scrape of a measured run (XGYRO_OBS=1);\n\
         \u{20}                printed as measured-vs-predicted phase time\n\
         \u{20}  --kernel-tune: sweep the collision-kernel autotuner (predicted on\n\
         \u{20}                the modeled machine vs measured on this host)\n\
         \u{20}  --mtbf-hours: single-node MTBF in hours (default ~52000, a\n\
         \u{20}                9000-node system failing every ~6 hours)\n\
         \u{20}  --restart-s:  restart/requeue cost in seconds (default 600)\n\
         \u{20}  --journal-fsync-ms: one journal fsync's cost in ms (default 5);\n\
         \u{20}                sizes the recommended xgqueued --journal-sync\n\
         \u{20}  --submit-rate-hz: campaign submit arrival rate (default 10)\n\
         \u{20}  --hit-rate:   expected artifact-cache hit rate in [0,1] (default 0);\n\
         \u{20}                scales campaign ETTS by the missing fraction\n\
         presets: {}",
        PRESET_NAMES.join(", ")
    );
    exit(2)
}

fn main() {
    let mut deck_path = None;
    let mut machine: Option<MachineModel> = None;
    let mut variants = 8usize;
    let mut nodes: Option<usize> = None;
    let mut reports = 10usize;
    let mut mtbf_hours: Option<f64> = None;
    let mut restart_s = 600.0f64;
    let mut journal_fsync_ms = 5.0f64;
    let mut submit_rate_hz = 10.0f64;
    let mut profile: Option<String> = None;
    let mut kernel_tune = false;
    let mut decomp_out: Option<String> = None;
    let mut hit_rate = 0.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deck" => deck_path = Some(it.next().unwrap_or_else(|| usage())),
            "--machine" => {
                let v = it.next().unwrap_or_else(|| usage());
                machine = Some(match preset(&v) {
                    Some(m) => m,
                    None => match std::fs::read_to_string(&v) {
                        Ok(text) => parse_machine(&text).unwrap_or_else(|e| {
                            eprintln!("xgplan: {e}");
                            exit(1);
                        }),
                        Err(e) => {
                            eprintln!("xgplan: '{v}' is neither a preset nor a readable file: {e}");
                            exit(1);
                        }
                    },
                });
            }
            "--variants" => {
                variants = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--nodes" => {
                nodes = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--reports" => {
                reports = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--mtbf-hours" => {
                mtbf_hours =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--restart-s" => {
                restart_s = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--journal-fsync-ms" => {
                journal_fsync_ms =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--submit-rate-hz" => {
                submit_rate_hz =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--profile" => profile = Some(it.next().unwrap_or_else(|| usage())),
            "--hit-rate" => {
                hit_rate = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--kernel-tune" => kernel_tune = true,
            "--decomp" => decomp_out = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let deck_path = deck_path.unwrap_or_else(|| usage());
    let input = load_deck(std::path::Path::new(&deck_path)).unwrap_or_else(|e| {
        eprintln!("xgplan: {e}");
        exit(1);
    });
    let machine = machine.unwrap_or_else(MachineModel::frontier_like);
    let policy = xg_cluster::SchedulePolicy::production();

    let d = input.dims();
    println!(
        "deck: nc={} nv={} nt={}  cmat={:.3} TB  key={:#018x}",
        d.nc,
        d.nv,
        d.nt,
        xg_sim::cmat_total_bytes(&input) as f64 / 1e12,
        input.cmat_key()
    );
    println!(
        "machine: {} ({} ranks/node, {:.1} GB usable/rank)",
        machine.name,
        machine.ranks_per_node,
        machine.usable_mem_per_rank() as f64 / 1e9
    );

    if kernel_tune {
        print_kernel_tune_sweep(d.nv, &machine);
    }

    let Some(single) = xg_cluster::min_nodes(&input, 1, &machine, 4096) else {
        println!("this deck does not fit on the machine at any allocation up to 4096 nodes");
        exit(1);
    };
    println!(
        "\nminimum single-simulation allocation: {} nodes ({} ranks, grid {}x{}, {:.1} GB/rank)",
        single.nodes,
        single.ranks,
        single.grid.n1,
        single.grid.n2,
        single.per_rank_bytes as f64 / 1e9
    );

    let nodes = nodes.unwrap_or(single.nodes);
    if mtbf_hours.is_some_and(|h| h <= 0.0 || h.is_nan()) {
        eprintln!("xgplan: --mtbf-hours must be positive");
        exit(1);
    }
    if restart_s < 0.0 || restart_s.is_nan() {
        eprintln!("xgplan: --restart-s must be non-negative");
        exit(1);
    }
    if journal_fsync_ms <= 0.0 || journal_fsync_ms.is_nan() {
        eprintln!("xgplan: --journal-fsync-ms must be positive");
        exit(1);
    }
    if submit_rate_hz < 0.0 || submit_rate_hz.is_nan() {
        eprintln!("xgplan: --submit-rate-hz must be non-negative");
        exit(1);
    }
    if !(0.0..=1.0).contains(&hit_rate) {
        eprintln!("xgplan: --hit-rate must be in [0, 1]");
        exit(1);
    }
    let fm = FailureModel {
        node_mtbf_s: mtbf_hours
            .map(|h| h * 3600.0)
            .unwrap_or(FailureModel::frontier_like().node_mtbf_s),
        restart_s,
    };
    println!(
        "\nfailure model: node MTBF {:.0} h, job MTBF on {} nodes {:.1} h, restart {:.0} s",
        fm.node_mtbf_s / 3600.0,
        nodes,
        fm.job_mtbf(nodes) / 3600.0,
        fm.restart_s
    );
    // The daemon's journal faces the same checkpoint trade-off as the
    // simulation, scaled down: price its fsync cadence with the same Young
    // formula. The daemon lives on one node, so its MTBF is the node's.
    let jsp = xg_cluster::journal_sync_plan(
        submit_rate_hz,
        journal_fsync_ms / 1000.0,
        fm.node_mtbf_s,
    );
    println!(
        "journal sync plan: at {:.1} submits/s and {:.1} ms/fsync, Young cadence {:.0} s \
         -> xgqueued --journal-sync {} ({:.1} fsyncs/h, E[lost appends per crash] {:.1}; \
         --journal-sync 1 loses none)",
        jsp.append_rate_hz,
        jsp.fsync_s * 1e3,
        jsp.tau_s,
        jsp.sync_every,
        jsp.fsyncs_per_hour,
        jsp.expected_lost_appends
    );
    println!("\nensemble forecast on {nodes} nodes ({reports} reporting steps):");
    println!(
        "  k     feasible   s/report   speedup    ETTS(h)   ETTS-speedup   unbal-ETTS   cmat-saved(TB)   str-reduce"
    );
    let mut sweep_k = None;
    let mut last_etts: Option<(usize, f64)> = None;
    let mut chosen_dp: Option<xg_cluster::DecompPlan> = None;
    for k in [1usize, 2, 4, 8, 16, 32] {
        if k > variants.max(1) * 4 {
            break;
        }
        match xg_cluster::diagnose(&input, k, nodes, &machine, false) {
            Ok(p) => {
                let xg = xg_cluster::simulate_xgyro(&input, p.grid, k, nodes, &machine, &policy);
                let cg = xg_cluster::simulate_cgyro_sequential(
                    &input, single.grid, k, nodes, &machine, &policy,
                );
                // Expected time-to-solution: the k-member job checkpoints k
                // member images and fails k× as often as one simulation's
                // allocation would; the sequential baseline runs k separate
                // k=1 jobs on the same nodes.
                let xg_etts = xg_cluster::expected_time_to_solution(
                    &input,
                    k,
                    nodes,
                    reports as f64 * xg.total(),
                    &machine,
                    &fm,
                );
                let cg_etts_s = k as f64
                    * xg_cluster::expected_time_to_solution(
                        &input,
                        1,
                        nodes,
                        reports as f64 * cg.total() / k as f64,
                        &machine,
                        &fm,
                    )
                    .etts_s;
                // Balanced-vs-unbalanced ETTS delta: what the searched
                // coll-cut layout buys at this k (negative = faster; "="
                // when the search kept the balanced split).
                let dp = xg_cluster::plan_decomposition(&input, k, nodes, &machine, &policy).ok();
                let unbal = match &dp {
                    Some(dp) if dp.is_unbalanced() => {
                        let u = xg_cluster::expected_time_to_solution(
                            &input,
                            k,
                            nodes,
                            reports as f64 * dp.step_chosen_s,
                            &machine,
                            &fm,
                        );
                        format!("{:+.1}%", 100.0 * (u.etts_s / xg_etts.etts_s - 1.0))
                    }
                    _ => "=".to_string(),
                };
                println!(
                    "  {:<5} {:>8}   {:>8.1}   {:>7.2}x   {:>8.2}   {:>11.2}x   {:>10}   {:>14.3}   {}",
                    k,
                    "yes",
                    xg.total(),
                    cg.total() / xg.total(),
                    xg_etts.etts_s / 3600.0,
                    cg_etts_s / xg_etts.etts_s,
                    unbal,
                    xg_costmodel::memory::cmat_saved_bytes(k, d) as f64 / 1e12,
                    predicted_str_algo(&input, p.grid, &machine)
                );
                sweep_k = Some((k, reports as f64 * xg.total()));
                last_etts = Some((k, xg_etts.etts_s));
                if let Some(dp) = dp {
                    chosen_dp = Some(dp);
                }
            }
            Err(e) => println!("  {:<5} no ({}): {}", k, e.kind(), e),
        }
    }

    if hit_rate > 0.0 {
        if let Some((k, etts_s)) = last_etts {
            // Hits complete at admission (a manifest lookup, not a run), so
            // the campaign's expected compute scales by the miss fraction.
            let adjusted = xg_costmodel::cache_adjusted_etts(etts_s, hit_rate);
            println!(
                "\nresult cache at {:.0}% hit rate (xgqueued --artifacts): expected k={k} \
                 campaign ETTS {:.2} h -> {:.2} h (only the {:.0}% missing fraction executes)",
                100.0 * hit_rate,
                etts_s / 3600.0,
                adjusted / 3600.0,
                100.0 * (1.0 - hit_rate)
            );
        }
    }

    if let Some(dp) = &chosen_dp {
        let k = dp.decomposition.k;
        let bal_etts = xg_cluster::expected_time_to_solution(
            &input, k, nodes, reports as f64 * dp.step_balanced_s, &machine, &fm,
        );
        let cho_etts = xg_cluster::expected_time_to_solution(
            &input, k, nodes, reports as f64 * dp.step_chosen_s, &machine, &fm,
        );
        println!(
            "\ndecomposition search (k={k}, grid {}x{}, machine {}):",
            dp.decomposition.grid.n1, dp.decomposition.grid.n2, machine.name
        );
        println!(
            "  balanced: {:>8.1} s/report, ETTS {:>7.2} h",
            dp.step_balanced_s,
            bal_etts.etts_s / 3600.0
        );
        println!(
            "  chosen:   {:>8.1} s/report, ETTS {:>7.2} h   layout {}  ({:.2}x)",
            dp.step_chosen_s,
            cho_etts.etts_s / 3600.0,
            dp.decomposition.label(d.nc),
            dp.speedup()
        );
        if let Some(path) = &decomp_out {
            if let Err(e) = std::fs::write(path, dp.decomposition.to_file_string()) {
                eprintln!("xgplan: cannot write decomposition {path}: {e}");
                exit(1);
            }
            println!("  decomposition written to {path} (run with `xgyro --decomp {path}`)");
        }
    } else if decomp_out.is_some() {
        eprintln!("xgplan: no feasible ensemble — nothing to write to --decomp");
        exit(1);
    }

    if let Some((k, work_s)) = sweep_k {
        println!(
            "\nMTBF sensitivity (k={k}, {nodes} nodes, {:.1} h of failure-free work):",
            work_s / 3600.0
        );
        println!("  node-MTBF(h)   job-MTBF(h)   ckpt-cadence(min)   ETTS(h)   overhead");
        let mtbfs: Vec<f64> =
            [0.1, 0.3, 1.0, 3.0, 10.0].iter().map(|f| f * fm.node_mtbf_s).collect();
        for row in
            xg_cluster::mtbf_sweep(&input, k, nodes, work_s, &machine, fm.restart_s, &mtbfs)
        {
            println!(
                "  {:>12.0}   {:>11.1}   {:>17.1}   {:>7.2}   {:>7.1}%",
                row.node_mtbf_s / 3600.0,
                row.job_mtbf_s / 3600.0,
                row.tau_s / 60.0,
                row.etts_s / 3600.0,
                row.overhead * 100.0
            );
        }
    }

    match xg_cluster::optimize_campaign(&input, variants, nodes, reports, &machine, &policy) {
        Some(plan) => {
            let best = plan.best();
            println!(
                "\ncheapest batching for {variants} variants x {reports} reports: \
                 {} batch(es) of k={} -> {:.1} node-hours",
                best.batches, best.k, best.node_hours
            );
            if let Some(base) = plan.baseline() {
                println!(
                    "  (sequential baseline: {:.1} node-hours; saving {:.0}%)",
                    base.node_hours,
                    100.0 * (1.0 - best.node_hours / base.node_hours)
                );
            }
        }
        None => println!("\nno feasible batching for {variants} variants on {nodes} nodes"),
    }

    if let Some(path) = profile {
        print_measured_profile(&path);
    }
}

/// `--kernel-tune`: for the deck's `nv`, sweep ensemble sizes and print the
/// roofline-predicted kernel on the modeled machine next to the kernel the
/// measured autotuner picks on this host — the same choice the topologies
/// resolve (and `xgyro --trace` stamps into trace metadata) at build time.
fn print_kernel_tune_sweep(nv: usize, machine: &MachineModel) {
    let l2_kb = xg_linalg::l2_cache_kb();
    println!(
        "\ncollision-kernel tuning sweep (nv={nv}, host probe {}, host L2 {l2_kb} KB):",
        xg_linalg::selected_level()
    );
    println!(
        "  k     predicted[{}]   pred-us/apply   tuned[this host]   meas-us/apply",
        machine.name
    );
    for k in [1usize, 2, 4, 8, 16] {
        let predicted =
            xg_costmodel::predicted_kernel(machine, nv, k, l2_kb, &xg_linalg::SimdLevel::ALL);
        let pred_s = xg_costmodel::predicted_kernel_time(machine, nv, k, predicted, l2_kb);
        let tuned = xg_costmodel::tune_collision_kernel(nv, k);
        let meas_ns = xg_costmodel::measure_kernel_ns(tuned, nv, k, 3);
        println!(
            "  {k:<5} {:>15}   {:>13.2} {:>18}   {:>13.2}",
            predicted.to_string(),
            pred_s * 1e6,
            tuned.to_string(),
            meas_ns as f64 / 1e3
        );
    }
}

/// Render a measured per-phase profile from a Prometheus scrape next to the
/// forecast above: `xgyro_phase_busy_seconds_{sum,count}` and
/// `xgyro_phase_comm_wait_seconds_sum`, per `phase` label.
fn print_measured_profile(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("xgplan: cannot read profile {path}: {e}");
        exit(1);
    });
    let samples = xg_obs::expo::parse_prometheus(&text).unwrap_or_else(|e| {
        eprintln!("xgplan: profile {path} is not valid Prometheus text: {e}");
        exit(1);
    });
    // phase → (spans, busy seconds, comm-wait seconds).
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    fn row<'a>(
        rows: &'a mut Vec<(String, f64, f64, f64)>,
        phase: &str,
    ) -> &'a mut (String, f64, f64, f64) {
        if let Some(pos) = rows.iter().position(|(p, ..)| p == phase) {
            return &mut rows[pos];
        }
        rows.push((phase.to_string(), 0.0, 0.0, 0.0));
        rows.last_mut().unwrap()
    }
    for s in &samples {
        let Some(phase) = s.label("phase") else { continue };
        match s.name.as_str() {
            "xgyro_phase_busy_seconds_count" => row(&mut rows, phase).1 += s.value,
            "xgyro_phase_busy_seconds_sum" => row(&mut rows, phase).2 += s.value,
            "xgyro_phase_comm_wait_seconds_sum" => row(&mut rows, phase).3 += s.value,
            _ => {}
        }
    }
    rows.retain(|(_, spans, ..)| *spans > 0.0);
    if rows.is_empty() {
        println!(
            "\nmeasured profile {path}: no phase timings (run recorded with XGYRO_OBS=0?)"
        );
        return;
    }
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    let total_busy: f64 = rows.iter().map(|r| r.2).sum();
    println!(
        "\nmeasured profile ({path}) — compare with the predicted s/report column above:"
    );
    println!("  phase       spans    busy(s)  comm-wait(s)  wait%  busy-share");
    for (phase, spans, busy, wait) in &rows {
        println!(
            "  {phase:<8} {spans:>8.0} {busy:>10.3} {wait:>13.3} {:>5.1}% {:>10.1}%",
            if *busy > 0.0 { 100.0 * wait / busy } else { 0.0 },
            if total_busy > 0.0 { 100.0 * busy / total_busy } else { 0.0 },
        );
    }
}
