//! `xgreplay` — replay a recorded communication trace (from
//! `xgyro --trace FILE`) against a machine model, with optional injected
//! compute jitter, reporting makespan, wait time and the per-phase
//! breakdown.
//!
//! ```text
//! xgreplay --trace FILE [--machine FILE|PRESET] [--jitter-us N]
//! xgreplay --artifacts DIR --hash XGD1-HASH [--machine FILE|PRESET] [--jitter-us N]
//! ```
//!
//! The second form opens the trace straight out of an artifact store (the
//! directory `xgqueued --artifacts` publishes into): the deck hash names a
//! manifest, the manifest points at the trace blob, and replay proceeds on
//! those bytes — no intermediate CSV file needed.

use std::process::exit;
use xg_costmodel::{parse_machine, preset, MachineModel, Placement};

fn usage() -> ! {
    eprintln!(
        "usage: xgreplay --trace FILE [--machine FILE|PRESET] [--jitter-us N]\n\
         \u{20}      xgreplay --artifacts DIR --hash XGD1-HASH [--machine FILE|PRESET] \
         [--jitter-us N]"
    );
    exit(2)
}

/// Resolve the trace CSV for a deck hash from an artifact store: manifest
/// lookup, then the trace object it points at.
fn trace_from_store(dir: &str, hash: &str) -> String {
    let store = xg_artifact::ArtifactStore::open(dir).unwrap_or_else(|e| {
        eprintln!("xgreplay: cannot open artifact store {dir}: {e}");
        exit(1);
    });
    let hash: xg_artifact::DeckHash = hash.parse().unwrap_or_else(|e| {
        eprintln!("xgreplay: {e}");
        exit(1);
    });
    let manifest = store
        .lookup(hash)
        .unwrap_or_else(|e| {
            eprintln!("xgreplay: artifact lookup failed: {e}");
            exit(1);
        })
        .unwrap_or_else(|| {
            eprintln!("xgreplay: no manifest for {hash} in {dir}");
            exit(1);
        });
    let Some(trace_object) = manifest.trace_object else {
        eprintln!("xgreplay: manifest {hash} has no trace (run captured without tracing)");
        exit(1);
    };
    let bytes = store.get_object(trace_object).unwrap_or_else(|e| {
        eprintln!("xgreplay: cannot read trace object of {hash}: {e}");
        exit(1);
    });
    String::from_utf8(bytes).unwrap_or_else(|_| {
        eprintln!("xgreplay: trace object of {hash} is not valid UTF-8");
        exit(1);
    })
}

fn main() {
    let mut trace_path = None;
    let mut artifacts_dir: Option<String> = None;
    let mut hash: Option<String> = None;
    let mut machine: Option<MachineModel> = None;
    let mut jitter_us = 0.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => trace_path = Some(it.next().unwrap_or_else(|| usage())),
            "--artifacts" => artifacts_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--hash" => hash = Some(it.next().unwrap_or_else(|| usage())),
            "--machine" => {
                let v = it.next().unwrap_or_else(|| usage());
                machine = Some(match preset(&v) {
                    Some(m) => m,
                    None => {
                        let text = std::fs::read_to_string(&v).unwrap_or_else(|e| {
                            eprintln!("xgreplay: cannot read machine file {v}: {e}");
                            exit(1);
                        });
                        parse_machine(&text).unwrap_or_else(|e| {
                            eprintln!("xgreplay: {e}");
                            exit(1);
                        })
                    }
                });
            }
            "--jitter-us" => {
                jitter_us =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let text = match (trace_path, artifacts_dir, hash) {
        (Some(path), None, None) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("xgreplay: cannot read {path}: {e}");
            exit(1);
        }),
        (None, Some(dir), Some(h)) => trace_from_store(&dir, &h),
        _ => usage(),
    };
    let traces = xg_comm::traces_from_csv(&text).unwrap_or_else(|e| {
        eprintln!("xgreplay: {e}");
        exit(1);
    });
    let machine = machine.unwrap_or_else(MachineModel::frontier_like);
    let placement = Placement { ranks_per_node: machine.ranks_per_node };
    report_kernel_meta(&text, &machine);
    report_decomp_meta(&text, &machine);

    // Deterministic per-(rank, op) jitter in [0, jitter_us].
    let jitter = jitter_us * 1e-6;
    let compute = move |r: usize, i: usize| {
        let h = (r as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((i as u64).wrapping_mul(0xBF58476D1CE4E5B9));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        jitter * u
    };

    match xg_cluster::replay(&traces, &machine, placement, compute) {
        Ok(out) => {
            println!(
                "replayed {} ranks on {}: makespan {:.3} ms, total wait {:.3} ms",
                traces.len(),
                machine.name,
                out.makespan() * 1e3,
                out.total_wait() * 1e3
            );
            println!("\nper-(phase, op) critical-path seconds:");
            for (phase, cat, secs) in out.breakdown.iter() {
                println!("  {phase:<8} {cat:<16} {:.6}", secs);
            }

            // Time-weighted phase summary from the measured elapsed_us
            // column (v2 traces recorded with timing on): where the
            // communication wall time actually went, vs. the modeled
            // critical path above.
            let mut rollup: Vec<(String, u64, u64, u64)> = Vec::new();
            for r in traces.iter().flatten() {
                match rollup.iter_mut().find(|(p, ..)| *p == r.phase) {
                    Some((_, ops, bytes, us)) => {
                        *ops += 1;
                        *bytes += r.bytes;
                        *us += r.elapsed_us;
                    }
                    None => rollup.push((r.phase.clone(), 1, r.bytes, r.elapsed_us)),
                }
            }
            rollup.sort_by(|a, b| b.3.cmp(&a.3).then_with(|| a.0.cmp(&b.0)));
            let measured_total: u64 = rollup.iter().map(|r| r.3).sum();
            if measured_total == 0 {
                println!(
                    "\nmeasured wait: none recorded (trace captured with XGYRO_OBS=0 \
                     or in the pre-timing format)"
                );
            } else {
                println!("\nmeasured wait by phase (all ranks, time-weighted):");
                println!("  phase       ops        bytes   wait(ms)  share");
                for (phase, ops, bytes, us) in &rollup {
                    println!(
                        "  {phase:<8} {ops:>6} {bytes:>12} {:>10.3} {:>5.1}%",
                        *us as f64 / 1e3,
                        100.0 * *us as f64 / measured_total as f64
                    );
                }
            }

            // str-phase reduction shape: fused runs show fewer, fatter
            // collectives (one packed AllReduce per RK stage) than unfused
            // ones, so calls and bytes/call make the algorithm visible
            // straight from the trace.
            let rank0 = traces.first().map(Vec::as_slice).unwrap_or(&[]);
            let str_reductions: Vec<_> = rank0
                .iter()
                .filter(|r| {
                    r.phase == "str"
                        && matches!(
                            r.op,
                            xg_comm::OpKind::AllReduce | xg_comm::OpKind::AllGather
                        )
                })
                .collect();
            if !str_reductions.is_empty() {
                let calls = str_reductions.len();
                let bytes: u64 = str_reductions.iter().map(|r| r.bytes).sum();
                println!(
                    "\nstr-phase reductions (rank 0): {calls} calls, {bytes} bytes, \
                     {:.0} bytes/call",
                    bytes as f64 / calls as f64
                );
            }
        }
        Err(e) => {
            eprintln!("xgreplay: {e}");
            exit(1);
        }
    }
}

/// Report predicted-vs-chosen collision kernel from the trace's `#kernel=`
/// metadata (written by `xgyro --trace`): the chosen kernel was measured on
/// the capturing host, the prediction is this machine model's roofline over
/// the same candidates.
fn report_kernel_meta(text: &str, machine: &MachineModel) {
    let meta = xg_comm::trace_meta(text);
    let get = |key: &str| meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str());
    let Some(chosen) = get("kernel") else { return };
    let shape = get("kernel_nv")
        .zip(get("kernel_k"))
        .and_then(|(nv, k)| Some((nv.parse::<usize>().ok()?, k.parse::<usize>().ok()?)));
    match shape {
        Some((nv, k)) => {
            let l2_kb = xg_linalg::l2_cache_kb();
            let predicted = xg_costmodel::predicted_kernel(
                machine,
                nv,
                k,
                l2_kb,
                &xg_linalg::SimdLevel::ALL,
            );
            let agree = chosen.parse::<xg_costmodel::KernelChoice>() == Ok(predicted);
            println!(
                "collision kernel (nv={nv}, k={k}): chosen {chosen} (measured on capture \
                 host{}), predicted {predicted} on {} (L2 {l2_kb} KB){}",
                get("simd_level").map(|l| format!(", probe {l}")).unwrap_or_default(),
                machine.name,
                if agree { " — agree" } else { "" }
            );
        }
        None => println!("collision kernel: chosen {chosen} (trace has no shape metadata)"),
    }
}

/// Report the decomposition the run actually used, from the trace's
/// `#decomp*=` metadata (written by `xgyro --trace`), next to the layout
/// this machine model's capacity-weighted search would predict — and, when
/// the recorded layout is unbalanced, its rebalance payoff: rows moved
/// versus the balanced split and the modeled coll-phase gate speedup
/// (slowest position's rows/speed, balanced over chosen).
fn report_decomp_meta(text: &str, machine: &MachineModel) {
    let meta = xg_comm::trace_meta(text);
    let get = |key: &str| meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str());
    let Some(label) = get("decomp") else { return };
    let shape = (|| {
        Some((
            get("decomp_nc")?.parse::<usize>().ok()?,
            get("decomp_k")?.parse::<usize>().ok()?,
            get("decomp_n1")?.parse::<usize>().ok()?,
            get("decomp_n2")?.parse::<usize>().ok()?,
        ))
    })();
    let Some((nc, k, n1, n2)) = shape else {
        println!("decomposition: recorded layout {label} (trace has no shape metadata)");
        return;
    };
    let grid = xg_tensor::ProcGrid::new(n1, n2);
    let speeds = xg_cluster::coll_position_speeds(grid, k, machine);
    let uniform = speeds.iter().all(|&s| s == speeds[0]);
    let predicted = if uniform {
        "balanced".to_string()
    } else {
        let cuts = xg_tensor::RaggedDecomp::weighted(nc, &speeds).counts();
        xg_tensor::Decomposition { grid, k, coll_cuts: Some(cuts) }.label(nc)
    };
    println!(
        "decomposition (nc={nc}, k={k}, grid {n1}x{n2}): recorded {label}, predicted \
         {predicted} on {}{}",
        machine.name,
        if predicted == label { " — agree" } else { "" }
    );
    // Rebalance payoff of the recorded layout, judged on this machine model.
    if let Some(cuts_text) = label.strip_prefix("coll:") {
        let cuts: Vec<usize> =
            cuts_text.split(',').filter_map(|t| t.parse().ok()).collect();
        if cuts.len() == k * n1 && cuts.iter().sum::<usize>() == nc {
            let moved = xg_cluster::moved_rows_vs_balanced(&cuts);
            let balanced = xg_tensor::RaggedDecomp::balanced(nc, k * n1);
            let gate = |rows: &dyn Fn(usize) -> usize| {
                (0..k * n1)
                    .map(|p| rows(p) as f64 / speeds[p])
                    .fold(0.0f64, f64::max)
            };
            let bal_gate = gate(&|p| balanced.count(p));
            let cho_gate = gate(&|p| cuts[p]);
            println!(
                "rebalance payoff: {moved} of {nc} coll rows moved vs balanced; modeled \
                 coll-gate speedup {:.2}x on {}",
                if cho_gate > 0.0 { bal_gate / cho_gate } else { 1.0 },
                machine.name
            );
        }
    }
}
