//! Figure-2-style report tables.

use crate::simtime::ScenarioReport;

/// The categories shown in the Figure-2 reproduction, in display order.
pub const CATEGORIES: [(&str, &str); 7] = [
    ("str", "comm"),
    ("str", "compute"),
    ("nl", "comm"),
    ("nl", "compute"),
    ("coll", "comm"),
    ("coll", "compute"),
    ("report", "overhead"),
];

/// Render scenarios side by side as an aligned text table (seconds per
/// reporting step), with totals and the derived headline ratios.
pub fn figure2_table(scenarios: &[&ScenarioReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<16}", "category"));
    for s in scenarios {
        out.push_str(&format!("{:>24}", s.label));
    }
    out.push('\n');
    for (phase, cat) in CATEGORIES {
        out.push_str(&format!("{:<16}", format!("{phase} {cat}")));
        for s in scenarios {
            out.push_str(&format!("{:>24.1}", s.breakdown.get(phase, cat)));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<16}", "TOTAL"));
    for s in scenarios {
        out.push_str(&format!("{:>24.1}", s.total()));
    }
    out.push('\n');
    if scenarios.len() == 2 {
        let (a, b) = (scenarios[0], scenarios[1]);
        out.push_str(&format!(
            "\nspeedup (total):    {:.2}x\nstr-comm ratio:     {:.2}x\n",
            a.total() / b.total(),
            a.str_comm() / b.str_comm()
        ));
    }
    out
}

/// Render a scenario as a CGYRO-style `out.cgyro.timing` log: one row per
/// reporting step with per-phase seconds — the same shape as the logs the
/// paper publishes as its data artifact ("Complete simulation logs can be
/// found in \[5\]").
///
/// Columns: `TIME  str  str_comm  nl  nl_comm  coll  coll_comm  io  TOTAL`,
/// with `str`/`nl`/`coll` the compute components.
pub fn cgyro_timing_log(s: &ScenarioReport, reports: usize, dt_report: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {} on {} nodes (grid {}x{}, k={})", s.label, s.nodes, s.grid.n1, s.grid.n2, s.k);
    let _ = writeln!(
        out,
        "{:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "TIME", "str", "str_comm", "nl", "nl_comm", "coll", "coll_comm", "io", "TOTAL"
    );
    for r in 1..=reports {
        let t = r as f64 * dt_report;
        let _ = writeln!(
            out,
            "{:>8.2} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            t,
            s.breakdown.get("str", "compute"),
            s.breakdown.get("str", "comm"),
            s.breakdown.get("nl", "compute"),
            s.breakdown.get("nl", "comm"),
            s.breakdown.get("coll", "compute"),
            s.breakdown.get("coll", "comm"),
            s.breakdown.get("report", "overhead"),
            s.total()
        );
    }
    out
}

/// Parse the total column back out of a [`cgyro_timing_log`] (used by
/// tests and by downstream tooling that scrapes production logs the same
/// way).
pub fn parse_timing_totals(log: &str) -> Vec<f64> {
    log.lines()
        .filter(|l| !l.starts_with('#') && !l.trim_start().starts_with("TIME"))
        .filter_map(|l| l.split_whitespace().last()?.parse().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simtime::{simulate_cgyro_sequential, simulate_xgyro, SchedulePolicy};
    use xg_costmodel::MachineModel;
    use xg_sim::CgyroInput;
    use xg_tensor::ProcGrid;

    #[test]
    fn timing_log_roundtrips_totals() {
        let input = CgyroInput::nl03c_like();
        let m = MachineModel::frontier_like();
        let pol = SchedulePolicy::production();
        let xg = simulate_xgyro(&input, ProcGrid::new(2, 16), 8, 32, &m, &pol);
        let log = cgyro_timing_log(&xg, 3, 81.0 / 3.0);
        assert!(log.contains("str_comm"));
        assert!(log.lines().count() >= 5);
        let totals = parse_timing_totals(&log);
        assert_eq!(totals.len(), 3);
        for t in totals {
            assert!((t - xg.total()).abs() < 0.05 * xg.total());
        }
    }

    #[test]
    fn table_renders_scenarios() {
        let input = CgyroInput::nl03c_like();
        let m = MachineModel::frontier_like();
        let pol = SchedulePolicy::production();
        let cg = simulate_cgyro_sequential(&input, ProcGrid::new(16, 16), 8, 32, &m, &pol);
        let xg = simulate_xgyro(&input, ProcGrid::new(2, 16), 8, 32, &m, &pol);
        let t = figure2_table(&[&cg, &xg]);
        assert!(t.contains("str comm"));
        assert!(t.contains("TOTAL"));
        assert!(t.contains("speedup"));
        assert!(t.contains("XGYRO k=8"));
    }
}
