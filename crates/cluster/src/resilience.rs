//! Recovery-cost accounting: MTBF-aware expected time-to-solution.
//!
//! Sharing `cmat` lets k simulations run as one job — but that job now
//! occupies k× the nodes, so its mean time between failures is k× worse
//! than one simulation's. An honest ensemble-vs-sequential comparison must
//! therefore price checkpoint/restart overhead, not just per-step speed.
//! This module implements the standard first-order model:
//!
//! * **Young's interval** `τ = √(2 δ M) − δ`: the checkpoint cadence
//!   minimizing expected overhead for checkpoint write time `δ` and job
//!   MTBF `M`;
//! * **Daly's expected runtime** for work `W` at cadence `τ`:
//!   `E[T] = e^{R/M} · M · (e^{(τ+δ)/M} − 1) · W/τ`, where `R` is the
//!   restart cost — exact for exponentially distributed failures under the
//!   first-order rework approximation;
//! * a checkpoint-size model for an XGYRO ensemble (k member images of the
//!   full distribution function, drained at node injection bandwidth).
//!
//! `xgplan` folds this into its forecast so the reported speedup is an
//! expected-time-to-solution ratio, not a failure-free fantasy.

use xg_costmodel::MachineModel;
use xg_sim::CgyroInput;

/// Failure characteristics of the machine and scheduler.
#[derive(Clone, Copy, Debug)]
pub struct FailureModel {
    /// Mean time between failures of a *single node*, seconds.
    pub node_mtbf_s: f64,
    /// Fixed cost of a restart (requeue, relaunch, re-read checkpoint),
    /// seconds.
    pub restart_s: f64,
}

impl FailureModel {
    /// Leadership-class defaults: ~6 node-years MTBF per node (a 9000-node
    /// system failing every ~6 hours), 10-minute restart.
    pub fn frontier_like() -> Self {
        Self { node_mtbf_s: 1.9e8, restart_s: 600.0 }
    }

    /// Job-level MTBF on `nodes` nodes (failures are independent, so rates
    /// add).
    pub fn job_mtbf(&self, nodes: usize) -> f64 {
        assert!(nodes > 0, "a job needs at least one node");
        self.node_mtbf_s / nodes as f64
    }
}

/// Young's optimal checkpoint interval for write cost `delta_s` and job
/// MTBF `mtbf_s` (both seconds). Degenerates gracefully: never below
/// `delta_s` (checkpointing more often than a checkpoint takes is
/// self-defeating).
pub fn young_interval(delta_s: f64, mtbf_s: f64) -> f64 {
    assert!(delta_s >= 0.0 && mtbf_s > 0.0);
    ((2.0 * delta_s * mtbf_s).sqrt() - delta_s).max(delta_s)
}

/// Daly's expected wall time to complete `work_s` seconds of failure-free
/// work, checkpointing every `tau_s` at cost `delta_s`, with job MTBF
/// `mtbf_s` and restart cost `restart_s`.
pub fn expected_runtime(
    work_s: f64,
    tau_s: f64,
    delta_s: f64,
    mtbf_s: f64,
    restart_s: f64,
) -> f64 {
    assert!(work_s >= 0.0 && tau_s > 0.0 && mtbf_s > 0.0);
    let m = mtbf_s;
    let segments = work_s / tau_s;
    (restart_s / m).exp() * m * (((tau_s + delta_s) / m).exp_m1()) * segments
}

/// Bytes of one coherent XGYRO ensemble checkpoint: k member images of the
/// full distribution function (complex f64 per `(nc, nv, nt)` point).
pub fn ensemble_checkpoint_bytes(input: &CgyroInput, k: usize) -> u64 {
    let d = input.dims();
    (d.nc * d.nv * d.nt) as u64 * 16 * k as u64
}

/// Seconds to write one ensemble checkpoint from `nodes` nodes: the images
/// drain through each node's injection bandwidth in parallel.
pub fn checkpoint_write_s(bytes: u64, nodes: usize, machine: &MachineModel) -> f64 {
    assert!(nodes > 0);
    bytes as f64 / (machine.nic_bw * nodes as f64)
}

/// MTBF-aware expected time-to-solution for one scenario.
#[derive(Clone, Copy, Debug)]
pub struct EttsReport {
    /// Failure-free work, seconds.
    pub work_s: f64,
    /// Job MTBF on this allocation, seconds.
    pub job_mtbf_s: f64,
    /// Checkpoint write cost, seconds.
    pub delta_s: f64,
    /// Chosen (Young-optimal) checkpoint cadence, seconds.
    pub tau_s: f64,
    /// Expected wall time including checkpoints, rework and restarts.
    pub etts_s: f64,
}

impl EttsReport {
    /// Fractional overhead of resilience over failure-free execution.
    pub fn overhead(&self) -> f64 {
        if self.work_s == 0.0 {
            return 0.0;
        }
        self.etts_s / self.work_s - 1.0
    }
}

/// Price `work_s` seconds of failure-free work for a k-member ensemble on
/// `nodes` nodes under `fm`, checkpointing at the Young-optimal cadence.
pub fn expected_time_to_solution(
    input: &CgyroInput,
    k: usize,
    nodes: usize,
    work_s: f64,
    machine: &MachineModel,
    fm: &FailureModel,
) -> EttsReport {
    let m = fm.job_mtbf(nodes);
    let delta = checkpoint_write_s(ensemble_checkpoint_bytes(input, k), nodes, machine);
    let tau = young_interval(delta, m).min(work_s.max(delta));
    let etts = expected_runtime(work_s, tau, delta, m, fm.restart_s);
    EttsReport { work_s, job_mtbf_s: m, delta_s: delta, tau_s: tau, etts_s: etts }
}

/// MTBF-aware fsync cadence recommendation for the `xgqueued` journal.
///
/// The journal faces the same trade-off as a simulation checkpoint, three
/// orders of magnitude down: an fsync is the "checkpoint" (cost `δ` =
/// device sync latency), a daemon crash is the "failure" (MTBF `M` = how
/// often the host loses the daemon), and the work at risk is the appends
/// accepted since the last sync. Young's interval prices it identically.
#[derive(Clone, Copy, Debug)]
pub struct JournalSyncReport {
    /// Append arrival rate assumed, records/second.
    pub append_rate_hz: f64,
    /// Per-fsync cost assumed, seconds.
    pub fsync_s: f64,
    /// Daemon MTBF assumed, seconds.
    pub daemon_mtbf_s: f64,
    /// Young-optimal sync cadence, seconds.
    pub tau_s: f64,
    /// Equivalent `--journal-sync N` (fsync every N appends): the appends
    /// that arrive in one cadence, at least 1.
    pub sync_every: u64,
    /// Syncs per hour at the recommended cadence.
    pub fsyncs_per_hour: f64,
    /// Expected acknowledged-but-unsynced appends lost in one crash (the
    /// crash lands uniformly inside a sync window, so half a window's
    /// worth on average).
    pub expected_lost_appends: f64,
}

/// Recommend an fsync cadence for a journal accepting `append_rate_hz`
/// records/second, where one fsync costs `fsync_s` seconds and the daemon's
/// MTBF is `daemon_mtbf_s` seconds.
///
/// With `--journal-sync 1` (the durable default) nothing acknowledged is
/// ever lost, but every append pays `fsync_s`. This function answers "what
/// does relaxing that cost in expectation": the Young-optimal cadence, the
/// equivalent `--journal-sync N`, and the expected number of acknowledged
/// appends a crash would lose at that cadence. `xgplan --journal-fsync-ms`
/// prints it next to the failure model.
pub fn journal_sync_plan(
    append_rate_hz: f64,
    fsync_s: f64,
    daemon_mtbf_s: f64,
) -> JournalSyncReport {
    assert!(
        append_rate_hz >= 0.0 && fsync_s > 0.0 && daemon_mtbf_s > 0.0,
        "append rate must be non-negative, fsync cost and MTBF positive"
    );
    let tau_s = young_interval(fsync_s, daemon_mtbf_s);
    let sync_every = (append_rate_hz * tau_s).floor().max(1.0) as u64;
    // The crash lands uniformly within a sync window: half a window of
    // acknowledged appends is at risk in expectation.
    let expected_lost_appends = append_rate_hz * tau_s / 2.0;
    JournalSyncReport {
        append_rate_hz,
        fsync_s,
        daemon_mtbf_s,
        tau_s,
        sync_every,
        fsyncs_per_hour: 3600.0 / tau_s,
        expected_lost_appends,
    }
}

/// One row of a cadence × MTBF sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepRow {
    /// Node MTBF assumed for this row, seconds.
    pub node_mtbf_s: f64,
    /// Job MTBF on the allocation, seconds.
    pub job_mtbf_s: f64,
    /// Young-optimal cadence, seconds.
    pub tau_s: f64,
    /// Expected time-to-solution, seconds.
    pub etts_s: f64,
    /// Overhead over failure-free work.
    pub overhead: f64,
}

/// Sweep expected time-to-solution across node-MTBF assumptions (same
/// deck, ensemble and allocation), one row per value in `node_mtbfs_s`.
pub fn mtbf_sweep(
    input: &CgyroInput,
    k: usize,
    nodes: usize,
    work_s: f64,
    machine: &MachineModel,
    restart_s: f64,
    node_mtbfs_s: &[f64],
) -> Vec<SweepRow> {
    node_mtbfs_s
        .iter()
        .map(|&node_mtbf_s| {
            let fm = FailureModel { node_mtbf_s, restart_s };
            let r = expected_time_to_solution(input, k, nodes, work_s, machine, &fm);
            SweepRow {
                node_mtbf_s,
                job_mtbf_s: r.job_mtbf_s,
                tau_s: r.tau_s,
                etts_s: r.etts_s,
                overhead: r.overhead(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_mtbf_scales_inversely_with_nodes() {
        let fm = FailureModel { node_mtbf_s: 1e8, restart_s: 60.0 };
        assert_eq!(fm.job_mtbf(1), 1e8);
        assert_eq!(fm.job_mtbf(100), 1e6);
        // The ensemble-size penalty: 8x the nodes, 1/8 the MTBF.
        assert_eq!(fm.job_mtbf(32 * 8), fm.job_mtbf(32) / 8.0);
    }

    #[test]
    fn young_interval_matches_closed_form() {
        let tau = young_interval(100.0, 1e6);
        assert!((tau - ((2.0f64 * 100.0 * 1e6).sqrt() - 100.0)).abs() < 1e-9);
        // Pathological regime: never below the write cost itself.
        assert_eq!(young_interval(100.0, 10.0), 100.0);
    }

    #[test]
    fn expected_runtime_approaches_ideal_as_mtbf_grows() {
        // With an enormous MTBF, E[T] -> W + (W/tau) * delta.
        let w = 1e5;
        let tau = 1e4;
        let delta = 50.0;
        let t = expected_runtime(w, tau, delta, 1e15, 600.0);
        let ideal = w + (w / tau) * delta;
        assert!((t - ideal).abs() / ideal < 1e-3, "{t} vs {ideal}");
        // And grows monotonically as MTBF shrinks.
        let worse = expected_runtime(w, tau, delta, 1e5, 600.0);
        assert!(worse > t);
    }

    #[test]
    fn young_cadence_beats_extreme_cadences() {
        let (w, delta, m, r) = (1e6, 30.0, 2e4, 600.0);
        let tau = young_interval(delta, m);
        let at_young = expected_runtime(w, tau, delta, m, r);
        let too_often = expected_runtime(w, tau / 20.0, delta, m, r);
        let too_rare = expected_runtime(w, tau * 20.0, delta, m, r);
        assert!(at_young < too_often, "{at_young} vs {too_often}");
        assert!(at_young < too_rare, "{at_young} vs {too_rare}");
    }

    #[test]
    fn checkpoint_bytes_scale_with_k() {
        let input = CgyroInput::test_small();
        let one = ensemble_checkpoint_bytes(&input, 1);
        assert_eq!(ensemble_checkpoint_bytes(&input, 8), 8 * one);
        let d = input.dims();
        assert_eq!(one, (d.nc * d.nv * d.nt) as u64 * 16);
    }

    #[test]
    fn etts_reports_are_coherent() {
        let input = CgyroInput::nl03c_like();
        let m = MachineModel::frontier_like();
        let fm = FailureModel::frontier_like();
        let r = expected_time_to_solution(&input, 8, 256, 36.0 * 3600.0, &m, &fm);
        assert!(r.etts_s > r.work_s, "resilience is never free");
        assert!(r.overhead() > 0.0 && r.overhead() < 1.0, "overhead {:.3}", r.overhead());
        assert!(r.tau_s > r.delta_s);
        // Same work on a k=1 allocation (1/8 the nodes): less overhead.
        let r1 = expected_time_to_solution(&input, 1, 32, 36.0 * 3600.0, &m, &fm);
        assert!(r1.overhead() < r.overhead());
    }

    #[test]
    fn journal_sync_plan_is_young_optimal() {
        // 10 Hz submits, 5 ms fsync, daemon dies once a day.
        let r = journal_sync_plan(10.0, 5e-3, 86_400.0);
        assert!((r.tau_s - young_interval(5e-3, 86_400.0)).abs() < 1e-12);
        assert_eq!(r.sync_every, (10.0 * r.tau_s).floor() as u64);
        assert!((r.fsyncs_per_hour - 3600.0 / r.tau_s).abs() < 1e-9);
        assert!((r.expected_lost_appends - 10.0 * r.tau_s / 2.0).abs() < 1e-9);
        // Sanity: ~30 s cadence territory, not sub-second or hours.
        assert!(r.tau_s > 1.0 && r.tau_s < 600.0, "tau {}", r.tau_s);
    }

    #[test]
    fn journal_sync_plan_degenerate_regimes() {
        // A trickle of submits still recommends at least fsync-every-1.
        let slow = journal_sync_plan(0.01, 5e-3, 86_400.0);
        assert_eq!(slow.sync_every, 1);
        // A flakier daemon means a shorter cadence and fewer appends at
        // risk per crash.
        let flaky = journal_sync_plan(10.0, 5e-3, 600.0);
        let steady = journal_sync_plan(10.0, 5e-3, 86_400.0);
        assert!(flaky.tau_s < steady.tau_s);
        assert!(flaky.expected_lost_appends < steady.expected_lost_appends);
        // A costlier fsync pushes the cadence out.
        let slow_disk = journal_sync_plan(10.0, 0.5, 86_400.0);
        assert!(slow_disk.tau_s > steady.tau_s);
    }

    #[test]
    fn sweep_overhead_decreases_with_mtbf() {
        let input = CgyroInput::nl03c_like();
        let m = MachineModel::frontier_like();
        let rows = mtbf_sweep(
            &input,
            8,
            256,
            24.0 * 3600.0,
            &m,
            600.0,
            &[1e7, 1e8, 1e9],
        );
        assert_eq!(rows.len(), 3);
        assert!(rows[0].overhead > rows[1].overhead);
        assert!(rows[1].overhead > rows[2].overhead);
        assert!(rows.iter().all(|r| r.etts_s.is_finite() && r.etts_s > 0.0));
    }
}
