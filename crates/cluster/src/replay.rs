//! Discrete-event replay of communication traces.
//!
//! The closed-form schedule model (`simtime`) prices each collective in
//! isolation; real blocking collectives also absorb **waiting time** when
//! participants arrive desynchronized. This module replays per-rank
//! operation traces (from a functional run, or synthetic) as a
//! discrete-event simulation: a collective starts when its *last*
//! participant arrives and completes after its modeled wire time, so rank
//! clocks capture imbalance amplification — the effect we credit for the
//! paper's larger-than-modeled XGYRO str-communication time (see
//! EXPERIMENTS.md §F2).

use std::collections::HashMap;
use xg_comm::{OpKind, OpRecord};
use xg_costmodel::{op_time, MachineModel, PhaseBreakdown, Placement};

/// Why a replay failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// Ranks disagree about the order/membership of collectives — the
    /// traces would deadlock (rank, op index).
    Deadlock {
        /// Ranks whose next operations can never match.
        stuck_ranks: Vec<usize>,
    },
    /// A record references a member rank with no trace.
    MissingRank(usize),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Deadlock { stuck_ranks } => {
                write!(f, "trace replay deadlocked; stuck ranks: {stuck_ranks:?}")
            }
            ReplayError::MissingRank(r) => write!(f, "trace references unknown rank {r}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Result of a replay.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Per-rank completion time (seconds).
    pub finish_times: Vec<f64>,
    /// Seconds each rank spent *waiting* for peers inside collectives.
    pub wait_times: Vec<f64>,
    /// Communication wall time by `(phase, "comm:<op>")`, measured on the
    /// critical path (max over ranks per bucket).
    pub breakdown: PhaseBreakdown,
}

impl ReplayOutcome {
    /// Wall-clock makespan.
    pub fn makespan(&self) -> f64 {
        self.finish_times.iter().copied().fold(0.0, f64::max)
    }

    /// Total wait across ranks.
    pub fn total_wait(&self) -> f64 {
        self.wait_times.iter().sum()
    }
}

/// Replay per-rank traces under a machine model.
///
/// `compute_between` supplies the local compute time a rank spends before
/// reaching its `i`-th recorded operation (injecting imbalance); use
/// `|_, _| 0.0` for pure-communication replay.
pub fn replay(
    traces: &[Vec<OpRecord>],
    machine: &MachineModel,
    placement: Placement,
    compute_between: impl Fn(usize, usize) -> f64,
) -> Result<ReplayOutcome, ReplayError> {
    let nranks = traces.len();
    let mut clock = vec![0.0f64; nranks];
    let mut wait = vec![0.0f64; nranks];
    let mut next_op = vec![0usize; nranks];
    // Per-rank breakdowns of *in-collective* time (wire + wait).
    let mut per_rank_bd: Vec<PhaseBreakdown> =
        (0..nranks).map(|_| PhaseBreakdown::new()).collect();

    // Advance each rank's clock over local compute up to its next op.
    let charge_compute = |r: usize, idx: usize, clock: &mut [f64]| {
        clock[r] += compute_between(r, idx);
    };

    let total_ops: usize = traces.iter().map(|t| t.len()).sum();
    let mut done_ops = 0usize;
    // Point-to-point completion times: (src, dst, seq) -> available time.
    let mut sends: HashMap<(usize, usize), Vec<f64>> = HashMap::new();
    let mut send_seq: HashMap<(usize, usize), usize> = HashMap::new();
    let mut recv_seq: HashMap<(usize, usize), usize> = HashMap::new();

    while done_ops < total_ops {
        let mut progressed = false;

        // 1. Complete any sends/recvs that are next (they don't rendezvous).
        for r in 0..nranks {
            while next_op[r] < traces[r].len() {
                let rec = &traces[r][next_op[r]];
                match rec.op {
                    OpKind::Send => {
                        charge_compute(r, next_op[r], &mut clock);
                        let t = op_time(machine, placement, rec);
                        clock[r] += t;
                        per_rank_bd[r].add(&rec.phase, &format!("comm:{}", rec.op), t);
                        // Record availability for the matching recv. The
                        // destination is unknown from the record alone; use
                        // label-agnostic FIFO per (src=r, *) which suffices
                        // for the ring/pair patterns we trace.
                        let seq = send_seq.entry((r, usize::MAX)).or_insert(0);
                        sends.entry((r, usize::MAX)).or_default().push(clock[r]);
                        *seq += 1;
                        next_op[r] += 1;
                        done_ops += 1;
                        progressed = true;
                    }
                    OpKind::Recv => {
                        // Match FIFO against any available send (approximate:
                        // traces we replay use disjoint tag spaces per pair).
                        let mut matched = None;
                        for ((src, _), times) in sends.iter() {
                            let consumed =
                                recv_seq.get(&(*src, r)).copied().unwrap_or(0);
                            if consumed < times.len() {
                                matched = Some((*src, times[consumed]));
                                break;
                            }
                        }
                        if let Some((src, avail)) = matched {
                            charge_compute(r, next_op[r], &mut clock);
                            let start = clock[r].max(avail);
                            wait[r] += (avail - clock[r]).max(0.0);
                            clock[r] = start;
                            *recv_seq.entry((src, r)).or_insert(0) += 1;
                            next_op[r] += 1;
                            done_ops += 1;
                            progressed = true;
                        } else {
                            break;
                        }
                    }
                    // Fault and recovery markers are *local* events: they
                    // advance only the logging rank's clock by the recorded
                    // downtime (`bytes` = microseconds) and never
                    // rendezvous — survivor traces of an aborted segment
                    // have unequal lengths, so treating these as
                    // collectives would deadlock the replay.
                    OpKind::Fault | OpKind::Recover => {
                        charge_compute(r, next_op[r], &mut clock);
                        let t = op_time(machine, placement, rec);
                        clock[r] += t;
                        per_rank_bd[r].add(&rec.phase, &format!("comm:{}", rec.op), t);
                        next_op[r] += 1;
                        done_ops += 1;
                        progressed = true;
                    }
                    _ => break,
                }
            }
        }

        // 2. Find a collective whose every member is ready for it. A
        //    collective referencing a member whose trace is *exhausted* is
        //    orphaned — that peer died (faulted) before logging it, so it
        //    can never fire; the logging rank aborts it locally instead of
        //    deadlocking the replay (this is what lets faulty traces with
        //    `Fault`/`Recover` records replay end to end).
        let mut fired = None;
        let mut orphan: Option<usize> = None;
        'search: for r in 0..nranks {
            if next_op[r] >= traces[r].len() {
                continue;
            }
            let rec = &traces[r][next_op[r]];
            if matches!(rec.op, OpKind::Send | OpKind::Recv) {
                continue;
            }
            let mut any_exhausted = false;
            for &m in &rec.members {
                if m >= nranks {
                    return Err(ReplayError::MissingRank(m));
                }
                let Some(peer_rec) = traces[m].get(next_op[m]) else {
                    any_exhausted = true;
                    continue;
                };
                if peer_rec.op != rec.op
                    || peer_rec.members != rec.members
                    || peer_rec.comm_label != rec.comm_label
                {
                    continue 'search;
                }
            }
            if any_exhausted {
                orphan = orphan.or(Some(r));
                continue;
            }
            fired = Some(rec.members.clone());
            break;
        }

        if let Some(members) = fired {
            // Arrival times include each member's pre-op compute.
            let mut start = 0.0f64;
            for &m in &members {
                charge_compute(m, next_op[m], &mut clock);
                start = start.max(clock[m]);
            }
            let rec = traces[members[0]][next_op[members[0]]].clone();
            let t = op_time(machine, placement, &rec);
            let end = start + t;
            for &m in &members {
                wait[m] += start - clock[m];
                per_rank_bd[m].add(
                    &rec.phase,
                    &format!("comm:{}", rec.op),
                    end - clock[m],
                );
                clock[m] = end;
                next_op[m] += 1;
                done_ops += 1;
            }
            progressed = true;
        } else if let Some(r) = orphan {
            // Abort the orphaned collective for this rank alone: it paid
            // the (deadline-bounded) wire time, observed the failure and
            // moved on; the dead peer contributes nothing further.
            let rec = traces[r][next_op[r]].clone();
            charge_compute(r, next_op[r], &mut clock);
            let t = op_time(machine, placement, &rec);
            clock[r] += t;
            per_rank_bd[r].add(&rec.phase, &format!("comm:{}", rec.op), t);
            next_op[r] += 1;
            done_ops += 1;
            progressed = true;
        }

        if !progressed {
            let stuck: Vec<usize> =
                (0..nranks).filter(|&r| next_op[r] < traces[r].len()).collect();
            return Err(ReplayError::Deadlock { stuck_ranks: stuck });
        }
    }

    Ok(ReplayOutcome {
        finish_times: clock,
        wait_times: wait,
        breakdown: xg_costmodel::critical_path(&per_rank_bd),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: OpKind, phase: &str, members: Vec<usize>, bytes: u64) -> OpRecord {
        OpRecord {
            op,
            comm_label: "t".into(),
            participants: members.len(),
            members,
            bytes,
            phase: phase.into(),
            elapsed_us: 0,
        }
    }

    fn machine() -> (MachineModel, Placement) {
        (MachineModel::small_cluster(), Placement { ranks_per_node: 4 })
    }

    #[test]
    fn balanced_ranks_have_zero_wait() {
        let (m, p) = machine();
        let op = rec(OpKind::AllReduce, "str", vec![0, 1], 1024);
        let traces = vec![vec![op.clone(); 3], vec![op; 3]];
        let out = replay(&traces, &m, p, |_, _| 1e-3).unwrap();
        assert!(out.total_wait() < 1e-12, "wait {:?}", out.wait_times);
        // Makespan = 3 * (compute + op time).
        let t_op = op_time(&m, p, &traces[0][0]);
        assert!((out.makespan() - 3.0 * (1e-3 + t_op)).abs() < 1e-12);
    }

    #[test]
    fn slow_rank_makes_fast_rank_wait() {
        let (m, p) = machine();
        let op = rec(OpKind::AllReduce, "str", vec![0, 1], 1024);
        let traces = vec![vec![op.clone(); 4], vec![op; 4]];
        // Rank 1 computes 2 ms per stage, rank 0 computes 1 ms.
        let out = replay(&traces, &m, p, |r, _| if r == 1 { 2e-3 } else { 1e-3 }).unwrap();
        assert!(out.wait_times[0] > 3.9e-3, "rank 0 must absorb the imbalance");
        assert!(out.wait_times[1] < 1e-12);
        // The fast rank's in-collective time (incl. wait) exceeds the pure
        // wire time — the mechanism behind under-modeled str-comm numbers.
        let t_op = op_time(&m, p, &traces[0][0]);
        assert!(out.breakdown.get("str", "comm:AllReduce") > 4.0 * t_op);
    }

    #[test]
    fn disjoint_groups_progress_independently() {
        let (m, p) = machine();
        let a = rec(OpKind::AllReduce, "str", vec![0, 1], 64);
        let b = rec(OpKind::AllReduce, "str", vec![2, 3], 64);
        let traces = vec![
            vec![a.clone(); 5],
            vec![a; 5],
            vec![b.clone(); 2],
            vec![b; 2],
        ];
        let out = replay(&traces, &m, p, |_, _| 0.0).unwrap();
        assert_eq!(out.finish_times.len(), 4);
        assert!(out.finish_times[2] < out.finish_times[0]);
    }

    #[test]
    fn mismatched_traces_deadlock_with_diagnosis() {
        let (m, p) = machine();
        let a = rec(OpKind::AllReduce, "str", vec![0, 1], 64);
        let wrong = rec(OpKind::AllToAll, "coll", vec![0, 1], 64);
        let traces = vec![vec![a], vec![wrong]];
        let err = replay(&traces, &m, p, |_, _| 0.0).unwrap_err();
        assert!(matches!(err, ReplayError::Deadlock { .. }));
    }

    #[test]
    fn functional_xgyro_trace_replays_cleanly() {
        // End-to-end: replay a real ensemble trace; makespan must be at
        // least the per-rank breakdown sum and no deadlock.
        let base = xg_sim::CgyroInput::test_small();
        let cfg = xgyro_core::gradient_sweep(&base, 2, xg_tensor::ProcGrid::new(2, 1));
        let outcome = xgyro_core::run_xgyro(&cfg, 2);
        let (m, p) = machine();
        let out = replay(&outcome.traces, &m, p, |_, _| 0.0).unwrap();
        assert!(out.makespan() > 0.0);
        assert!(out.finish_times.iter().all(|t| t.is_finite()));
        // With zero injected compute, waits can only come from op-count
        // asymmetries; every rank still terminates.
        assert_eq!(out.finish_times.len(), cfg.total_ranks());
    }

    #[test]
    fn orphaned_collective_aborts_locally_instead_of_deadlocking() {
        // Ranks 0 and 1 logged an AllReduce with members [0, 1, 2], but
        // rank 2 died before logging it — its trace ends with only a
        // Fault marker. The collective can never fire; the survivors must
        // abort it locally (charging its wire time) rather than deadlock.
        let (m, p) = machine();
        let coll = rec(OpKind::AllReduce, "str", vec![0, 1, 2], 256);
        let fault = rec(OpKind::Fault, "fault", vec![2], 1_000);
        let traces = vec![vec![coll.clone()], vec![coll], vec![fault]];
        let out = replay(&traces, &m, p, |_, _| 0.0).unwrap();
        assert!(out.finish_times.iter().all(|t| t.is_finite() && *t > 0.0));
        // The fault marker's downtime (bytes = microseconds) lands on the
        // dead rank's clock.
        assert!((out.finish_times[2] - 1e-3).abs() < 1e-12);
        assert!(out.breakdown.get("str", "comm:AllReduce") > 0.0);
    }

    #[test]
    fn faulty_recovery_trace_replays_through_csv_round_trip() {
        // End-to-end satellite: a seeded crash during a resilient run
        // produces an aborted-segment trace set; export it to the trace
        // CSV, parse it back, and replay it — no deadlock, and the Fault
        // marker survives the round trip into the cost breakdown.
        let base = xg_sim::CgyroInput::test_small();
        let cfg = xgyro_core::gradient_sweep(&base, 3, xg_tensor::ProcGrid::new(1, 1));
        let out = xgyro_core::run_xgyro_resilient(
            &cfg,
            2,
            2,
            xg_comm::FaultPlan::crash(1, 5),
            std::time::Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(out.events.len(), 1, "the seeded crash must have fired");
        let faulty = &out.faulty_segments[0];
        let csv = xg_comm::traces_to_csv(faulty);
        let parsed = xg_comm::traces_from_csv(&csv).unwrap();
        assert_eq!(&parsed, faulty, "trace CSV round trip must be lossless");
        let (m, p) = machine();
        let replayed = replay(&parsed, &m, p, |_, _| 0.0).unwrap();
        assert!(replayed.finish_times.iter().all(|t| t.is_finite()));
        let faults: usize = parsed
            .iter()
            .flatten()
            .filter(|r| matches!(r.op, OpKind::Fault | OpKind::Recover))
            .count();
        assert!(faults > 0, "aborted segment must carry fault/recover markers");
    }

    #[test]
    fn imbalance_amplifies_xgyro_str_comm() {
        // The F2-deviation mechanism, demonstrated: identical traces, but
        // ranks with jittered compute make the blocking AllReduce absorb
        // wait time well beyond its wire cost.
        let base = xg_sim::CgyroInput::test_small();
        let cfg = xgyro_core::gradient_sweep(&base, 2, xg_tensor::ProcGrid::new(2, 1));
        let outcome = xgyro_core::run_xgyro(&cfg, 2);
        let (m, p) = machine();
        let quiet = replay(&outcome.traces, &m, p, |_, _| 1e-4).unwrap();
        let jittery = replay(&outcome.traces, &m, p, |r, i| {
            1e-4 + if (r + i) % 7 == 0 { 5e-4 } else { 0.0 }
        })
        .unwrap();
        let q = quiet.breakdown.get("str", "comm:AllReduce");
        let j = jittery.breakdown.get("str", "comm:AllReduce");
        assert!(j > 1.5 * q, "jitter must inflate in-collective time: {q} -> {j}");
    }
}
