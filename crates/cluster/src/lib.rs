//! # xg-cluster
//!
//! Job planning and performance-mode execution for CGYRO/XGYRO runs on a
//! modeled cluster: the per-rank buffer inventory (reproducing the paper's
//! "cmat is 10× everything else" memory fact), a CGYRO-valid decomposition
//! planner (reproducing "a single nl03c simulation requires at least 32
//! Frontier nodes"), and a symbolic per-step schedule priced by the
//! `xg-costmodel` formulas (regenerating Figure 2's phase breakdown).

#![warn(missing_docs)]

pub mod campaign;
pub mod decomp_plan;
pub mod memory;
pub mod planner;
pub mod replay;
pub mod report;
pub mod resilience;
pub mod simtime;

pub use campaign::{optimize_campaign, CampaignOption, CampaignPlan};
pub use decomp_plan::{
    moved_rows_vs_balanced, plan_decomposition, rebalanced_cuts, DecompPlan,
};
pub use memory::{cmat_ratio, rank_inventory, total_bytes, BufferCategory, BufferSpec};
pub use planner::{
    diagnose, max_feasible_k, max_feasible_k_unbalanced, min_nodes, min_nodes_unbalanced,
    pack_worlds, plan, plan_unbalanced, valid_grids, valid_grids_unbalanced, Infeasibility,
    JobPlan,
};
pub use replay::{replay, ReplayError, ReplayOutcome};
pub use report::{cgyro_timing_log, figure2_table, parse_timing_totals};
pub use resilience::{
    checkpoint_write_s, ensemble_checkpoint_bytes, expected_runtime,
    expected_time_to_solution, journal_sync_plan, mtbf_sweep, young_interval, EttsReport,
    FailureModel, JournalSyncReport, SweepRow,
};
pub use simtime::{
    coll_position_speeds, simulate_cgyro_sequential, simulate_ensemble_member,
    simulate_ensemble_member_decomp, simulate_xgyro, ScenarioReport, SchedulePolicy,
};
