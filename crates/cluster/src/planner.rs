//! Job planning: valid decompositions and minimum-node search.
//!
//! CGYRO-style validity: the toroidal split must divide `nt`, and the
//! `n1` split must divide both `nv` and `nc` (the production code requires
//! exact divisibility for its transposes). These constraints quantize the
//! feasible rank counts — for the `nl03c`-like deck on a Frontier-like
//! machine they jump from 128 straight to 256 ranks, which combined with
//! the memory budget makes **32 nodes the minimum single-simulation
//! allocation**, exactly the paper's statement.

use crate::memory::{rank_inventory, total_bytes, BufferCategory};
use xg_costmodel::MachineModel;
use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;

/// A feasible (or infeasible) placement of an ensemble on nodes.
#[derive(Clone, Debug)]
pub struct JobPlan {
    /// Node count.
    pub nodes: usize,
    /// Total ranks.
    pub ranks: usize,
    /// Ensemble size.
    pub k: usize,
    /// Per-simulation process grid.
    pub grid: ProcGrid,
    /// Worst-case per-rank bytes.
    pub per_rank_bytes: u64,
    /// Per-rank constant-tensor bytes.
    pub cmat_bytes: u64,
    /// Usable per-rank budget of the machine.
    pub budget_bytes: u64,
}

impl JobPlan {
    /// True when the plan fits in memory.
    pub fn feasible(&self) -> bool {
        self.per_rank_bytes <= self.budget_bytes
    }
}

/// All CGYRO-valid per-simulation grids for a given rank count.
pub fn valid_grids(input: &CgyroInput, ranks: usize) -> Vec<ProcGrid> {
    let d = input.dims();
    let mut out = Vec::new();
    for n2 in 1..=ranks {
        if !ranks.is_multiple_of(n2) || !d.nt.is_multiple_of(n2) {
            continue;
        }
        let n1 = ranks / n2;
        if n1 > d.nv || !d.nv.is_multiple_of(n1) || !d.nc.is_multiple_of(n1) {
            continue;
        }
        out.push(ProcGrid::new(n1, n2));
    }
    // Prefer the largest toroidal split (CGYRO's convention), then n1.
    out.sort_by_key(|g| std::cmp::Reverse((g.n2, g.n1)));
    out
}

/// Plan an ensemble of `k` simulations on `nodes` nodes. Returns `None`
/// when no CGYRO-valid decomposition exists for that rank count.
pub fn plan(
    input: &CgyroInput,
    k: usize,
    nodes: usize,
    machine: &MachineModel,
) -> Option<JobPlan> {
    let total_ranks = machine.ranks(nodes);
    if !total_ranks.is_multiple_of(k) {
        return None;
    }
    let per_sim = total_ranks / k;
    let grid = valid_grids(input, per_sim).into_iter().next()?;
    let inv = rank_inventory(input, grid, k * grid.n1);
    let per_rank = total_bytes(&inv, None);
    let cmat = total_bytes(&inv, Some(BufferCategory::Constant));
    Some(JobPlan {
        nodes,
        ranks: total_ranks,
        k,
        grid,
        per_rank_bytes: per_rank,
        cmat_bytes: cmat,
        budget_bytes: machine.usable_mem_per_rank(),
    })
}

/// Largest ensemble size `k ≤ k_cap` that fits a **fixed** `nodes`
/// allocation of `machine` — the serving-side batch-size budget. On a fixed
/// allocation, growing the batch shrinks each member's share of the rank
/// pool, so the per-rank state footprint grows with `k` and eventually
/// blows the memory budget (for the `nl03c`-like deck on 32 Frontier-like
/// nodes the sweep saturates at `k = 8`, the paper's setup). Intermediate
/// ensemble sizes with no CGYRO-valid decomposition are skipped rather
/// than treated as a ceiling. Returns `0` when not even one simulation
/// fits — such a job must be rejected at admission, not queued.
pub fn max_feasible_k(
    input: &CgyroInput,
    nodes: usize,
    machine: &MachineModel,
    k_cap: usize,
) -> usize {
    (1..=k_cap)
        .rfind(|&k| plan(input, k, nodes, machine).is_some_and(|p| p.feasible()))
        .unwrap_or(0)
}

/// Smallest node count on which `k` simulations fit as one XGYRO job
/// (`k = 1` is a plain CGYRO job). Searches up to `max_nodes`.
pub fn min_nodes(
    input: &CgyroInput,
    k: usize,
    machine: &MachineModel,
    max_nodes: usize,
) -> Option<JobPlan> {
    (1..=max_nodes).find_map(|nodes| {
        plan(input, k, nodes, machine).filter(|p| p.feasible())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frontier() -> MachineModel {
        MachineModel::frontier_like()
    }

    #[test]
    fn nl03c_single_sim_needs_32_nodes() {
        // Paper §3: "a single CGYRO simulation does require at least 32
        // nodes."
        let input = CgyroInput::nl03c_like();
        let plan = min_nodes(&input, 1, &frontier(), 128).expect("must fit somewhere");
        assert_eq!(plan.nodes, 32, "minimum feasible allocation");
        assert_eq!(plan.ranks, 256);
        assert_eq!(plan.grid.n2, 16, "toroidal split preferred");
        assert_eq!(plan.grid.n1, 16);
    }

    #[test]
    fn nl03c_16_nodes_is_memory_infeasible() {
        let input = CgyroInput::nl03c_like();
        let p = plan(&input, 1, 16, &frontier()).expect("decomposition exists");
        assert!(!p.feasible(), "128 ranks must exceed the per-rank budget");
    }

    #[test]
    fn xgyro_fits_8_sims_on_the_same_32_nodes() {
        // The paper's benchmark setup: 8 nl03c variants on 32 nodes as one
        // ensemble — 8x the science on the allocation a single CGYRO run
        // needs.
        let input = CgyroInput::nl03c_like();
        let p = plan(&input, 8, 32, &frontier()).expect("plan exists");
        assert!(p.feasible(), "per-rank {} > budget {}", p.per_rank_bytes, p.budget_bytes);
        assert_eq!(p.grid.n1, 2);
        assert_eq!(p.grid.n2, 16);
        // And the ensemble minimum is also 32 nodes.
        let min = min_nodes(&input, 8, &frontier(), 128).unwrap();
        assert_eq!(min.nodes, 32);
    }

    #[test]
    fn xgyro_16_sims_do_not_fit_on_32_nodes() {
        // Sharing cmat cannot shrink the per-simulation state buffers: at
        // k = 16 each rank would hold 16x the state of the 256-rank run
        // and blows the budget (the sweep saturates at k = 8).
        let input = CgyroInput::nl03c_like();
        let p = plan(&input, 16, 32, &frontier()).expect("plan exists");
        assert!(!p.feasible());
    }

    #[test]
    fn valid_grids_respect_divisibility() {
        let input = CgyroInput::nl03c_like(); // nv=576, nc=2^17, nt=16
        // 192 ranks has no valid grid: n1 would need to divide both 576
        // and 2^17 (gcd 64), but 192 = n2*n1 with n2 | 16 forces n1 ∈
        // {12, 24, 48, 96, 192} — none divide 2^17.
        assert!(valid_grids(&input, 192).is_empty());
        // 256 = 16 × 16 works.
        let grids = valid_grids(&input, 256);
        assert!(grids.iter().any(|g| g.n1 == 16 && g.n2 == 16));
        // Every returned grid multiplies out and divides the dims.
        for g in &grids {
            assert_eq!(g.size(), 256);
            assert_eq!(input.dims().nt % g.n2, 0);
            assert_eq!(input.dims().nv % g.n1, 0);
            assert_eq!(input.dims().nc % g.n1, 0);
        }
    }

    #[test]
    fn cmat_per_rank_equal_between_cgyro_256_and_xgyro_ensemble() {
        // Both split one cmat copy over 256 ranks.
        let input = CgyroInput::nl03c_like();
        let m = frontier();
        let cg = plan(&input, 1, 32, &m).unwrap();
        let xg = plan(&input, 8, 32, &m).unwrap();
        assert_eq!(cg.cmat_bytes, xg.cmat_bytes);
        // But XGYRO carries 8x the per-rank state.
        assert!(xg.per_rank_bytes > cg.per_rank_bytes);
    }

    #[test]
    fn max_feasible_k_saturates_at_the_paper_ensemble_size() {
        // nl03c on the 32-node minimum allocation: 8 members fit, 16 do
        // not — the batch-size budget a campaign service must respect.
        let input = CgyroInput::nl03c_like();
        assert_eq!(max_feasible_k(&input, 32, &frontier(), 32), 8);
        // A deck that fits nowhere on the allocation yields 0 (reject).
        assert_eq!(max_feasible_k(&input, 1, &frontier(), 8), 0);
        // Tiny decks are never memory-bound at small k.
        let small = CgyroInput::test_small();
        let m = MachineModel::small_cluster();
        assert!(max_feasible_k(&small, 1, &m, 2) >= 1);
    }

    #[test]
    fn small_cluster_plans_small_decks() {
        let input = CgyroInput::test_medium();
        let m = MachineModel::small_cluster();
        let p = min_nodes(&input, 1, &m, 64).expect("tiny deck fits easily");
        assert_eq!(p.nodes, 1);
        assert!(p.feasible());
    }
}
